"""Fig. 6 benchmark: inter-arrival time distributions."""

from repro.experiments import fig6

from conftest import run_once


def test_fig6_interarrival_distributions(benchmark, quick):
    result = run_once(benchmark, lambda: fig6.run(**quick))
    print("\n" + result.render())
    histograms = result.data["histograms"]
    # Characteristic 6: in ~10 of 18 traces more than 20 % of gaps > 16 ms.
    heavy_tail = sum(
        1
        for histogram in histograms.values()
        if histogram["(16,64]ms"] + histogram["(64,256]ms"] + histogram[">256ms"] > 0.20
    )
    assert heavy_tail >= 9
    # Movie: most gaps under 1 ms despite a long mean gap.
    assert histograms["Movie"]["<=1ms"] > 0.5
    # CallIn/CallOut: sparse traffic, mostly very long gaps.
    for name in ("CallIn", "CallOut"):
        assert histograms[name][">256ms"] > 0.3, name
