"""Fig. 7 benchmark: combo-trace I/O patterns (all three panels)."""

from repro.workloads import COMBO_APPS
from repro.experiments import fig7

from conftest import run_once


def test_fig7_combo_patterns(benchmark, quick):
    result = run_once(benchmark, lambda: fig7.run(**quick))
    print("\n" + result.render())
    sizes = result.data["sizes"]
    gaps = result.data["gaps"]
    responses = result.data["responses"]
    assert set(sizes) == set(COMBO_APPS)
    # Fig. 7a: Music-included combos show a higher 4 KB share than their
    # Radio-included counterparts.
    for suffix in ("WB", "FB", "Msg"):
        assert sizes[f"Music/{suffix}"]["<=4K"] > sizes[f"Radio/{suffix}"]["<=4K"]
    # Fig. 7b: combo response times stay ordinary (no blow-up from
    # concurrency) -- most requests within 16 ms.
    for name, histogram in responses.items():
        within = sum(histogram[l] for l in ("<=2ms", "(2,4]ms", "(4,8]ms", "(8,16]ms"))
        assert within > 0.7, name
    # Fig. 7c: every combo except Music/FB has > 20 % of gaps above 4 ms.
    for name, histogram in gaps.items():
        above_4ms = 1.0 - histogram["<=1ms"] - histogram["(1,4]ms"]
        if name != "Music/FB":
            assert above_4ms > 0.20, name
