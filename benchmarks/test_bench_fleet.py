"""Fleet executor throughput and scaling.

Times a small fleet through :func:`repro.fleet.run_fleet`, asserts a
devices-per-second floor for the serial path, and — when the machine
actually has the cores for it — checks that two workers beat one by a
sane margin.  The byte-identity of the parallel output is pinned by
``tests/fleet/test_executor.py``; here the parallel run is only held to
producing the same manifest digest while the printed numbers document
the scaling on the machine at hand.
"""

from __future__ import annotations

import hashlib
import json
import os

from repro.fleet import FleetScenario, run_fleet

from conftest import BENCH_SEED, run_once

#: Serial floor (devices/second).  The 160-device battery simulates
#: ~32k requests through the full stack; even modest hardware clears
#: 40 dev/s with the replay fast path, so 15 leaves generous headroom
#: for shared CI runners.
MIN_DEVICES_PER_S = 15.0

DEVICES = 160
REQUESTS = 200


def _scenario() -> FleetScenario:
    return FleetScenario(
        devices=DEVICES,
        name="bench",
        seed=BENCH_SEED,
        requests_per_device=REQUESTS,
        apps={"Twitter": 2.0, "Music": 1.0, "Messaging": 1.0},
        configs={"small-4PS": 1.0, "small-HPS": 1.0},
        rate_factor_range=(0.5, 2.0),
    )


def _manifest_digest(path) -> str:
    payload = (path / "fleet.json").read_bytes()
    return hashlib.sha256(payload).hexdigest()


def test_fleet_serial_floor(benchmark, tmp_path):
    scenario = _scenario()
    result = run_once(
        benchmark,
        lambda: run_fleet(scenario, tmp_path / "serial", jobs=1, overwrite=True),
    )
    rate = result.devices / result.wall_s
    print(
        f"\nserial: {result.devices} devices in {result.wall_s:.2f}s "
        f"({rate:.1f} dev/s)"
    )
    assert result.devices == DEVICES
    assert rate >= MIN_DEVICES_PER_S, (
        f"serial fleet throughput {rate:.1f} dev/s below the "
        f"{MIN_DEVICES_PER_S} floor"
    )


def test_fleet_two_worker_scaling(benchmark, tmp_path):
    scenario = _scenario()
    serial = run_fleet(scenario, tmp_path / "serial", jobs=1)
    parallel = run_once(
        benchmark,
        lambda: run_fleet(scenario, tmp_path / "parallel", jobs=2),
    )
    # Same bytes regardless of worker count (the full sweep lives in
    # tests/fleet/test_executor.py).
    assert _manifest_digest(tmp_path / "serial") == _manifest_digest(
        tmp_path / "parallel"
    )
    wall_ratio = serial.wall_s / parallel.wall_s
    print(
        f"\n2 workers: wall {parallel.wall_s:.2f}s vs serial "
        f"{serial.wall_s:.2f}s ({wall_ratio:.2f}x), "
        f"compute/wall {parallel.speedup:.2f}x"
    )
    cores = os.cpu_count() or 1
    if cores >= 4:
        # Near-linear on real cores: two workers must deliver at least
        # 1.35x of serial wall time (perfect would be ~2x minus pool
        # startup; CI containers with throttled or shared cores are
        # excluded by the gate).
        assert wall_ratio >= 1.35, (
            f"2-worker fleet run only {wall_ratio:.2f}x faster than serial "
            f"on a {cores}-core machine"
        )
    else:
        print(f"(scaling gate skipped: {cores} core(s))")


def test_fleet_report_is_cheap(benchmark, tmp_path):
    from repro.fleet import fleet_report, open_fleet_store

    run_fleet(_scenario(), tmp_path / "fleet", jobs=1)
    store = open_fleet_store(tmp_path / "fleet")
    report = run_once(benchmark, lambda: fleet_report(store))
    assert report.devices == DEVICES
    payload = json.dumps(report.percentiles)
    print(f"\nreport over {report.devices} devices: {len(payload)} summary bytes")
