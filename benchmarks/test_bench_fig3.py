"""Fig. 3 benchmark: throughput vs request size on the reference device."""

from repro.trace import KIB, MIB
from repro.analysis import throughput_curves
from repro.emmc import four_ps

from conftest import run_once

SIZES = [4 * KIB, 16 * KIB, 64 * KIB, 256 * KIB, 1 * MIB]


def test_fig3_throughput_curves(benchmark):
    curves = run_once(
        benchmark,
        lambda: throughput_curves(
            four_ps(), read_sizes=SIZES[:4], write_sizes=SIZES,
            total_bytes_per_point=16 * MIB,
        ),
    )
    reads = {p.size_bytes: p.mb_per_s for p in curves["read"]}
    writes = {p.size_bytes: p.mb_per_s for p in curves["write"]}
    print("\nFig 3 (MB/s):")
    for size in SIZES:
        row = f"  {size // KIB:6d} KiB  read={reads.get(size, float('nan')):6.2f}"
        row += f"  write={writes[size]:6.2f}"
        print(row)
    # Shape: both curves rise with size; reads beat writes at every size.
    read_rates = [reads[s] for s in SIZES[:4]]
    assert read_rates == sorted(read_rates)
    write_rates = [writes[s] for s in SIZES]
    assert write_rates == sorted(write_rates)
    for size in SIZES[:4]:
        assert reads[size] > writes[size]
    # Paper endpoints: 4K read ~13.9 MB/s; ours must land in that regime.
    assert 8.0 < reads[4 * KIB] < 25.0
