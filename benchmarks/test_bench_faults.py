"""Fault-layer overhead benchmark.

The fault subsystem is opt-in: a device built without a plan (or with
``FaultPlan.none()``) carries no injector and takes no per-page branch,
so the fault-free replay path must stay at the sim-kernel benchmark's
throughput floor.  A second, informational timing shows what an active
plan costs (RNG draws per page plus retry timer events)."""

from repro.emmc import EmmcDevice, four_ps
from repro.faults import FaultPlan, replay_with_faults
from repro.sim import Host
from repro.workloads import generate_trace

from conftest import BENCH_SEED, run_once

REQUESTS = 2500


def _trace():
    return generate_trace("Installing", seed=BENCH_SEED, num_requests=REQUESTS)


def test_no_fault_path_keeps_kernel_throughput(benchmark):
    """Inert plan must not drag replay below the sim-kernel floor."""
    trace = _trace()

    def replay():
        return replay_with_faults(four_ps(), trace, FaultPlan.none())

    result = run_once(benchmark, replay)
    assert len(result.trace) == REQUESTS
    seconds = benchmark.stats.stats.mean
    rate = REQUESTS / seconds
    print(f"\nno-fault replay: {REQUESTS} requests in {seconds:.3f}s "
          f"({rate:,.0f} req/s)")
    # The sim-kernel benchmark gates >1000 req/s; the inert fault path
    # must stay within 5% of that floor.
    assert rate > 950


def test_active_plan_overhead_is_bounded(benchmark):
    """Informational: a flaky-profile replay vs. the plain path."""
    trace = _trace()

    plain_device = EmmcDevice(four_ps())
    import time

    start = time.perf_counter()
    Host(plain_device).replay(trace.without_timing())
    plain_seconds = time.perf_counter() - start

    def replay():
        # Read faults only: a 2500-request write-heavy trace under the
        # wearout rates would exhaust any realistic spare pool.
        return replay_with_faults(
            four_ps(), trace, FaultPlan.profile("transient-reads", seed=BENCH_SEED)
        )

    result = run_once(benchmark, replay)
    assert result.stats.fault_events > 0
    faulted_seconds = benchmark.stats.stats.mean
    print(f"\nfaulted replay: {faulted_seconds:.3f}s vs plain "
          f"{plain_seconds:.3f}s "
          f"({faulted_seconds / plain_seconds:.2f}x)")
    # Loose sanity bound: injection may cost real time (retry events,
    # RNG draws) but never an order of magnitude.
    assert faulted_seconds < plain_seconds * 10
