"""Table III benchmark: size statistics of all 25 traces."""

from repro.workloads import ALL_TRACES, TABLE_III
from repro.experiments import table3

from conftest import run_once


def test_table3_size_stats(benchmark, quick):
    result = run_once(benchmark, lambda: table3.run(**quick))
    print("\n" + result.render())
    measured = result.data["measured"]
    assert set(measured) == set(ALL_TRACES)
    # Shape checks against the paper, on every trace: write-request share
    # within a few points; average size within 50 % (the shortened traces
    # sample the heavy-tailed top size bucket sparsely, so data-intensive
    # apps get a wider band -- the full-size run lands within ~15 %).
    heavy_tailed = {"Installing", "CameraVideo", "Booting"}
    for name, stats in measured.items():
        paper = TABLE_III[name]
        assert abs(stats.write_req_pct - paper.write_req_pct) < 6.0, name
        ratio = stats.avg_size_kib / paper.avg_size_kib
        if name in heavy_tailed:
            assert 0.3 < ratio < 3.0, name
        else:
            assert 0.5 < ratio < 1.6, name
