"""Event-kernel benchmark: Host replay throughput on the eMMC device.

The discrete-event refactor routes every request through the shared
``EventLoop`` (arrival event, admission queue, resource timelines,
completion event, idle timers).  This benchmark times a full-stack replay
of generated traces through :class:`repro.sim.Host` and asserts the two
properties that justify the kernel:

* throughput stays in the same order of magnitude as the pre-kernel
  inline engine (tens of thousands of requests per second of wall time);
* a deeper admission queue strictly lowers mean response time on a
  backlogged trace (the Implication 1 ablation the queue exists for).
"""

from repro.emmc import EmmcDevice, four_ps
from repro.sim import Host
from repro.workloads import generate_trace

from conftest import BENCH_SEED, run_once

#: A busy app (dense arrivals) and a sparse one (timers actually arm).
APPS = ["Installing", "Messaging"]
REQUESTS_PER_TRACE = 2500


def _replay_all():
    traces = [
        generate_trace(app, seed=BENCH_SEED, num_requests=REQUESTS_PER_TRACE)
        for app in APPS
    ]
    results = {}
    for trace in traces:
        device = EmmcDevice(four_ps())
        results[trace.name] = Host(device).replay(trace.without_timing())
    return results


def test_host_replay_throughput(benchmark):
    results = run_once(benchmark, _replay_all)
    total = sum(len(r.trace) for r in results.values())
    assert total == len(APPS) * REQUESTS_PER_TRACE
    seconds = benchmark.stats.stats.mean
    print(f"\nkernel replay: {total} requests in {seconds:.3f}s "
          f"({total / seconds:,.0f} req/s)")
    # Order-of-magnitude guard, not a tight perf gate: CI machines vary.
    assert total / seconds > 1_000


def test_queue_depth_overlap_shape():
    trace = generate_trace(
        "Installing", seed=BENCH_SEED, num_requests=800
    ).without_timing()
    mrt = {}
    for depth in (1, 4):
        device = EmmcDevice(four_ps(queue_depth=depth))
        mrt[depth] = Host(device).replay(trace).stats.mean_response_ms
    assert mrt[4] < mrt[1]
