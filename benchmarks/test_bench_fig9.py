"""Fig. 9 benchmark: space utilization of 8PS and HPS normalized to 4PS.

Paper headlines: HPS always matches 4PS exactly; against 8PS the biggest
gain is on Music (24.2 %) and the average across traces is 13.1 %.
"""

from repro.experiments import fig9

from conftest import BENCH_SEED, run_once

APPS = ["Music", "Messaging", "Twitter", "CameraVideo", "Installing", "Movie"]


def test_fig9_space_utilization(benchmark):
    result = run_once(
        benchmark,
        lambda: fig9.run(seed=BENCH_SEED, num_requests=2500, apps=APPS),
    )
    print("\n" + result.render())
    utilization = result.data["utilization"]
    gains = result.data["gains"]
    for name, per_scheme in utilization.items():
        # HPS == 4PS == 1.0 (no padding ever), 8PS below.
        assert per_scheme["HPS"] == 1.0, name
        assert per_scheme["4PS"] == 1.0, name
        assert per_scheme["8PS"] < 1.0, name
    # Small-write-heavy traces gain the most; streaming traces the least.
    assert gains["Music"] > 0.15
    assert gains["Messaging"] > 0.15
    assert gains["CameraVideo"] < 0.05
    assert gains["Installing"] < 0.08
    assert gains["Music"] > gains["CameraVideo"]
