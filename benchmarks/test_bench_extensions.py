"""Benchmarks for the extension studies (SLC, FTL scheme, lifetime)."""

from repro.experiments import ftl_study, lifetime, slc_study

from conftest import BENCH_SEED, run_once


def test_extension_slc_study(benchmark):
    result = run_once(
        benchmark,
        lambda: slc_study.run(seed=BENCH_SEED, num_requests=1500,
                              apps=["Messaging", "Movie"]),
    )
    print("\n" + result.render())
    mrt = result.data["mrt"]
    # SLC mode pays off where 4 KB requests dominate, barely where they don't.
    slc_gain = {app: 1 - values["HPS-SLC"] / values["HPS"] for app, values in mrt.items()}
    assert slc_gain["Messaging"] > 0.15
    assert slc_gain["Messaging"] > slc_gain["Movie"]


def test_extension_ftl_study(benchmark):
    result = run_once(
        benchmark,
        lambda: ftl_study.run(seed=BENCH_SEED, num_requests=1500,
                              apps=("Messaging",)),
    )
    print("\n" + result.render())
    data = result.data["Messaging"]
    # The simple FTL's RAM advantage and its merge-storm penalty.
    assert data["hybrid-log(8)"]["mapping_entries"] < data["page"]["mapping_entries"] / 5
    assert data["hybrid-log(8)"]["mrt_ms"] > 3 * data["page"]["mrt_ms"]
    # A bigger log pool softens the pain.
    assert data["hybrid-log(32)"]["mrt_ms"] < data["hybrid-log(8)"]["mrt_ms"]


def test_extension_lifetime(benchmark):
    result = run_once(
        benchmark, lambda: lifetime.run(seed=BENCH_SEED, num_requests=1500, rounds=4)
    )
    print("\n" + result.render())
    data = result.data
    assert data["8PS"]["mean_block_cycles"] > data["4PS"]["mean_block_cycles"]
    assert data["8PS"]["write_amplification"] > data["4PS"]["write_amplification"]
