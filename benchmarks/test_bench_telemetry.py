"""Telemetry overhead: enabled vs disabled on a Fig. 8-style battery.

PR 9's telemetry contract has two performance sides:

* **Disabled is structurally absent** -- ``device.telemetry is None``
  removes the recording calls from the hot path entirely, so a replay
  without a sink runs the same event-kernel code the seed ran.  The
  before/after numbers for the full 6-app x 2500-request kernel battery
  (26.5 s pre-change, within noise post-change; see
  ``docs/telemetry.md``) back the <=2 % claim; this file guards the
  enabled side, which *can* be measured within one build.
* **Enabled stays cheap** -- recording every span, kernel event and
  decomposition must cost at most ``_MAX_SLOWDOWN``x the disabled
  kernel replay.

Machine noise on shared runners is large relative to the numbers under
test, so the two modes are timed **interleaved** (disabled, enabled,
disabled, enabled, ...) and the best of ``_ROUNDS`` repetitions per
mode is compared -- interleaved minima are stable where back-to-back
means are not.  Both modes pin ``REPRO_REPLAY_FASTPATH=off`` so they
time the same engine: an attached sink forces the kernel anyway, and
comparing kernel-to-kernel isolates the recording cost.
"""

from __future__ import annotations

import os
import time

from repro.emmc import EmmcDevice, four_ps
from repro.replay import REPLAY_FASTPATH_ENV
from repro.sim import Host
from repro.telemetry import Telemetry
from repro.workloads import generate_trace

from conftest import BENCH_SEED, QUICK_REQUESTS, run_once

#: A reduced Fig. 8 mix: one heavy 8b trace, one mixed, one light 8a.
_APPS = ["Booting", "CameraVideo", "Twitter"]
#: Interleaved repetitions per mode.
_ROUNDS = 3
#: Recording everything may cost at most this factor over no sink.
_MAX_SLOWDOWN = 1.5


def _battery(with_sink: bool):
    """Replay the battery on the kernel; return (stats tuple, seconds)."""
    config = four_ps()
    traces = [
        generate_trace(
            app, seed=BENCH_SEED, num_requests=QUICK_REQUESTS
        ).without_timing()
        for app in _APPS
    ]
    os.environ[REPLAY_FASTPATH_ENV] = "off"
    try:
        mrts = []
        started = time.perf_counter()
        for trace in traces:
            sink = Telemetry() if with_sink else None
            device = EmmcDevice(config, telemetry=sink)
            result = Host(device).replay(trace)
            mrts.append(sum(result.stats.response_us) / len(result.trace))
            if with_sink:
                assert sink.spans and sink.decompositions
        return tuple(mrts), time.perf_counter() - started
    finally:
        del os.environ[REPLAY_FASTPATH_ENV]


def test_enabled_overhead_bounded(benchmark):
    def measure():
        disabled_best = enabled_best = float("inf")
        disabled_mrts = enabled_mrts = None
        for _ in range(_ROUNDS):
            disabled_mrts, disabled_s = _battery(with_sink=False)
            disabled_best = min(disabled_best, disabled_s)
            enabled_mrts, enabled_s = _battery(with_sink=True)
            enabled_best = min(enabled_best, enabled_s)
        return disabled_mrts, enabled_mrts, disabled_best, enabled_best

    disabled_mrts, enabled_mrts, disabled_s, enabled_s = run_once(
        benchmark, measure
    )

    # Observation only: the sink changes no simulated number.
    assert enabled_mrts == disabled_mrts

    slowdown = enabled_s / disabled_s
    print(
        f"\ndisabled {disabled_s * 1000:.0f} ms vs enabled "
        f"{enabled_s * 1000:.0f} ms ({slowdown:.2f}x, best of {_ROUNDS} "
        f"interleaved) on {len(_APPS)} apps x {QUICK_REQUESTS} requests"
    )
    assert slowdown <= _MAX_SLOWDOWN
