"""Serial vs parallel experiment-engine scaling on the heavy replays.

Records the wall time of the sharded engine at 1 and 2 workers over the
replay-bound experiments (fig8 + fig9: 36 independent per-trace shards)
and checks the engine's contracts: identical output at every worker
count, and telemetry that accounts for the compute honestly.  The
absolute speedup is hardware-dependent (CI containers may pin a single
core), so the assertion is on correctness and accounting, while the
printed numbers document the scaling on the machine at hand.
"""

from __future__ import annotations

from repro.experiments import parallel
from repro.experiments.runner import _jsonable

from conftest import BENCH_SEED, QUICK_REQUESTS, run_once

IDS = ["fig8", "fig9"]


def _run(jobs: int) -> parallel.RunSummary:
    return parallel.execute(
        ids=IDS, seed=BENCH_SEED, num_requests=QUICK_REQUESTS, jobs=jobs
    )


def test_engine_serial(benchmark):
    summary = run_once(benchmark, lambda: _run(1))
    assert [r.experiment_id for r in summary.results] == IDS
    assert all(t.shards == 0 for t in summary.telemetry)  # in-process
    print(
        f"\nserial: wall {summary.wall_s:.2f}s, "
        f"compute {summary.compute_s:.2f}s"
    )


def test_engine_two_workers(benchmark):
    serial = _run(1)
    summary = run_once(benchmark, lambda: _run(2))
    assert all(t.shards == 18 for t in summary.telemetry)
    # The parallel contract: bit-identical output at any worker count.
    assert [_jsonable(r.data) for r in summary.results] == [
        _jsonable(r.data) for r in serial.results
    ]
    assert [r.render() for r in summary.results] == [
        r.render() for r in serial.results
    ]
    print(
        f"\n2 workers: wall {summary.wall_s:.2f}s, "
        f"compute {summary.compute_s:.2f}s, speedup {summary.speedup:.2f}x "
        f"(serial wall {serial.wall_s:.2f}s, "
        f"wall-vs-wall {serial.wall_s / summary.wall_s:.2f}x)"
    )


def test_warm_cache_replay(benchmark, tmp_path):
    from repro.experiments.cache import ResultCache

    cold = ResultCache(cache_dir=tmp_path)
    parallel.execute(
        ids=IDS, seed=BENCH_SEED, num_requests=QUICK_REQUESTS, jobs=1, cache=cold
    )
    warm = ResultCache(cache_dir=tmp_path)
    summary = run_once(
        benchmark,
        lambda: parallel.execute(
            ids=IDS, seed=BENCH_SEED, num_requests=QUICK_REQUESTS, jobs=1, cache=warm
        ),
    )
    assert warm.stats.hits == len(IDS)
    assert summary.compute_s == 0.0  # nothing recomputed
    print(f"\nwarm cache: wall {summary.wall_s * 1000:.1f}ms for {len(IDS)} results")
