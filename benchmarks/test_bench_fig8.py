"""Fig. 8 benchmark: mean response time of 4PS vs 8PS vs HPS.

Paper headlines to reproduce in shape: HPS beats 4PS everywhere (up to
86 % on Booting, least on Movie), 8PS performs very similarly to HPS, and
the data-intensive traces (Fig. 8b) show by far the largest gains.
"""

from repro.experiments import fig8

from conftest import BENCH_SEED, run_once

#: A representative mix: the heavy Fig. 8b traces plus light Fig. 8a ones.
APPS = ["Booting", "Installing", "CameraVideo", "Movie", "Twitter", "Facebook"]


def test_fig8_scheme_comparison(benchmark):
    result = run_once(
        benchmark,
        lambda: fig8.run(seed=BENCH_SEED, num_requests=2500, apps=APPS),
    )
    print("\n" + result.render())
    mrt = result.data["mrt"]
    improvements = result.data["improvements"]
    # HPS never loses to 4PS by more than noise.
    for name, gain in improvements.items():
        assert gain > -0.05, name
    # The data-intensive traces gain the most (Fig. 8b), by a wide margin.
    assert improvements["Booting"] > 0.35
    assert improvements["Installing"] > 0.35
    assert min(improvements["Booting"], improvements["Installing"]) > improvements["Movie"]
    # 8PS is very similar to HPS (the paper's observation).
    for name, per_scheme in mrt.items():
        assert abs(per_scheme["8PS"] - per_scheme["HPS"]) / per_scheme["HPS"] < 0.30, name
    # Fig. 8b traces have much higher MRTs than Fig. 8a traces on 4PS.
    assert mrt["Booting"]["4PS"] > 3 * mrt["Twitter"]["4PS"]
