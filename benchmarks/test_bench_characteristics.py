"""Benchmark: the six characteristics plus the BIOtracer overhead claim."""

from repro.experiments import characteristics, overhead

from conftest import run_once


def test_characteristics_all_hold(benchmark, quick):
    result = run_once(benchmark, lambda: characteristics.run(**quick))
    print("\n" + result.render())
    failed = [r.number for r in result.data["results"] if not r.holds]
    # On shortened traces the queue-sensitive checks may drift slightly;
    # at least five of the six must hold, and the trace-intrinsic ones
    # (1, 2, 5, 6) always must.
    for check in result.data["results"]:
        if check.number in (1, 2, 5, 6):
            assert check.holds, f"characteristic {check.number} failed"
    assert len(failed) <= 1


def test_biotracer_overhead_about_two_percent(benchmark):
    result = run_once(
        benchmark, lambda: overhead.run(apps=["Installing", "CameraVideo"],
                                        duration_s=420.0)
    )
    print("\n" + result.render())
    for app, ratio in result.data["ratios"].items():
        # Section II-C: ~6 extra I/Os per ~300 records = about 2 %.
        assert ratio < 0.03, app
