"""Fig. 5 benchmark: response time distributions (collection replay)."""

from repro.experiments import fig5

from conftest import run_once


def test_fig5_response_distributions(benchmark, quick):
    result = run_once(benchmark, lambda: fig5.run(**quick))
    print("\n" + result.render())
    histograms = result.data["histograms"]
    # Paper trends: the vast majority of requests complete within 16 ms and
    # very few exceed 128 ms.  The data-intensive outliers (Fig. 8b's four
    # traces) legitimately carry more long responses.
    heavy = {"CameraVideo", "Installing", "Booting", "Amazon"}
    for name, histogram in histograms.items():
        within_16ms = sum(
            histogram[label]
            for label in ("<=2ms", "(2,4]ms", "(4,8]ms", "(8,16]ms")
        )
        assert within_16ms > (0.45 if name in heavy else 0.75), name
        # CameraVideo's multi-MB writes run ~5x slower on the simulated
        # device than on the real eMMC (see EXPERIMENTS.md deviations), so
        # its long-response tail is fatter than the paper's.
        assert histogram[">128ms"] < (0.35 if name == "CameraVideo" else 0.05), name
    # Busy small-request apps complete mostly in the fastest buckets.
    twitter = histograms["Twitter"]
    assert twitter["<=2ms"] + twitter["(2,4]ms"] > 0.6
