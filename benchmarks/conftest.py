"""Shared settings for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures on shortened
traces (the full-size run is ``repro-experiments``), times it with
pytest-benchmark, and asserts the headline *shape* the paper reports.
"""

from __future__ import annotations

import pytest

#: Requests per trace in benchmark mode (full traces: Table III counts).
QUICK_REQUESTS = 1200
#: Seed distinct from the default release seed, exercising robustness.
BENCH_SEED = 2015


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer and return it."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def quick():
    return {"seed": BENCH_SEED, "num_requests": QUICK_REQUESTS}
