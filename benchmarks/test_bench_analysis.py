"""Columnar analysis kernels vs their scalar reference oracles.

The PR that introduced :mod:`repro.trace.columns` promises the analysis
layer at least a 3x speedup over the original request-loop kernels on
analysis-heavy workloads.  This benchmark times the full kernel battery
both ways on one large replayed-style trace -- charging the columnar side
the full ``from_requests`` build cost -- asserts the results are
*identical* (the bit-identity contract), and asserts the speedup floor.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.correlation import size_response_correlation
from repro.analysis.distributions import (
    interarrival_distribution,
    response_distribution,
    size_distribution,
)
from repro.analysis.percentiles import response_percentiles_ms
from repro.analysis.size_stats import size_stats
from repro.analysis.timing_stats import timing_stats
from repro.trace import Op, Request, SECTOR, Trace

from conftest import run_once
from tests.analysis.oracles import (
    _reference_interarrival_distribution,
    _reference_response_distribution,
    _reference_response_percentiles_ms,
    _reference_size_distribution,
    _reference_size_response_correlation,
    _reference_size_stats,
    _reference_timing_stats,
)

#: Large enough that both sides are dominated by per-request work, small
#: enough for CI (~100k requests, about half a full experiment run's total).
_REQUESTS = 100_000

#: The promised floor; in practice the battery lands far above it.
_MIN_SPEEDUP = 3.0


def _big_replayed_trace(count: int = _REQUESTS) -> Trace:
    """A deterministic replayed-style trace with realistic field spreads."""
    rng = np.random.default_rng(20150614)
    arrivals = np.cumsum(rng.exponential(4000.0, count))
    pages = rng.integers(1, 65, count)
    lbas = rng.integers(0, 1 << 18, count) * SECTOR
    is_write = rng.random(count) < 0.7
    waits = rng.exponential(120.0, count)
    services = 800.0 + rng.exponential(1500.0, count)
    requests = [
        Request(
            arrival_us=float(arrivals[i]),
            lba=int(lbas[i]),
            size=int(pages[i]) * SECTOR,
            op=Op.WRITE if is_write[i] else Op.READ,
            service_start_us=float(arrivals[i] + waits[i]),
            finish_us=float(arrivals[i] + waits[i] + services[i]),
        )
        for i in range(count)
    ]
    return Trace(name="bench-analysis", requests=requests)


def _columnar_battery(trace: Trace):
    return (
        size_stats(trace),
        timing_stats(trace),
        size_distribution(trace),
        response_distribution(trace),
        interarrival_distribution(trace),
        response_percentiles_ms(trace),
        size_response_correlation(trace),
    )


def _scalar_battery(trace: Trace):
    return (
        _reference_size_stats(trace),
        _reference_timing_stats(trace),
        _reference_size_distribution(trace),
        _reference_response_distribution(trace),
        _reference_interarrival_distribution(trace),
        _reference_response_percentiles_ms(trace),
        _reference_size_response_correlation(trace),
    )


def test_columnar_battery_speedup_over_scalar(benchmark):
    trace = _big_replayed_trace()

    def measure():
        # Charge the columnar side the full struct-of-arrays build.
        trace.invalidate_columns()
        start = time.perf_counter()
        columnar = _columnar_battery(trace)
        columnar_s = time.perf_counter() - start
        start = time.perf_counter()
        scalar = _scalar_battery(trace)
        scalar_s = time.perf_counter() - start
        return columnar, scalar, columnar_s, scalar_s

    columnar, scalar, columnar_s, scalar_s = run_once(benchmark, measure)
    assert columnar == scalar  # bit-identical, not merely close
    speedup = scalar_s / columnar_s
    print(
        f"\ncolumnar {columnar_s * 1000:.1f} ms vs scalar {scalar_s * 1000:.1f} ms "
        f"({speedup:.1f}x) on {len(trace)} requests"
    )
    assert speedup >= _MIN_SPEEDUP
