"""Replay fast path vs the event kernel: the promised >=3x floor.

PR 8's tentpole lowers qd=1 open-loop replay onto the two-pass columnar
engine and promises at least a 3x speedup on the Fig. 8-style replay
battery.  Machine noise on shared runners is large relative to the
numbers under test, so the two modes are timed **interleaved** (kernel,
fast, kernel, fast, ...) and the best of ``_ROUNDS`` repetitions per
mode is compared -- interleaved minima are stable where back-to-back
means are not.

The bit-identity side of the contract is asserted too: the fast battery
must produce float-equal MRT values, not merely close ones.
"""

from __future__ import annotations

import os
import time

from repro.experiments import fig8
from repro.replay import REPLAY_FASTPATH_ENV

from conftest import BENCH_SEED, run_once

#: Heavy Fig. 8b traces plus light Fig. 8a ones (same mix as the fig8
#: benchmark) -- each replayed on 4PS, 8PS and HPS.
_APPS = ["Booting", "Installing", "CameraVideo", "Movie", "Twitter", "Facebook"]
_REQUESTS = 2000
#: Interleaved repetitions per mode.
_ROUNDS = 3
#: The promised floor; measured locally at ~3.2-3.8x.
_MIN_SPEEDUP = 3.0


def _battery(mode: str):
    os.environ[REPLAY_FASTPATH_ENV] = mode
    try:
        started = time.perf_counter()
        result = fig8.run(seed=BENCH_SEED, num_requests=_REQUESTS, apps=_APPS)
        return result, time.perf_counter() - started
    finally:
        del os.environ[REPLAY_FASTPATH_ENV]


def test_fast_path_battery_speedup(benchmark):
    def measure():
        kernel_best = fast_best = float("inf")
        kernel_result = fast_result = None
        for _ in range(_ROUNDS):
            kernel_result, kernel_s = _battery("off")
            kernel_best = min(kernel_best, kernel_s)
            fast_result, fast_s = _battery("require")
            fast_best = min(fast_best, fast_s)
        return kernel_result, fast_result, kernel_best, fast_best

    kernel_result, fast_result, kernel_s, fast_s = run_once(benchmark, measure)

    # Bit-identity: float-equal MRTs per app per scheme, not approx.
    assert fast_result.data["mrt"] == kernel_result.data["mrt"]

    speedup = kernel_s / fast_s
    print(
        f"\nkernel {kernel_s * 1000:.0f} ms vs fast {fast_s * 1000:.0f} ms "
        f"({speedup:.2f}x, best of {_ROUNDS} interleaved) on "
        f"{len(_APPS)} apps x 3 schemes x {_REQUESTS} requests"
    )
    assert speedup >= _MIN_SPEEDUP
