"""Table IV benchmark: timing statistics of all 25 traces (collection)."""

from repro.workloads import ALL_TRACES, TABLE_IV
from repro.experiments import table4

from conftest import run_once


def test_table4_timing_stats(benchmark, quick):
    result = run_once(benchmark, lambda: table4.run(**quick))
    print("\n" + result.render())
    measured = result.data["measured"]
    assert set(measured) == set(ALL_TRACES)
    for name, stats in measured.items():
        paper = TABLE_IV[name]
        # Localities are generator-controlled: tight.
        assert abs(stats.spatial_locality_pct - paper.spatial_locality_pct) < 5.0, name
        assert abs(stats.temporal_locality_pct - paper.temporal_locality_pct) < 12.0, name
        # No-wait ratio comes from the closed-loop collection: within 15
        # points (20 for the giant-write outlier CameraVideo, whose queue
        # behaviour is very sensitive to the sampled write sizes).
        tolerance = 20.0 if name == "CameraVideo" else 15.0
        assert abs(stats.nowait_pct - paper.nowait_pct) < tolerance, name
        # Device service times land in the real device's regime (ms scale).
        assert 0.3 < stats.mean_service_ms < 40.0, name
