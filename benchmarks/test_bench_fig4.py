"""Fig. 4 benchmark: request size distributions of the 18 applications."""

from repro.experiments import fig4

from conftest import run_once


def test_fig4_size_distributions(benchmark, quick):
    result = run_once(benchmark, lambda: fig4.run(**quick))
    print("\n" + result.render())
    histograms = result.data["histograms"]
    # Characteristic 2's shape: 15 of 18 traces have a 4 KB majority class
    # in the 44.9-57.4 % band (sampling tolerance: widen slightly).
    in_band = sum(1 for h in histograms.values() if 0.40 <= h["<=4K"] <= 0.62)
    assert in_band >= 14
    # The three called-out exceptions.
    assert histograms["Movie"]["<=4K"] < 0.2
    assert histograms["Movie"]["(16K,64K]"] > 0.5  # "over 65 %" in the paper
    assert histograms["Booting"]["<=4K"] < 0.40
    assert histograms["CameraVideo"][">256K"] > 0.05  # large streaming writes
