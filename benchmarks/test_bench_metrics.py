"""The unified metric layer holds both inherited performance floors.

The metric-kernel refactor rerouted the analysis adapters, the streaming
summaries and the experiment shard workers through one registry of
:class:`~repro.metrics.base.Metric` definitions.  Two earlier PRs
promised floors that must survive the indirection:

* the columnar-kernels PR: the vectorized batch battery is >=3x the
  scalar request-loop oracles (now kept in ``tests/analysis/oracles.py``);
* the trace-store PR: persisting + summarizing through the binary store
  and the out-of-core engine is >=3x the CSV round trip + batch kernels.

Both benchmarks run the registry paths -- ``batch_values`` over
``all_metrics()`` and ``fold_chunks`` over ``summary_metrics()`` -- so a
slow registry dispatch or a pessimized adapter shows up here, and both
assert bit-identity before timing is even considered.
"""

from __future__ import annotations

import time

from repro.metrics import all_metrics, batch_values, fold_chunks, summary_metrics
from repro.store import open_store, pack
from repro.trace import Op, dumps, loads
from repro.workloads import generate_trace

from conftest import BENCH_SEED, run_once
from test_bench_analysis import _big_replayed_trace
from tests.analysis.oracles import (
    _reference_interarrival_distribution,
    _reference_measure,
    _reference_response_distribution,
    _reference_size_distribution,
    _reference_size_stats,
    _reference_spatial_locality,
    _reference_temporal_locality,
    _reference_timing_stats,
    _reference_trace_throughput_by_size,
)

#: The inherited floors; in practice both land far above.
_MIN_SPEEDUP = 3.0

#: Requests in the store-path benchmark trace (matches the store bench).
_STORE_REQUESTS = 150_000


def _oracle_battery(trace):
    """Every registered metric's value, via the scalar request loops."""
    return {
        "size_stats": _reference_size_stats(trace),
        "timing_stats": _reference_timing_stats(trace),
        "spatial_locality": _reference_spatial_locality(trace),
        "temporal_locality": _reference_temporal_locality(trace),
        "localities": _reference_measure(trace),
        "size_distribution": _reference_size_distribution(trace),
        "response_distribution": _reference_response_distribution(trace),
        "interarrival_distribution": _reference_interarrival_distribution(trace),
        "throughput_by_size_read": _reference_trace_throughput_by_size(
            [trace], Op.READ
        ),
        "throughput_by_size_write": _reference_trace_throughput_by_size(
            [trace], Op.WRITE
        ),
    }


def test_registry_batch_battery_speedup_over_oracles(benchmark):
    trace = _big_replayed_trace()
    metrics = all_metrics()

    def measure():
        # Charge the registry side the full struct-of-arrays build.
        trace.invalidate_columns()
        start = time.perf_counter()
        registry = batch_values(metrics, trace.columns(), trace.name)
        registry_s = time.perf_counter() - start
        start = time.perf_counter()
        oracle = _oracle_battery(trace)
        oracle_s = time.perf_counter() - start
        return registry, oracle, registry_s, oracle_s

    registry, oracle, registry_s, oracle_s = run_once(benchmark, measure)
    assert set(registry) == set(oracle)
    for name in oracle:
        assert registry[name] == oracle[name], name  # bit-identical
    speedup = oracle_s / registry_s
    print(
        f"\nregistry {registry_s * 1000:.1f} ms vs oracles {oracle_s * 1000:.1f} ms "
        f"({speedup:.1f}x) on {len(trace)} requests"
    )
    assert speedup >= _MIN_SPEEDUP


def _csv_pipeline(trace, path):
    """Persist to CSV, read it back, run the registry batch battery."""
    path.write_text(dumps(trace), newline="")
    restored = loads(path.read_text())
    return batch_values(summary_metrics(), restored.columns(), restored.name)


def _store_pipeline(trace, path):
    """Pack to a chunked store, fold the registry's out-of-core engine."""
    pack(trace, path)
    store = open_store(path)
    return fold_chunks(
        summary_metrics(), store.iter_chunks(), store.name, collapse=True
    )


def test_registry_fold_store_speedup_over_csv(benchmark, tmp_path):
    trace = generate_trace("Email", seed=BENCH_SEED, num_requests=_STORE_REQUESTS)
    trace.columns()  # both sides start from a materialized columnar view

    def measure():
        start = time.perf_counter()
        via_csv = _csv_pipeline(trace, tmp_path / "trace.csv")
        csv_s = time.perf_counter() - start
        start = time.perf_counter()
        via_store = _store_pipeline(trace, tmp_path / "trace.store")
        store_s = time.perf_counter() - start
        return via_csv, via_store, csv_s, store_s

    via_csv, via_store, csv_s, store_s = run_once(benchmark, measure)
    assert via_store == via_csv  # bit-identical, not merely close
    speedup = csv_s / store_s
    print(
        f"\nstore+fold {store_s * 1000:.1f} ms vs csv+batch {csv_s * 1000:.1f} ms "
        f"({speedup:.1f}x) on {len(trace)} requests"
    )
    assert speedup >= _MIN_SPEEDUP
