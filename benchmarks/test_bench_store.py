"""Binary store + streaming stats vs the CSV write/read/batch pipeline.

The trace-store PR promises that persisting a trace and computing its
full summary is at least 3x faster through ``repro.store`` +
``repro.streaming`` (binary columnar chunks, one memmap-backed pass)
than through the CSV round trip (vectorized ``dumps``/``loads``) plus
the in-memory batch kernels.  Both sides produce the complete Table
III/IV + Figs. 4-6 statistic bundle; the results must be *identical*
(the bit-identity contract), and the speedup floor is asserted.
"""

from __future__ import annotations

import time

from repro.analysis import (
    interarrival_distribution,
    response_distribution,
    size_distribution,
    size_stats,
    timing_stats,
)
from repro.store import open_store, pack
from repro.streaming import summarize_store
from repro.trace import dumps, loads
from repro.workloads import generate_trace

from conftest import BENCH_SEED, run_once

#: Requests in the benchmark trace -- large enough that per-row costs
#: dominate, small enough for CI (a ~6 MiB store).
_REQUESTS = 150_000

#: The promised floor; in practice the store path lands far above it.
_MIN_SPEEDUP = 3.0


def _csv_pipeline(trace, path):
    """Persist to CSV, read it back, run the batch statistic battery."""
    path.write_text(dumps(trace), newline="")
    restored = loads(path.read_text())
    return (
        size_stats(restored),
        timing_stats(restored),
        size_distribution(restored),
        response_distribution(restored),
        interarrival_distribution(restored),
    )


def _store_pipeline(trace, path):
    """Pack to a chunked store, summarize it in one streaming pass."""
    pack(trace, path)
    summary = summarize_store(open_store(path))
    return (
        summary.size,
        summary.timing,
        summary.size_distribution,
        summary.response_distribution,
        summary.interarrival_distribution,
    )


def test_store_pipeline_speedup_over_csv(benchmark, tmp_path):
    trace = generate_trace("Email", seed=BENCH_SEED, num_requests=_REQUESTS)
    trace.columns()  # both sides start from a materialized columnar view

    def measure():
        start = time.perf_counter()
        via_csv = _csv_pipeline(trace, tmp_path / "trace.csv")
        csv_s = time.perf_counter() - start
        start = time.perf_counter()
        via_store = _store_pipeline(trace, tmp_path / "trace.store")
        store_s = time.perf_counter() - start
        return via_csv, via_store, csv_s, store_s

    via_csv, via_store, csv_s, store_s = run_once(benchmark, measure)
    assert via_store == via_csv  # bit-identical, not merely close
    speedup = csv_s / store_s
    print(
        f"\nstore {store_s * 1000:.1f} ms vs csv {csv_s * 1000:.1f} ms "
        f"({speedup:.1f}x) on {len(trace)} requests"
    )
    assert speedup >= _MIN_SPEEDUP
