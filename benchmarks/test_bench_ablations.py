"""Ablation benchmarks for the design choices DESIGN.md calls out.

* Implication 1 -- more channels barely help smartphone workloads.
* Implication 2 -- idle-time GC removes foreground GC stalls.
* Implication 3 -- a RAM buffer sees a low hit rate under weak locality.
* Implication 4 -- simple dynamic wear-leveling keeps wear even.
* HPS 4K:8K block-ratio sweep -- utilization stays perfect across ratios.
"""

import dataclasses

from repro.trace import KIB, MIB, Op, Request
from repro.emmc import EmmcDevice, Geometry, PageKind, collect_wear, four_ps, hps
from repro.workloads import generate_trace

from conftest import BENCH_SEED, run_once


def _replay_mrt(config, trace):
    return EmmcDevice(config).replay(trace.without_timing()).stats.mean_response_ms


def test_ablation_channel_count_implication_1(benchmark):
    """Doubling channels gives only marginal MRT gains on a typical trace."""
    trace = generate_trace("Twitter", seed=BENCH_SEED, num_requests=2000)

    def sweep():
        results = {}
        for channels in (1, 2, 4):
            geometry = dataclasses.replace(four_ps().geometry, channels=channels)
            config = four_ps(geometry=geometry)
            results[channels] = _replay_mrt(config, trace)
        return results

    mrt = run_once(benchmark, sweep)
    print(f"\nImplication 1 -- MRT by channel count: {mrt}")
    # Going from 2 to 4 channels helps far less than 2x (the workload is
    # no-wait-dominated, as the paper argues).
    assert mrt[2] < mrt[1]
    assert mrt[4] > mrt[2] * 0.7


def test_ablation_idle_gc_implication_2(benchmark):
    """Idle-time GC removes foreground collections on a GC-heavy workload."""
    geometry = Geometry(
        channels=2, dies_per_chip=1, planes_per_die=1,
        blocks_per_plane={PageKind.K4: 8}, pages_per_block=16,
    )

    def hammer(idle_gc):
        config = four_ps(
            geometry=geometry, gc_threshold_blocks=2,
            idle_gc=idle_gc, idle_gc_soft_threshold=6,
        )
        device = EmmcDevice(config)
        at = 0.0
        for i in range(1500):
            done = device.submit(
                Request(at, (i % 48) * 4 * KIB, 4 * KIB, Op.WRITE)
            )
            at = done.finish_us + 250_000.0  # Characteristic 6's long gaps
        return device.stats

    def run_both():
        return hammer(idle_gc=False), hammer(idle_gc=True)

    baseline, with_idle = run_once(benchmark, run_both)
    print(
        f"\nImplication 2 -- foreground GC: {baseline.gc_collections} "
        f"(threshold-only) vs {with_idle.gc_collections} (+{with_idle.idle_gc_collections} idle)"
    )
    assert with_idle.gc_collections < baseline.gc_collections
    assert with_idle.idle_gc_collections > 0
    assert with_idle.mean_response_ms <= baseline.mean_response_ms * 1.02


def test_ablation_ram_buffer_implication_3(benchmark):
    """A sizable RAM buffer yields a low read hit rate under weak locality."""
    trace = generate_trace("Facebook", seed=BENCH_SEED, num_requests=2500)

    def run():
        config = four_ps(ram_buffer_bytes=8 * MIB)
        device = EmmcDevice(config)
        device.replay(trace.without_timing())
        return device

    device = run_once(benchmark, run)
    hits = device.buffer.stats.read_hits
    misses = device.buffer.stats.read_misses
    hit_rate = hits / (hits + misses) if hits + misses else 0.0
    print(f"\nImplication 3 -- RAM buffer read hit rate: {hit_rate:.1%}")
    # The paper argues the buffer is of little use: hit rate well below 50 %.
    assert hit_rate < 0.5


def test_ablation_wear_leveling_implication_4(benchmark):
    """Dynamic (lowest-erase-count) allocation keeps wear even."""
    geometry = Geometry(
        channels=2, dies_per_chip=1, planes_per_die=1,
        blocks_per_plane={PageKind.K4: 8}, pages_per_block=16,
    )

    def hammer():
        device = EmmcDevice(four_ps(geometry=geometry, gc_threshold_blocks=2))
        at = 0.0
        for i in range(4000):
            done = device.submit(Request(at, (i % 40) * 4 * KIB, 4 * KIB, Op.WRITE))
            at = done.finish_us
        return collect_wear(device.ftl.planes)

    wear = run_once(benchmark, hammer)
    print(
        f"\nImplication 4 -- erases total={wear.total_erases} "
        f"max={wear.max_erase} min={wear.min_erase} evenness={wear.evenness:.2f}"
    )
    assert wear.total_erases > 0
    # Dynamic wear-leveling bounds the hottest block near the mean; blocks
    # pinned by cold valid data may stay unworn (no static WL -- the
    # "simple strategy" the paper deems sufficient).
    assert wear.max_erase <= 2.5 * wear.mean_erase


def test_ablation_queue_depth_implication_1(benchmark):
    """Parallel request queues (depth > 1) barely help: arrivals rarely
    overlap (Characteristic 3), so deeper queues mostly sit empty."""
    trace = generate_trace("Facebook", seed=BENCH_SEED, num_requests=2000)

    def sweep():
        return {
            depth: _replay_mrt(four_ps(queue_depth=depth), trace)
            for depth in (1, 2, 8)
        }

    mrt = run_once(benchmark, sweep)
    print(f"\nImplication 1 -- MRT by queue depth: {mrt}")
    # Deeper queues may help a little (bursts overlap) but nowhere near
    # proportionally; an 8-deep queue buys < 2x.
    assert mrt[8] > mrt[1] * 0.5
    assert mrt[2] <= mrt[1] * 1.01


def test_ablation_multi_plane_commands(benchmark):
    """Multi-plane advanced commands shrink large-request service times --
    the parallelism a cost-constrained eMMC leaves on the table."""
    trace = generate_trace("Booting", seed=BENCH_SEED, num_requests=2000)

    def sweep():
        return {
            "die-serial": _replay_mrt(four_ps(), trace),
            "multi-plane": _replay_mrt(four_ps(multi_plane=True), trace),
        }

    mrt = run_once(benchmark, sweep)
    print(f"\nMulti-plane ablation -- MRT: {mrt}")
    assert mrt["multi-plane"] < mrt["die-serial"]


def test_ablation_gc_victim_policy(benchmark):
    """Greedy victim selection migrates no more than random selection."""
    geometry = Geometry(
        channels=2, dies_per_chip=1, planes_per_die=1,
        blocks_per_plane={PageKind.K4: 8}, pages_per_block=16,
    )

    def hammer(policy):
        device = EmmcDevice(
            four_ps(geometry=geometry, gc_threshold_blocks=2, gc_policy=policy)
        )
        at = 0.0
        for i in range(2400):
            lpn = (i % 8) if i % 2 else (i // 2 % 56)
            done = device.submit(Request(at, lpn * 4 * KIB, 4 * KIB, Op.WRITE))
            at = done.finish_us
        return device.stats.gc_migrated_slots

    def sweep():
        return {policy: hammer(policy) for policy in ("greedy", "fifo", "random")}

    migrated = run_once(benchmark, sweep)
    print(f"\nGC victim policy -- migrated slots: {migrated}")
    assert migrated["greedy"] <= migrated["random"]
    assert migrated["greedy"] <= migrated["fifo"]


def test_ablation_static_wear_leveling(benchmark):
    """Static WL bounds the wear spread under a hot/cold split -- the heavy
    machinery Implication 4 argues smartphone workloads don't need."""
    geometry = Geometry(
        channels=2, dies_per_chip=1, planes_per_die=1,
        blocks_per_plane={PageKind.K4: 10}, pages_per_block=8,
    )

    def hammer(static_wl):
        device = EmmcDevice(
            four_ps(geometry=geometry, gc_threshold_blocks=2,
                    static_wl_threshold=static_wl)
        )
        at = 0.0
        for lpn in range(40):  # cold data, written once
            done = device.submit(Request(at, lpn * 4 * KIB, 4 * KIB, Op.WRITE))
            at = done.finish_us
        for i in range(2400):  # hot set, rewritten forever
            done = device.submit(
                Request(at, (40 + i % 8) * 4 * KIB, 4 * KIB, Op.WRITE)
            )
            at = done.finish_us
        return collect_wear(device.ftl.planes)

    def run_both():
        return hammer(None), hammer(6)

    baseline, leveled = run_once(benchmark, run_both)
    print(
        f"\nImplication 4 (static WL): spread {baseline.spread} (dynamic only) "
        f"vs {leveled.spread} (with static relocation)"
    )
    assert leveled.spread < baseline.spread


def test_ablation_hps_block_ratio(benchmark):
    """HPS keeps perfect utilization across 4K:8K pool splits."""
    trace = generate_trace("Messaging", seed=BENCH_SEED, num_requests=1500)

    def sweep():
        results = {}
        for k4, k8 in ((768, 128), (512, 256), (256, 384)):
            geometry = dataclasses.replace(
                hps().geometry, blocks_per_plane={PageKind.K4: k4, PageKind.K8: k8}
            )
            device = EmmcDevice(hps(geometry=geometry))
            device.replay(trace.without_timing())
            results[(k4, k8)] = (
                device.stats.space_utilization,
                device.stats.mean_response_ms,
            )
        return results

    results = run_once(benchmark, sweep)
    print(f"\nHPS ratio sweep (utilization, MRT ms): {results}")
    for (k4, k8), (utilization, mrt) in results.items():
        assert utilization == 1.0, (k4, k8)
        assert mrt > 0
