"""Digest every experiment's output for bit-identity parity checks.

Runs the full registry serially (no cache) and emits, per experiment,
SHA-256 digests of

* the rendered report text (what ``repro-experiments`` prints),
* the canonical JSON of the structured ``data`` payload, and
* the quick-mode (``num_requests=1500``) JSON payload,

i.e. 3 digests x 19 experiments = 57 digests.  Run it before and after a
perf change under ``PYTHONHASHSEED=0`` and diff the JSON outputs::

    PYTHONHASHSEED=0 PYTHONPATH=src python tools/experiment_digests.py --out before.json
    ... change ...
    PYTHONHASHSEED=0 PYTHONPATH=src python tools/experiment_digests.py --out after.json
    python tools/experiment_digests.py --compare before.json after.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def compute_digests(quick_only: bool = False) -> dict:
    from repro.experiments import parallel
    from repro.experiments.cache import NullCache
    from repro.experiments.runner import _jsonable

    digests = {}
    modes = [("quick", 1500)] if quick_only else [("full", None), ("quick", 1500)]
    for mode, num_requests in modes:
        summary = parallel.execute(
            ids=None, num_requests=num_requests, jobs=1, cache=NullCache()
        )
        for result in summary.results:
            entry = digests.setdefault(result.experiment_id, {})
            if mode == "full":
                entry["render"] = _sha256(result.render())
            entry[f"{mode}_data"] = _sha256(
                json.dumps(_jsonable(result.data), sort_keys=True)
            )
        print(f"[{mode}: {len(summary.results)} experiments digested]", file=sys.stderr)
    return digests


def compare(before_path: str, after_path: str) -> int:
    with open(before_path) as handle:
        before = json.load(handle)
    with open(after_path) as handle:
        after = json.load(handle)
    mismatches = []
    for experiment_id in sorted(set(before) | set(after)):
        a, b = before.get(experiment_id, {}), after.get(experiment_id, {})
        for key in sorted(set(a) | set(b)):
            if a.get(key) != b.get(key):
                mismatches.append(f"{experiment_id}.{key}: {a.get(key)} != {b.get(key)}")
    total = sum(len(v) for v in after.values())
    if mismatches:
        print(f"MISMATCH ({len(mismatches)} of {total} digests):")
        for line in mismatches:
            print(f"  {line}")
        return 1
    print(f"OK: all {total} digests bit-identical")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", help="write digests to this JSON file")
    parser.add_argument("--quick-only", action="store_true")
    parser.add_argument(
        "--compare", nargs=2, metavar=("BEFORE", "AFTER"), help="diff two digest files"
    )
    args = parser.parse_args(argv)
    if args.compare:
        return compare(*args.compare)
    started = time.time()
    digests = compute_digests(quick_only=args.quick_only)
    payload = json.dumps(digests, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(payload + "\n")
    else:
        print(payload)
    print(f"[digested in {time.time() - started:.1f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
