"""Exhaustive full-state parity sweep: replay fast path vs event kernel.

Replays six representative traces on the four full-size and three small
device configs twice -- ``REPRO_REPLAY_FASTPATH=off`` then ``require``
-- and diffs **everything**: every ``DeviceStats`` field (float lists
element-wise), admission queue, power model, controller / channel / unit
timelines, FTL mapping, every block's slots and wear counters, free and
active pools, allocator cursor, GC totals, kernel clock, and the
returned per-request timestamps. Any mismatch prints the first
diverging index and the two values::

    PYTHONHASHSEED=0 python tools/replay_parity.py

Exit code is non-zero on any divergence. The small configs push the
write-heavy traces into thousands of GC cycles, exercising the
planner's per-request fallback; combos that exhaust flash entirely are
skipped when *both* engines agree on the error (and flagged when they
do not). Coarser versions of these checks run per-commit in
``tests/replay``; this sweep is the heavyweight oracle for fast-path
development.
"""
import os
import sys
import time

sys.path.insert(0, "src")

import numpy as np

from repro.emmc import EmmcDevice
from repro.emmc.configs import (
    eight_ps,
    four_ps,
    hps,
    hps_slc,
    small_eight_ps,
    small_four_ps,
    small_hps,
)
from repro.sim import Host
from repro.workloads import generate_trace


def snapshot(device):
    snap = {}
    s = device.stats
    for name in vars(s):
        snap[f"stats.{name}"] = getattr(s, name)
    q = device.queue
    snap["queue.busy"] = q._busy_until_us
    snap["queue.dispatches"] = q.dispatches
    snap["queue.slot_waits"] = q.slot_waits
    snap["queue.max_in_flight"] = q.max_in_flight
    p = device.power
    snap["power.last"] = p._last_activity_end_us
    snap["power.low"] = p._low_power
    snap["power.wakeups"] = p.wakeups
    snap["power.switches"] = p.mode_switches
    snap["power.entries"] = p.low_power_entries
    snap["ctrl"] = (device.controller.next_free_us, device.controller.busy_us, device.controller.reservations)
    snap["chans"] = [(t.next_free_us, t.busy_us, t.reservations) for t in device.channels]
    snap["units"] = [(t.next_free_us, t.busy_us, t.reservations) for t in device.units]
    snap["clock"] = device.kernel.now_us
    snap["len_kernel"] = len(device.kernel)
    # FTL state
    ftl = device.ftl
    snap["cursor"] = ftl.allocator.cursor
    snap["mapping"] = dict(ftl.mapping.items())
    blocks = []
    for plane in ftl.planes:
        for kind, pool in plane.blocks.items():
            for b in pool:
                blocks.append((plane.plane_id, str(kind), b.block_id, b.erase_count, b.write_ptr, b.valid_count, tuple(b.slots)))
        blocks.append(("free", plane.plane_id, tuple((str(k), tuple(v)) for k, v in plane.free_blocks.items())))
        blocks.append(("active", plane.plane_id, tuple((str(k), v) for k, v in plane.active_block.items())))
    snap["blocks"] = blocks
    snap["gc_total"] = ftl.gc_results_total
    snap["gc_migr"] = ftl.gc_migrated_slots
    return snap


def compare(a, b, label):
    bad = 0
    for key in a:
        if key in ("blocks", "mapping"):
            if a[key] != b[key]:
                print(f"  DIFF {label} {key}")
                bad += 1
            continue
        va, vb = a[key], b[key]
        if isinstance(va, list) and va and isinstance(va[0], float):
            if va != vb:
                idx = next(i for i, (x, y) in enumerate(zip(va, vb)) if x != y)
                print(f"  DIFF {label} {key} at {idx}: {va[idx]!r} vs {vb[idx]!r}")
                bad += 1
        elif va != vb:
            print(f"  DIFF {label} {key}: {va!r} vs {vb!r}")
            bad += 1
    return bad


def run(config, trace, mode):
    from repro.emmc.ftl.blocks import OutOfSpaceError

    os.environ["REPRO_REPLAY_FASTPATH"] = mode
    device = EmmcDevice(config)
    t0 = time.perf_counter()
    try:
        result = Host(device).replay(trace.without_timing())
    except OutOfSpaceError:
        return None, None, time.perf_counter() - t0
    dt = time.perf_counter() - t0
    return device, result, dt


def main():
    full = [four_ps(), eight_ps(), hps(), hps_slc()]
    small = [small_four_ps(), small_eight_ps(), small_hps()]
    apps = ["Twitter", "CameraVideo", "Booting", "Email", "Idle", "WebBrowsing"]
    total_bad = 0
    for app in apps:
        big_trace = generate_trace(app, seed=7, num_requests=4000)
        small_trace = generate_trace(app, seed=7, num_requests=1200)
        for config in full + small:
            trace = big_trace if config in full else small_trace
            label = f"{app}/{config.name}"
            dk, rk, tk = run(config, trace, "off")
            if dk is None:
                print(f"SKIP {label}: out of space on kernel path")
                continue
            df, rf, tf = run(config, trace, "require")
            if df is None:
                print(f"BAD {label}: fast path ran out of space, kernel did not")
                total_bad += 1
                continue
            bad = compare(snapshot(dk), snapshot(df), label)
            # timestamps
            ck = rk.trace.columns()
            cf = rf.trace.columns()
            for col in ("service_start_us", "complete_us", "arrival_us"):
                if not np.array_equal(getattr(ck, col), getattr(cf, col)):
                    a, b = getattr(ck, col), getattr(cf, col)
                    idx = int(np.nonzero(a != b)[0][0])
                    print(f"  DIFF {label} trace.{col} at {idx}: {a[idx]!r} vs {b[idx]!r}")
                    bad += 1
            if rk.trace.requests != rf.trace.requests:
                print(f"  DIFF {label} request objects")
                bad += 1
            total_bad += bad
            status = "OK " if not bad else "BAD"
            gc = dk.stats.gc_collections
            print(
                f"{status} {label}: kernel {tk*1e3:7.1f} ms, fast {tf*1e3:7.1f} ms"
                f" ({tk/max(tf,1e-9):5.1f}x)  gc={gc}"
            )
    print("TOTAL DIFFS:", total_bad)
    return 1 if total_bad else 0


if __name__ == "__main__":
    sys.exit(main())
