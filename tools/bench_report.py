"""Machine-readable performance report for replay, telemetry and fleet.

Measures five headline numbers and writes them to ``BENCH_PR10.json``
(CI uploads the file as a build artifact)::

    PYTHONHASHSEED=0 PYTHONPATH=src python tools/bench_report.py --out BENCH_PR10.json

* **replay** -- single-trace qd=1 replay throughput (requests/s) on the
  event kernel vs the two-pass fast path;
* **battery** -- the Fig. 8 benchmark battery (six traces x three
  schemes) wall milliseconds, kernel vs fast;
* **telemetry** -- kernel replay battery with no sink vs a recording
  :class:`~repro.telemetry.Telemetry` sink (the enabled-overhead factor
  guarded by ``benchmarks/test_bench_telemetry.py``);
* **fleet** -- population throughput (devices/s) of
  :func:`repro.fleet.run_fleet` serial vs two workers, with the
  manifest digest proving both runs produced the same bytes;
* **sweep** -- wall seconds of a quick experiment sweep with the
  dispatcher in its default (``auto``) mode.

Timing methodology: machine noise on shared runners dwarfs the
millisecond differences under test, so kernel/fast pairs are measured
**interleaved** (kernel, fast, kernel, fast, ...) and the best of
``--rounds`` repetitions per mode is reported.  Speedups computed from
interleaved minima are stable where back-to-back means are not.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from contextlib import contextmanager


@contextmanager
def _fastpath(mode):
    """Temporarily pin REPRO_REPLAY_FASTPATH to ``mode``."""
    from repro.replay import REPLAY_FASTPATH_ENV

    previous = os.environ.get(REPLAY_FASTPATH_ENV)
    os.environ[REPLAY_FASTPATH_ENV] = mode
    try:
        yield
    finally:
        if previous is None:
            del os.environ[REPLAY_FASTPATH_ENV]
        else:
            os.environ[REPLAY_FASTPATH_ENV] = previous


def _interleaved(kernel_fn, fast_fn, rounds):
    """Best wall seconds per mode over ``rounds`` interleaved repetitions."""
    kernel_best = fast_best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        with _fastpath("off"):
            kernel_fn()
        kernel_best = min(kernel_best, time.perf_counter() - started)
        started = time.perf_counter()
        with _fastpath("require"):
            fast_fn()
        fast_best = min(fast_best, time.perf_counter() - started)
    return kernel_best, fast_best


def bench_replay(app, requests, seed, rounds):
    """Single-trace replay: requests/s on kernel vs fast path."""
    from repro.emmc import EmmcDevice, four_ps
    from repro.sim import Host
    from repro.workloads import generate_trace

    config = four_ps()
    trace = generate_trace(app, seed=seed, num_requests=requests).without_timing()
    trace.columns()  # pre-built so both modes replay from the same arrays

    def replay():
        Host(EmmcDevice(config)).replay(trace)

    kernel_s, fast_s = _interleaved(replay, replay, rounds)
    return {
        "app": app,
        "scheme": "4PS",
        "requests": requests,
        "kernel_s": round(kernel_s, 4),
        "fast_s": round(fast_s, 4),
        "kernel_req_per_s": round(requests / kernel_s, 1),
        "fast_req_per_s": round(requests / fast_s, 1),
        "speedup": round(kernel_s / fast_s, 2),
    }


def bench_battery(requests, seed, rounds):
    """The Fig. 8 benchmark battery: wall ms, kernel vs fast path."""
    from repro.experiments import fig8

    apps = ["Booting", "Installing", "CameraVideo", "Movie", "Twitter", "Facebook"]

    def battery():
        fig8.run(seed=seed, num_requests=requests, apps=apps)

    kernel_s, fast_s = _interleaved(battery, battery, rounds)
    return {
        "apps": apps,
        "requests": requests,
        "kernel_ms": round(kernel_s * 1e3, 1),
        "fast_ms": round(fast_s * 1e3, 1),
        "speedup": round(kernel_s / fast_s, 2),
    }


def bench_telemetry(apps, requests, seed, rounds):
    """Kernel replay battery: no sink vs a recording telemetry sink."""
    from repro.emmc import EmmcDevice, four_ps
    from repro.sim import Host
    from repro.telemetry import Telemetry
    from repro.workloads import generate_trace

    config = four_ps()
    traces = [
        generate_trace(app, seed=seed, num_requests=requests).without_timing()
        for app in apps
    ]

    def battery(with_sink):
        spans = 0
        for trace in traces:
            sink = Telemetry() if with_sink else None
            Host(EmmcDevice(config, telemetry=sink)).replay(trace)
            if sink is not None:
                spans += len(sink.spans)
        return spans

    # Both modes pin the kernel: the sink forces it anyway, and timing
    # kernel-to-kernel isolates the recording cost itself.
    disabled_best = enabled_best = float("inf")
    spans = 0
    with _fastpath("off"):
        for _ in range(rounds):
            started = time.perf_counter()
            battery(with_sink=False)
            disabled_best = min(disabled_best, time.perf_counter() - started)
            started = time.perf_counter()
            spans = battery(with_sink=True)
            enabled_best = min(enabled_best, time.perf_counter() - started)
    return {
        "apps": list(apps),
        "requests": requests,
        "disabled_ms": round(disabled_best * 1e3, 1),
        "enabled_ms": round(enabled_best * 1e3, 1),
        "slowdown": round(enabled_best / disabled_best, 2),
        "spans_per_run": spans,
    }


def bench_fleet(devices, requests, seed, rounds):
    """Fleet executor: devices/s serial vs two workers, same bytes."""
    import hashlib
    import tempfile
    from pathlib import Path

    from repro.fleet import FleetScenario, run_fleet

    scenario = FleetScenario(
        devices=devices,
        name="bench",
        seed=seed,
        requests_per_device=requests,
        apps={"Twitter": 2.0, "Music": 1.0, "Messaging": 1.0},
        configs={"small-4PS": 1.0, "small-HPS": 1.0},
        rate_factor_range=(0.5, 2.0),
    )

    def digest(path):
        return hashlib.sha256((path / "fleet.json").read_bytes()).hexdigest()

    serial_best = parallel_best = float("inf")
    with tempfile.TemporaryDirectory() as tmp:
        serial_out = Path(tmp) / "serial"
        parallel_out = Path(tmp) / "parallel"
        for _ in range(rounds):
            started = time.perf_counter()
            run_fleet(scenario, serial_out, jobs=1, overwrite=True)
            serial_best = min(serial_best, time.perf_counter() - started)
            started = time.perf_counter()
            run_fleet(scenario, parallel_out, jobs=2, overwrite=True)
            parallel_best = min(parallel_best, time.perf_counter() - started)
        identical = digest(serial_out) == digest(parallel_out)
        manifest_sha = digest(serial_out)
    return {
        "devices": devices,
        "requests_per_device": requests,
        "serial_s": round(serial_best, 4),
        "two_worker_s": round(parallel_best, 4),
        "serial_devices_per_s": round(devices / serial_best, 1),
        "two_worker_devices_per_s": round(devices / parallel_best, 1),
        "wall_speedup": round(serial_best / parallel_best, 2),
        "bytes_identical": identical,
        "manifest_sha256": manifest_sha,
    }


def bench_sweep(ids, num_requests, seed):
    """Wall seconds of a quick sweep with the dispatcher on auto."""
    from repro.experiments import parallel
    from repro.experiments.cache import NullCache

    started = time.perf_counter()
    summary = parallel.execute(
        ids=list(ids), seed=seed, num_requests=num_requests, jobs=1, cache=NullCache()
    )
    wall_s = time.perf_counter() - started
    return {
        "ids": list(ids),
        "num_requests": num_requests,
        "wall_s": round(wall_s, 2),
        "compute_s": round(summary.compute_s, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_PR10.json")
    parser.add_argument("--rounds", type=int, default=3,
                        help="interleaved repetitions per mode (default 3)")
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument("--replay-requests", type=int, default=4000)
    parser.add_argument("--battery-requests", type=int, default=2500)
    parser.add_argument("--telemetry-apps", nargs="*",
                        default=["Booting", "CameraVideo", "Twitter"])
    parser.add_argument("--telemetry-requests", type=int, default=1200)
    parser.add_argument("--fleet-devices", type=int, default=120)
    parser.add_argument("--fleet-requests", type=int, default=200)
    parser.add_argument("--sweep-ids", nargs="*", default=["fig8", "fig9"],
                        help="experiments timed in the sweep section")
    parser.add_argument("--sweep-requests", type=int, default=1500)
    parser.add_argument("--skip-sweep", action="store_true")
    args = parser.parse_args(argv)

    report = {
        "replay": bench_replay("Booting", args.replay_requests, args.seed, args.rounds),
        "battery": bench_battery(args.battery_requests, args.seed, args.rounds),
        "telemetry": bench_telemetry(
            args.telemetry_apps, args.telemetry_requests, args.seed, args.rounds
        ),
        "fleet": bench_fleet(
            args.fleet_devices, args.fleet_requests, args.seed, args.rounds
        ),
    }
    if not args.skip_sweep:
        report["sweep"] = bench_sweep(args.sweep_ids, args.sweep_requests, args.seed)
    report["meta"] = {
        "rounds": args.rounds,
        "seed": args.seed,
        "python": sys.version.split()[0],
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
