"""Sweep every registered metric over the 25 traces with both engines.

For each paper workload, every metric in the registry is evaluated with
the batch engine (vectorized whole-array kernel) and the streaming
engine (chunked fold with O(1) float state).  The two values must be
**equal** -- ``==`` on floats, the metric layer's exactness contract --
and the batch values are digested to a canonical JSON fingerprint, so
CI can additionally assert the digest is invariant across
``PYTHONHASHSEED`` values and across runs::

    PYTHONHASHSEED=0 PYTHONPATH=src python tools/metrics_parity.py --out seed0.json
    PYTHONHASHSEED=1 PYTHONPATH=src python tools/metrics_parity.py --out seed1.json
    cmp seed0.json seed1.json

Exit code is non-zero on any engine divergence.
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import sys
import time

#: Rows per chunk for the streaming sweep: small enough that every trace
#: crosses many chunk boundaries (the hard part of the contract).
CHUNK_ROWS = 257


def _jsonable(value):
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {k: _jsonable(v) for k, v in dataclasses.asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def sweep(num_requests: int = 700, seed: int = 7) -> dict:
    """Per-trace digests of the batch values; asserts engine parity."""
    from repro.metrics import all_metrics, batch_values, chunked, fold_chunks
    from repro.workloads import ALL_TRACES, generate_trace

    metrics = all_metrics()
    digests = {}
    divergences = 0
    for app in ALL_TRACES:
        trace = generate_trace(app, seed=seed, num_requests=num_requests)
        columns = trace.columns()
        batch = batch_values(metrics, columns, trace.name)
        streamed = fold_chunks(
            metrics, chunked(columns, CHUNK_ROWS), trace.name, collapse=True
        )
        for metric in metrics:
            if batch[metric.name] != streamed[metric.name]:
                divergences += 1
                print(
                    f"DIVERGENCE: {app} / {metric.name}: "
                    f"batch={batch[metric.name]!r} streaming={streamed[metric.name]!r}",
                    file=sys.stderr,
                )
        payload = json.dumps(
            {name: _jsonable(value) for name, value in batch.items()},
            sort_keys=True,
        )
        digests[app] = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    if divergences:
        raise SystemExit(f"{divergences} engine divergence(s) -- see stderr")
    return digests


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", help="write per-trace digests to this JSON file")
    parser.add_argument("--requests", type=int, default=700,
                        help="requests per generated trace (default 700)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    started = time.time()
    digests = sweep(num_requests=args.requests, seed=args.seed)
    payload = json.dumps(digests, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(payload + "\n")
    else:
        print(payload)
    print(
        f"[{len(digests)} traces x both engines: parity OK "
        f"in {time.time() - started:.1f}s]",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
