"""Property-based hardening of the streaming-vs-batch bit-identity contract.

``test_streaming_equality`` checks hand-picked chunkings and shard
splits; here hypothesis draws *arbitrary* ones.  The invariants under
test (all with ``==`` on floats, never approx):

* any partition of the stream into chunks folds to the exact batch bits;
* any contiguous shard split merges to the exact batch bits;
* merge is associative: a pairwise merge tree over the shards produces
  the same bits as the sequential left fold.
"""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    interarrival_distribution,
    response_distribution,
    size_distribution,
    size_stats,
    timing_stats,
)
from repro.streaming import StreamingTraceSummary
from repro.workloads.collection import collect

#: One completed (replayed) trace shared by every example: collection is
#: the expensive part, and the properties quantify over chunkings/splits
#: of the stream, not over workloads (test_streaming_equality covers all
#: 25 of those).
_TRACE = collect("Email", seed=5, num_requests=150).trace
_COLUMNS = _TRACE.columns()
_N = len(_COLUMNS)
_BATCH = {
    "size": size_stats(_TRACE),
    "timing": timing_stats(_TRACE),
    "size_distribution": size_distribution(_TRACE),
    "response_distribution": response_distribution(_TRACE),
    "interarrival_distribution": interarrival_distribution(_TRACE),
}


def _assert_batch_bits(summary) -> None:
    assert summary.size == _BATCH["size"]
    assert summary.timing == _BATCH["timing"]
    assert summary.size_distribution == _BATCH["size_distribution"]
    assert summary.response_distribution == _BATCH["response_distribution"]
    assert summary.interarrival_distribution == _BATCH["interarrival_distribution"]


#: Interior cut points 0 < c < N, drawn without replacement; together
#: with the {0, N} endpoints they define an arbitrary contiguous
#: partition of the stream.
cuts_strategy = st.lists(
    st.integers(min_value=1, max_value=_N - 1),
    unique=True,
    min_size=0,
    max_size=12,
).map(sorted)


def _bounds(cuts):
    return [0, *cuts, _N]


@given(cuts=cuts_strategy)
@settings(max_examples=40, deadline=None)
def test_any_chunking_matches_batch_bits(cuts):
    """Folding the stream in arbitrary-size chunks is chunking-invariant."""
    streaming = StreamingTraceSummary(collapse=True)
    bounds = _bounds(cuts)
    for a, b in zip(bounds, bounds[1:]):
        streaming.update(_COLUMNS.select(slice(a, b)))
    _assert_batch_bits(streaming.finalize(_TRACE.name))


def _shards(cuts):
    shards = []
    bounds = _bounds(cuts)
    for a, b in zip(bounds, bounds[1:]):
        shard = StreamingTraceSummary()
        shard.update(_COLUMNS.select(slice(a, b)))
        shards.append(shard)
    return shards


@given(cuts=cuts_strategy)
@settings(max_examples=40, deadline=None)
def test_any_shard_split_merges_to_batch_bits(cuts):
    """Summarizing shards independently and merging loses nothing."""
    shards = _shards(cuts)
    merged = shards[0]
    for shard in shards[1:]:
        merged.merge(shard)
    _assert_batch_bits(merged.finalize(_TRACE.name))


@given(cuts=cuts_strategy)
@settings(max_examples=25, deadline=None)
def test_merge_tree_order_invariance(cuts):
    """A pairwise merge tree equals the sequential left fold, bit for bit.

    This is what licenses parallel shard-and-merge reduction: workers may
    combine adjacent partial summaries in any tree shape, as long as
    stream order is respected.
    """
    shards = _shards(cuts)

    sequential = copy.deepcopy(shards[0])
    for shard in shards[1:]:
        sequential.merge(copy.deepcopy(shard))

    level = shards
    while len(level) > 1:
        merged_level = []
        for index in range(0, len(level) - 1, 2):
            level[index].merge(level[index + 1])
            merged_level.append(level[index])
        if len(level) % 2:
            merged_level.append(level[-1])
        level = merged_level
    tree = level[0]

    a = sequential.finalize(_TRACE.name)
    b = tree.finalize(_TRACE.name)
    assert a.size == b.size
    assert a.timing == b.timing
    assert a.size_distribution == b.size_distribution
    assert a.response_distribution == b.response_distribution
    assert a.interarrival_distribution == b.interarrival_distribution
    _assert_batch_bits(b)


@given(
    cuts=cuts_strategy,
    chunk_rows=st.integers(min_value=1, max_value=2 * _N),
)
@settings(max_examples=25, deadline=None)
def test_shards_internally_rechunked(cuts, chunk_rows):
    """Chunking *within* each shard composes with merging across shards."""
    bounds = _bounds(cuts)
    merged = None
    for a, b in zip(bounds, bounds[1:]):
        shard = StreamingTraceSummary()
        position = a
        while position < b:
            take = min(chunk_rows, b - position)
            shard.update(_COLUMNS.select(slice(position, position + take)))
            position += take
        if merged is None:
            merged = shard
        else:
            merged.merge(shard)
    _assert_batch_bits(merged.finalize(_TRACE.name))
