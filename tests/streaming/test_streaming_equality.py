"""Streaming-vs-batch bit-identity across every workload and chunking.

Every assertion in this module uses ``==`` on floats (never
``pytest.approx``): the contract of :mod:`repro.streaming` is that the
chunked, mergeable pass produces *the same bits* as the in-memory batch
kernels in :mod:`repro.analysis`, for any chunk size and any contiguous
shard split of the stream.
"""

import numpy as np
import pytest

from repro.analysis import (
    interarrival_distribution,
    measure,
    response_distribution,
    size_distribution,
    size_stats,
    timing_stats,
    trace_throughput_by_size,
)
from repro.streaming import (
    StreamingLocalities,
    StreamingThroughputBySize,
    StreamingTraceSummary,
    chunked,
    summarize_trace,
)
from repro.trace import Op, Trace
from repro.workloads import ALL_TRACES, generate_trace
from repro.workloads.collection import collect

#: Apps whose replayed (closed-loop) traces are checked end to end;
#: the rest are checked on their generated form, which exercises the
#: same code paths far faster.
REPLAYED_APPS = ("Email", "AngryBrid", "CameraVideo")


def _batch_summary(trace):
    return {
        "size": size_stats(trace),
        "timing": timing_stats(trace),
        "size_distribution": size_distribution(trace),
        "response_distribution": response_distribution(trace),
        "interarrival_distribution": interarrival_distribution(trace),
    }


def _assert_matches_batch(summary, trace):
    batch = _batch_summary(trace)
    assert summary.size == batch["size"]
    assert summary.timing == batch["timing"]
    assert summary.size_distribution == batch["size_distribution"]
    assert summary.response_distribution == batch["response_distribution"]
    assert summary.interarrival_distribution == batch["interarrival_distribution"]


def _fold(trace, chunk_rows, collapse):
    streaming = StreamingTraceSummary(collapse=collapse)
    for chunk in chunked(trace.columns(), chunk_rows):
        streaming.update(chunk)
    return streaming.finalize(trace.name)


class TestAllTraces:
    """Every one of the paper's 25 workloads, generated form."""

    @pytest.mark.parametrize("name", ALL_TRACES)
    def test_generated_trace_bits_match(self, name):
        trace = generate_trace(name, seed=7, num_requests=700)
        _assert_matches_batch(_fold(trace, 137, collapse=True), trace)

    @pytest.mark.parametrize("name", REPLAYED_APPS)
    def test_replayed_trace_bits_match(self, name):
        trace = collect(name, seed=5, num_requests=200).trace
        _assert_matches_batch(_fold(trace, 41, collapse=True), trace)
        _assert_matches_batch(_fold(trace, 41, collapse=False), trace)


class TestChunkingInvariance:
    """The chunk size must never change a single output bit."""

    @pytest.mark.parametrize("name", ["Email", "Twitter"])
    @pytest.mark.parametrize("collapse", [False, True])
    def test_extreme_chunkings(self, name, collapse):
        trace = collect(name, seed=9, num_requests=150).trace
        n = len(trace)
        batch = _batch_summary(trace)
        for rows in (1, 7, n - 1, n, 10 * n):
            summary = _fold(trace, rows, collapse)
            assert summary.size == batch["size"]
            assert summary.timing == batch["timing"]
            assert summary.size_distribution == batch["size_distribution"]
            assert summary.response_distribution == batch["response_distribution"]
            assert (
                summary.interarrival_distribution
                == batch["interarrival_distribution"]
            )

    def test_summarize_trace_helper(self):
        trace = collect("Email", seed=9, num_requests=150).trace
        _assert_matches_batch(summarize_trace(trace, chunk_rows=13), trace)


class TestShardMerge:
    """Random contiguous shard splits merge to the exact batch bits."""

    @pytest.mark.parametrize("name", ["Email", "YouTube", "Installing"])
    def test_random_splits(self, name):
        trace = collect(name, seed=11, num_requests=180).trace
        columns = trace.columns()
        n = len(columns)
        batch = _batch_summary(trace)
        rng = np.random.default_rng(hash(name) % (2**32))
        for trial in range(5):
            cuts = np.sort(rng.choice(np.arange(1, n), 3, replace=False))
            bounds = [0, *cuts.tolist(), n]
            shards = []
            for a, b in zip(bounds, bounds[1:]):
                shard = StreamingTraceSummary()
                for chunk in chunked(columns.select(slice(a, b)), 29):
                    shard.update(chunk)
                shards.append(shard)
            # Left fold of the merge tree.
            left = shards[0]
            for shard in shards[1:]:
                left.merge(shard)
            summary = left.finalize(trace.name)
            assert summary.size == batch["size"]
            assert summary.timing == batch["timing"]
            assert summary.size_distribution == batch["size_distribution"]
            assert summary.response_distribution == batch["response_distribution"]
            assert (
                summary.interarrival_distribution
                == batch["interarrival_distribution"]
            )

    def test_collapsed_leftmost_shard_absorbs_deferred_rest(self):
        trace = collect("Email", seed=11, num_requests=160).trace
        columns = trace.columns()
        left = StreamingTraceSummary(collapse=True)
        for chunk in chunked(columns.select(slice(0, 60)), 17):
            left.update(chunk)
        right = StreamingTraceSummary()
        for chunk in chunked(columns.select(slice(60, len(columns))), 23):
            right.update(chunk)
        left.merge(right)
        _assert_matches_batch(left.finalize(trace.name), trace)


class TestEmptyTrace:
    def test_empty_stream_equals_batch_on_empty_trace(self):
        trace = Trace("empty", [])
        summary = StreamingTraceSummary().finalize("empty")
        _assert_matches_batch(summary, trace)

    def test_empty_chunks_are_no_ops(self):
        trace = collect("Email", seed=3, num_requests=100).trace
        columns = trace.columns()
        streaming = StreamingTraceSummary()
        streaming.update(columns.select(slice(0, 0)))
        for chunk in chunked(columns, 31):
            streaming.update(chunk)
            streaming.update(columns.select(slice(0, 0)))
        _assert_matches_batch(streaming.finalize(trace.name), trace)


class TestLocalities:
    @pytest.mark.parametrize("name", ALL_TRACES[::4])
    def test_matches_measure(self, name):
        trace = generate_trace(name, seed=13, num_requests=500)
        streaming = StreamingLocalities()
        for chunk in chunked(trace.columns(), 61):
            streaming.update(chunk)
        assert streaming.finalize() == measure(trace)

    def test_shard_merge_matches_measure(self):
        trace = generate_trace("Email", seed=13, num_requests=400)
        columns = trace.columns()
        shards = []
        for a, b in ((0, 5), (5, 123), (123, 400)):
            shard = StreamingLocalities()
            for chunk in chunked(columns.select(slice(a, b)), 19):
                shard.update(chunk)
            shards.append(shard)
        left = shards[0]
        for shard in shards[1:]:
            left.merge(shard)
        assert left.finalize() == measure(trace)


class TestThroughput:
    @pytest.mark.parametrize("op", [Op.READ, Op.WRITE])
    def test_matches_batch_kernel(self, op):
        traces = [collect(n, seed=17, num_requests=150).trace for n in REPLAYED_APPS]
        expected = trace_throughput_by_size(traces, op)
        streaming = StreamingThroughputBySize(op, collapse=True)
        for trace in traces:
            for chunk in chunked(trace.columns(), 37):
                streaming.update(chunk)
        assert streaming.finalize() == expected

    def test_shard_merge(self):
        traces = [collect(n, seed=17, num_requests=150).trace for n in REPLAYED_APPS]
        expected = trace_throughput_by_size(traces, Op.READ)
        shards = []
        for trace in traces:
            shard = StreamingThroughputBySize(Op.READ)
            for chunk in chunked(trace.columns(), 53):
                shard.update(chunk)
            shards.append(shard)
        left = shards[0]
        for shard in shards[1:]:
            left.merge(shard)
        assert left.finalize() == expected
