"""Tests for the streaming analytics package."""
