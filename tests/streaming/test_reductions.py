"""Unit tests for :class:`repro.streaming.reductions.OrderedSum`."""

import numpy as np
import pytest

from repro.streaming import OrderedSum, chunked
from repro.trace import sequential_sum
from repro.workloads import generate_trace


def _values(n=997, seed=3):
    rng = np.random.default_rng(seed)
    # Wildly varying magnitudes so naive re-ordering visibly drifts.
    return rng.standard_normal(n) * np.exp(rng.uniform(-20, 20, n))


class TestDeferred:
    def test_total_matches_sequential_sum(self):
        values = _values()
        ordered = OrderedSum()
        for start in range(0, len(values), 101):
            ordered.update(values[start : start + 101])
        assert ordered.total() == sequential_sum(values)
        assert ordered.count == len(values)

    def test_merge_is_exact_under_any_split(self):
        values = _values()
        expected = sequential_sum(values)
        rng = np.random.default_rng(0)
        for _ in range(10):
            cuts = np.sort(rng.choice(np.arange(1, len(values)), 4, replace=False))
            bounds = [0, *cuts.tolist(), len(values)]
            parts = []
            for a, b in zip(bounds, bounds[1:]):
                part = OrderedSum()
                for start in range(a, b, 37):
                    part.update(values[start : min(start + 37, b)])
                parts.append(part)
            # Left fold of the merge tree...
            left = parts[0]
            for part in parts[1:]:
                left.merge(part)
            assert left.total() == expected
            # ...and a right-heavy tree give the same bits (associative).
            parts2 = []
            for a, b in zip(bounds, bounds[1:]):
                part = OrderedSum()
                part.update(values[a:b])
                parts2.append(part)
            while len(parts2) > 1:
                right = parts2.pop()
                parts2[-1].merge(right)
            assert parts2[0].total() == expected

    def test_empty(self):
        assert OrderedSum().total() == 0.0
        assert OrderedSum().count == 0


class TestCollapsed:
    def test_carry_continues_fold_exactly(self):
        values = _values()
        collapsed = OrderedSum(collapse=True)
        for start in range(0, len(values), 53):
            collapsed.update(values[start : start + 53])
        assert collapsed.total() == sequential_sum(values)

    def test_chunk_size_never_changes_bits(self):
        values = _values(500, seed=8)
        expected = sequential_sum(values)
        for size in (1, 2, 7, 499, 500):
            collapsed = OrderedSum(collapse=True)
            for start in range(0, len(values), size):
                collapsed.update(values[start : start + size])
            assert collapsed.total() == expected

    def test_collapsed_absorbs_deferred_right_operand(self):
        values = _values(400, seed=4)
        left = OrderedSum(collapse=True)
        left.update(values[:150])
        right = OrderedSum()
        right.update(values[150:300])
        right.update(values[300:])
        left.merge(right)
        assert left.total() == sequential_sum(values)
        assert left.count == 400

    def test_collapsed_right_operand_rejected(self):
        left = OrderedSum()
        right = OrderedSum(collapse=True)
        right.update(np.ones(3))
        with pytest.raises(ValueError, match="collapsed"):
            left.merge(right)

    def test_o1_state(self):
        collapsed = OrderedSum(collapse=True)
        for _ in range(100):
            collapsed.update(np.ones(1000))
        assert collapsed._segments == []  # nothing retained


class TestChunked:
    def test_chunks_cover_stream_in_order(self):
        trace = generate_trace("Email", seed=2, num_requests=113)
        columns = trace.columns()
        pieces = list(chunked(columns, 25))
        assert [len(p) for p in pieces] == [25, 25, 25, 25, 13]
        np.testing.assert_array_equal(
            np.concatenate([p.arrival_us for p in pieces]), columns.arrival_us
        )

    def test_zero_copy_views(self):
        trace = generate_trace("Email", seed=2, num_requests=50)
        columns = trace.columns()
        piece = next(iter(chunked(columns, 20)))
        assert piece.arrival_us.base is columns.arrival_us

    def test_invalid_chunk_rows(self):
        trace = generate_trace("Email", seed=2, num_requests=10)
        with pytest.raises(ValueError):
            list(chunked(trace.columns(), 0))
