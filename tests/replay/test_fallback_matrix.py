"""Dispatcher fallback matrix: which replays the fast path refuses.

Every configuration the two-pass engine does not model must (a) be
flagged ineligible by :func:`repro.replay.preconditions.decide` with a
reason naming the behaviour, (b) silently run on the event kernel in
``auto`` mode, and (c) raise :class:`FastPathUnavailable` under
``REPRO_REPLAY_FASTPATH=require``.
"""

import pytest

from repro.emmc import EmmcDevice, small_four_ps
from repro.faults import FaultPlan
from repro.replay import FastPathUnavailable, decide, maybe_fast_replay
from repro.sim import EventLoop, Host
from repro.telemetry import Telemetry
from repro.trace import Op, Request, SECTOR, Trace


def _trace(num=40, offset_us=0.0):
    return Trace(
        "matrix",
        [
            Request(
                arrival_us=offset_us + i * 120.0,
                lba=(i % 24) * SECTOR,
                size=2 * SECTOR,
                op=Op.WRITE if i % 2 else Op.READ,
            )
            for i in range(num)
        ],
    )


def _faulted_device():
    return EmmcDevice(
        small_four_ps(), faults=FaultPlan(seed=1, read_error_rate=0.01)
    )


def _recording_device():
    return EmmcDevice(small_four_ps(), kernel=EventLoop(record_events=True))


#: (label, device factory, substring the reason must contain).
MATRIX = [
    ("faults_armed", _faulted_device, "fault injection"),
    (
        "queue_depth_2",
        lambda: EmmcDevice(small_four_ps(queue_depth=2)),
        "queue_depth=2",
    ),
    (
        "ram_buffer_on",
        lambda: EmmcDevice(small_four_ps(ram_buffer_bytes=64 * 1024)),
        "RAM buffer",
    ),
    (
        "idle_gc_timers",
        lambda: EmmcDevice(small_four_ps(idle_gc=True)),
        "idle-time GC",
    ),
    (
        "gc_copyback",
        lambda: EmmcDevice(small_four_ps(gc_copyback=True)),
        "copy-back",
    ),
    (
        "hybrid_log_mapping",
        lambda: EmmcDevice(small_four_ps(mapping_scheme="hybrid-log")),
        "mapping scheme",
    ),
    ("recording_kernel", _recording_device, "event trace"),
    (
        "telemetry_sink",
        lambda: EmmcDevice(small_four_ps(), telemetry=Telemetry()),
        "telemetry",
    ),
]

IDS = [label for label, _, _ in MATRIX]


@pytest.mark.parametrize("label,factory,reason_part", MATRIX, ids=IDS)
class TestIneligible:
    def test_decide_flags_it(self, label, factory, reason_part):
        device = factory()
        decision = decide(device, _trace())
        assert not decision.eligible
        assert any(reason_part in reason for reason in decision.reasons), (
            decision.reasons
        )

    def test_auto_mode_falls_back_to_the_kernel(
        self, label, factory, reason_part, monkeypatch
    ):
        monkeypatch.delenv("REPRO_REPLAY_FASTPATH", raising=False)
        device = factory()
        assert maybe_fast_replay(device, _trace()) is None
        result = Host(device).replay(_trace())
        # The replay really ran, and it ran on the event kernel.
        assert len(result.trace) == 40
        assert device.kernel.processed > 0

    def test_require_mode_raises(self, label, factory, reason_part, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_FASTPATH", "require")
        device = factory()
        with pytest.raises(FastPathUnavailable, match=reason_part.replace("(", "\\(")):
            Host(device).replay(_trace())


class TestEligible:
    def test_base_config_takes_the_fast_path(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPLAY_FASTPATH", raising=False)
        device = EmmcDevice(small_four_ps())
        assert decide(device, _trace()).eligible
        result = Host(device).replay(_trace())
        assert len(result.trace) == 40
        # The fast path fires no events: kernel telemetry stays at zero.
        assert device.kernel.processed == 0

    def test_armed_power_timer_from_a_prior_replay_stays_eligible(self):
        # The device's own speculative POWER_DOWN timer is modeled in
        # closed form, so a second replay is still fast-path material.
        device = EmmcDevice(small_four_ps())
        Host(device).replay(_trace())
        follow_up = _trace(offset_us=device.kernel.now_us + 1e6)
        assert decide(device, follow_up).eligible

    def test_observer_pins_the_event_kernel(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPLAY_FASTPATH", raising=False)
        device = EmmcDevice(small_four_ps())
        Host(device).replay(_trace(), on_complete=lambda request: None)
        assert device.kernel.processed > 0


class TestStructuralFallbacks:
    def test_foreign_pending_event_falls_back(self):
        device = EmmcDevice(small_four_ps())
        device.kernel.schedule(10.0, lambda event: None, label="foreign")
        decision = decide(device, _trace())
        assert not decision.eligible
        assert any("pending material" in reason for reason in decision.reasons)

    def test_arrival_before_the_clock_falls_back(self):
        device = EmmcDevice(small_four_ps())
        Host(device).replay(_trace())
        assert device.kernel.now_us > 0.0
        stale = _trace()  # arrivals restart at 0, behind the clock
        decision = decide(device, stale)
        assert not decision.eligible
        assert any("precedes the kernel clock" in r for r in decision.reasons)


class TestEnvSwitch:
    def test_off_mode_pins_the_kernel(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_FASTPATH", "off")
        device = EmmcDevice(small_four_ps())
        Host(device).replay(_trace())
        assert device.kernel.processed > 0

    def test_unknown_mode_is_an_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_FASTPATH", "sometimes")
        device = EmmcDevice(small_four_ps())
        with pytest.raises(ValueError, match="sometimes"):
            Host(device).replay(_trace())
