"""Bit-identity of the fast path against the event kernel.

The contract (:mod:`repro.replay`): a fast-path replay leaves the device
and the returned timestamps in *exactly* the state a kernel replay
produces -- ``==`` on every float, digest-equal stats, identical FTL
mapping.  These tests pin that on real generated workloads, including
GC-heavy small-geometry runs that exercise the planner's per-request
fallback to the full FTL write path.
"""

import pytest

from repro.emmc import EmmcDevice, small_eight_ps, small_four_ps, small_hps
from repro.emmc.ftl.blocks import OutOfSpaceError
from repro.faults import stats_digest
from repro.sim import Host
from repro.workloads import generate_trace

SEED = 2015
REQUESTS = 900

CONFIGS = {
    "small_4PS": small_four_ps,
    "small_8PS": small_eight_ps,
    "small_HPS": small_hps,
}

#: Light, heavy-write and GC-heavy apps (small_HPS + WebBrowsing runs
#: thousands of GC cycles at this size, all through the fallback path).
APPS = ["Twitter", "Booting", "WebBrowsing"]


def _replay(config_factory, app, mode, monkeypatch):
    monkeypatch.setenv("REPRO_REPLAY_FASTPATH", mode)
    device = EmmcDevice(config_factory())
    trace = generate_trace(app, seed=SEED, num_requests=REQUESTS).without_timing()
    try:
        result = Host(device).replay(trace)
    except OutOfSpaceError:
        # Write-heavy traces can exhaust a small geometry outright; both
        # engines must agree on that too (error parity, checked below).
        return device, None
    return device, result


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("app", APPS)
def test_fast_path_matches_kernel(config_name, app, monkeypatch):
    factory = CONFIGS[config_name]
    kernel_device, kernel_result = _replay(factory, app, "off", monkeypatch)
    fast_device, fast_result = _replay(factory, app, "require", monkeypatch)

    if kernel_result is None or fast_result is None:
        # Capacity exhaustion must strike in both modes or neither.
        assert kernel_result is None and fast_result is None
        return

    # Timestamps: == on every float, not approx.
    kernel_requests = list(kernel_result.trace)
    fast_requests = list(fast_result.trace)
    assert kernel_requests == fast_requests

    # Device statistics digest-equal (covers every counter and list).
    assert stats_digest(fast_device.stats) == stats_digest(kernel_device.stats)

    # FTL state: identical mapping and identical wear.
    assert dict(fast_device.ftl.mapping.items()) == dict(
        kernel_device.ftl.mapping.items()
    )
    assert fast_device.kernel.now_us == kernel_device.kernel.now_us


def test_mixed_fast_and_kernel_runs_digest_identically(monkeypatch):
    """Interleaving fast and kernel replays on one device changes nothing.

    Replays 1 and 3 take the fast path; replay 2 is pinned to the event
    kernel by an ``on_complete`` observer.  The end state must digest
    equal to the same three replays run entirely on the kernel.
    """
    pieces = [
        generate_trace(app, seed=SEED, num_requests=250).without_timing()
        for app in ("Twitter", "Messaging", "Email")
    ]

    def run(mode):
        monkeypatch.setenv("REPRO_REPLAY_FASTPATH", mode)
        device = Host(EmmcDevice(small_four_ps()))
        timestamps = []
        for index, piece in enumerate(pieces):
            # Sequential replays need arrivals at or after the clock.
            shifted = _shift(piece, device.device.kernel.now_us + 1.0)
            if index == 1 and mode == "auto":
                result = device.replay(shifted, on_complete=lambda request: None)
            else:
                result = device.replay(shifted)
            timestamps.append([(r.service_start_us, r.finish_us) for r in result.trace])
        return device.device, timestamps

    mixed_device, mixed_stamps = run("auto")
    kernel_device, kernel_stamps = run("off")
    assert mixed_stamps == kernel_stamps
    assert stats_digest(mixed_device.stats) == stats_digest(kernel_device.stats)
    assert mixed_device.kernel.now_us == kernel_device.kernel.now_us


def _shift(trace, offset_us):
    """Copy of ``trace`` with arrivals moved up by ``offset_us``."""
    from repro.trace import Request

    return trace.with_requests(
        [
            Request(
                arrival_us=request.arrival_us + offset_us,
                lba=request.lba,
                size=request.size,
                op=request.op,
            )
            for request in trace
        ]
    )
