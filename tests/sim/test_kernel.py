"""Unit tests for the discrete-event kernel: clock, events, loop."""

import pytest

from repro.sim import Event, EventKind, EventLoop, SimClock, SimTimeError


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_us == 0.0

    def test_advance_forward(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now_us == 10.0
        clock.advance_to(10.0)  # no-op, not an error
        assert clock.now_us == 10.0

    def test_advance_backwards_raises(self):
        clock = SimClock(5.0)
        with pytest.raises(SimTimeError):
            clock.advance_to(4.0)

    def test_negative_start_rejected(self):
        with pytest.raises(SimTimeError):
            SimClock(-1.0)


class TestEventOrdering:
    def test_sorts_by_time_then_priority_then_seq(self):
        loop = EventLoop(record_events=True)
        # Same instant, mixed kinds, scheduled in "wrong" order.
        loop.schedule(5.0, kind=EventKind.POWER_DOWN)
        loop.schedule(5.0, kind=EventKind.ARRIVAL)
        loop.schedule(5.0, kind=EventKind.COMPLETE)
        loop.schedule(5.0, kind=EventKind.IDLE_GC)
        loop.schedule(1.0, kind=EventKind.GENERIC)
        loop.run()
        kinds = [point[3] for point in loop.event_trace]
        assert kinds == ["GENERIC", "COMPLETE", "IDLE_GC", "ARRIVAL", "POWER_DOWN"]

    def test_equal_keys_fire_in_scheduling_order(self):
        loop = EventLoop(record_events=True)
        for _ in range(5):
            loop.schedule(3.0, kind=EventKind.ARRIVAL)
        loop.run()
        seqs = [point[2] for point in loop.event_trace]
        assert seqs == sorted(seqs)

    def test_event_sort_key_is_precomputed(self):
        event = Event(time_us=2.0, kind=EventKind.ARRIVAL, seq=7)
        assert event.sort_key == (2.0, EventKind.ARRIVAL.value, 7)


class TestEventLoop:
    def test_schedule_in_past_raises(self):
        loop = EventLoop()
        loop.schedule(10.0)
        loop.run()
        with pytest.raises(SimTimeError):
            loop.schedule(5.0)

    def test_callbacks_fire_with_clock_advanced(self):
        loop = EventLoop()
        seen = []
        loop.schedule(4.0, lambda event: seen.append(loop.now_us))
        loop.schedule(9.0, lambda event: seen.append(loop.now_us))
        loop.run()
        assert seen == [4.0, 9.0]
        assert loop.now_us == 9.0

    def test_cancel_suppresses_event(self):
        loop = EventLoop()
        seen = []
        keep = loop.schedule(1.0, lambda e: seen.append("keep"))
        drop = loop.schedule(2.0, lambda e: seen.append("drop"))
        loop.cancel(drop)
        loop.cancel(drop)  # idempotent
        loop.cancel(None)  # no-op
        loop.run()
        assert seen == ["keep"]
        assert loop.cancellations == 1
        assert not keep.canceled

    def test_run_until_is_inclusive_and_advances_clock(self):
        loop = EventLoop()
        seen = []
        loop.schedule(5.0, lambda e: seen.append(5.0))
        loop.schedule(7.0, lambda e: seen.append(7.0))
        fired = loop.run_until(5.0)
        assert fired == 1 and seen == [5.0]
        loop.run_until(6.0)  # nothing due, clock still moves
        assert loop.now_us == 6.0
        loop.run_until(10.0)
        assert seen == [5.0, 7.0]

    def test_events_scheduled_during_processing_fire_in_window(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda e: loop.schedule(2.0, lambda e2: seen.append(2.0)))
        loop.run_until(3.0)
        assert seen == [2.0]

    def test_drain_leaves_trailing_timers(self):
        loop = EventLoop()
        seen = []
        loop.schedule(5.0, lambda e: seen.append("gc"), kind=EventKind.IDLE_GC)
        loop.schedule(10.0, lambda e: seen.append("arrival"), kind=EventKind.ARRIVAL)
        loop.schedule(20.0, lambda e: seen.append("sleep"), kind=EventKind.POWER_DOWN)
        loop.drain()
        # The timer *before* material work fires; the trailing one must not.
        assert seen == ["gc", "arrival"]
        assert len(loop) == 1
        loop.run()
        assert seen == ["gc", "arrival", "sleep"]

    def test_pending_material_tracks_non_timers(self):
        loop = EventLoop()
        loop.schedule(1.0, kind=EventKind.ARRIVAL)
        loop.schedule(2.0, kind=EventKind.POWER_DOWN)
        assert loop.pending_material() == 1
        loop.drain()
        assert loop.pending_material() == 0

    def test_peek_time_skips_canceled(self):
        loop = EventLoop()
        first = loop.schedule(1.0)
        loop.schedule(2.0)
        loop.cancel(first)
        assert loop.peek_time() == 2.0

    def test_telemetry_counters(self):
        loop = EventLoop()
        events = [loop.schedule(float(i)) for i in range(4)]
        loop.cancel(events[0])
        loop.run()
        assert loop.scheduled == 4
        assert loop.processed == 3
        assert loop.cancellations == 1
