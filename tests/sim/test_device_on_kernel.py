"""The eMMC device on the event kernel: overlap, timers, host replay.

The hand-computed scenario below pins the queue-depth semantics to exact
numbers.  Three 4 KB writes on the stock 4PS device (2 channels, K4 pages)
land on distinct planes striped across channels, so each expands to one
PROGRAM op with, from :class:`LatencyParams` defaults:

* controller (FTL) processing: 65 us, serialized device-wide;
* channel transfer: 20 us command overhead + 4096/60 us data;
* K4 page program: 1385 us.

One isolated write therefore finishes at ``65 + transfer + 1385``.
"""

import hashlib
import json
import subprocess
import sys

import pytest

from repro.trace import KIB, Op, Request, Trace
from repro.emmc import EmmcDevice, four_ps
from repro.sim import EventLoop, Host, replay_trace

#: LatencyParams defaults, spelled out so the arithmetic is visible.
FTL_US = 65.0
TRANSFER_US = 20.0 + 4 * KIB / 60.0
PROGRAM_US = 1385.0
ONE_WRITE_US = FTL_US + TRANSFER_US + PROGRAM_US


def _three_writes(device):
    reqs = [
        Request(0.0, 0, 4 * KIB, Op.WRITE),
        Request(1.0, 256 * KIB, 4 * KIB, Op.WRITE),
        Request(2.0, 512 * KIB, 4 * KIB, Op.WRITE),
    ]
    return [device.submit(request) for request in reqs]


class TestQueueOverlapHandComputed:
    def test_depth_one_fully_serializes(self):
        a, b, c = _three_writes(EmmcDevice(four_ps()))
        assert a.finish_us == ONE_WRITE_US
        assert b.service_start_us == a.finish_us
        assert b.finish_us == 2 * ONE_WRITE_US
        assert c.finish_us == 3 * ONE_WRITE_US

    def test_depth_two_overlaps_dies_and_channels(self):
        a, b, c = _three_writes(EmmcDevice(four_ps(queue_depth=2)))
        assert a.finish_us == ONE_WRITE_US
        # B dispatches at its arrival (t=1): it only waits 65 us for the
        # serialized controller, then uses the *other* channel and die
        # while A's program is still in flight.
        assert b.service_start_us == 1.0
        assert b.finish_us == 2 * FTL_US + TRANSFER_US + PROGRAM_US
        assert b.finish_us == a.finish_us + FTL_US
        # C finds both slots busy and dispatches when A (the earliest
        # in-flight request) completes; its program overlaps nothing.
        assert c.service_start_us == a.finish_us
        assert c.finish_us == 2 * ONE_WRITE_US

    def test_overlap_beats_serial_end_to_end(self):
        serial = _three_writes(EmmcDevice(four_ps()))
        overlapped = _three_writes(EmmcDevice(four_ps(queue_depth=2)))
        assert overlapped[-1].finish_us < serial[-1].finish_us
        assert sum(r.response_us for r in overlapped) < sum(
            r.response_us for r in serial
        )


class TestQueueDepthMrt:
    def test_deeper_queue_strictly_lowers_mrt_on_bursty_trace(self):
        # Arrivals every 10 us against a ~1.5 ms service: a deep backlog.
        trace = Trace(
            name="burst",
            requests=[
                Request(i * 10.0, i * 256 * KIB, 4 * KIB, Op.WRITE)
                for i in range(24)
            ],
        )
        mrt = {}
        for depth in (1, 4):
            result = replay_trace(EmmcDevice(four_ps(queue_depth=depth)), trace)
            mrt[depth] = result.stats.mean_response_ms
        assert mrt[4] < mrt[1]


class TestActivityTimers:
    def test_power_down_fires_as_event_and_charges_warmup(self):
        device = EmmcDevice(four_ps())
        threshold = device.latency.power_threshold_us
        first = device.submit(Request(0.0, 0, 4 * KIB, Op.WRITE))
        second = device.submit(
            Request(first.finish_us + threshold + 1000.0, 256 * KIB, 4 * KIB, Op.WRITE)
        )
        # The POWER_DOWN timer fired during the gap (event-driven sleep),
        # and the dispatch paid the warm-up exactly once.
        assert device.power.low_power_entries == 1
        assert device.power.wakeups == 1
        assert not device.power.is_low_power  # awake again after the dispatch
        assert second.service_us == pytest.approx(
            first.service_us + device.latency.warmup_us
        )

    def test_arrival_just_inside_threshold_cancels_power_down(self):
        device = EmmcDevice(four_ps())
        threshold = device.latency.power_threshold_us
        first = device.submit(Request(0.0, 0, 4 * KIB, Op.WRITE))
        second = device.submit(
            Request(first.finish_us + threshold, 256 * KIB, 4 * KIB, Op.WRITE)
        )
        # Old model slept only for gaps *strictly* beyond the threshold; an
        # arrival exactly at the deadline wins the tie and cancels it.
        assert device.power.low_power_entries == 0
        assert device.power.wakeups == 0
        assert second.service_us == pytest.approx(first.service_us)

    def test_trailing_timers_never_fire(self):
        device = EmmcDevice(four_ps())
        Host(device).replay(
            Trace(name="one", requests=[Request(0.0, 0, 4 * KIB, Op.WRITE)])
        )
        # The speculative power-down deadline after the last request stays
        # pending: nothing happens after the end of a trace.
        assert device.power.low_power_entries == 0
        assert device.kernel.pending_material() == 0
        assert len(device.kernel) > 0


class TestHostReplay:
    def _trace(self, count=6):
        return Trace(
            name="t",
            requests=[
                Request(i * 500.0, i * 64 * KIB, 4 * KIB, Op.WRITE)
                for i in range(count)
            ],
        )

    def test_replay_equals_submit_loop(self):
        via_host = Host(EmmcDevice(four_ps())).replay(self._trace())
        device = EmmcDevice(four_ps())
        via_submit = [device.submit(r) for r in self._trace()]
        assert [
            (r.service_start_us, r.finish_us) for r in via_host.trace
        ] == [(r.service_start_us, r.finish_us) for r in via_submit]
        assert via_host.stats.response_us == device.stats.response_us

    def test_on_complete_fires_in_completion_order(self):
        seen = []
        Host(EmmcDevice(four_ps())).replay(
            self._trace(), on_complete=lambda r: seen.append(r.finish_us)
        )
        assert len(seen) == 6
        assert seen == sorted(seen)
        assert all(r > 0 for r in seen)

    def test_shared_kernel_serializes_out_of_order_producers(self):
        # Two producers schedule arrivals out of submission order; the
        # kernel serves them in *time* order all the same.
        device = EmmcDevice(four_ps())
        completed = []
        device.arrive(Request(5000.0, 0, 4 * KIB, Op.WRITE), record_to=completed)
        device.arrive(Request(0.0, 256 * KIB, 4 * KIB, Op.WRITE), record_to=completed)
        device.kernel.drain()
        assert [r.arrival_us for r in completed] == [0.0, 5000.0]
        assert completed[0].wait_us == 0.0


def _replay_digest():
    """Digest of the full event trace + timings of a deterministic replay."""
    from repro.workloads import generate_trace

    trace = generate_trace("Messaging", seed=11, num_requests=200)
    device = EmmcDevice(four_ps(), kernel=EventLoop(record_events=True))
    result = Host(device).replay(trace.without_timing())
    payload = json.dumps(
        {
            "events": device.kernel.event_trace,
            "timings": [
                (r.arrival_us, r.service_start_us, r.finish_us)
                for r in result.trace
            ],
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class TestDeterminism:
    def test_identical_event_order_across_runs(self):
        assert _replay_digest() == _replay_digest()

    def test_identical_event_order_across_processes(self):
        script = (
            "from tests.sim.test_device_on_kernel import _replay_digest;"
            "print(_replay_digest())"
        )
        digests = set()
        for hash_seed in ("0", "1", "2", "3"):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env={
                    "PYTHONPATH": "src",
                    "PYTHONHASHSEED": hash_seed,
                },
                cwd=str(__import__("pathlib").Path(__file__).resolve().parents[2]),
            )
            digests.add(proc.stdout.strip())
        digests.add(_replay_digest())
        assert len(digests) == 1
