"""Unit tests for resource timelines, pools and the admission queue."""

import pytest

from repro.sim import AdmissionQueue, ResourcePool, ResourceTimeline


class TestResourceTimeline:
    def test_serial_reservations(self):
        timeline = ResourceTimeline("bus")
        assert timeline.reserve(0.0, 10.0) == (0.0, 10.0)
        # Earlier request finds the frontier, later one its own time.
        assert timeline.reserve(5.0, 10.0) == (10.0, 20.0)
        assert timeline.reserve(50.0, 10.0) == (50.0, 60.0)
        assert timeline.busy_us == 30.0
        assert timeline.reservations == 3

    def test_peek_does_not_claim(self):
        timeline = ResourceTimeline()
        assert timeline.peek(3.0, 4.0) == (3.0, 7.0)
        assert timeline.next_free_us == 0.0
        assert timeline.reservations == 0

    def test_is_free_at(self):
        timeline = ResourceTimeline()
        timeline.reserve(0.0, 10.0)
        assert not timeline.is_free_at(9.0)
        assert timeline.is_free_at(10.0)

    def test_utilization(self):
        timeline = ResourceTimeline()
        timeline.reserve(0.0, 25.0)
        assert timeline.utilization(100.0) == 0.25
        assert timeline.utilization(0.0) == 0.0
        assert timeline.utilization(10.0) == 1.0  # clamped


class TestResourcePool:
    def test_members_are_independent(self):
        pool = ResourcePool(2, "channel")
        pool.reserve(0, 0.0, 10.0)
        assert pool.reserve(1, 0.0, 10.0) == (0.0, 10.0)
        assert pool.reserve(0, 0.0, 10.0) == (10.0, 20.0)
        assert pool.busy_us == 30.0
        assert pool.reservations == 3
        assert len(pool) == 2
        assert [t.name for t in pool] == ["channel[0]", "channel[1]"]

    def test_needs_at_least_one_member(self):
        with pytest.raises(ValueError):
            ResourcePool(0)


class TestAdmissionQueue:
    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0)

    def test_depth_one_serializes(self):
        queue = AdmissionQueue(1)
        assert queue.admit(0.0) == 0.0
        queue.on_dispatch(100.0)
        assert queue.admit(10.0) == 100.0  # waits for the device
        queue.on_dispatch(150.0)
        assert queue.admit(200.0) == 200.0  # device already idle
        assert queue.slot_waits == 1
        assert queue.max_in_flight == 1

    def test_depth_two_overlaps_until_full(self):
        queue = AdmissionQueue(2)
        assert queue.admit(0.0) == 0.0
        queue.on_dispatch(100.0)
        assert queue.admit(0.0) == 0.0  # second slot free
        queue.on_dispatch(50.0)
        # Both in flight at t=10: wait for the earliest completion (50).
        assert queue.admit(10.0) == 50.0
        queue.on_dispatch(120.0)
        assert queue.slot_waits == 1
        assert queue.max_in_flight == 2
        # By t=200 everything has drained.
        assert queue.admit(200.0) == 200.0

    def test_busy_until_and_in_flight(self):
        shallow = AdmissionQueue(1)
        shallow.on_dispatch(80.0)
        assert shallow.busy_until_us == 80.0
        assert shallow.in_flight_at(79.0) == 1
        assert shallow.in_flight_at(80.0) == 0

        deep = AdmissionQueue(4)
        deep.on_dispatch(80.0)
        deep.on_dispatch(60.0)
        assert deep.busy_until_us == 80.0
        assert deep.in_flight_at(70.0) == 1
        assert deep.in_flight_at(10.0) == 2
