"""The exact-decomposition property: components sum bit-identically.

For every served request the recorded latency components (queue wait +
wake-up + controller + channel + unit op + GC stall + retry backoff)
must sum *float-exactly* -- left-to-right in the decomposition's own
order -- to the response time the device reported.  Not approximately:
``==`` on IEEE-754 doubles, for every request of every app trace and
every device configuration exercised here.
"""

import pytest

from repro.emmc import EmmcDevice, four_ps, small_four_ps
from repro.faults import FaultPlan
from repro.sim import Host
from repro.telemetry import (
    COMPONENTS,
    LatencyDecomposition,
    Telemetry,
    decompose_request,
)
from repro.workloads import ALL_TRACES, generate_trace


def _assert_exact(sink: Telemetry, stats) -> None:
    assert len(sink.decompositions) == len(stats.response_us)
    for index, dec in enumerate(sink.decompositions):
        assert dec.total() == stats.response_us[index], (
            f"request {index}: {dec.total()!r} != {stats.response_us[index]!r} "
            f"({dec.as_dict()})"
        )
        # The queue component is exactly the reported wait time.
        assert dec.components["queue"] == stats.wait_us[index]
        for name, value in dec.components.items():
            assert name in COMPONENTS
            assert value >= 0.0, f"negative {name} component: {value}"
        assert dec.order[:2] == ("queue", "wake")


@pytest.mark.parametrize("app", ALL_TRACES)
def test_every_app_trace_decomposes_exactly(app):
    trace = generate_trace(app, seed=20150614, num_requests=160).without_timing()
    sink = Telemetry()
    result = Host(EmmcDevice(four_ps(), telemetry=sink)).replay(trace)
    _assert_exact(sink, result.stats)


#: Device configurations covering every latency component source:
#: GC stalls (tight threshold, hybrid-log merges, copy-back), ECC retry
#: backoff (fault plan), wake-up (long gaps), queueing (depth > 1) and a
#: RAM buffer's absorbed-request path.
CONFIGS = [
    ("gc_heavy", dict(gc_threshold_blocks=6), None),
    ("copyback_gc", dict(gc_copyback=True, gc_threshold_blocks=6), None),
    ("hybrid_log", dict(mapping_scheme="hybrid-log"), None),
    ("queue_depth_4", dict(queue_depth=4), None),
    ("multi_plane", dict(multi_plane=True), None),
    ("idle_gc", dict(idle_gc=True), None),
    ("ram_buffer", dict(ram_buffer_bytes=64 * 1024), None),
    ("ecc_retries", dict(), FaultPlan(seed=11, read_error_rate=0.2)),
]


@pytest.mark.parametrize(
    "label,overrides,faults", CONFIGS, ids=[c[0] for c in CONFIGS]
)
def test_every_config_decomposes_exactly(label, overrides, faults):
    trace = generate_trace(
        "CameraVideo", seed=7, num_requests=400
    ).without_timing()
    sink = Telemetry()
    device = EmmcDevice(
        four_ps().with_overrides(**overrides), faults=faults, telemetry=sink
    )
    result = Host(device).replay(trace)
    _assert_exact(sink, result.stats)


def test_retry_component_is_nonzero_under_faults():
    trace = generate_trace("Twitter", seed=3, num_requests=400).without_timing()
    sink = Telemetry()
    device = EmmcDevice(
        small_four_ps(),
        faults=FaultPlan(seed=11, read_error_rate=0.3),
        telemetry=sink,
    )
    Host(device).replay(trace)
    assert sum(d.components["retry"] for d in sink.decompositions) > 0.0


def test_gc_component_is_nonzero_when_gc_runs():
    trace = generate_trace(
        "CameraVideo", seed=7, num_requests=400
    ).without_timing()
    sink = Telemetry()
    device = EmmcDevice(
        four_ps().with_overrides(mapping_scheme="hybrid-log"), telemetry=sink
    )
    Host(device).replay(trace)
    assert sum(d.components["gc"] for d in sink.decompositions) > 0.0


class TestDecomposeRequest:
    def test_no_legs_charges_the_controller(self):
        dec = decompose_request(0.0, 10.0, 10.0, 30.0, None)
        assert dec.components["queue"] == 10.0
        assert dec.components["controller"] == 20.0
        assert dec.total() == dec.response_us == 30.0

    def test_absorbed_write_with_wake(self):
        dec = decompose_request(0.0, 5.0, 8.0, 9.5, [])
        assert dec.components["wake"] == 3.0
        assert dec.total() == 9.5

    def test_awkward_floats_still_close_exactly(self):
        # Values chosen so naive telescoping sums are off by an ulp.
        arrival, dispatch = 0.1, 0.30000000000000004
        start, finish = 0.7000000000000001, 1234.5678901234567
        dec = decompose_request(arrival, dispatch, start, finish, None)
        assert dec.total() == finish - arrival

    def test_as_dict_is_canonically_ordered(self):
        dec = decompose_request(0.0, 1.0, 2.0, 3.0, None)
        assert isinstance(dec, LatencyDecomposition)
        as_dict = dec.as_dict()
        assert tuple(as_dict) == COMPONENTS
        assert sorted(dec.order) == sorted(COMPONENTS)
