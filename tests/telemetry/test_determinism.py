"""Telemetry's two determinism contracts.

1. **Observation only**: telemetry enabled vs disabled changes no
   simulation result -- every experiment's structured data digest is
   bit-identical either way, in-process and across ``PYTHONHASHSEED``
   values (the env hook in ``repro.experiments.common.replay_on`` flips
   a sink onto every experiment device).
2. **Reproducible output**: the span stream itself is byte-identical
   across runs, processes and hash seeds -- Chrome-trace JSON and packed
   span-store chunks hash the same everywhere.
"""

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Experiments for the subprocess hash-seed sweep: the sharded heavy
#: replays (fig3 device sweep, fig8/fig9 per-app) plus a whole-task one.
SWEEP_IDS = ["fig3", "fig4", "fig8"]
SWEEP_REQUESTS = 80


def battery_digest(ids=None, num_requests=120) -> str:
    """One digest over the structured data of the selected experiments."""
    from repro.experiments import runner
    from repro.experiments.cache import NullCache

    results = runner.run_experiments(
        ids=ids, num_requests=num_requests, cache=NullCache()
    )
    blob = json.dumps(
        [(r.experiment_id, runner._jsonable(r.data)) for r in results],
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def span_output_digest() -> str:
    """Hash of a replay's Chrome-trace JSON + span-store chunk bytes."""
    import tempfile

    from repro.emmc import EmmcDevice, four_ps
    from repro.sim import Host
    from repro.telemetry import chrome_trace_json, pack_spans, Telemetry
    from repro.workloads import generate_trace

    sink = Telemetry()
    trace = generate_trace(
        "Twitter", seed=20150614, num_requests=250
    ).without_timing()
    Host(EmmcDevice(four_ps(), telemetry=sink)).replay(trace)
    digest = hashlib.sha256(chrome_trace_json(sink).encode())
    with tempfile.TemporaryDirectory() as tmp:
        manifest = pack_spans(sink, os.path.join(tmp, "spans"))
        digest.update(
            json.dumps(manifest, sort_keys=True).encode()
        )
        for info in manifest["chunks"]:
            chunk = Path(tmp, "spans", info["file"]).read_bytes()
            digest.update(chunk)
    return digest.hexdigest()


def _on_off_digests(ids, num_requests):
    """(telemetry-off digest, telemetry-on digest) in this process."""
    saved = os.environ.pop("REPRO_TELEMETRY", None)
    try:
        off = battery_digest(ids, num_requests)
        os.environ["REPRO_TELEMETRY"] = "1"
        on = battery_digest(ids, num_requests)
    finally:
        os.environ.pop("REPRO_TELEMETRY", None)
        if saved is not None:
            os.environ["REPRO_TELEMETRY"] = saved
    return off, on


def _subprocess_line(script: str, hash_seed: str) -> str:
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": "src", "PYTHONHASHSEED": hash_seed},
        cwd=str(REPO_ROOT),
    )
    return proc.stdout.strip()


class TestEnabledVsDisabled:
    def test_full_battery_bit_identical(self):
        # Every registered experiment, telemetry off then on, same
        # process: one digest over all structured data each way.
        off, on = _on_off_digests(None, 120)
        assert off == on

    def test_sweep_across_hash_seeds(self):
        script = (
            "from tests.telemetry.test_determinism import ("
            "_on_off_digests, SWEEP_IDS, SWEEP_REQUESTS);"
            "off, on = _on_off_digests(SWEEP_IDS, SWEEP_REQUESTS);"
            "print(off); print(on)"
        )
        outputs = set()
        for hash_seed in ("0", "1", "2", "3"):
            line = _subprocess_line(script, hash_seed)
            off, on = line.splitlines()
            assert off == on, f"PYTHONHASHSEED={hash_seed}: on != off"
            outputs.add(line)
        assert len(outputs) == 1, "digests drift across hash seeds"


class TestSpanOutputBytes:
    def test_byte_identical_within_a_process(self):
        assert span_output_digest() == span_output_digest()

    def test_byte_identical_across_hash_seeds(self):
        script = (
            "from tests.telemetry.test_determinism import "
            "span_output_digest; print(span_output_digest())"
        )
        outputs = {
            _subprocess_line(script, hash_seed)
            for hash_seed in ("0", "1", "2", "3")
        }
        assert len(outputs) == 1, "span bytes drift across hash seeds"
        assert outputs == {span_output_digest()}
