"""Observer plumbing and fast-path interaction.

Pinned regressions:

* exactly one ``on_complete`` dispatch per request, with or without a
  telemetry sink attached (the COMPLETE event carries its observer on
  the payload; telemetry watches the same event through the kernel's
  recording hook, never through a second callback);
* an attached sink is a fast-path *fallback* precondition -- the
  vectorized path computes identical timings but records no spans, so
  ``auto`` falls back to the kernel and ``require`` raises instead of
  silently losing the span stream.
"""

import pytest

from repro.emmc import EmmcDevice, small_four_ps
from repro.replay import FastPathUnavailable, decide, maybe_fast_replay
from repro.sim import Host
from repro.telemetry import Telemetry
from repro.trace import Op, Request, SECTOR, Trace


def _trace(num=40):
    return Trace(
        "observer",
        [
            Request(
                arrival_us=i * 120.0,
                lba=(i % 24) * SECTOR,
                size=2 * SECTOR,
                op=Op.WRITE if i % 2 else Op.READ,
            )
            for i in range(num)
        ],
    )


class TestSingleDispatch:
    def test_observer_fires_once_per_request(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPLAY_FASTPATH", raising=False)
        seen = []
        device = EmmcDevice(small_four_ps())
        result = Host(device).replay(_trace(), on_complete=seen.append)
        assert len(seen) == len(result.trace) == 40

    def test_observer_and_telemetry_coexist(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPLAY_FASTPATH", raising=False)
        seen = []
        sink = Telemetry()
        device = EmmcDevice(small_four_ps(), telemetry=sink)
        result = Host(device).replay(_trace(), on_complete=seen.append)
        # One dispatch per request -- not one per (observer, sink) pair.
        assert len(seen) == 40
        assert len(sink.decompositions) == 40
        # The observer saw the same timed requests the result holds.
        assert [r.finish_us for r in seen] == sorted(
            r.finish_us for r in result.trace
        )
        # The sink's kernel trace saw every COMPLETE fire exactly once.
        completes = [e for e in sink.kernel_events if e[3] == "COMPLETE"]
        assert len(completes) == 40

    def test_results_identical_with_and_without_observer(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_FASTPATH", "off")
        plain = Host(EmmcDevice(small_four_ps())).replay(_trace())
        sink = Telemetry()
        observed = Host(
            EmmcDevice(small_four_ps(), telemetry=sink)
        ).replay(_trace(), on_complete=lambda request: None)
        assert plain.stats.response_us == observed.stats.response_us
        assert plain.stats.wait_us == observed.stats.wait_us


class TestFastPathPrecondition:
    def test_decide_flags_an_attached_sink(self):
        device = EmmcDevice(small_four_ps(), telemetry=Telemetry())
        decision = decide(device, _trace())
        assert not decision.eligible
        assert any("telemetry" in reason for reason in decision.reasons)

    def test_auto_falls_back_and_records_spans(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPLAY_FASTPATH", raising=False)
        sink = Telemetry()
        device = EmmcDevice(small_four_ps(), telemetry=sink)
        assert maybe_fast_replay(device, _trace()) is None
        result = Host(device).replay(_trace())
        assert len(result.trace) == 40
        assert device.kernel.processed > 0
        assert len(sink.decompositions) == 40

    def test_require_raises_rather_than_losing_spans(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_FASTPATH", "require")
        device = EmmcDevice(small_four_ps(), telemetry=Telemetry())
        with pytest.raises(FastPathUnavailable, match="telemetry"):
            Host(device).replay(_trace())

    def test_no_sink_still_takes_the_fast_path(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPLAY_FASTPATH", raising=False)
        device = EmmcDevice(small_four_ps())
        assert decide(device, _trace()).eligible
        Host(device).replay(_trace())
        assert device.kernel.processed == 0

    def test_fast_and_kernel_paths_agree_on_results(self, monkeypatch):
        # The sink only forces the engine choice; the numbers match.
        monkeypatch.delenv("REPRO_REPLAY_FASTPATH", raising=False)
        fast = Host(EmmcDevice(small_four_ps())).replay(_trace())
        slow = Host(
            EmmcDevice(small_four_ps(), telemetry=Telemetry())
        ).replay(_trace())
        assert fast.stats.response_us == slow.stats.response_us


class TestExperimentsEnvHook:
    def test_replay_on_honors_the_env(self, monkeypatch):
        from repro.emmc import four_ps
        from repro.experiments.common import replay_on
        from repro.workloads import generate_trace

        trace = generate_trace("Twitter", seed=1, num_requests=60)
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        off = replay_on(four_ps(), trace)
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        on = replay_on(four_ps(), trace)
        assert off.stats.response_us == on.stats.response_us
        for disabled in ("0", "off", "none", "false", ""):
            monkeypatch.setenv("REPRO_TELEMETRY", disabled)
            from repro.experiments.common import _telemetry_from_env

            assert _telemetry_from_env() is None


class TestRunnerWallSink:
    def test_execute_emits_wall_spans_and_cache_events(self, tmp_path):
        from repro.experiments import parallel
        from repro.experiments.cache import ResultCache

        sink = Telemetry()
        cache = ResultCache(cache_dir=tmp_path / "cache")
        summary = parallel.execute(
            ids=["fig4"], num_requests=60, cache=cache, wall_sink=sink
        )
        assert len(summary.results) == 1
        names = [span[0] for span in sink.spans]
        assert "fig4" in names
        assert any(name.startswith("fig4:") for name in names)
        misses = [e for e in sink.events if e[1] == "cache-miss"]
        assert len(misses) == 1
        # Warm rerun: a hit event, no new experiment span.
        hit_sink = Telemetry()
        parallel.execute(
            ids=["fig4"], num_requests=60, cache=cache, wall_sink=hit_sink
        )
        hits = [e for e in hit_sink.events if e[1] == "cache-hit"]
        assert len(hits) == 1
        assert not hit_sink.spans

    def test_wall_sink_never_changes_results(self, monkeypatch):
        from repro.experiments import parallel

        plain = parallel.execute(ids=["fig4"], num_requests=60)
        with_sink = parallel.execute(
            ids=["fig4"], num_requests=60, wall_sink=Telemetry()
        )
        assert plain.results[0].data == with_sink.results[0].data
