"""Hand-checked span trees and instant events from the device model."""

import pytest

from repro.emmc import EmmcDevice, small_four_ps
from repro.faults import FaultPlan
from repro.sim import Host, SimInterrupt
from repro.telemetry import (
    S_CAT,
    S_DUR,
    S_NAME,
    S_PARENT,
    S_START,
    S_TRACK,
    Telemetry,
)
from repro.trace import Op, Request, SECTOR, Trace


def _replay(config=None, faults=None, requests=None):
    sink = Telemetry()
    device = EmmcDevice(
        config or small_four_ps(), faults=faults, telemetry=sink
    )
    result = Host(device).replay(Trace("spans", requests))
    return sink, result, device


class TestRequestSpanTree:
    def test_single_write_span_structure(self):
        sink, result, device = _replay(requests=[
            Request(arrival_us=0.0, lba=0, size=2 * SECTOR, op=Op.WRITE),
        ])
        roots = [
            i for i, s in enumerate(sink.spans) if s[S_CAT] == "request"
        ]
        assert len(roots) == 1
        root = sink.spans[roots[0]]
        assert root[S_NAME] == "write"
        assert root[S_START] == 0.0
        # The request span covers exactly the recorded response time.
        assert root[S_DUR] == result.stats.response_us[0]
        children = sink.children_of(roots[0])
        child_names = [sink.spans[c][S_NAME] for c in children]
        assert "issue" in child_names
        assert "program" in child_names
        assert "xfer" in child_names
        # The program span runs on a unit track, the transfer on a channel.
        for child in children:
            span = sink.spans[child]
            if span[S_NAME] == "program":
                assert span[S_TRACK].startswith(device.units.name)
            if span[S_NAME] == "xfer":
                assert span[S_TRACK].startswith("channel")

    def test_read_emits_a_read_op_span(self):
        sink, _, _ = _replay(requests=[
            Request(arrival_us=0.0, lba=0, size=2 * SECTOR, op=Op.WRITE),
            Request(arrival_us=5_000.0, lba=0, size=2 * SECTOR, op=Op.READ),
        ])
        assert sink.spans_named("read")
        read_root = sink.spans[sink.spans_named("read")[0]]
        assert read_root[S_CAT] == "request"

    def test_queue_wait_span_appears_at_depth_pressure(self):
        # Back-to-back arrivals at queue_depth=1: the second request
        # waits, and its decomposition's queue component is that span.
        sink, result, _ = _replay(requests=[
            Request(arrival_us=0.0, lba=0, size=8 * SECTOR, op=Op.WRITE),
            Request(arrival_us=1.0, lba=16 * SECTOR, size=2 * SECTOR, op=Op.WRITE),
        ])
        waits = sink.spans_named("queue-wait")
        assert len(waits) == 1
        wait = sink.spans[waits[0]]
        assert wait[S_DUR] == result.stats.wait_us[1]
        assert sink.decompositions[1].components["queue"] == wait[S_DUR]

    def test_wake_up_span_after_a_long_gap(self):
        sink, _, _ = _replay(requests=[
            Request(arrival_us=0.0, lba=0, size=2 * SECTOR, op=Op.WRITE),
            Request(arrival_us=6e7, lba=16 * SECTOR, size=2 * SECTOR, op=Op.WRITE),
        ])
        assert sink.spans_named("wake-up")
        assert [e for e in sink.events if e[0] == "power-down"]


class TestFtlEvents:
    def test_ftl_write_and_read_events(self):
        sink, _, _ = _replay(requests=[
            Request(arrival_us=0.0, lba=0, size=2 * SECTOR, op=Op.WRITE),
            Request(arrival_us=5_000.0, lba=0, size=2 * SECTOR, op=Op.READ),
        ])
        names = [e[0] for e in sink.events]
        assert "ftl-write" in names
        assert "ftl-read" in names
        assert all(e[2] == "ftl" for e in sink.events if e[0].startswith("ftl-"))

    def test_bad_block_remap_event_under_program_faults(self):
        sink, _, _ = _replay(
            faults=FaultPlan(
                seed=5, program_error_rate=0.002, spare_blocks_per_plane=16
            ),
            requests=[
                Request(
                    arrival_us=i * 40.0,
                    lba=(i % 64) * SECTOR,
                    size=4 * SECTOR,
                    op=Op.WRITE,
                )
                for i in range(400)
            ],
        )
        assert [e for e in sink.events if e[0] == "bad-block-remap"]

    def test_idle_gc_event_fires_in_a_long_gap(self):
        requests = [
            Request(
                arrival_us=i * 50.0,
                lba=(i % 12) * SECTOR,
                size=4 * SECTOR,
                op=Op.WRITE,
            )
            for i in range(300)
        ]
        requests.append(
            Request(arrival_us=300 * 50.0 + 5e7, lba=0, size=2 * SECTOR,
                    op=Op.READ)
        )
        sink, _, _ = _replay(
            config=small_four_ps(idle_gc=True, idle_gc_soft_threshold=10**6),
            requests=requests,
        )
        idle = [e for e in sink.events if e[0] == "idle-gc"]
        assert idle and idle[0][4] > 0  # args = collections performed


class TestEccRetrySpans:
    def test_backoff_and_reread_spans(self):
        sink, result, _ = _replay(
            faults=FaultPlan(seed=11, read_error_rate=0.3),
            requests=[
                Request(
                    arrival_us=i * 300.0,
                    lba=(i % 16) * SECTOR,
                    size=2 * SECTOR,
                    op=Op.WRITE if i < 16 else Op.READ,
                )
                for i in range(200)
            ],
        )
        backoffs = [
            s for s in sink.spans if s[S_NAME].startswith("ecc-backoff")
        ]
        rereads = sink.spans_named("read-retry")
        assert backoffs and rereads
        assert all(s[S_CAT] == "fault" for s in backoffs)
        # Retry time surfaced in the decompositions too.
        assert sum(
            d.components["retry"] for d in sink.decompositions
        ) > 0.0


class TestRecovery:
    def test_recovery_event_and_sink_survival(self):
        plan = FaultPlan(seed=7, power_loss_at_event=60)
        sink = Telemetry()
        device = EmmcDevice(small_four_ps(), faults=plan, telemetry=sink)
        requests = [
            Request(
                arrival_us=i * 100.0,
                lba=(i % 24) * SECTOR,
                size=2 * SECTOR,
                op=Op.WRITE,
            )
            for i in range(80)
        ]
        for request in requests:
            device.arrive(request)
        device.kernel.interrupt_before(plan.power_loss_at_event)
        with pytest.raises(SimInterrupt):
            device.kernel.drain()
        spans_before = len(sink.spans)
        device.recover(at_us=device.kernel.now_us + 1_000.0)
        # The explicit sink rides through the power cycle onto the
        # successor kernel; recording continues where it left off.
        assert device.kernel.telemetry is sink
        assert [e for e in sink.events if e[0] == "recovery"]
        Host(device).replay(
            Trace("resume", [
                Request(
                    arrival_us=device.kernel.now_us + 100.0,
                    lba=0,
                    size=2 * SECTOR,
                    op=Op.READ,
                )
            ])
        )
        assert len(sink.spans) > spans_before
