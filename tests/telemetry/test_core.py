"""Telemetry sink API + the EventLoop record_events compatibility shim."""

import pytest

from repro.emmc import EmmcDevice, small_four_ps
from repro.sim import EventLoop, Host
from repro.telemetry import (
    S_DUR,
    S_NAME,
    S_PARENT,
    S_START,
    Telemetry,
    attach_telemetry,
)
from repro.trace import Op, Request, SECTOR, Trace


def _trace(num=10):
    return Trace(
        "core",
        [
            Request(
                arrival_us=i * 150.0,
                lba=(i % 8) * SECTOR,
                size=2 * SECTOR,
                op=Op.WRITE if i % 2 else Op.READ,
            )
            for i in range(num)
        ],
    )


class TestSink:
    def test_span_ids_are_indices(self):
        sink = Telemetry()
        a = sink.add_span("a", 0.0, 5.0)
        b = sink.add_span("b", 1.0, 2.0, parent=a)
        assert (a, b) == (0, 1)
        assert sink.spans[b][S_PARENT] == a
        assert sink.children_of(a) == [b]
        assert sink.spans_named("a") == [a]
        assert len(sink) == 2

    def test_parents_precede_children(self):
        # Exporters and the flame pass rely on it: a child's parent id is
        # always a smaller index (already fully recorded).
        sink = Telemetry()
        device = EmmcDevice(small_four_ps(), telemetry=sink)
        Host(device).replay(_trace())
        for index, span in enumerate(sink.spans):
            assert span[S_PARENT] < index

    def test_clear_drops_everything(self):
        sink = Telemetry()
        sink.add_span("a", 0.0, 1.0)
        sink.add_event("e", 2.0)
        sink.add_counter("c", 3.0, 4.0)
        sink.meta["k"] = "v"
        sink.clear()
        assert not sink.spans and not sink.events
        assert not sink.counters and not sink.meta

    def test_wall_span_context_manager(self):
        sink = Telemetry()
        with sink.wall_span("outer") as box:
            pass
        assert box[0] == 0
        name, _, _, parent, start, dur = sink.spans[0]
        assert name == "outer" and parent == -1
        assert dur >= 0.0

    def test_add_wall_span_origin_math(self):
        sink = Telemetry()
        sink.add_wall_span("w", started_s=10.5, ended_s=11.0, origin_s=10.0)
        span = sink.spans[0]
        assert span[S_START] == pytest.approx(0.5e6)
        assert span[S_DUR] == pytest.approx(0.5e6)


class TestAttach:
    def test_attach_after_construction(self):
        device = EmmcDevice(small_four_ps())
        sink = attach_telemetry(device)
        assert device.telemetry is sink
        assert device.kernel.telemetry is sink
        Host(device).replay(_trace())
        assert sink.spans and sink.decompositions

    def test_attach_refuses_a_used_device(self):
        device = EmmcDevice(small_four_ps())
        Host(device).replay(_trace())
        with pytest.raises(ValueError, match="already served"):
            attach_telemetry(device)


class TestRecordEventsShim:
    def test_default_records_nothing(self):
        kernel = EventLoop()
        assert kernel.telemetry is None
        assert not kernel.record_events
        assert kernel.event_trace == []
        assert kernel.recorded_events == []

    def test_true_auto_creates_a_sink(self):
        kernel = EventLoop(record_events=True)
        assert kernel.record_events
        kernel.schedule(1.0, label="x")
        kernel.run()
        assert len(kernel.event_trace) == 1
        assert kernel.event_trace[0][4] == "x"
        # The telemetry-era alias is the same live list.
        assert kernel.recorded_events is kernel.event_trace

    def test_setter_toggles_an_auto_sink(self):
        kernel = EventLoop()
        kernel.record_events = True
        assert kernel.telemetry is not None
        kernel.record_events = False
        assert kernel.telemetry is None

    def test_setter_never_drops_an_explicit_sink(self):
        sink = Telemetry()
        kernel = EventLoop(telemetry=sink)
        kernel.record_events = False
        assert kernel.telemetry is sink

    def test_event_trace_shape_is_the_legacy_tuple(self):
        kernel = EventLoop(record_events=True)
        kernel.schedule(5.0, label="probe")
        kernel.run()
        time_us, priority, seq, kind_name, label = kernel.event_trace[0]
        assert time_us == 5.0
        assert isinstance(priority, int) and isinstance(seq, int)
        assert kind_name == "GENERIC" and label == "probe"


class TestSuccessor:
    def test_no_sink_successor_has_no_sink(self):
        fresh = EventLoop().successor(10.0)
        assert fresh.telemetry is None
        assert fresh.now_us == 10.0

    def test_auto_sink_successor_gets_a_fresh_sink(self):
        kernel = EventLoop(record_events=True)
        kernel.schedule(1.0)
        kernel.run()
        fresh = kernel.successor(2.0)
        assert fresh.record_events
        assert fresh.telemetry is not kernel.telemetry
        # Old semantics: post-recovery trace starts empty.
        assert fresh.event_trace == []

    def test_explicit_sink_survives_succession(self):
        sink = Telemetry()
        kernel = EventLoop(telemetry=sink)
        fresh = kernel.successor(0.0)
        assert fresh.telemetry is sink
