"""Chrome-trace, flame-summary and span-store exporters."""

import json

import pytest

from repro.emmc import EmmcDevice, small_four_ps
from repro.sim import Host
from repro.telemetry import (
    SPAN_MANIFEST_NAME,
    SpanStoreError,
    Telemetry,
    chrome_trace,
    chrome_trace_events,
    chrome_trace_json,
    flame_summary,
    open_span_store,
    pack_spans,
    span_paths,
)
from repro.trace import Op, Request, SECTOR, Trace


def _trace(num=30):
    return Trace(
        "exporters",
        [
            Request(
                arrival_us=i * 200.0,
                lba=(i % 16) * SECTOR,
                size=2 * SECTOR,
                op=Op.WRITE if i % 3 else Op.READ,
            )
            for i in range(num)
        ],
    )


@pytest.fixture(scope="module")
def recorded():
    sink = Telemetry()
    sink.meta["app"] = "exporters"
    device = EmmcDevice(small_four_ps(), telemetry=sink)
    Host(device).replay(_trace())
    return sink


class TestChromeTrace:
    def test_metadata_precedes_records(self, recorded):
        events = chrome_trace_events(recorded)
        phases = [event["ph"] for event in events]
        last_meta = max(i for i, ph in enumerate(phases) if ph == "M")
        first_record = min(i for i, ph in enumerate(phases) if ph != "M")
        assert last_meta < first_record
        assert events[0]["name"] == "process_name"

    def test_span_counts_and_parent_links(self, recorded):
        events = chrome_trace_events(recorded)
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(recorded.spans)
        by_id = {e["args"]["id"]: e for e in complete}
        for event in complete:
            parent = event["args"].get("parent")
            if parent is not None:
                assert parent in by_id

    def test_kernel_events_ride_the_kernel_track(self, recorded):
        events = chrome_trace_events(recorded)
        kernel = [e for e in events if e.get("cat") == "kernel" and e["ph"] == "i"]
        assert len(kernel) == len(recorded.kernel_events)
        tids = {e["tid"] for e in kernel}
        assert len(tids) == 1

    def test_json_is_deterministic_and_loads(self, recorded):
        first = chrome_trace_json(recorded)
        assert first == chrome_trace_json(recorded)
        document = json.loads(first)
        assert document["metadata"] == {"app": "exporters"}
        assert document["displayTimeUnit"] == "ms"
        assert len(document["traceEvents"]) > len(recorded.spans)

    def test_writes_to_path_and_file_object(self, recorded, tmp_path):
        target = tmp_path / "trace.json"
        chrome_trace(recorded, str(target))
        import io

        buffer = io.StringIO()
        chrome_trace(recorded, buffer)
        assert target.read_text() == buffer.getvalue()
        assert target.read_text().endswith("\n")


class TestFlame:
    def test_paths_partition_every_span(self, recorded):
        aggregated = span_paths(recorded)
        assert sum(count for count, _ in aggregated.values()) == len(
            recorded.spans
        )

    def test_summary_header_and_rendering(self, recorded):
        text = flame_summary(recorded)
        header = text.splitlines()[0]
        assert header.startswith("flame:")
        assert "paths" in header
        assert "write" in text or "read" in text

    def test_empty_sink_renders(self):
        assert flame_summary(Telemetry()) == "flame: no spans recorded"

    def test_max_paths_truncates(self, recorded):
        text = flame_summary(recorded, max_paths=1)
        assert "more paths" in text


class TestSpanStore:
    def test_round_trip_and_verify(self, recorded, tmp_path):
        store_dir = tmp_path / "spans"
        manifest = pack_spans(recorded, str(store_dir), chunk_rows=64)
        assert manifest["total_rows"] == len(recorded.spans)
        store = open_span_store(str(store_dir))
        store.verify()
        assert len(store) == len(recorded.spans)
        rows = 0
        for chunk in store.iter_chunks():
            assert len(chunk.parent) == len(chunk.dur_us)
            rows += len(chunk)
        assert rows == len(recorded.spans)
        # Columns decode back to the original tuples.
        chunk = next(store.iter_chunks())
        name, cat, track, parent, start, dur = recorded.spans[0]
        assert store.names[chunk.name_id[0]] == name
        assert store.tracks[chunk.track_id[0]] == track
        assert chunk.parent[0] == parent
        assert chunk.start_us[0] == start and chunk.dur_us[0] == dur

    def test_totals_by_name_matches_in_memory(self, recorded, tmp_path):
        store_dir = tmp_path / "spans"
        pack_spans(recorded, str(store_dir), chunk_rows=32)
        store = open_span_store(str(store_dir))
        totals = store.totals_by_name()
        from repro.telemetry import S_DUR, S_NAME

        expected = {}
        for span in recorded.spans:
            count, total = expected.get(span[S_NAME], (0, 0.0))
            expected[span[S_NAME]] = (count + 1, total + span[S_DUR])
        assert set(totals) == set(expected)
        for name, (count, _) in expected.items():
            assert totals[name][0] == count

    def test_corruption_is_detected(self, recorded, tmp_path):
        store_dir = tmp_path / "spans"
        manifest = pack_spans(recorded, str(store_dir))
        chunk_path = store_dir / manifest["chunks"][0]["file"]
        data = bytearray(chunk_path.read_bytes())
        data[10] ^= 0xFF
        chunk_path.write_bytes(bytes(data))
        with pytest.raises(SpanStoreError, match="checksum"):
            open_span_store(str(store_dir)).verify()

    def test_overwrite_guard(self, recorded, tmp_path):
        store_dir = tmp_path / "spans"
        pack_spans(recorded, str(store_dir))
        with pytest.raises(SpanStoreError, match="already exists"):
            pack_spans(recorded, str(store_dir))
        pack_spans(recorded, str(store_dir), overwrite=True)

    def test_missing_store_raises(self, tmp_path):
        with pytest.raises(SpanStoreError, match="no span store"):
            open_span_store(str(tmp_path / "absent"))

    def test_manifest_is_deterministic(self, recorded, tmp_path):
        a = pack_spans(recorded, str(tmp_path / "a"))
        b = pack_spans(recorded, str(tmp_path / "b"))
        assert a == b
        assert (tmp_path / "a" / SPAN_MANIFEST_NAME).read_bytes() == (
            tmp_path / "b" / SPAN_MANIFEST_NAME
        ).read_bytes()
