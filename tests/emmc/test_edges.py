"""Edge cases across the eMMC package."""

import pytest

from repro.trace import KIB, Op, Request
from repro.emmc import (
    EmmcDevice,
    Geometry,
    GreedyGC,
    PageKind,
    PowerModel,
    PowerState,
    capacity_matches,
    describe_die,
    eight_ps,
    four_ps,
    hps,
    small_four_ps,
)
from repro.emmc.ftl import OutOfSpaceError, PageAllocator, PageMapping
from repro.emmc.ftl.blocks import Plane


class TestPowerBoundaries:
    def test_exactly_at_threshold_stays_active(self):
        power = PowerModel(power_threshold_us=100.0, warmup_us=10.0)
        power.record_activity_end(0.0)
        assert power.state_at(100.0) is PowerState.ACTIVE
        assert power.state_at(100.0001) is PowerState.LOW_POWER


class TestStructureHelpers:
    def test_describe_die_mentions_pools(self):
        text = describe_die(hps())
        assert "512 blocks" in text
        assert "256 blocks" in text
        assert "4096 MiB" in text

    def test_capacity_matches_false(self):
        small = small_four_ps()
        assert not capacity_matches(four_ps(), small)

    def test_capacity_matches_single(self):
        assert capacity_matches(eight_ps())


class TestGcEdges:
    def _plane(self, blocks=2, pages=2):
        geometry = Geometry(
            channels=1, dies_per_chip=1, planes_per_die=1,
            blocks_per_plane={PageKind.K4: blocks}, pages_per_block=pages,
        )
        return geometry, Plane.create(0, geometry)

    def test_reclaim_raises_when_free_zero_and_nothing_reclaimable(self):
        geometry, plane = self._plane()
        allocator = PageAllocator(geometry, [plane])
        mapping = PageMapping()
        # Fill both blocks with valid data (nothing reclaimable).
        for block_index in range(2):
            block = plane.take_free_block(PageKind.K4)
            for page in range(2):
                block.program((block_index * 2 + page,))
        gc = GreedyGC(threshold_blocks=1)
        with pytest.raises(OutOfSpaceError):
            gc.reclaim_until_safe(plane, PageKind.K4, allocator, mapping)

    def test_reclaim_stops_at_max_rounds(self):
        geometry, plane = self._plane(blocks=6)
        allocator = PageAllocator(geometry, [plane])
        mapping = PageMapping()
        # Several reclaimable blocks, but cap rounds at 1.
        for base in range(4):
            block = plane.take_free_block(PageKind.K4)
            block.program((base,))
            block.program((base + 100,))
            block.invalidate(0, 0)
            block.invalidate(1, 0)
        results = GreedyGC(threshold_blocks=4).reclaim_until_safe(
            plane, PageKind.K4, allocator, mapping, max_rounds=1
        )
        assert len(results) == 1


class TestDeviceEdges:
    def test_zero_arrival_request(self):
        device = EmmcDevice(small_four_ps())
        done = device.submit(Request(0.0, 0, 4 * KIB, Op.READ))
        assert done.no_wait

    def test_replay_empty_trace(self):
        from repro.trace import Trace

        result = EmmcDevice(small_four_ps()).replay(Trace("empty"))
        assert result.stats.requests == 0
        assert result.stats.mean_response_ms == 0.0
        assert result.stats.no_wait_ratio == 0.0

    def test_stats_properties_on_fresh_device(self):
        device = EmmcDevice(small_four_ps())
        assert device.stats.space_utilization == 1.0
        assert device.stats.padding_bytes == 0
        assert device.stats.write_amplification == 1.0

    def test_largest_supported_request(self):
        from repro.trace import MIB

        device = EmmcDevice(four_ps())
        done = device.submit(Request(0.0, 0, 16 * MIB, Op.WRITE))
        assert done.completed
        assert device.stats.page_programs[PageKind.K4] == 4096
