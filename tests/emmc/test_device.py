"""Integration-level tests for the eMMC device model."""

import pytest

from repro.trace import KIB, MIB, Op, Request, Trace
from repro.emmc import (
    EmmcDevice,
    PageKind,
    capacity_matches,
    eight_ps,
    four_ps,
    hps,
    small_eight_ps,
    small_four_ps,
    small_hps,
    table_v_configs,
)


def _req(at, lba, size, op=Op.WRITE):
    return Request(arrival_us=at, lba=lba, size=size, op=op)


class TestTableVConfigs:
    def test_three_schemes_same_capacity(self):
        configs = table_v_configs()
        assert set(configs) == {"4PS", "8PS", "HPS"}
        assert capacity_matches(*configs.values())
        assert configs["4PS"].geometry.capacity_bytes() == 32 * 1024**3

    def test_scheme_block_pools(self):
        assert four_ps().geometry.blocks_per_plane == {PageKind.K4: 1024}
        assert eight_ps().geometry.blocks_per_plane == {PageKind.K8: 512}
        assert hps().geometry.blocks_per_plane == {PageKind.K4: 512, PageKind.K8: 256}

    def test_small_configs_match_capacity(self):
        assert capacity_matches(small_four_ps(), small_eight_ps(), small_hps())

    def test_overrides(self):
        config = four_ps(idle_gc=True, gc_threshold_blocks=5)
        assert config.idle_gc
        assert config.gc_threshold_blocks == 5


class TestSubmit:
    def test_timestamps_ordered(self):
        device = EmmcDevice(small_four_ps())
        done = device.submit(_req(100.0, 0, 8 * KIB))
        assert done.arrival_us == 100.0
        assert done.service_start_us >= done.arrival_us
        assert done.finish_us > done.service_start_us

    def test_fifo_queueing(self):
        device = EmmcDevice(small_four_ps())
        first = device.submit(_req(0.0, 0, 256 * KIB))
        second = device.submit(_req(1.0, 0, 4 * KIB, Op.READ))
        assert second.service_start_us == pytest.approx(first.finish_us)
        assert not second.no_wait
        assert device.stats.no_wait_requests == 1

    def test_idle_device_serves_immediately(self):
        device = EmmcDevice(small_four_ps())
        first = device.submit(_req(0.0, 0, 4 * KIB))
        second = device.submit(_req(first.finish_us + 10.0, 4 * KIB, 4 * KIB))
        assert second.no_wait

    def test_read_faster_than_write(self):
        reads = EmmcDevice(small_four_ps())
        writes = EmmcDevice(small_four_ps())
        read = reads.submit(_req(0.0, 0, 16 * KIB, Op.READ))
        write = writes.submit(_req(0.0, 0, 16 * KIB, Op.WRITE))
        assert read.service_us < write.service_us

    def test_warmup_after_long_idle(self):
        device = EmmcDevice(small_four_ps())
        first = device.submit(_req(0.0, 0, 4 * KIB))
        # Arrive far beyond the power threshold: pays the warm-up.
        gap = device.latency.power_threshold_us + first.finish_us + 1.0
        woken = device.submit(_req(gap, 4 * KIB, 4 * KIB))
        busy = device.submit(_req(woken.finish_us + 10.0, 8 * KIB, 4 * KIB))
        assert woken.service_us == pytest.approx(
            busy.service_us + device.latency.warmup_us, rel=0.01
        )
        assert device.stats.wakeups == 1

    def test_larger_requests_take_longer(self):
        device = EmmcDevice(small_four_ps())
        small = device.submit(_req(0.0, 0, 4 * KIB, Op.READ))
        large = device.submit(_req(small.finish_us + 1, 0, 64 * KIB, Op.READ))
        assert large.service_us > small.service_us


class TestReplay:
    def test_replay_returns_completed_trace(self):
        trace = Trace("t", [_req(i * 5000.0, i * 8 * KIB, 8 * KIB) for i in range(20)])
        result = EmmcDevice(small_four_ps()).replay(trace)
        assert result.trace.completed
        assert result.stats.requests == 20
        assert result.config_name == "small-4PS"

    def test_mrt_positive(self):
        trace = Trace("t", [_req(i * 3000.0, 0, 4 * KIB) for i in range(10)])
        result = EmmcDevice(small_four_ps()).replay(trace)
        assert result.stats.mean_response_ms > 0
        assert result.stats.mean_response_ms >= result.stats.mean_service_ms * 0.99


class TestSpaceUtilization:
    def test_hps_and_4ps_never_pad(self):
        for config in (small_four_ps(), small_hps()):
            device = EmmcDevice(config)
            device.submit(_req(0.0, 0, 20 * KIB))
            assert device.stats.space_utilization == 1.0

    def test_8ps_pads_odd_writes(self):
        device = EmmcDevice(small_eight_ps())
        device.submit(_req(0.0, 0, 20 * KIB))
        assert device.stats.space_utilization == pytest.approx(20 / 24)
        assert device.stats.padding_bytes == 4 * KIB


def _tiny_config(**overrides):
    """A 2-plane, 8-blocks-per-plane device that fills up fast."""
    from repro.emmc import Geometry

    geometry = Geometry(
        channels=2,
        dies_per_chip=1,
        planes_per_die=1,
        blocks_per_plane={PageKind.K4: 8},
        pages_per_block=16,
    )
    return small_four_ps(geometry=geometry, **overrides)


class TestGcUnderPressure:
    def test_small_device_collects_garbage(self):
        device = EmmcDevice(_tiny_config(gc_threshold_blocks=2))
        # Hammer a small working set until well past device capacity.
        finish = 0.0
        for i in range(1200):
            lba = (i % 48) * 4 * KIB
            done = device.submit(_req(finish, lba, 4 * KIB))
            finish = done.finish_us
        assert device.stats.gc_collections > 0
        assert device.stats.erases > 0

    def test_idle_gc_reduces_foreground_gc(self):
        def hammer(config):
            device = EmmcDevice(config)
            at = 0.0
            for i in range(1200):
                done = device.submit(_req(at, (i % 48) * 4 * KIB, 4 * KIB))
                # Long think time: plenty of idle gaps for idle GC.
                at = done.finish_us + 300_000.0
            return device.stats

        baseline = hammer(_tiny_config(gc_threshold_blocks=2))
        with_idle = hammer(
            _tiny_config(gc_threshold_blocks=2, idle_gc=True, idle_gc_soft_threshold=6)
        )
        assert with_idle.idle_gc_collections > 0
        assert with_idle.gc_collections < baseline.gc_collections


class TestRamBufferPath:
    def test_buffered_device_absorbs_rewrites(self):
        config = small_four_ps(ram_buffer_bytes=1 * MIB)
        device = EmmcDevice(config)
        finish = 0.0
        for _ in range(50):
            done = device.submit(_req(finish, 0, 4 * KIB))
            finish = done.finish_us + 1
        # Every write after the first hits the same cached page: no flash I/O.
        assert device.stats.flash_bytes_consumed == 0
        read = device.submit(_req(finish + 1, 0, 4 * KIB, Op.READ))
        assert read.service_us <= device.buffer.hit_latency_us + 1e-6
