"""Unit tests for the FTL core (mapping, allocation, GC orchestration)."""

import pytest

from repro.emmc import Geometry, PageKind
from repro.emmc.ftl import Ftl, GreedyGC, OutOfSpaceError, PRELOADED_BLOCK
from repro.emmc.ops import FlashOpType, WriteGroup


def _small_ftl(kinds=None, blocks=8, pages=4, planes=2, gc_threshold=1):
    geometry = Geometry(
        channels=planes,
        dies_per_chip=1,
        planes_per_die=1,
        blocks_per_plane=kinds or {PageKind.K4: blocks},
        pages_per_block=pages,
    )
    return Ftl(geometry, gc=GreedyGC(gc_threshold))


def _write_one(ftl, lpn, kind=PageKind.K4):
    lpns = (lpn,) if kind.slots == 1 else (lpn, lpn + 1)
    return ftl.write([WriteGroup(kind, lpns)])


class TestWritePath:
    def test_write_updates_mapping(self):
        ftl = _small_ftl()
        outcome = _write_one(ftl, 7)
        assert len(outcome.ops) == 1
        assert outcome.ops[0].op_type is FlashOpType.PROGRAM
        location = ftl.mapping.lookup(7)
        assert location is not None
        assert location.kind is PageKind.K4

    def test_overwrite_invalidates_old(self):
        ftl = _small_ftl()
        _write_one(ftl, 7)
        old = ftl.mapping.lookup(7)
        _write_one(ftl, 7)
        new = ftl.mapping.lookup(7)
        assert (old.block_id, old.page) != (new.block_id, new.page) or old.plane != new.plane
        stale_block = ftl.planes[old.plane].block(old.kind, old.block_id)
        assert stale_block.invalid_count >= 1

    def test_round_robin_striping(self):
        ftl = _small_ftl(planes=2)
        first = _write_one(ftl, 1).ops[0].plane
        second = _write_one(ftl, 2).ops[0].plane
        assert first != second

    def test_accounting(self):
        ftl = _small_ftl(kinds={PageKind.K4: 4, PageKind.K8: 4})
        outcome = ftl.write([WriteGroup(PageKind.K8, (1, None))])
        assert outcome.data_bytes == 4096
        assert outcome.flash_bytes == 8192
        assert outcome.padding_bytes == 4096


class TestGcIntegration:
    def test_gc_triggers_when_pool_low(self):
        ftl = _small_ftl(blocks=3, pages=2, planes=1, gc_threshold=1)
        # Fill blocks with overwrites of a small working set so invalid
        # slots accumulate and GC can reclaim.
        gc_seen = 0
        for i in range(12):
            outcome = _write_one(ftl, i % 3)
            gc_seen += len(outcome.gc_results)
        assert gc_seen > 0
        assert ftl.gc_results_total == gc_seen

    def test_out_of_space_when_all_valid(self):
        ftl = _small_ftl(blocks=2, pages=2, planes=1, gc_threshold=1)
        with pytest.raises(OutOfSpaceError):
            for lpn in range(100):  # all distinct: nothing reclaimable
                _write_one(ftl, lpn)


class TestReadPath:
    def test_read_after_write_finds_data(self):
        ftl = _small_ftl()
        _write_one(ftl, 7)
        outcome = ftl.read([7])
        assert outcome.preloaded_pages == 0
        assert len(outcome.ops) == 1
        assert outcome.ops[0].op_type is FlashOpType.READ
        assert outcome.ops[0].payload_bytes == 4096

    def test_unmapped_read_preloads(self):
        ftl = _small_ftl()
        outcome = ftl.read([100])
        assert outcome.preloaded_pages == 1
        assert ftl.mapping.lookup(100).block_id == PRELOADED_BLOCK

    def test_preload_pairs_share_pages(self):
        ftl = _small_ftl(kinds={PageKind.K4: 4, PageKind.K8: 4})
        assert ftl.preload_kind is PageKind.K8
        outcome = ftl.read([10, 11])  # one aligned pair
        assert len(outcome.ops) == 1
        assert outcome.ops[0].payload_bytes == 8192

    def test_grouped_reads_one_op_per_physical_page(self):
        ftl = _small_ftl(kinds={PageKind.K8: 8})
        ftl.write([WriteGroup(PageKind.K8, (20, 21))])
        outcome = ftl.read([20, 21])
        assert len(outcome.ops) == 1

    def test_preload_deterministic(self):
        first = _small_ftl().read([42]).ops[0]
        second = _small_ftl().read([42]).ops[0]
        assert first.plane == second.plane


class TestIdleCollect:
    def test_idle_collect_reclaims(self):
        ftl = _small_ftl(blocks=4, pages=2, planes=1, gc_threshold=1)
        for i in range(6):
            _write_one(ftl, i % 2)
        free_before = ftl.planes[0].free_count(PageKind.K4)
        results = ftl.idle_collect(soft_threshold=4)
        assert results
        assert ftl.planes[0].free_count(PageKind.K4) > free_before

    def test_idle_collect_noop_when_healthy(self):
        ftl = _small_ftl(blocks=8)
        assert ftl.idle_collect(soft_threshold=1) == []


class TestCapacity:
    def test_free_pages_by_kind(self):
        ftl = _small_ftl(kinds={PageKind.K4: 2, PageKind.K8: 2}, pages=4, planes=2)
        free = ftl.free_pages_by_kind()
        assert free[PageKind.K4] == 2 * 2 * 4
        assert free[PageKind.K8] == 2 * 2 * 4

    def test_preload_kind_must_exist(self):
        geometry = Geometry(blocks_per_plane={PageKind.K4: 2}, pages_per_block=2)
        with pytest.raises(ValueError):
            Ftl(geometry, preload_kind=PageKind.K8)
