"""Unit tests for device geometry."""

import pytest

from repro.emmc import Geometry, PageKind


class TestPageKind:
    def test_sizes_and_slots(self):
        assert PageKind.K4.bytes == 4096
        assert PageKind.K4.slots == 1
        assert PageKind.K8.bytes == 8192
        assert PageKind.K8.slots == 2

    def test_str(self):
        assert str(PageKind.K8) == "8K"


class TestGeometry:
    def test_table_v_default_shape(self):
        geometry = Geometry()
        assert geometry.num_planes == 8
        assert geometry.num_dies == 4
        assert geometry.planes_per_channel == 4

    def test_capacity_4ps(self):
        geometry = Geometry(blocks_per_plane={PageKind.K4: 1024})
        assert geometry.capacity_bytes() == 32 * 1024**3

    def test_capacity_8ps(self):
        geometry = Geometry(blocks_per_plane={PageKind.K8: 512})
        assert geometry.capacity_bytes() == 32 * 1024**3

    def test_capacity_hps(self):
        geometry = Geometry(blocks_per_plane={PageKind.K4: 512, PageKind.K8: 256})
        assert geometry.capacity_bytes() == 32 * 1024**3

    def test_channel_striping_is_channel_first(self):
        geometry = Geometry()
        channels = [geometry.channel_of(p) for p in range(geometry.num_planes)]
        assert channels == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_first_planes_cover_all_dies(self):
        """Round-robin over the first num_dies planes must hit every die."""
        geometry = Geometry()
        dies = {geometry.die_of(p) for p in range(geometry.num_dies)}
        assert dies == set(range(geometry.num_dies))

    def test_decompose_round_trip(self):
        geometry = Geometry()
        seen = set()
        for plane in range(geometry.num_planes):
            parts = geometry.decompose(plane)
            assert parts not in seen
            seen.add(parts)
            channel, chip, die, plane_in_die = parts
            assert channel == geometry.channel_of(plane)
            assert 0 <= chip < geometry.chips_per_channel
            assert 0 <= die < geometry.dies_per_chip
            assert 0 <= plane_in_die < geometry.planes_per_die

    def test_out_of_range_plane_rejected(self):
        with pytest.raises(ValueError):
            Geometry().channel_of(8)

    def test_kinds_sorted_small_first(self):
        geometry = Geometry(blocks_per_plane={PageKind.K8: 1, PageKind.K4: 1})
        assert geometry.kinds() == [PageKind.K4, PageKind.K8]

    def test_multi_chip_die_indexing(self):
        """dies and channels stay distinct with 2 chips per channel."""
        geometry = Geometry(
            channels=2, chips_per_channel=2, dies_per_chip=2, planes_per_die=2,
            blocks_per_plane={PageKind.K4: 4}, pages_per_block=4,
        )
        assert geometry.num_planes == 16
        assert geometry.num_dies == 8
        dies = {geometry.die_of(p) for p in range(geometry.num_planes)}
        assert dies == set(range(8))
        # Each die is shared by exactly planes_per_die planes.
        from collections import Counter
        counts = Counter(geometry.die_of(p) for p in range(geometry.num_planes))
        assert all(count == 2 for count in counts.values())
        # A die belongs to exactly one channel.
        for plane in range(geometry.num_planes):
            die = geometry.die_of(plane)
            channel = geometry.channel_of(plane)
            for other in range(geometry.num_planes):
                if geometry.die_of(other) == die:
                    assert geometry.channel_of(other) == channel

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Geometry(channels=0)
        with pytest.raises(ValueError):
            Geometry(blocks_per_plane={})
        with pytest.raises(ValueError):
            Geometry(blocks_per_plane={PageKind.K4: 0})
