"""Unit tests for flash block and plane state."""

import pytest

from repro.emmc import Geometry, PageKind
from repro.emmc.ftl.blocks import Block, OutOfSpaceError, Plane


def _block(kind=PageKind.K4, pages=4):
    return Block(block_id=0, kind=kind, pages_per_block=pages)


class TestBlock:
    def test_program_advances_pointer(self):
        block = _block()
        assert block.program((7,)) == 0
        assert block.program((8,)) == 1
        assert block.write_ptr == 2
        assert block.valid_count == 2
        assert block.free_pages == 2

    def test_program_with_padding(self):
        block = _block(kind=PageKind.K8)
        block.program((7, None))
        assert block.valid_count == 1
        assert block.invalid_count == 1  # the padding slot counts as wasted

    def test_program_full_block_rejected(self):
        block = _block(pages=1)
        block.program((1,))
        with pytest.raises(RuntimeError, match="full"):
            block.program((2,))

    def test_program_wrong_slot_count_rejected(self):
        with pytest.raises(ValueError, match="slots"):
            _block(kind=PageKind.K8).program((1,))

    def test_invalidate(self):
        block = _block()
        block.program((7,))
        block.invalidate(0, 0)
        assert block.valid_count == 0
        assert block.invalid_count == 1

    def test_double_invalidate_rejected(self):
        block = _block()
        block.program((7,))
        block.invalidate(0, 0)
        with pytest.raises(RuntimeError, match="already invalid"):
            block.invalidate(0, 0)

    def test_valid_entries(self):
        block = _block(kind=PageKind.K8)
        block.program((10, 11))
        block.program((12, None))
        block.invalidate(0, 1)
        assert block.valid_entries() == [(0, 0, 10), (1, 0, 12)]

    def test_erase_resets_and_counts(self):
        block = _block()
        block.program((7,))
        block.invalidate(0, 0)
        block.erase()
        assert block.write_ptr == 0
        assert block.erase_count == 1
        assert block.free_pages == 4

    def test_erase_with_valid_data_rejected(self):
        block = _block()
        block.program((7,))
        with pytest.raises(RuntimeError, match="valid slots"):
            block.erase()


class TestPlane:
    @pytest.fixture
    def plane(self):
        geometry = Geometry(
            channels=1, dies_per_chip=1, planes_per_die=1,
            blocks_per_plane={PageKind.K4: 4}, pages_per_block=2,
        )
        return Plane.create(0, geometry)

    def test_create_populates_pools(self, plane):
        assert plane.free_count(PageKind.K4) == 4
        assert plane.active_block[PageKind.K4] is None

    def test_take_free_block_prefers_low_erase(self, plane):
        plane.blocks[PageKind.K4][0].erase_count = 5
        plane.blocks[PageKind.K4][1].erase_count = 1
        taken = plane.take_free_block(PageKind.K4)
        assert taken.block_id in (2, 3)  # erase count 0 preferred

    def test_take_free_exhausts(self, plane):
        for _ in range(4):
            plane.take_free_block(PageKind.K4)
        with pytest.raises(OutOfSpaceError):
            plane.take_free_block(PageKind.K4)

    def test_gc_candidates_exclude_active_and_free(self, plane):
        block = plane.take_free_block(PageKind.K4)
        plane.active_block[PageKind.K4] = block.block_id
        block.program((1,))
        block.program((2,))
        assert plane.gc_candidates(PageKind.K4) == []  # full but active
        other = plane.take_free_block(PageKind.K4)
        other.program((3,))
        other.program((4,))
        assert [b.block_id for b in plane.gc_candidates(PageKind.K4)] == [other.block_id]

    def test_total_free_pages(self, plane):
        assert plane.total_free_pages(PageKind.K4) == 8
        block = plane.take_free_block(PageKind.K4)
        plane.active_block[PageKind.K4] = block.block_id
        block.program((1,))
        assert plane.total_free_pages(PageKind.K4) == 7
