"""Unit tests for the hybrid log-block FTL."""

import pytest

from repro.trace import KIB, Op, Request
from repro.emmc import EmmcDevice, Geometry, PageKind, four_ps
from repro.emmc.ftl.block_mapped import BlockMappedFtl
from repro.emmc.ops import FlashOpType, WriteGroup


def _tiny():
    geometry = Geometry(
        channels=2, dies_per_chip=1, planes_per_die=1,
        blocks_per_plane={PageKind.K4: 16}, pages_per_block=4,
    )
    return BlockMappedFtl(geometry, log_blocks=2)


def _write(ftl, lpn):
    return ftl.write([WriteGroup(PageKind.K4, (lpn,))])


class TestValidation:
    def test_requires_4k_only(self):
        geometry = Geometry(blocks_per_plane={PageKind.K8: 4}, pages_per_block=4)
        with pytest.raises(ValueError):
            BlockMappedFtl(geometry)

    def test_needs_log_blocks(self):
        geometry = Geometry(blocks_per_plane={PageKind.K4: 4}, pages_per_block=4)
        with pytest.raises(ValueError):
            BlockMappedFtl(geometry, log_blocks=0)


class TestWritePath:
    def test_first_write_in_place_single_program(self):
        ftl = _tiny()
        outcome = _write(ftl, 5)
        ops = [op.op_type for op in outcome.ops]
        assert ops == [FlashOpType.PROGRAM]
        assert not outcome.gc_results

    def test_overwrite_goes_to_log(self):
        ftl = _tiny()
        _write(ftl, 5)
        outcome = _write(ftl, 5)
        assert [op.op_type for op in outcome.ops] == [FlashOpType.PROGRAM]
        logical_block = 5 // ftl.pages_per_block
        assert logical_block in ftl._logs

    def test_full_log_triggers_full_merge(self):
        ftl = _tiny()
        _write(ftl, 0)
        # Overwrite page 0 five times: 4 log slots + the fifth forces merge.
        merge_seen = False
        for _ in range(5):
            outcome = _write(ftl, 0)
            if outcome.gc_results:
                merge_seen = True
        assert merge_seen
        assert ftl.stats.full_merges >= 1
        assert ftl.stats.erases >= 2  # data + log block erased in a full merge

    def test_log_pool_limit_evicts_oldest(self):
        ftl = _tiny()  # pool of 2 log blocks
        for block in range(3):
            lpn = block * ftl.pages_per_block
            _write(ftl, lpn)
            _write(ftl, lpn)  # force a log for each logical block
        assert len(ftl._logs) <= 2
        assert ftl.stats.full_merges + ftl.stats.switch_merges >= 1


class TestReadPath:
    def test_read_after_write_hits_freshest_copy(self):
        ftl = _tiny()
        _write(ftl, 3)
        _write(ftl, 3)  # now in a log block
        outcome = ftl.read([3])
        assert len(outcome.ops) == 1
        log = ftl._logs[3 // ftl.pages_per_block]
        assert outcome.ops[0].plane == log.physical % ftl.geometry.num_planes

    def test_preloaded_read_materializes_block(self):
        ftl = _tiny()
        outcome = ftl.read([9])
        assert outcome.preloaded_pages == 1
        assert len(outcome.ops) == 1
        # Re-reading is no longer "preloaded".
        assert ftl.read([9]).preloaded_pages == 0

    def test_preloaded_then_overwrite_uses_log(self):
        ftl = _tiny()
        ftl.read([9])
        _write(ftl, 9)  # the page is occupied by pre-existing data
        assert 9 // ftl.pages_per_block in ftl._logs


class TestMergeCorrectness:
    def test_full_merge_preserves_all_pages(self):
        ftl = _tiny()
        for page in range(4):
            _write(ftl, page)  # fill logical block 0 in place
        for _ in range(5):
            _write(ftl, 1)  # overwrites -> log -> merge eventually
        # After any merges, reads still resolve without "preloaded".
        outcome = ftl.read([0, 1, 2, 3])
        assert outcome.preloaded_pages == 0
        assert len(outcome.ops) == 4


class TestDeviceIntegration:
    def test_device_with_hybrid_scheme(self):
        config = four_ps(mapping_scheme="hybrid-log", log_blocks=4)
        device = EmmcDevice(config)
        block_bytes = device.ftl.pages_per_block * 4 * KIB
        at = 0.0
        # Overwrites spread over more logical blocks than the log pool
        # holds: the pool thrashes and merges fire.
        for i in range(60):
            lba = (i % 6) * block_bytes
            device.submit(Request(at, lba, 4 * KIB, Op.WRITE))
            done = device.submit(Request(at + 1.0, lba, 4 * KIB, Op.WRITE))
            at = done.finish_us + 1.0
        assert device.ftl.stats.full_merges + device.ftl.stats.switch_merges > 0
        assert device.stats.requests == 120

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="mapping scheme"):
            EmmcDevice(four_ps(mapping_scheme="magic"))

    def test_hybrid_much_slower_on_random_overwrites(self):
        block_bytes = 1024 * 4 * KIB  # 4PS blocks hold 1,024 pages

        def mrt(scheme):
            device = EmmcDevice(four_ps(mapping_scheme=scheme))
            at = 0.0
            responses = []
            for i in range(300):
                # Random overwrites over 40 logical blocks: far beyond the
                # log pool, so the hybrid FTL merge-thrashes.
                lba = (i * 7 % 40) * block_bytes + (i % 3) * 4 * KIB
                device.submit(Request(at, lba, 4 * KIB, Op.WRITE))
                done = device.submit(Request(at + 1.0, lba, 4 * KIB, Op.WRITE))
                responses.append(done.response_us)
                at = done.finish_us + 100.0
            return sum(responses) / len(responses)

        assert mrt("hybrid-log") > 2 * mrt("page")
