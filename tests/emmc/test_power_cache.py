"""Unit tests for the power model and the optional RAM buffer."""

import pytest

from repro.emmc import PowerModel, PowerState, RamBuffer


class TestPowerModel:
    def test_starts_active(self):
        power = PowerModel(power_threshold_us=100.0, warmup_us=10.0)
        assert power.state_at(0.0) is PowerState.ACTIVE

    def test_drops_to_low_power_after_threshold(self):
        power = PowerModel(power_threshold_us=100.0, warmup_us=10.0)
        power.record_activity_end(50.0)
        assert power.state_at(140.0) is PowerState.ACTIVE
        assert power.state_at(151.0) is PowerState.LOW_POWER

    def test_wakeup_penalty_counts(self):
        power = PowerModel(power_threshold_us=100.0, warmup_us=10.0)
        power.record_activity_end(0.0)
        assert power.wakeup_penalty(500.0) == 10.0
        assert power.wakeups == 1
        assert power.mode_switches == 2

    def test_no_penalty_when_active(self):
        power = PowerModel(power_threshold_us=100.0, warmup_us=10.0)
        power.record_activity_end(0.0)
        assert power.wakeup_penalty(50.0) == 0.0
        assert power.wakeups == 0

    def test_activity_end_monotonic(self):
        power = PowerModel(power_threshold_us=100.0, warmup_us=10.0)
        power.record_activity_end(100.0)
        power.record_activity_end(50.0)
        assert power.last_activity_end_us == 100.0


class TestRamBuffer:
    def test_needs_one_page(self):
        with pytest.raises(ValueError):
            RamBuffer(capacity_bytes=100)

    def test_read_miss_then_write_hit(self):
        buffer = RamBuffer(capacity_bytes=16 * 4096)
        assert buffer.read([1, 2]) == [1, 2]  # cold: all miss
        buffer.write([1])
        assert buffer.read([1, 2]) == [2]  # 1 now cached (dirty)
        assert buffer.stats.read_hits == 1
        assert buffer.stats.read_misses == 3

    def test_eviction_returns_dirty_lru(self):
        buffer = RamBuffer(capacity_bytes=2 * 4096)
        assert buffer.write([1, 2]) == []
        evicted = buffer.write([3])
        assert evicted == [1]  # LRU dirty page flushed
        assert buffer.stats.flushed_pages == 1

    def test_rewrite_refreshes_lru(self):
        buffer = RamBuffer(capacity_bytes=2 * 4096)
        buffer.write([1, 2])
        buffer.write([1])  # refresh 1
        assert buffer.write([3]) == [2]

    def test_flush_all(self):
        buffer = RamBuffer(capacity_bytes=8 * 4096)
        buffer.write([1, 2, 3])
        assert sorted(buffer.flush_all()) == [1, 2, 3]
        assert len(buffer) == 0

    def test_hit_rate(self):
        buffer = RamBuffer(capacity_bytes=8 * 4096)
        assert buffer.stats.read_hit_rate == 0.0
        buffer.write([1])
        buffer.read([1])
        assert buffer.stats.read_hit_rate == 1.0
