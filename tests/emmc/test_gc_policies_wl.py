"""Tests for GC victim policies and static wear-leveling."""

import pytest

from repro.trace import KIB, Op, Request
from repro.emmc import (
    EmmcDevice,
    Geometry,
    GreedyGC,
    PageKind,
    StaticWearLeveler,
    VictimPolicy,
    collect_wear,
    small_four_ps,
)
from repro.emmc.ftl import PageAllocator, PageMapping, PhysicalLocation
from repro.emmc.ftl.blocks import Plane


def _tiny_geometry(blocks=8, pages=16):
    return Geometry(
        channels=2, dies_per_chip=1, planes_per_die=1,
        blocks_per_plane={PageKind.K4: blocks}, pages_per_block=pages,
    )


def _hammer(config, writes=1600, working_set=48):
    device = EmmcDevice(config)
    at = 0.0
    for i in range(writes):
        done = device.submit(Request(at, (i % working_set) * 4 * KIB, 4 * KIB, Op.WRITE))
        at = done.finish_us
    return device


class TestVictimPolicies:
    @pytest.mark.parametrize("policy", ["greedy", "fifo", "random"])
    def test_all_policies_reclaim(self, policy):
        config = small_four_ps(geometry=_tiny_geometry(), gc_policy=policy,
                               gc_threshold_blocks=2)
        device = _hammer(config)
        assert device.stats.erases > 0

    def test_greedy_migrates_least(self):
        """Greedy picks the most-invalid victim, so it moves the least data
        for the same reclaimed space (under a skewed overwrite pattern)."""
        migrations = {}
        for policy in ("greedy", "random"):
            config = small_four_ps(geometry=_tiny_geometry(), gc_policy=policy,
                                   gc_threshold_blocks=2)
            device = EmmcDevice(config)
            at = 0.0
            for i in range(2400):
                # Skewed: half the writes hammer a tiny hot set.
                lpn = (i % 8) if i % 2 else (i // 2 % 56)
                done = device.submit(Request(at, lpn * 4 * KIB, 4 * KIB, Op.WRITE))
                at = done.finish_us
            migrations[policy] = device.stats.gc_migrated_slots
        assert migrations["greedy"] <= migrations["random"]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            EmmcDevice(small_four_ps(gc_policy="best-effort"))

    def test_policy_enum_values(self):
        assert VictimPolicy("greedy") is VictimPolicy.GREEDY
        assert VictimPolicy("fifo") is VictimPolicy.FIFO


class TestStaticWearLeveling:
    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            StaticWearLeveler(spread_threshold=0)

    def test_noop_when_even(self):
        geometry = _tiny_geometry()
        plane = Plane.create(0, geometry)
        allocator = PageAllocator(geometry, [plane, Plane.create(1, geometry)])
        leveler = StaticWearLeveler(spread_threshold=4)
        gc = GreedyGC()
        assert leveler.maybe_level(plane, PageKind.K4, gc, allocator, PageMapping()) is None
        assert leveler.relocations == 0

    def test_bounds_spread_under_hot_cold_workload(self):
        """Half the LPNs are written once (cold), half rewritten forever.

        Without static WL the cold blocks never cycle; with it the spread
        stays near the threshold.
        """

        def run(static_wl):
            config = small_four_ps(
                geometry=_tiny_geometry(blocks=10, pages=8),
                gc_threshold_blocks=2,
                static_wl_threshold=static_wl,
            )
            device = EmmcDevice(config)
            at = 0.0
            # Cold data first: 40 LPNs written once.
            for lpn in range(40):
                done = device.submit(Request(at, lpn * 4 * KIB, 4 * KIB, Op.WRITE))
                at = done.finish_us
            # Then a hot set rewritten many times.
            for i in range(2600):
                lpn = 40 + (i % 8)
                done = device.submit(Request(at, lpn * 4 * KIB, 4 * KIB, Op.WRITE))
                at = done.finish_us
            return collect_wear(device.ftl.planes), device

        baseline, _ = run(None)
        leveled, device = run(6)
        assert device.ftl.wear_leveler.relocations > 0
        assert leveled.spread < baseline.spread
