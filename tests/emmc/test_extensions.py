"""Tests for the device extensions: queue depth, multi-plane, SLC mode."""

import pytest

from repro.trace import KIB, Op, Request
from repro.emmc import (
    EmmcDevice,
    Geometry,
    PageKind,
    four_ps,
    hps,
    hps_slc,
    small_four_ps,
)


def _req(at, lba, size, op=Op.WRITE):
    return Request(arrival_us=at, lba=lba, size=size, op=op)


class TestQueueDepth:
    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            small_four_ps(queue_depth=0)

    def test_deeper_queue_admits_concurrent_requests(self):
        shallow = EmmcDevice(small_four_ps())
        deep = EmmcDevice(small_four_ps(queue_depth=4))
        # Two requests arriving together: with depth 1 the second waits.
        for device in (shallow, deep):
            device.submit(_req(0.0, 0, 64 * KIB))
        second_shallow = shallow.submit(_req(1.0, 256 * KIB, 4 * KIB, Op.READ))
        second_deep = deep.submit(_req(1.0, 256 * KIB, 4 * KIB, Op.READ))
        assert second_shallow.wait_us > 0
        assert second_deep.wait_us == 0.0
        # Resources are still shared, so the deep response is not free.
        assert second_deep.finish_us > second_deep.arrival_us

    def test_depth_limit_enforced(self):
        device = EmmcDevice(small_four_ps(queue_depth=2))
        finishes = []
        for i in range(3):
            done = device.submit(_req(0.0, i * 64 * KIB, 64 * KIB))
            finishes.append(done)
        assert finishes[0].wait_us == 0.0
        assert finishes[1].wait_us == 0.0
        # Third request must wait for a slot.
        assert finishes[2].wait_us > 0.0


class TestMultiPlane:
    def test_multi_plane_speeds_up_parallel_writes(self):
        trace_writes = [(i * 4 * KIB, 4 * KIB) for i in range(8)]
        results = {}
        for multi_plane in (False, True):
            device = EmmcDevice(four_ps(multi_plane=multi_plane))
            done = device.submit(
                _req(0.0, 0, 64 * KIB)  # 16 pages spread over the planes
            )
            results[multi_plane] = done.service_us
        assert results[True] < results[False]

    def test_single_page_unaffected(self):
        for multi_plane in (False, True):
            device = EmmcDevice(four_ps(multi_plane=multi_plane))
            done = device.submit(_req(0.0, 0, 4 * KIB))
            assert done.service_us > 0


class TestSlcMode:
    def test_kind_properties(self):
        assert PageKind.K4_SLC.bytes == 4096
        assert PageKind.K4_SLC.is_slc
        assert not PageKind.K4.is_slc
        assert str(PageKind.K4_SLC) == "4K-SLC"

    def test_slc_blocks_expose_half_pages(self):
        geometry = Geometry(blocks_per_plane={PageKind.K4_SLC: 4}, pages_per_block=64)
        assert geometry.pages_for(PageKind.K4_SLC) == 32
        assert geometry.pages_for(PageKind.K4) == 64

    def test_hps_slc_capacity_is_24_gib(self):
        assert hps_slc().geometry.capacity_bytes() == 24 * 1024**3

    def test_slc_single_page_write_faster_than_mlc(self):
        mlc = EmmcDevice(hps())
        slc = EmmcDevice(hps_slc())
        mlc_done = mlc.submit(_req(0.0, 0, 4 * KIB))
        slc_done = slc.submit(_req(0.0, 0, 4 * KIB))
        # SLC program 400 us vs MLC 1385 us dominates the difference.
        assert slc_done.service_us < mlc_done.service_us - 500.0

    def test_slc_pool_still_perfect_utilization(self):
        device = EmmcDevice(hps_slc())
        device.submit(_req(0.0, 0, 20 * KIB))
        assert device.stats.space_utilization == 1.0

    def test_kinds_order_deterministic(self):
        geometry = hps_slc().geometry
        assert geometry.kinds() == [PageKind.K4_SLC, PageKind.K8]
