"""Property-based tests: FTL consistency under random workloads."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import KIB, Op, Request
from repro.emmc import EmmcDevice, Geometry, PageKind
from repro.emmc.device import DeviceConfig
from repro.emmc.ftl import PRELOADED_BLOCK


def _tiny_device(kinds):
    geometry = Geometry(
        channels=2,
        dies_per_chip=1,
        planes_per_die=1,
        blocks_per_plane=kinds,
        pages_per_block=16,
    )
    return EmmcDevice(DeviceConfig(name="prop", geometry=geometry))


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from([Op.READ, Op.WRITE]),
        st.integers(min_value=0, max_value=40),  # lpn
        st.integers(min_value=1, max_value=6),  # pages
    ),
    min_size=1,
    max_size=120,
)


@given(ops=ops_strategy, scheme=st.sampled_from(["4PS", "8PS", "HPS"]))
@settings(max_examples=40, deadline=None)
def test_mapping_stays_consistent(ops, scheme):
    """After any request sequence: every mapped LPN points at a valid slot
    holding exactly that LPN, and valid counts equal the mapping's view."""
    kinds = {
        "4PS": {PageKind.K4: 8},
        "8PS": {PageKind.K8: 4},
        "HPS": {PageKind.K4: 4, PageKind.K8: 2},
    }[scheme]
    device = _tiny_device(kinds)
    at = 0.0
    written = set()
    for op, lpn, pages in ops:
        request = Request(arrival_us=at, lba=lpn * 4 * KIB, size=pages * 4 * KIB, op=op)
        done = device.submit(request)
        at = done.finish_us + 1.0
        if op is Op.WRITE:
            written.update(range(lpn, lpn + pages))
    ftl = device.ftl
    mapped_in_blocks = 0
    for lpn in written:
        location = ftl.mapping.lookup(lpn)
        assert location is not None
        assert location.block_id != PRELOADED_BLOCK
        block = ftl.planes[location.plane].block(location.kind, location.block_id)
        assert block.slots[location.page][location.slot] == lpn
        mapped_in_blocks += 1
    # Every block's valid_count equals the number of slots the mapping
    # still points at within that block.
    for plane in ftl.planes:
        for pool in plane.blocks.values():
            for block in pool:
                pointed = sum(
                    1
                    for page, slots in enumerate(block.slots)
                    for slot, lpn in enumerate(slots)
                    if lpn is not None
                )
                assert pointed == block.valid_count


@given(ops=ops_strategy)
@settings(max_examples=30, deadline=None)
def test_timestamps_always_well_formed(ops):
    device = _tiny_device({PageKind.K4: 8})
    at = 0.0
    previous_finish = 0.0
    for op, lpn, pages in ops:
        done = device.submit(
            Request(arrival_us=at, lba=lpn * 4 * KIB, size=pages * 4 * KIB, op=op)
        )
        assert done.service_start_us >= done.arrival_us
        assert done.finish_us > done.service_start_us
        # FIFO: service never starts before the previous request finished.
        assert done.service_start_us >= previous_finish - 1e-6
        previous_finish = done.finish_us
        at += 500.0


@given(sizes=st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=60))
@settings(max_examples=40, deadline=None)
def test_space_utilization_invariants(sizes):
    """4PS/HPS never pad; 8PS utilization equals pages/ceil-to-even."""
    devices = {
        "4PS": _tiny_device({PageKind.K4: 16}),
        "8PS": _tiny_device({PageKind.K8: 8}),
        "HPS": _tiny_device({PageKind.K4: 8, PageKind.K8: 4}),
    }
    at = 0.0
    total_pages = 0
    consumed_8ps_pages = 0
    for pages in sizes:
        total_pages += pages
        consumed_8ps_pages += 2 * ((pages + 1) // 2)
        for device in devices.values():
            device.submit(Request(arrival_us=at, lba=0, size=pages * 4 * KIB, op=Op.WRITE))
        at += 100_000.0
    assert devices["4PS"].stats.space_utilization == 1.0
    assert devices["HPS"].stats.space_utilization == 1.0
    expected = total_pages / consumed_8ps_pages
    assert abs(devices["8PS"].stats.space_utilization - expected) < 1e-9
