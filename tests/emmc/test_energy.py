"""Tests for the energy model and busy-time accounting."""

import pytest

from repro.trace import KIB, Op, Request
from repro.emmc import EmmcDevice, EnergyParams, energy_report, small_four_ps
from repro.emmc.energy import EnergyReport


def _req(at, lba, size, op=Op.WRITE):
    return Request(arrival_us=at, lba=lba, size=size, op=op)


class TestBusyTimeAccounting:
    def test_write_accumulates_program_and_transfer(self):
        device = EmmcDevice(small_four_ps())
        device.submit(_req(0.0, 0, 8 * KIB))
        assert device.stats.busy_program_us == pytest.approx(2 * 1385.0)
        assert device.stats.busy_transfer_us > 0
        assert device.stats.busy_read_us == 0

    def test_read_accumulates_read_time(self):
        device = EmmcDevice(small_four_ps())
        device.submit(_req(0.0, 0, 8 * KIB, Op.READ))
        assert device.stats.busy_read_us == pytest.approx(2 * 160.0)

    def test_idle_split_by_threshold(self):
        device = EmmcDevice(small_four_ps())
        threshold = device.latency.power_threshold_us
        first = device.submit(_req(0.0, 0, 4 * KIB))
        gap = threshold * 3
        device.submit(_req(first.finish_us + gap, 4 * KIB, 4 * KIB))
        assert device.stats.active_idle_us == pytest.approx(threshold)
        assert device.stats.low_power_us == pytest.approx(gap - threshold)

    def test_short_gap_all_active_idle(self):
        device = EmmcDevice(small_four_ps())
        first = device.submit(_req(0.0, 0, 4 * KIB))
        device.submit(_req(first.finish_us + 1000.0, 4 * KIB, 4 * KIB))
        assert device.stats.active_idle_us == pytest.approx(1000.0)
        assert device.stats.low_power_us == 0.0


class TestEnergyReport:
    def test_breakdown_and_total(self):
        device = EmmcDevice(small_four_ps())
        first = device.submit(_req(0.0, 0, 4 * KIB))
        device.submit(_req(first.finish_us + 500_000.0, 4 * KIB, 4 * KIB, Op.READ))
        report = energy_report(device.stats)
        assert report.total_uj > 0
        assert report.program_uj > report.read_uj  # one program vs one read
        assert report.wakeup_uj == EnergyParams().wakeup_uj  # one wake-up
        total = (report.read_uj + report.program_uj + report.erase_uj
                 + report.transfer_uj + report.active_idle_uj
                 + report.low_power_uj + report.wakeup_uj)
        assert report.total_uj == pytest.approx(total)

    def test_idle_share(self):
        report = EnergyReport(10, 10, 0, 0, 60, 20, 0)
        assert report.idle_share == pytest.approx(0.8)
        empty = EnergyReport(0, 0, 0, 0, 0, 0, 0)
        assert empty.idle_share == 0.0

    def test_params_validated(self):
        with pytest.raises(ValueError):
            EnergyParams(read_mw=-1.0)

    def test_sleepier_threshold_saves_energy(self):
        """Lower threshold -> more time in low-power -> less energy."""
        import dataclasses

        def run(threshold):
            config = small_four_ps()
            config = config.with_overrides(
                latency=dataclasses.replace(config.latency, power_threshold_us=threshold)
            )
            device = EmmcDevice(config)
            at = 0.0
            for i in range(20):
                done = device.submit(_req(at, i * 4 * KIB, 4 * KIB))
                at = done.finish_us + 2_000_000.0  # 2 s think time
            return energy_report(device.stats).total_uj

        assert run(10_000.0) < run(1_000_000.0)
