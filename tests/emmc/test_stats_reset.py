"""Regression tests for the DeviceStats reuse guarantee.

The fleet executor asserts ``device.stats.fresh`` before every replay;
these tests pin the contract: a just-constructed stats object is fresh,
any replay dirties it, and ``reset()`` restores it to the constructed
state field for field.
"""

from repro.emmc import EmmcDevice, PageKind, small_four_ps
from repro.emmc.stats import DeviceStats
from repro.sim import Host
from repro.workloads import generate_trace


class TestFreshness:
    def test_constructed_stats_are_fresh(self):
        assert DeviceStats().fresh

    def test_fresh_device_stats_are_fresh(self):
        assert EmmcDevice(small_four_ps()).stats.fresh

    def test_any_touch_makes_stats_stale(self):
        stats = DeviceStats()
        stats.requests += 1
        assert not stats.fresh

    def test_sample_lists_make_stats_stale(self):
        stats = DeviceStats()
        stats.response_us.append(1.0)
        assert not stats.fresh

    def test_per_kind_dicts_make_stats_stale(self):
        stats = DeviceStats()
        stats.record_op_counts(PageKind.K4, reads=1)
        assert not stats.fresh

    def test_replay_makes_stats_stale(self):
        device = EmmcDevice(small_four_ps())
        trace = generate_trace("Twitter", seed=1, num_requests=10)
        Host(device).replay(trace)
        assert not device.stats.fresh


class TestReset:
    def test_reset_restores_constructed_state(self):
        device = EmmcDevice(small_four_ps())
        trace = generate_trace("Twitter", seed=1, num_requests=10)
        Host(device).replay(trace)
        device.stats.reset()
        assert device.stats.fresh
        assert vars(device.stats) == vars(DeviceStats())

    def test_reset_is_idempotent(self):
        stats = DeviceStats()
        stats.reset()
        stats.reset()
        assert stats.fresh

    def test_reset_does_not_alias_defaults(self):
        # The reset lists/dicts must be fresh objects, not shared with
        # other instances' defaults.
        a, b = DeviceStats(), DeviceStats()
        a.reset()
        a.response_us.append(1.0)
        a.page_reads[PageKind.K4] = 1
        assert b.response_us == []
        assert b.page_reads == {}
