"""Unit tests for the greedy garbage collector."""

import pytest

from repro.emmc import Geometry, PageKind
from repro.emmc.ftl import GreedyGC, PageAllocator, PageMapping, PhysicalLocation
from repro.emmc.ftl.blocks import Plane
from repro.emmc.ops import FlashOpType


def _plane(blocks=4, pages=2, kind=PageKind.K4):
    geometry = Geometry(
        channels=1, dies_per_chip=1, planes_per_die=1,
        blocks_per_plane={kind: blocks}, pages_per_block=pages,
    )
    return Plane.create(0, geometry), PageAllocator(geometry, [Plane.create(0, geometry)])


def _fill_block(plane, mapping, kind, lpn_base, invalid_slots=0):
    """Take a free block, fill it, optionally invalidate some slots."""
    block = plane.take_free_block(kind)
    index = 0
    for page in range(block.pages_per_block):
        lpns = tuple(lpn_base + index + s for s in range(kind.slots))
        block.program(lpns)
        for slot, lpn in enumerate(lpns):
            mapping.update(lpn, PhysicalLocation(0, kind, block.block_id, page, slot))
        index += kind.slots
    entries = block.valid_entries()
    for page, slot, _ in entries[:invalid_slots]:
        block.invalidate(page, slot)
    return block


class TestVictimSelection:
    def test_prefers_most_invalid(self):
        plane, _ = _plane()
        mapping = PageMapping()
        _fill_block(plane, mapping, PageKind.K4, 0, invalid_slots=1)
        dirtier = _fill_block(plane, mapping, PageKind.K4, 10, invalid_slots=2)
        gc = GreedyGC()
        assert gc.select_victim(plane, PageKind.K4).block_id == dirtier.block_id

    def test_no_victim_when_all_valid(self):
        plane, _ = _plane()
        mapping = PageMapping()
        _fill_block(plane, mapping, PageKind.K4, 0, invalid_slots=0)
        assert GreedyGC().select_victim(plane, PageKind.K4) is None

    def test_needs_gc_threshold(self):
        plane, _ = _plane(blocks=4)
        mapping = PageMapping()
        _fill_block(plane, mapping, PageKind.K4, 0, invalid_slots=1)
        gc = GreedyGC(threshold_blocks=2)
        # 3 free blocks left > threshold 2: no GC needed yet.
        assert not gc.needs_gc(plane, PageKind.K4)
        _fill_block(plane, mapping, PageKind.K4, 10, invalid_slots=1)
        # 2 free <= 2 and a victim exists.
        assert gc.needs_gc(plane, PageKind.K4)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            GreedyGC(threshold_blocks=0)


class TestCollect:
    def test_collect_migrates_and_erases(self):
        geometry = Geometry(
            channels=1, dies_per_chip=1, planes_per_die=1,
            blocks_per_plane={PageKind.K4: 4}, pages_per_block=2,
        )
        plane = Plane.create(0, geometry)
        allocator = PageAllocator(geometry, [plane])
        mapping = PageMapping()
        victim = _fill_block(plane, mapping, PageKind.K4, 0, invalid_slots=1)
        result = GreedyGC().collect(plane, PageKind.K4, allocator, mapping)
        assert result is not None
        assert result.migrated_slots == 1
        assert result.erased_block == victim.block_id
        # Victim is back in the free pool, erased once.
        assert victim.block_id in plane.free_blocks[PageKind.K4]
        assert victim.erase_count == 1
        # Ops: one read (page with valid data), one program, one erase.
        op_types = [op.op_type for op in result.ops]
        assert op_types == [FlashOpType.READ, FlashOpType.PROGRAM, FlashOpType.ERASE]
        assert all(op.gc for op in result.ops)
        # The surviving LPN is still mapped, elsewhere.
        survivor = mapping.lookup(1)
        assert survivor is not None
        assert survivor.block_id != victim.block_id or survivor.page != 0

    def test_collect_repacks_8k_pages(self):
        geometry = Geometry(
            channels=1, dies_per_chip=1, planes_per_die=1,
            blocks_per_plane={PageKind.K8: 4}, pages_per_block=2,
        )
        plane = Plane.create(0, geometry)
        allocator = PageAllocator(geometry, [plane])
        mapping = PageMapping()
        block = _fill_block(plane, mapping, PageKind.K8, 0, invalid_slots=1)
        assert block.valid_count == 3
        result = GreedyGC().collect(plane, PageKind.K8, allocator, mapping)
        # Three valid slots re-packed into two 8K pages (2 + 1 padded).
        programs = [op for op in result.ops if op.op_type is FlashOpType.PROGRAM]
        assert len(programs) == 2

    def test_collect_returns_none_without_victim(self):
        plane, _ = _plane()
        geometry = Geometry(
            channels=1, dies_per_chip=1, planes_per_die=1,
            blocks_per_plane={PageKind.K4: 4}, pages_per_block=2,
        )
        allocator = PageAllocator(geometry, [plane])
        assert GreedyGC().collect(plane, PageKind.K4, allocator, PageMapping()) is None
