"""Unit tests for DeviceStats derived metrics."""

import pytest

from repro.emmc import DeviceStats, PageKind


class TestDerivedMetrics:
    def test_means_from_samples(self):
        stats = DeviceStats()
        stats.response_us = [1000.0, 3000.0]
        stats.service_us = [500.0, 1500.0]
        assert stats.mean_response_ms == pytest.approx(2.0)
        assert stats.mean_service_ms == pytest.approx(1.0)

    def test_empty_means(self):
        stats = DeviceStats()
        assert stats.mean_response_ms == 0.0
        assert stats.mean_service_ms == 0.0

    def test_no_wait_ratio(self):
        stats = DeviceStats()
        stats.requests = 4
        stats.no_wait_requests = 3
        assert stats.no_wait_ratio == pytest.approx(0.75)

    def test_space_utilization(self):
        stats = DeviceStats()
        stats.data_bytes_written = 20 * 1024
        stats.flash_bytes_consumed = 24 * 1024
        assert stats.space_utilization == pytest.approx(20 / 24)
        assert stats.padding_bytes == 4 * 1024

    def test_write_amplification_floor(self):
        stats = DeviceStats()
        stats.flash_bytes_consumed = 100
        stats.page_programs = {}  # no program records -> no GC share
        assert stats.write_amplification == 1.0

    def test_write_amplification_with_gc(self):
        stats = DeviceStats()
        stats.flash_bytes_consumed = 8192
        stats.page_programs = {PageKind.K4: 4}  # 16 KiB programmed total
        assert stats.write_amplification == pytest.approx(2.0)

    def test_record_op_counts_accumulates(self):
        stats = DeviceStats()
        stats.record_op_counts(PageKind.K4, reads=2)
        stats.record_op_counts(PageKind.K4, reads=1, programs=3)
        stats.record_op_counts(PageKind.K8, programs=1)
        assert stats.page_reads[PageKind.K4] == 3
        assert stats.page_programs[PageKind.K4] == 3
        assert stats.page_programs[PageKind.K8] == 1
