"""Tests for device snapshots and structure helpers."""

from repro.trace import KIB, Op, Request
from repro.emmc import EmmcDevice, PageKind, four_ps, hps, plane_layout, small_four_ps


class TestDescribe:
    def test_fresh_device(self):
        text = EmmcDevice(hps()).describe()
        assert "HPS" in text
        assert "32 GiB" in text
        assert "served 0 requests" in text

    def test_after_activity(self):
        device = EmmcDevice(small_four_ps())
        device.submit(Request(0.0, 0, 8 * KIB, Op.WRITE))
        text = device.describe()
        assert "served 1 requests" in text
        assert "wrote 8 KiB" in text
        assert "wear:" in text

    def test_hybrid_ftl_skips_wear_section(self):
        device = EmmcDevice(four_ps(mapping_scheme="hybrid-log"))
        device.submit(Request(0.0, 0, 4 * KIB, Op.WRITE))
        assert "wear:" not in device.describe()


class TestPlaneLayout:
    def test_matches_geometry(self):
        layout = plane_layout(hps())
        assert layout == {PageKind.K4: 512, PageKind.K8: 256}
        # A copy, not a live view.
        layout[PageKind.K4] = 0
        assert plane_layout(hps())[PageKind.K4] == 512
