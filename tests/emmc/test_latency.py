"""Unit tests for the latency model."""

import pytest

from repro.emmc import LatencyParams, PageKind, PageTiming, TABLE_V_TIMINGS


class TestTableV:
    def test_values_match_paper(self):
        assert TABLE_V_TIMINGS[PageKind.K4].read_us == 160.0
        assert TABLE_V_TIMINGS[PageKind.K4].program_us == 1385.0
        assert TABLE_V_TIMINGS[PageKind.K8].read_us == 244.0
        assert TABLE_V_TIMINGS[PageKind.K8].program_us == 1491.0
        assert LatencyParams().erase_us == 3800.0


class TestLatencyParams:
    def test_transfer_includes_command_overhead(self):
        latency = LatencyParams(bus_bytes_per_us=64.0, command_overhead_us=10.0)
        assert latency.transfer_us(6400) == pytest.approx(110.0)

    def test_timing_lookup(self):
        latency = LatencyParams()
        assert latency.timing(PageKind.K8).program_us == 1491.0

    def test_missing_kind_raises(self):
        latency = LatencyParams(page={PageKind.K4: PageTiming(1.0, 2.0)})
        with pytest.raises(KeyError):
            latency.timing(PageKind.K8)

    def test_validation(self):
        with pytest.raises(ValueError):
            PageTiming(read_us=0.0, program_us=1.0)
        with pytest.raises(ValueError):
            LatencyParams(erase_us=0.0)
        with pytest.raises(ValueError):
            LatencyParams(command_overhead_us=-1.0)
        with pytest.raises(ValueError):
            LatencyParams(power_threshold_us=0.0)
