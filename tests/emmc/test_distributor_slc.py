"""Distributor behaviour with the SLC-augmented kind set."""

from repro.trace import KIB, Op, Request
from repro.emmc import PageKind, RequestDistributor


def _write(size_kib):
    return Request(arrival_us=0.0, lba=0, size=size_kib * KIB, op=Op.WRITE)


class TestSlcDistribution:
    def test_hps_slc_splits_like_hps(self):
        distributor = RequestDistributor([PageKind.K4_SLC, PageKind.K8])
        groups = distributor.split_write(_write(20))
        assert [g.kind for g in groups] == [PageKind.K8, PageKind.K8, PageKind.K4_SLC]
        assert distributor.flash_bytes_for(_write(20)) == 20 * KIB

    def test_single_page_goes_to_slc(self):
        distributor = RequestDistributor([PageKind.K4_SLC, PageKind.K8])
        groups = distributor.split_write(_write(4))
        assert groups[0].kind is PageKind.K4_SLC

    def test_pure_slc_device(self):
        distributor = RequestDistributor([PageKind.K4_SLC])
        groups = distributor.split_write(_write(12))
        assert len(groups) == 3
        assert all(g.kind is PageKind.K4_SLC for g in groups)

    def test_slc_sorts_before_mlc_at_same_size(self):
        distributor = RequestDistributor([PageKind.K4, PageKind.K4_SLC])
        # Mixed same-size pools: smallest is deterministic (mode ordering).
        assert distributor.smallest in (PageKind.K4_SLC, PageKind.K4)
        assert distributor.largest.bytes == 4096
