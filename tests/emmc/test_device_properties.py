"""Property-based tests for device-level conservation laws."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import KIB, Op, Request
from repro.emmc import EmmcDevice, PageKind, small_eight_ps, small_four_ps, small_hps

write_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=64),  # start page
        st.integers(min_value=1, max_value=8),  # pages
    ),
    min_size=1,
    max_size=50,
)


@given(specs=write_specs, scheme=st.sampled_from(["4PS", "8PS", "HPS"]))
@settings(max_examples=30, deadline=None)
def test_flash_consumption_conservation(specs, scheme):
    """flash consumed == data written + padding; padding only on 8PS."""
    config = {"4PS": small_four_ps, "8PS": small_eight_ps, "HPS": small_hps}[scheme]()
    device = EmmcDevice(config)
    at = 0.0
    total = 0
    for start, pages in specs:
        size = pages * 4 * KIB
        total += size
        done = device.submit(Request(at, start * 4 * KIB, size, Op.WRITE))
        at = done.finish_us + 100.0
    stats = device.stats
    assert stats.data_bytes_written == total
    assert stats.flash_bytes_consumed == stats.data_bytes_written + stats.padding_bytes
    if scheme in ("4PS", "HPS"):
        assert stats.padding_bytes == 0
    else:
        odd_writes = sum(1 for _, pages in specs if pages % 2)
        assert stats.padding_bytes == odd_writes * 4 * KIB


@given(specs=write_specs)
@settings(max_examples=25, deadline=None)
def test_program_counts_match_distributor_math(specs):
    """HPS programs exactly pages//2 8K pages + pages%2 4K pages per write
    (absent GC, which the small working set avoids here)."""
    device = EmmcDevice(small_hps())
    at = 0.0
    expected_k8 = 0
    expected_k4 = 0
    for start, pages in specs[:20]:  # keep well under GC pressure
        expected_k8 += pages // 2
        expected_k4 += pages % 2
        done = device.submit(Request(at, start * 4 * KIB, pages * 4 * KIB, Op.WRITE))
        at = done.finish_us + 100.0
    if device.stats.gc_collections == 0:
        assert device.stats.page_programs.get(PageKind.K8, 0) == expected_k8
        assert device.stats.page_programs.get(PageKind.K4, 0) == expected_k4


@given(
    specs=write_specs,
    gap_us=st.floats(min_value=10.0, max_value=50_000.0),
)
@settings(max_examples=25, deadline=None)
def test_response_time_accounting(specs, gap_us):
    """response == wait + service for every request, and sums match."""
    device = EmmcDevice(small_four_ps())
    at = 0.0
    for start, pages in specs:
        done = device.submit(Request(at, start * 4 * KIB, pages * 4 * KIB, Op.WRITE))
        assert abs(done.response_us - (done.wait_us + done.service_us)) < 1e-6
        at += gap_us
    stats = device.stats
    assert len(stats.response_us) == len(specs)
    total_resp = sum(stats.response_us)
    total_parts = sum(stats.wait_us) + sum(stats.service_us)
    assert abs(total_resp - total_parts) < 1e-3
