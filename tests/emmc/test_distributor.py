"""Unit tests for the request distributor (the HPS splitting policy)."""

import pytest

from repro.trace import KIB, Op, Request
from repro.emmc import PageKind, RequestDistributor


def _write(size_kib, lba=0):
    return Request(arrival_us=0.0, lba=lba, size=size_kib * KIB, op=Op.WRITE)


HPS = RequestDistributor([PageKind.K4, PageKind.K8])
PS4 = RequestDistributor([PageKind.K4])
PS8 = RequestDistributor([PageKind.K8])


class TestPaperExample:
    """Section V-A's worked example: a 20 KB write."""

    def test_hps_two_8k_plus_one_4k(self):
        groups = HPS.split_write(_write(20))
        kinds = [group.kind for group in groups]
        assert kinds == [PageKind.K8, PageKind.K8, PageKind.K4]
        assert HPS.flash_bytes_for(_write(20)) == 20 * KIB  # no waste

    def test_8ps_three_8k_wastes_4k(self):
        groups = PS8.split_write(_write(20))
        assert [group.kind for group in groups] == [PageKind.K8] * 3
        assert PS8.flash_bytes_for(_write(20)) == 24 * KIB
        assert groups[-1].padding_bytes == 4 * KIB
        # Space utilization of the request: 20/24 = 83.3 % (paper's number).
        assert 20 / 24 == pytest.approx(0.833, abs=1e-3)

    def test_4ps_five_4k(self):
        groups = PS4.split_write(_write(20))
        assert len(groups) == 5
        assert all(group.kind is PageKind.K4 for group in groups)
        assert PS4.flash_bytes_for(_write(20)) == 20 * KIB


class TestSplitDetails:
    def test_lpns_are_consecutive(self):
        request = _write(16, lba=8 * KIB)
        assert HPS.lpns_of(request) == [2, 3, 4, 5]

    def test_hps_even_write_all_8k(self):
        groups = HPS.split_write(_write(16))
        assert [group.kind for group in groups] == [PageKind.K8, PageKind.K8]

    def test_hps_single_page_uses_4k(self):
        groups = HPS.split_write(_write(4))
        assert [group.kind for group in groups] == [PageKind.K4]

    def test_8ps_single_page_padded(self):
        groups = PS8.split_write(_write(4))
        assert groups[0].lpns == (0, None)
        assert groups[0].padding_bytes == 4 * KIB

    def test_groups_cover_all_lpns_once(self):
        request = _write(36, lba=12 * KIB)
        for distributor in (HPS, PS4, PS8):
            lpns = [
                lpn
                for group in distributor.split_write(request)
                for lpn in group.lpns
                if lpn is not None
            ]
            assert sorted(lpns) == distributor.lpns_of(request)

    def test_read_rejected(self):
        read = Request(arrival_us=0.0, lba=0, size=4 * KIB, op=Op.READ)
        with pytest.raises(ValueError):
            HPS.split_write(read)

    def test_properties(self):
        assert HPS.hybrid
        assert not PS4.hybrid
        assert PS8.largest is PageKind.K8
        assert HPS.smallest is PageKind.K4

    def test_empty_kinds_rejected(self):
        with pytest.raises(ValueError):
            RequestDistributor([])
