"""Tests for the repro-trace command-line interface."""

import pytest

from repro.cli import main
from repro.trace import read_trace


class TestList:
    def test_lists_all_apps(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Twitter" in out
        assert "Music/WB" in out


class TestGenerate:
    def test_writes_csv(self, tmp_path, capsys):
        path = tmp_path / "t.csv"
        assert main(["generate", "Email", "-o", str(path), "--requests", "50"]) == 0
        trace = read_trace(path)
        assert len(trace) == 50
        assert not trace.completed

    def test_rejects_unknown_app(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "Nope", "-o", str(tmp_path / "t.csv")])


class TestCollect:
    def test_writes_completed_trace(self, tmp_path):
        path = tmp_path / "t.csv"
        assert main(["collect", "Email", "-o", str(path), "--requests", "60"]) == 0
        trace = read_trace(path)
        assert len(trace) == 60
        assert trace.completed


class TestStack:
    def test_writes_mechanistic_trace(self, tmp_path):
        path = tmp_path / "t.csv"
        assert main(["stack", "Messaging", "-o", str(path), "--duration", "60"]) == 0
        assert len(read_trace(path)) > 0


class TestConvert:
    def test_blkparse_to_csv(self, tmp_path, capsys):
        source = tmp_path / "blk.txt"
        source.write_text(
            "8,16 1 1 0.000100000 1 Q W 8 + 8 [x]\n"
            "8,16 1 2 0.000200000 1 D W 8 + 8 [x]\n"
            "8,16 1 3 0.001000000 0 C W 8 + 8 [0]\n"
        )
        out = tmp_path / "trace.csv"
        assert main(["convert", str(source), "-o", str(out)]) == 0
        trace = read_trace(out)
        assert len(trace) == 1
        assert trace[0].completed
        assert "1 with full timestamps" in capsys.readouterr().out


class TestStats:
    def test_prints_statistics(self, tmp_path, capsys):
        path = tmp_path / "t.csv"
        main(["collect", "Email", "-o", str(path), "--requests", "40"])
        capsys.readouterr()
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "No-wait" in out
        assert "Arrival rate" in out


class TestExperimentsPassthrough:
    def test_forwards_to_experiment_runner(self, tmp_path, capsys):
        output = tmp_path / "report.txt"
        code = main(
            ["experiments", "fig4", "--quick", "--seed", "3", "--jobs", "1",
             "--no-cache", "--output", str(output)]
        )
        assert code == 0
        assert "fig4" in capsys.readouterr().out
        assert "Request size distributions" in output.read_text()

    def test_forwards_list(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out and "shards" in out
