"""Tests for the repro-trace command-line interface."""

import pytest

from repro.cli import main
from repro.trace import read_trace


class TestList:
    def test_lists_all_apps(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Twitter" in out
        assert "Music/WB" in out


class TestGenerate:
    def test_writes_csv(self, tmp_path, capsys):
        path = tmp_path / "t.csv"
        assert main(["generate", "Email", "-o", str(path), "--requests", "50"]) == 0
        trace = read_trace(path)
        assert len(trace) == 50
        assert not trace.completed

    def test_rejects_unknown_app(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "Nope", "-o", str(tmp_path / "t.csv")])


class TestCollect:
    def test_writes_completed_trace(self, tmp_path):
        path = tmp_path / "t.csv"
        assert main(["collect", "Email", "-o", str(path), "--requests", "60"]) == 0
        trace = read_trace(path)
        assert len(trace) == 60
        assert trace.completed


class TestStack:
    def test_writes_mechanistic_trace(self, tmp_path):
        path = tmp_path / "t.csv"
        assert main(["stack", "Messaging", "-o", str(path), "--duration", "60"]) == 0
        assert len(read_trace(path)) > 0


class TestConvert:
    def test_blkparse_to_csv(self, tmp_path, capsys):
        source = tmp_path / "blk.txt"
        source.write_text(
            "8,16 1 1 0.000100000 1 Q W 8 + 8 [x]\n"
            "8,16 1 2 0.000200000 1 D W 8 + 8 [x]\n"
            "8,16 1 3 0.001000000 0 C W 8 + 8 [0]\n"
        )
        out = tmp_path / "trace.csv"
        assert main(["convert", str(source), "-o", str(out)]) == 0
        trace = read_trace(out)
        assert len(trace) == 1
        assert trace[0].completed
        assert "1 with full timestamps" in capsys.readouterr().out


class TestStats:
    def test_prints_statistics(self, tmp_path, capsys):
        path = tmp_path / "t.csv"
        main(["collect", "Email", "-o", str(path), "--requests", "40"])
        capsys.readouterr()
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "No-wait" in out
        assert "Arrival rate" in out

    def test_engines_print_byte_identical_tables(self, tmp_path, capsys):
        path = tmp_path / "t.csv"
        main(["collect", "Email", "-o", str(path), "--requests", "40"])
        capsys.readouterr()
        assert main(["stats", str(path), "--engine", "batch"]) == 0
        batch = capsys.readouterr()
        assert main(["stats", str(path), "--engine", "streaming"]) == 0
        streaming = capsys.readouterr()
        assert streaming.out == batch.out  # stdout byte-identical
        assert "[engine: batch]" in batch.err
        assert "[engine: streaming]" in streaming.err

    def test_engine_note_not_on_stdout(self, tmp_path, capsys):
        path = tmp_path / "t.csv"
        main(["generate", "Email", "-o", str(path), "--requests", "20"])
        capsys.readouterr()
        assert main(["stats", str(path)]) == 0
        assert "engine" not in capsys.readouterr().out


class TestMetricsList:
    def test_lists_every_registered_metric(self, capsys):
        from repro.metrics import metric_names

        assert main(["metrics", "list"]) == 0
        out = capsys.readouterr().out
        for name in metric_names():
            assert name in out
        assert "out-of-core" in out
        assert "last_arrival_us" in out  # carry state is documented


class TestExperimentsPassthrough:
    def test_forwards_to_experiment_runner(self, tmp_path, capsys):
        output = tmp_path / "report.txt"
        code = main(
            ["experiments", "fig4", "--quick", "--seed", "3", "--jobs", "1",
             "--no-cache", "--output", str(output)]
        )
        assert code == 0
        assert "fig4" in capsys.readouterr().out
        assert "Request size distributions" in output.read_text()

    def test_forwards_list(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out and "shards" in out


class TestStore:
    def _packed(self, tmp_path, capsys):
        path = tmp_path / "email.store"
        assert main(
            ["store", "pack", "--app", "Email", "-o", str(path),
             "--requests", "60", "--chunk-rows", "16"]
        ) == 0
        capsys.readouterr()
        return path

    def test_pack_from_app(self, tmp_path, capsys):
        path = tmp_path / "email.store"
        code = main(
            ["store", "pack", "--app", "Email", "-o", str(path),
             "--requests", "60", "--chunk-rows", "16"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "packed 60 requests into 4 chunk(s)" in out

    def test_pack_requires_exactly_one_source(self, tmp_path, capsys):
        assert main(["store", "pack", "-o", str(tmp_path / "s")]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_pack_from_csv_round_trips(self, tmp_path, capsys):
        csv = tmp_path / "t.csv"
        main(["collect", "Email", "-o", str(csv), "--requests", "40"])
        store = tmp_path / "t.store"
        assert main(["store", "pack", str(csv), "-o", str(store)]) == 0
        from repro.store import open_store

        assert list(open_store(store).to_trace()) == list(read_trace(csv))

    def test_pack_from_blkparse(self, tmp_path, capsys):
        log = tmp_path / "blk.txt"
        log.write_text(
            "8,16 1 1 0.000100000 1 Q W 8 + 8 [x]\n"
            "8,16 1 2 0.001000000 0 C W 8 + 8 [0]\n"
        )
        store = tmp_path / "blk.store"
        assert main(["store", "pack", "--blkparse", str(log), "-o", str(store)]) == 0
        from repro.store import open_store

        opened = open_store(store)
        assert len(opened) == 1
        assert opened.manifest.metadata["source"] == "blkparse"

    def test_info_reports_manifest(self, tmp_path, capsys):
        path = self._packed(tmp_path, capsys)
        assert main(["store", "info", str(path), "--verify", "--chunks"]) == 0
        out = capsys.readouterr().out
        assert "Email" in out
        assert "Requests" in out and "60" in out
        assert "chunk-000003.bin" in out
        assert "verified" in out.lower()

    def test_cat_writes_identical_csv(self, tmp_path, capsys):
        csv = tmp_path / "t.csv"
        main(["generate", "Email", "-o", str(csv), "--requests", "60"])
        store = tmp_path / "t.store"
        main(["store", "pack", str(csv), "-o", str(store)])
        capsys.readouterr()
        out = tmp_path / "restored.csv"
        assert main(["store", "cat", str(store), "-o", str(out)]) == 0
        assert out.read_bytes() == csv.read_bytes()

    def test_stats_matches_csv_stats(self, tmp_path, capsys):
        csv = tmp_path / "t.csv"
        main(["collect", "Email", "-o", str(csv), "--requests", "50"])
        store = tmp_path / "t.store"
        main(["store", "pack", str(csv), "-o", str(store)])
        capsys.readouterr()
        assert main(["stats", str(csv)]) == 0
        batch = capsys.readouterr().out
        assert main(["store", "stats", str(store)]) == 0
        captured = capsys.readouterr()
        assert captured.out == batch
        assert "[engine: streaming (out-of-core)]" in captured.err
