"""Edge cases across the workloads package."""

import numpy as np
import pytest

from repro.trace import SECTOR
from repro.workloads import (
    TABLE_I,
    TABLE_II,
    collect,
    generate_trace,
    profile,
)
from repro.workloads.arrivals import ArrivalModel
from repro.workloads.sizes import from_histogram


class TestTableIAndII:
    def test_table_i_covers_individual_apps(self):
        from repro.workloads import INDIVIDUAL_APPS

        assert set(TABLE_I) == set(INDIVIDUAL_APPS)
        assert "AngryBirds" in TABLE_I["AngryBrid"]

    def test_table_ii_covers_all_traces(self):
        from repro.workloads import ALL_TRACES

        assert set(TABLE_II) == set(ALL_TRACES)


class TestGeneratorEdges:
    def test_single_request_trace(self):
        trace = generate_trace("Email", num_requests=1)
        assert len(trace) == 1
        assert trace[0].arrival_us == 0.0

    def test_two_request_trace_has_one_gap(self):
        trace = generate_trace("Email", num_requests=2)
        assert len(trace.inter_arrival_us()) == 1

    def test_all_requests_aligned(self):
        trace = generate_trace("Booting", num_requests=300)
        for request in trace:
            assert request.lba % SECTOR == 0
            assert request.size % SECTOR == 0

    def test_calibration_cache_reused(self):
        from repro.workloads.generator import _temporal_cache

        generate_trace("Amazon", num_requests=100)
        key = ("Amazon", 20150614)
        assert key in _temporal_cache
        before = _temporal_cache[key]
        generate_trace("Amazon", num_requests=100)
        assert _temporal_cache[key] == before

    def test_disable_temporal_calibration(self):
        trace = generate_trace("Amazon", num_requests=100, calibrate_temporal=False)
        assert len(trace) == 100


class TestCollectionEdges:
    def test_single_request_collection(self):
        result = collect("Email", num_requests=1)
        assert len(result.trace) == 1
        assert result.trace[0].no_wait

    def test_custom_collection_device(self):
        from repro.emmc import eight_ps

        result = collect("Email", num_requests=50, config=eight_ps())
        assert result.trace.metadata["collection_device"] == "8PS"


class TestModelEdges:
    def test_arrival_mean_property(self):
        model = ArrivalModel(burst_frac=0.5, burst_mean_us=100.0, gap_mean_us=900.0)
        assert model.mean_us == pytest.approx(500.0)

    def test_size_histogram_partial_fractions_padded(self):
        model = from_histogram([1.0], max_pages=64)
        assert model.fractions[0] == 1.0
        assert model.frac_4k == 1.0
        assert model.sample(np.random.default_rng(0)) == 1

    def test_profile_movie_uses_explicit_histograms(self):
        movie = profile("Movie")
        read_model = movie.size_model(op_is_write=False)
        # The Fig. 4 hump: most read mass in the 16-64K bucket (index 3).
        assert read_model.fractions[3] > 0.5
