"""Unit tests for the burst/gap arrival model."""

import numpy as np
import pytest

from repro.trace import US_PER_MS
from repro.workloads.arrivals import ArrivalModel, calibrate


class TestCalibrate:
    def test_mean_matches_target(self):
        model = calibrate(200_000.0, burst_frac=0.6, burst_mean_ms=1.5)
        assert model.mean_us == pytest.approx(200_000.0)

    def test_burst_mean_compressed_when_too_long(self):
        # A 4 ms burst mean cannot fit a 2 ms overall target.
        model = calibrate(2_000.0, burst_frac=0.5, burst_mean_ms=4.0)
        assert model.burst_mean_us == pytest.approx(1_000.0)
        assert model.mean_us == pytest.approx(2_000.0)

    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError):
            calibrate(0.0, 0.5, 1.0)


class TestValidation:
    def test_rejects_bad_burst_frac(self):
        with pytest.raises(ValueError):
            ArrivalModel(burst_frac=1.0, burst_mean_us=100.0, gap_mean_us=1000.0)

    def test_rejects_nonpositive_means(self):
        with pytest.raises(ValueError):
            ArrivalModel(burst_frac=0.5, burst_mean_us=0.0, gap_mean_us=1000.0)


class TestSampling:
    def test_sample_count_and_monotonicity(self, rng):
        model = calibrate(50_000.0, 0.6, 1.0)
        arrivals = model.sample_arrivals(500, rng)
        assert len(arrivals) == 500
        assert arrivals[0] == 0.0
        assert (np.diff(arrivals) >= 0).all()

    def test_empty_and_single(self, rng):
        model = calibrate(50_000.0, 0.6, 1.0)
        assert len(model.sample_arrivals(0, rng)) == 0
        assert list(model.sample_arrivals(1, rng)) == [0.0]

    def test_empirical_mean_matches(self, rng):
        model = calibrate(80_000.0, 0.6, 1.0)
        gaps = model.sample_gaps(20_000, rng)
        # The lognormal part is renormalized, so the match is tight.
        assert gaps.mean() == pytest.approx(80_000.0, rel=0.05)

    def test_bimodality(self, rng):
        """Bursty traffic: many sub-ms gaps AND a heavy tail (Fig. 6)."""
        model = calibrate(200_000.0, burst_frac=0.7, burst_mean_ms=0.5)
        gaps = model.sample_gaps(20_000, rng)
        sub_ms = (gaps < US_PER_MS).mean()
        long_tail = (gaps > 16 * US_PER_MS).mean()
        assert sub_ms > 0.4
        assert long_tail > 0.1
