"""Unit tests for combo-trace construction."""

import pytest

from repro.trace import Op, Request, Trace
from repro.workloads import COMBO_APPS, interleave, mechanistic_combo, rate_inflation


def _trace(name, arrivals, lba=0):
    return Trace(
        name,
        [Request(at, lba + i * 4096, 4096, Op.WRITE) for i, at in enumerate(arrivals)],
    )


class TestRateInflation:
    def test_music_fb_inflation_over_3x(self):
        # 17.34 req/s combined vs 1.82 + 3.50 as parts.
        assert rate_inflation("Music/FB") == pytest.approx(17.34 / 5.32, rel=1e-3)

    @pytest.mark.parametrize("name", COMBO_APPS)
    def test_all_combos_inflate(self, name):
        assert rate_inflation(name) > 1.0

    def test_unknown_combo_raises(self):
        with pytest.raises(KeyError):
            rate_inflation("Nope/Nada")


class TestInterleave:
    def test_merges_rebased_components_in_arrival_order(self):
        # Both components are rebased to start together at t = 0.
        first = _trace("a", [100.0, 1100.0])
        second = _trace("b", [700.0, 1200.0], lba=10 * 4096)
        combo = interleave(first, second, "a/b")
        assert [r.arrival_us for r in combo] == [0.0, 0.0, 500.0, 1000.0]
        assert len(combo) == 4

    def test_inflation_compresses_time(self):
        first = _trace("a", [0.0, 1000.0])
        second = _trace("b", [0.0, 2000.0], lba=10 * 4096)
        combo = interleave(first, second, "a/b", inflation=2.0)
        assert combo.duration_us == pytest.approx(1000.0)

    def test_rejects_bad_inflation(self):
        with pytest.raises(ValueError):
            interleave(_trace("a", [0.0]), _trace("b", [0.0]), "x", inflation=0.0)

    def test_metadata_records_components(self):
        combo = interleave(_trace("a", [0.0]), _trace("b", [1.0]), "a/b", inflation=1.5)
        assert combo.metadata["combo.components"] == "a+b"
        assert combo.metadata["combo.inflation"] == "1.5000"


class TestMechanisticCombo:
    def test_builds_from_components(self):
        combo, first, second = mechanistic_combo("FB/Msg")
        assert first.name == "Facebook"
        assert second.name == "Messaging"
        assert len(combo) == len(first) + len(second)
        # The combined stream must be faster than either component alone.
        assert combo.arrival_rate() > max(first.arrival_rate(), second.arrival_rate())


class TestInterleavingDeterminism:
    def test_interleave_is_deterministic(self):
        first = _trace("a", [100.0, 500.0, 500.0, 900.0])
        second = _trace("b", [100.0, 500.0, 700.0], lba=10 * 4096)
        once = interleave(first, second, "a/b", inflation=1.5)
        again = interleave(first, second, "a/b", inflation=1.5)
        assert once.requests == again.requests
        assert once.metadata == again.metadata

    def test_equal_arrivals_keep_first_before_second(self):
        # Trace's sort is stable, so ties between components resolve in
        # a fixed order: first's requests precede second's.
        first = _trace("a", [0.0, 100.0])
        second = _trace("b", [0.0, 100.0], lba=10 * 4096)
        combo = interleave(first, second, "a/b")
        tied = [r.lba for r in combo if r.arrival_us == 0.0]
        assert tied == [0, 10 * 4096]

    @pytest.mark.parametrize("name", ["FB/Msg", "Music/WB"])
    def test_mechanistic_combo_is_deterministic(self, name):
        once, _, _ = mechanistic_combo(name, seed=11)
        again, _, _ = mechanistic_combo(name, seed=11)
        assert once.requests == again.requests

    def test_mechanistic_combo_seed_matters(self):
        a, _, _ = mechanistic_combo("FB/Msg", seed=1)
        b, _, _ = mechanistic_combo("FB/Msg", seed=2)
        assert a.requests != b.requests
