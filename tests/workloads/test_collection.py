"""Tests for closed-loop trace collection (the BIOtracer methodology)."""

import pytest

from repro.analysis import timing_stats
from repro.workloads import TABLE_IV, collect, generate_trace, profile, sync_fraction
from repro.emmc import small_four_ps


class TestCollect:
    def test_trace_is_completed(self):
        result = collect("Email", num_requests=400)
        assert result.trace.completed
        assert len(result.trace) == 400

    def test_deterministic(self):
        first = collect("Email", num_requests=200)
        second = collect("Email", num_requests=200)
        assert [r.arrival_us for r in first.trace] == [r.arrival_us for r in second.trace]

    def test_same_attributes_as_generator(self):
        """Collection changes only the arrival times, not sizes/ops/addresses."""
        collected = collect("Email", num_requests=300).trace
        generated = generate_trace("Email", num_requests=300)
        assert [(r.lba, r.size, r.op) for r in collected] == [
            (r.lba, r.size, r.op) for r in generated
        ]

    def test_nowait_close_to_table_iv(self):
        result = collect("Twitter", num_requests=4000)
        stats = timing_stats(result.trace)
        assert stats.nowait_pct == pytest.approx(TABLE_IV["Twitter"].nowait_pct, abs=10.0)

    def test_sync_requests_never_wait_much(self):
        """High-sync traces must have a high no-wait ratio by construction."""
        result = collect("CallIn", num_requests=1000)
        stats = timing_stats(result.trace)
        assert stats.nowait_pct > 90.0

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            collect("Email", num_requests=0)


class TestSyncFraction:
    def test_within_bounds(self):
        for name in ("Twitter", "Movie", "CallIn", "Booting"):
            assert 0.0 <= sync_fraction(profile(name)) <= 0.98

    def test_cached(self):
        first = sync_fraction(profile("Radio"))
        second = sync_fraction(profile("Radio"))
        assert first == second

    def test_ordering_follows_targets(self):
        """A 98 % no-wait app needs a larger sync share than a 23 % one."""
        assert sync_fraction(profile("CallIn")) > sync_fraction(profile("Movie"))
