"""Consistency tests for the transcribed paper tables."""

import pytest

from repro.workloads import (
    ALL_TRACES,
    COMBO_APPS,
    COMBO_COMPONENTS,
    INDIVIDUAL_APPS,
    TABLE_III,
    TABLE_IV,
    table_iii,
    table_iv,
)
from repro.workloads.paper_data import effective_num_requests


class TestCompleteness:
    def test_counts(self):
        assert len(INDIVIDUAL_APPS) == 18
        assert len(COMBO_APPS) == 7
        assert len(ALL_TRACES) == 25

    def test_tables_cover_all_traces(self):
        assert set(TABLE_III) == set(ALL_TRACES)
        assert set(TABLE_IV) == set(ALL_TRACES)

    def test_combo_components_are_individual_apps(self):
        for combo, (first, second) in COMBO_COMPONENTS.items():
            assert combo in COMBO_APPS
            assert first in INDIVIDUAL_APPS
            assert second in INDIVIDUAL_APPS


class TestInternalConsistency:
    @pytest.mark.parametrize("name", ALL_TRACES)
    def test_rates_consistent_with_duration(self, name):
        """Arrival rate x duration should roughly equal the effective count.

        The raw combo rows are inconsistent in the paper (see
        :func:`effective_num_requests`); the corrected counts restore
        consistency for all 25 traces.
        """
        iv = table_iv(name)
        implied_requests = iv.arrival_rate * iv.duration_s
        assert implied_requests == pytest.approx(effective_num_requests(name), rel=0.15)

    @pytest.mark.parametrize("name", ALL_TRACES)
    def test_effective_counts_consistent_with_avg_size(self, name):
        """data size / avg size must also match the effective count."""
        iii = table_iii(name)
        implied = iii.data_size_kib / iii.avg_size_kib
        assert implied == pytest.approx(effective_num_requests(name), rel=0.20)

    @pytest.mark.parametrize("name", ALL_TRACES)
    def test_access_rate_consistent_with_data_size(self, name):
        iii, iv = table_iii(name), table_iv(name)
        implied_kib = iv.access_rate_kib_s * iv.duration_s
        assert implied_kib == pytest.approx(iii.data_size_kib, rel=0.20)

    @pytest.mark.parametrize("name", ALL_TRACES)
    def test_response_not_below_service(self, name):
        iv = table_iv(name)
        assert iv.mean_response_ms >= iv.mean_service_ms

    @pytest.mark.parametrize("name", ALL_TRACES)
    def test_percentages_in_range(self, name):
        iii, iv = table_iii(name), table_iv(name)
        for value in (iii.write_req_pct, iii.write_size_pct, iv.nowait_pct,
                      iv.spatial_locality_pct, iv.temporal_locality_pct):
            assert 0.0 <= value <= 100.0

    def test_headline_claims_hold_in_transcription(self):
        """Characteristic 1's claim should hold on the transcribed data."""
        write_dominant = [
            name for name in INDIVIDUAL_APPS if TABLE_III[name].write_req_pct > 50
        ]
        assert len(write_dominant) == 15
        above_90 = [name for name in INDIVIDUAL_APPS if TABLE_III[name].write_req_pct > 90]
        assert len(above_90) == 6

    def test_characteristic_6_in_transcription(self):
        means = {
            name: TABLE_IV[name].duration_s * 1000.0 / TABLE_III[name].num_requests
            for name in INDIVIDUAL_APPS
        }
        above_200 = [name for name, mean in means.items() if mean >= 200.0]
        assert len(above_200) == 13

    def test_lookup_raises_for_unknown(self):
        with pytest.raises(KeyError):
            table_iii("NotAnApp")
        with pytest.raises(KeyError):
            table_iv("NotAnApp")
