"""Unit tests for the 25 application profiles."""

import pytest

from repro.trace import KIB, SECTOR
from repro.workloads import ALL_TRACES, DEVICE_BYTES, INDIVIDUAL_APPS, TABLE_III, profile
from repro.workloads.profiles import PROFILES, all_profiles, combo_profiles, individual_profiles


class TestRegistry:
    def test_all_25_profiles_exist(self):
        assert set(PROFILES) == set(ALL_TRACES)

    def test_accessors_preserve_paper_order(self):
        assert [p.name for p in all_profiles()] == list(ALL_TRACES)
        assert len(individual_profiles()) == 18
        assert len(combo_profiles()) == 7

    def test_unknown_profile_raises_with_names(self):
        with pytest.raises(KeyError, match="Twitter"):
            profile("Nope")


class TestDerivedTargets:
    @pytest.mark.parametrize("name", ALL_TRACES)
    def test_size_models_hit_table_iii_means(self, name):
        """The calibrated analytic means must match the paper's averages."""
        app = profile(name)
        paper = TABLE_III[name]
        for is_write, target_kib in ((False, paper.avg_read_kib), (True, paper.avg_write_kib)):
            model = app.size_model(op_is_write=is_write)
            assert model.mean_pages * SECTOR / KIB == pytest.approx(
                max(4.0, target_kib), rel=0.02
            ), f"{name} {'write' if is_write else 'read'} mean off"

    @pytest.mark.parametrize("name", ALL_TRACES)
    def test_arrival_model_hits_mean_gap(self, name):
        app = profile(name)
        assert app.arrival_model().mean_us == pytest.approx(
            app.mean_interarrival_us, rel=1e-6
        )

    @pytest.mark.parametrize("name", ALL_TRACES)
    def test_footprint_inside_device(self, name):
        model = profile(name).address_model()
        assert model.footprint_start >= 0
        assert model.footprint_start + model.footprint_bytes <= DEVICE_BYTES
        assert model.footprint_start % SECTOR == 0

    def test_4k_shares_in_characteristic_2_band(self):
        exceptions = {"Movie", "Booting", "CameraVideo"}
        for name in INDIVIDUAL_APPS:
            if name in exceptions:
                continue
            assert 0.449 <= profile(name).frac_4k <= 0.574, name

    def test_max_pages_matches_table(self):
        assert profile("Messaging").max_pages == 128 * KIB // SECTOR
        assert profile("Installing").max_pages == 22_144 * KIB // SECTOR

    def test_write_frac(self):
        assert profile("CallIn").write_frac == pytest.approx(0.9993)
