"""Seed robustness: the calibration holds for seeds other than the default.

The benchmarks already exercise a second seed; this slow test sweeps a few
more on two representative applications and asserts the headline columns
stay inside the calibration budget.
"""

import numpy as np
import pytest

from repro.analysis.locality import measure as measure_localities
from repro.workloads import TABLE_III, TABLE_IV, generate_trace


@pytest.mark.slow
@pytest.mark.parametrize("seed", [1, 7, 12345])
@pytest.mark.parametrize("app", ["Twitter", "Music"])
def test_calibration_across_seeds(seed, app):
    trace = generate_trace(app, seed=seed)
    paper3, paper4 = TABLE_III[app], TABLE_IV[app]
    write_pct = 100.0 * sum(r.is_write for r in trace) / len(trace)
    assert write_pct == pytest.approx(paper3.write_req_pct, abs=3.0)
    avg_kib = np.mean([r.size for r in trace]) / 1024.0
    assert avg_kib == pytest.approx(paper3.avg_size_kib, rel=0.20)
    assert trace.duration_s == pytest.approx(paper4.duration_s, rel=0.15)
    localities = measure_localities(trace)
    assert localities.spatial_pct == pytest.approx(
        paper4.spatial_locality_pct, abs=4.0
    )
    assert localities.temporal_pct == pytest.approx(
        paper4.temporal_locality_pct, abs=8.0
    )
