"""Calibration and determinism tests for the statistical trace generator.

The full-size calibration checks (every Table III/IV column we control)
run on a few representative applications to keep the suite fast; the
experiment harness covers all 25.
"""

import numpy as np
import pytest

from repro.analysis.locality import measure as measure_localities
from repro.trace import SECTOR, validate_trace
from repro.workloads import (
    DEVICE_BYTES,
    TABLE_III,
    TABLE_IV,
    generate_all,
    generate_trace,
    size_histogram,
)
from repro.workloads.paper_data import effective_num_requests

REPRESENTATIVE = ("Twitter", "Movie", "Booting", "CameraVideo", "Idle", "Music/FB")


class TestBasics:
    def test_deterministic_per_seed(self):
        first = generate_trace("Email", num_requests=300)
        second = generate_trace("Email", num_requests=300)
        assert [
            (r.arrival_us, r.lba, r.size, r.op) for r in first
        ] == [(r.arrival_us, r.lba, r.size, r.op) for r in second]

    def test_different_seeds_differ(self):
        first = generate_trace("Email", seed=1, num_requests=300)
        second = generate_trace("Email", seed=2, num_requests=300)
        assert [r.lba for r in first] != [r.lba for r in second]

    def test_request_count_override(self):
        assert len(generate_trace("Email", num_requests=123)) == 123

    def test_full_count_matches_profile(self):
        trace = generate_trace("YouTube")
        assert len(trace) == effective_num_requests("YouTube")

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            generate_trace("Email", num_requests=0)

    def test_traces_are_valid_and_fit_device(self):
        for name in ("Twitter", "CameraVideo"):
            validate_trace(generate_trace(name, num_requests=500), device_bytes=DEVICE_BYTES)

    def test_metadata_recorded(self):
        trace = generate_trace("Email", seed=9, num_requests=10)
        assert trace.metadata["profile"] == "Email"
        assert trace.metadata["seed"] == "9"

    def test_generate_all_covers_25(self):
        traces = generate_all(num_requests=50)
        assert len(traces) == 25


@pytest.mark.parametrize("name", REPRESENTATIVE)
class TestCalibration:
    """Full-size traces must reproduce the published statistics."""

    @pytest.fixture(scope="class")
    def traces(self):
        return {name: generate_trace(name) for name in REPRESENTATIVE}

    def test_write_request_pct(self, traces, name):
        trace = traces[name]
        write_pct = 100.0 * sum(r.is_write for r in trace) / len(trace)
        assert write_pct == pytest.approx(TABLE_III[name].write_req_pct, abs=2.5)

    def test_average_size(self, traces, name):
        trace = traces[name]
        avg_kib = np.mean([r.size for r in trace]) / 1024.0
        assert avg_kib == pytest.approx(TABLE_III[name].avg_size_kib, rel=0.15)

    def test_duration(self, traces, name):
        trace = traces[name]
        assert trace.duration_s == pytest.approx(TABLE_IV[name].duration_s, rel=0.15)

    def test_localities(self, traces, name):
        localities = measure_localities(traces[name])
        assert localities.spatial_pct == pytest.approx(
            TABLE_IV[name].spatial_locality_pct, abs=3.0
        )
        assert localities.temporal_pct == pytest.approx(
            TABLE_IV[name].temporal_locality_pct, abs=6.0
        )

    def test_4k_share_characteristic_2(self, traces, name):
        share = size_histogram([r.size for r in traces[name]])["<=4K"] * 100.0
        if name in ("Movie", "Booting", "CameraVideo"):
            assert share < 44.9
        elif name in TABLE_III and "/" not in name:
            assert 42.0 <= share <= 60.0
