"""Unit tests for the paper's histogram buckets."""

import pytest

from repro.trace import KIB
from repro.workloads.buckets import (
    Bucket,
    INTERARRIVAL_BUCKETS_MS,
    RESPONSE_BUCKETS_MS,
    SIZE_BUCKETS,
    bucket_labels,
    histogram,
    pages_to_bucket_index,
    size_histogram,
)


class TestBucket:
    def test_half_open_semantics(self):
        bucket = Bucket("b", 4, 8)
        assert not bucket.contains(4)
        assert bucket.contains(5)
        assert bucket.contains(8)
        assert not bucket.contains(9)


class TestBucketSets:
    def test_size_buckets_cover_positive_axis(self):
        edges = [(b.low, b.high) for b in SIZE_BUCKETS]
        for (lo1, hi1), (lo2, _) in zip(edges, edges[1:]):
            assert hi1 == lo2  # contiguous
        assert SIZE_BUCKETS[0].low == 0
        assert SIZE_BUCKETS[-1].high == float("inf")

    def test_response_and_gap_buckets_contiguous(self):
        for buckets in (RESPONSE_BUCKETS_MS, INTERARRIVAL_BUCKETS_MS):
            for first, second in zip(buckets, buckets[1:]):
                assert first.high == second.low

    def test_labels(self):
        assert bucket_labels(SIZE_BUCKETS)[0] == "<=4K"
        assert len(bucket_labels(SIZE_BUCKETS)) == 6


class TestHistogram:
    def test_fractions_sum_to_one(self):
        values = [1 * KIB, 4 * KIB, 8 * KIB, 100 * KIB, 5000 * KIB]
        result = histogram(values, SIZE_BUCKETS)
        assert sum(result.values()) == pytest.approx(1.0)

    def test_empty_input_gives_zeros(self):
        result = histogram([], SIZE_BUCKETS)
        assert all(v == 0.0 for v in result.values())

    def test_size_histogram_4k_class(self):
        result = size_histogram([4096, 4096, 8192, 65536])
        assert result["<=4K"] == pytest.approx(0.5)
        assert result["8K"] == pytest.approx(0.25)
        assert result["(16K,64K]"] == pytest.approx(0.25)


class TestPagesToBucketIndex:
    @pytest.mark.parametrize(
        "pages,expected",
        [(1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (16, 3), (17, 4), (64, 4), (65, 5), (10000, 5)],
    )
    def test_mapping(self, pages, expected):
        assert pages_to_bucket_index(pages) == expected
