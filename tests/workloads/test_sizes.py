"""Unit and property tests for the size-model calibration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.sizes import SizeModel, calibrate, from_histogram


class TestFromHistogram:
    def test_normalizes_fractions(self):
        model = from_histogram([2, 2], max_pages=4)
        assert model.fractions[0] == pytest.approx(0.5)

    def test_truncates_to_max_pages(self):
        model = from_histogram([0.5, 0.5, 0.0, 0.0, 0.0, 0.0], max_pages=2)
        assert model.max_pages == 2
        assert len(model.ranges) == 2

    def test_rejects_empty_mass(self):
        with pytest.raises(ValueError, match="no mass"):
            from_histogram([0, 0], max_pages=4)

    def test_solves_spread_for_mean(self):
        model = from_histogram([0.5, 0.0, 0.0, 0.5], max_pages=16, mean_pages=4.0)
        assert model.mean_pages == pytest.approx(4.0)

    def test_clamps_unreachable_mean(self):
        # All mass on single-value buckets: mean is fixed at 1.5.
        model = from_histogram([0.5, 0.5], max_pages=2, mean_pages=10.0)
        assert model.mean_pages == pytest.approx(1.5)


class TestCalibrate:
    @pytest.mark.parametrize(
        "frac_4k,mean_pages,max_pages",
        [(0.5, 3.0, 128), (0.45, 2.5, 32), (0.574, 2.7, 32), (0.1, 180.0, 2526), (0.3, 13.0, 5536)],
    )
    def test_mean_is_exact_when_achievable(self, frac_4k, mean_pages, max_pages):
        model = calibrate(frac_4k, mean_pages, max_pages)
        assert model.mean_pages == pytest.approx(mean_pages, rel=1e-3)
        assert model.frac_4k == pytest.approx(frac_4k)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            calibrate(1.0, 2.0, 16)
        with pytest.raises(ValueError):
            calibrate(0.5, 0.5, 16)

    def test_tiny_device_single_bucket(self):
        model = calibrate(0.5, 1.0, 1)
        assert model.max_pages == 2  # clamped to the minimum geometry


class TestSampling:
    def test_samples_within_ranges(self, rng):
        model = calibrate(0.5, 4.0, 64)
        samples = model.sample_many(2000, rng)
        assert samples.min() >= 1
        assert samples.max() <= 64

    def test_sample_mean_matches_analytic(self, rng):
        model = calibrate(0.5, 4.0, 64)
        samples = model.sample_many(20000, rng)
        assert samples.mean() == pytest.approx(model.mean_pages, rel=0.05)

    def test_frac_4k_matches(self, rng):
        model = calibrate(0.55, 3.0, 64)
        samples = model.sample_many(20000, rng)
        assert (samples == 1).mean() == pytest.approx(0.55, abs=0.02)

    def test_deterministic_given_rng_seed(self):
        model = calibrate(0.5, 4.0, 64)
        a = model.sample_many(100, np.random.default_rng(7))
        b = model.sample_many(100, np.random.default_rng(7))
        assert (a == b).all()


@given(
    frac_4k=st.floats(min_value=0.0, max_value=0.9),
    mean_pages=st.floats(min_value=1.0, max_value=500.0),
    max_pages=st.integers(min_value=2, max_value=4096),
)
@settings(max_examples=60, deadline=None)
def test_calibrate_never_crashes_and_mean_bounded(frac_4k, mean_pages, max_pages):
    model = calibrate(frac_4k, mean_pages, max_pages)
    assert 1.0 <= model.mean_pages <= max_pages
    assert abs(sum(model.fractions) - 1.0) < 1e-9
    # When the target is comfortably achievable (enough non-4K mass to carry
    # it and far from the top-bucket ceiling), it is hit exactly.
    low = model.frac_4k + (1 - model.frac_4k) * 2  # thinnest possible tail
    high = (1 - frac_4k) * max_pages * 0.3  # conservative reachable ceiling
    if low <= mean_pages <= high:
        assert model.mean_pages == pytest.approx(mean_pages, rel=0.25)
