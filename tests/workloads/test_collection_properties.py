"""Property-based invariants of closed-loop collection."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import collect


@given(
    app=st.sampled_from(["Email", "Twitter", "Movie", "CallIn"]),
    count=st.integers(min_value=2, max_value=120),
    seed=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=12, deadline=None)
def test_collection_invariants(app, count, seed):
    """Collected traces are completed, ordered, and causally consistent."""
    result = collect(app, seed=seed, num_requests=count)
    trace = result.trace
    assert len(trace) == count
    previous_finish = 0.0
    previous_arrival = 0.0
    for request in trace:
        assert request.completed
        # Arrival order is preserved by construction.
        assert request.arrival_us >= previous_arrival
        # FIFO device: service starts no earlier than the previous finish
        # would allow, and timestamps are internally ordered.
        assert request.service_start_us >= previous_finish - 1e-6
        assert request.finish_us > request.service_start_us
        previous_finish = request.finish_us
        previous_arrival = request.arrival_us
