"""Unit tests for the locality-calibrated address model."""

import numpy as np
import pytest

from repro.trace import MIB, SECTOR
from repro.workloads.addresses import AccessMode, AddressModel


def _model(spatial=0.3, temporal=0.3, start=0, size=64 * MIB):
    return AddressModel(
        spatial=spatial, temporal=temporal, footprint_start=start, footprint_bytes=size
    )


class TestValidation:
    def test_locality_budget_enforced(self):
        with pytest.raises(ValueError):
            _model(spatial=0.6, temporal=0.5)

    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            _model(start=100)
        with pytest.raises(ValueError):
            _model(size=5000)

    def test_empty_footprint_rejected(self):
        with pytest.raises(ValueError):
            _model(size=0)


class TestChooseMode:
    def test_mode_frequencies(self, rng):
        model = _model(spatial=0.25, temporal=0.35)
        modes = [model.choose_mode(rng) for _ in range(20_000)]
        seq = sum(1 for m in modes if m is AccessMode.SEQUENTIAL) / len(modes)
        tmp = sum(1 for m in modes if m is AccessMode.TEMPORAL) / len(modes)
        assert seq == pytest.approx(0.25, abs=0.02)
        assert tmp == pytest.approx(0.35, abs=0.02)


class TestSampler:
    def test_sequential_continues_previous(self, rng):
        sampler = _model().sampler(rng)
        first = sampler.next_address(AccessMode.FRESH, 8192)
        second = sampler.next_address(AccessMode.SEQUENTIAL, 4096)
        assert second == first + 8192

    def test_sequential_falls_back_without_predecessor(self, rng):
        sampler = _model().sampler(rng)
        address = sampler.next_address(AccessMode.SEQUENTIAL, 4096)
        assert address % SECTOR == 0  # fresh fallback, still valid

    def test_temporal_rehits_history(self, rng):
        sampler = _model().sampler(rng)
        seen = {sampler.next_address(AccessMode.FRESH, 4096) for _ in range(5)}
        hit = sampler.next_address(AccessMode.TEMPORAL, 4096)
        assert hit in seen

    def test_addresses_stay_in_footprint(self, rng):
        model = _model(start=128 * MIB, size=64 * MIB)
        sampler = model.sampler(rng)
        for _ in range(500):
            mode = model.choose_mode(rng)
            size = int(rng.integers(1, 17)) * SECTOR
            address = sampler.next_address(mode, size)
            assert 128 * MIB <= address
            assert address + size <= 192 * MIB

    def test_sequential_overflow_redirected(self, rng):
        model = _model(size=1 * MIB)
        sampler = model.sampler(rng)
        # Walk sequentially until the footprint edge forces a redirect.
        sampler.next_address(AccessMode.FRESH, 512 * 1024)
        for _ in range(10):
            address = sampler.next_address(AccessMode.SEQUENTIAL, 512 * 1024)
            assert address + 512 * 1024 <= 1 * MIB
