"""Unit tests for trace scaling utilities.

The public ``scale_rate``/``scale_sizes`` are vectorized over the
columnar view; the retired scalar implementations are kept as
``_reference_*`` oracles and the vectorized paths are asserted
bit-identical to them, request for request, over generated traces.
"""

import pytest

from repro.trace import KIB, MIB, Op, Request, Trace
from repro.workloads import generate_trace
from repro.workloads.scaling import (
    _reference_scale_rate,
    _reference_scale_sizes,
    scale_rate,
    scale_sizes,
    truncate,
)


def _trace():
    return Trace("t", [
        Request(0.0, 0, 4 * KIB, Op.WRITE),
        Request(1000.0, 8 * KIB, 12 * KIB, Op.READ),
        Request(3000.0, 64 * KIB, 4 * KIB, Op.WRITE),
    ], metadata={"k": "v"})


class TestScaleRate:
    def test_compresses_time(self):
        scaled = scale_rate(_trace(), 2.0)
        assert [r.arrival_us for r in scaled] == [0.0, 500.0, 1500.0]
        assert scaled.arrival_rate() == pytest.approx(_trace().arrival_rate() * 2)

    def test_stretches_time(self):
        scaled = scale_rate(_trace(), 0.5)
        assert scaled.duration_us == pytest.approx(6000.0)

    def test_requests_untouched(self):
        scaled = scale_rate(_trace(), 4.0)
        assert [(r.lba, r.size, r.op) for r in scaled] == [
            (r.lba, r.size, r.op) for r in _trace()
        ]

    def test_metadata_annotated(self):
        scaled = scale_rate(_trace(), 2.0)
        assert scaled.metadata["rate_factor"] == "2"
        assert scaled.metadata["k"] == "v"

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scale_rate(_trace(), 0.0)


class TestScaleSizes:
    def test_doubles_pages(self):
        scaled = scale_sizes(_trace(), 2.0)
        assert [r.size for r in scaled] == [8 * KIB, 24 * KIB, 8 * KIB]

    def test_never_below_one_page(self):
        scaled = scale_sizes(_trace(), 0.01)
        assert all(r.size == 4 * KIB for r in scaled)

    def test_capped_and_aligned(self):
        big = Trace("b", [Request(0.0, 0, 8 * MIB, Op.WRITE)])
        scaled = scale_sizes(big, 10.0, max_bytes=16 * MIB)
        assert scaled[0].size == 16 * MIB
        assert scaled[0].size % (4 * KIB) == 0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scale_sizes(_trace(), -1.0)


class TestVectorizedAgainstScalarOracle:
    """The vectorized transforms must equal the scalar loops bit for bit."""

    @pytest.mark.parametrize("app", ["Twitter", "Facebook", "Music/WB"])
    @pytest.mark.parametrize("factor", [0.25, 0.5, 1.5, 3.0, 7.3])
    def test_scale_rate_matches_oracle(self, app, factor):
        trace = generate_trace(app, seed=3, num_requests=400)
        fast, oracle = scale_rate(trace, factor), _reference_scale_rate(trace, factor)
        assert fast.name == oracle.name
        assert fast.metadata == oracle.metadata
        assert fast.requests == oracle.requests  # float == is bit-identity

    @pytest.mark.parametrize("app", ["Twitter", "Facebook", "Music/WB"])
    @pytest.mark.parametrize("factor", [0.01, 0.5, 1.5, 2.5, 10.0])
    def test_scale_sizes_matches_oracle(self, app, factor):
        trace = generate_trace(app, seed=3, num_requests=400)
        fast = scale_sizes(trace, factor)
        oracle = _reference_scale_sizes(trace, factor)
        assert fast.name == oracle.name
        assert fast.metadata == oracle.metadata
        assert fast.requests == oracle.requests

    def test_scale_sizes_half_to_even_rounding_matches(self):
        # 1.5 pages and 2.5 pages both sit exactly on the rounding tie;
        # np.rint and round() must agree (both half-to-even).
        trace = Trace("ties", [
            Request(0.0, 0, 4 * KIB, Op.WRITE),      # 1 page * 1.5 = 1.5 -> 2
            Request(1.0, 8 * KIB, 8 * KIB, Op.WRITE),  # 2 pages * 1.25 = 2.5 -> 2
        ])
        for factor in (1.5, 1.25, 0.5, 2.5):
            fast = scale_sizes(trace, factor)
            oracle = _reference_scale_sizes(trace, factor)
            assert [r.size for r in fast] == [r.size for r in oracle]

    def test_scaled_trace_adopts_columns_without_rebuild(self):
        trace = generate_trace("Twitter", seed=3, num_requests=50)
        scaled = scale_rate(trace, 2.0)
        # from_columns installs the scaled columns as the cache: the
        # columnar view must be ready without a second conversion pass.
        assert scaled._columns is not None
        assert scaled.columns() is scaled._columns

    def test_replayed_timestamps_are_dropped(self):
        trace = generate_trace("Twitter", seed=3, num_requests=20)
        for transform in (lambda t: scale_rate(t, 2.0), lambda t: scale_sizes(t, 2.0)):
            scaled = transform(trace)
            assert all(r.service_start_us is None for r in scaled)
            assert all(r.finish_us is None for r in scaled)


class TestTruncate:
    def test_keeps_prefix(self):
        assert len(truncate(_trace(), 2)) == 2

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            truncate(_trace(), 0)
