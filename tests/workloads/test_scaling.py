"""Unit tests for trace scaling utilities."""

import pytest

from repro.trace import KIB, MIB, Op, Request, Trace
from repro.workloads.scaling import scale_rate, scale_sizes, truncate


def _trace():
    return Trace("t", [
        Request(0.0, 0, 4 * KIB, Op.WRITE),
        Request(1000.0, 8 * KIB, 12 * KIB, Op.READ),
        Request(3000.0, 64 * KIB, 4 * KIB, Op.WRITE),
    ], metadata={"k": "v"})


class TestScaleRate:
    def test_compresses_time(self):
        scaled = scale_rate(_trace(), 2.0)
        assert [r.arrival_us for r in scaled] == [0.0, 500.0, 1500.0]
        assert scaled.arrival_rate() == pytest.approx(_trace().arrival_rate() * 2)

    def test_stretches_time(self):
        scaled = scale_rate(_trace(), 0.5)
        assert scaled.duration_us == pytest.approx(6000.0)

    def test_requests_untouched(self):
        scaled = scale_rate(_trace(), 4.0)
        assert [(r.lba, r.size, r.op) for r in scaled] == [
            (r.lba, r.size, r.op) for r in _trace()
        ]

    def test_metadata_annotated(self):
        scaled = scale_rate(_trace(), 2.0)
        assert scaled.metadata["rate_factor"] == "2"
        assert scaled.metadata["k"] == "v"

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scale_rate(_trace(), 0.0)


class TestScaleSizes:
    def test_doubles_pages(self):
        scaled = scale_sizes(_trace(), 2.0)
        assert [r.size for r in scaled] == [8 * KIB, 24 * KIB, 8 * KIB]

    def test_never_below_one_page(self):
        scaled = scale_sizes(_trace(), 0.01)
        assert all(r.size == 4 * KIB for r in scaled)

    def test_capped_and_aligned(self):
        big = Trace("b", [Request(0.0, 0, 8 * MIB, Op.WRITE)])
        scaled = scale_sizes(big, 10.0, max_bytes=16 * MIB)
        assert scaled[0].size == 16 * MIB
        assert scaled[0].size % (4 * KIB) == 0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scale_sizes(_trace(), -1.0)


class TestTruncate:
    def test_keeps_prefix(self):
        assert len(truncate(_trace(), 2)) == 2

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            truncate(_trace(), 0)
