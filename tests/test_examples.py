"""Smoke tests: every example script runs successfully."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_hps_structure(self):
        result = _run("hps_structure.py")
        assert result.returncode == 0, result.stderr
        assert "8K + 8K + 4K" in result.stdout

    def test_quickstart(self):
        result = _run("quickstart.py", "YouTube")
        assert result.returncode == 0, result.stderr
        assert "HPS" in result.stdout

    def test_quickstart_rejects_unknown(self):
        result = _run("quickstart.py", "NotAnApp")
        assert result.returncode != 0

    def test_characterize_quick(self):
        result = _run("characterize_workload.py", "Email", "--quick")
        assert result.returncode == 0, result.stderr
        assert "Table III row" in result.stdout
        assert "Fig. 6 row" in result.stdout

    def test_android_stack(self):
        result = _run("android_stack_trace.py", "Messaging", "120")
        assert result.returncode == 0, result.stderr
        assert "SQLite" in result.stdout

    def test_fleet_simulation_quick(self):
        result = _run("fleet_simulation.py", "--quick", "--jobs", "2")
        assert result.returncode == 0, result.stderr
        assert "Wear percentiles across the fleet" in result.stdout
        assert "end-of-life projection" in result.stdout

    def test_replay_blktrace_sample(self):
        result = _run("replay_blktrace.py")
        assert result.returncode == 0, result.stderr
        assert "Replay on the three Table V designs" in result.stdout

    @pytest.mark.slow
    def test_design_space(self):
        result = _run("design_space.py", "YouTube", timeout=500)
        assert result.returncode == 0, result.stderr
        assert "Designs ranked" in result.stdout

    @pytest.mark.slow
    def test_hps_vs_baselines(self):
        result = _run("hps_vs_baselines.py", "YouTube", timeout=400)
        assert result.returncode == 0, result.stderr
        assert "Case study" in result.stdout
