"""Edge cases across the Android stack package."""

import numpy as np
import pytest

from repro.trace import KIB, MIB
from repro.android import (
    AndroidStack,
    AppOp,
    AppOpType,
    Ext4Layer,
    FileOp,
    FileOpType,
    SQLiteLayer,
)
from repro.emmc import EmmcDevice, four_ps


class TestAppOpValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            AppOp(-1.0, AppOpType.FILE_READ, "f", nbytes=4 * KIB)

    def test_zero_size_rejected_for_data_ops(self):
        with pytest.raises(ValueError):
            AppOp(0.0, AppOpType.FILE_WRITE, "f", nbytes=0)

    def test_fsync_needs_no_size(self):
        op = AppOp(0.0, AppOpType.FSYNC, "f")
        assert op.nbytes == 0


class TestSqliteEdges:
    def test_empty_stats_write_amplification(self, rng):
        assert SQLiteLayer(rng).stats.write_amplification == 1.0

    def test_db_grows_monotonically(self, rng):
        sqlite = SQLiteLayer(rng)
        for _ in range(5):
            sqlite.lower(AppOp(0.0, AppOpType.DB_TRANSACTION, "g.db", nbytes=8 * KIB))
        assert sqlite._db_pages["g.db"] >= 10


class TestExt4Edges:
    def test_read_before_any_write_allocates(self):
        ext4 = Ext4Layer(device_bytes=32 * 1024 * MIB)
        ios = ext4.lower(FileOp(0.0, FileOpType.READ, "never-written",
                                offset=0, nbytes=8 * KIB))
        assert sum(io.nbytes for io in ios) == 8 * KIB

    def test_sparse_write_far_into_file(self):
        ext4 = Ext4Layer(device_bytes=32 * 1024 * MIB)
        ios = ext4.lower(FileOp(0.0, FileOpType.WRITE, "sparse",
                                offset=10 * MIB, nbytes=4 * KIB))
        data = [io for io in ios if io.nbytes >= 4 * KIB]
        assert data  # the range up to the offset was materialized


class TestStackEdges:
    def test_fsync_on_untouched_file_is_cheap(self):
        stack = AndroidStack(EmmcDevice(four_ps()), name="t")
        stack.handle_op(AppOp(0.0, AppOpType.FSYNC, "ghost"))
        # Only the journal commit reaches the device (no data to flush).
        trace = stack.tracer.trace()
        assert len(trace) <= 2

    def test_explicit_offset_write(self):
        stack = AndroidStack(EmmcDevice(four_ps()), name="t")
        stack.handle_op(AppOp(0.0, AppOpType.FILE_WRITE, "f",
                              nbytes=4 * KIB, offset=64 * KIB))
        stack.handle_op(AppOp(1.0, AppOpType.FSYNC, "f"))
        assert len(stack.tracer.trace()) > 0

    def test_run_ops_sorts_by_time(self):
        stack = AndroidStack(EmmcDevice(four_ps()), name="t")
        result = stack.run_ops([
            AppOp(5000.0, AppOpType.DB_TRANSACTION, "a.db", nbytes=4 * KIB),
            AppOp(0.0, AppOpType.DB_TRANSACTION, "a.db", nbytes=4 * KIB),
        ])
        arrivals = [r.arrival_us for r in result.trace]
        assert arrivals == sorted(arrivals)
