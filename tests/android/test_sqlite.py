"""Unit tests for the SQLite I/O model."""

import numpy as np
import pytest

from repro.android import AppOp, AppOpType, FileOpType, SQLiteLayer
from repro.android.sqlite import DB_PAGE


@pytest.fixture
def sqlite(rng):
    return SQLiteLayer(rng)


class TestTransaction:
    def test_journaled_write_sequence(self, sqlite):
        ops = sqlite.lower(AppOp(0.0, AppOpType.DB_TRANSACTION, "a.db", nbytes=DB_PAGE))
        # Journal write, db page write, journal drop.
        assert ops[0].path == "a.db-journal"
        assert ops[0].sync
        assert ops[1].path == "a.db"
        assert ops[1].sync
        assert ops[-1].path == "a.db-journal"

    def test_write_amplification_at_least_two(self, sqlite):
        """One payload page costs a journal header + old image + new image."""
        sqlite.lower(AppOp(0.0, AppOpType.DB_TRANSACTION, "a.db", nbytes=DB_PAGE))
        assert sqlite.stats.write_amplification >= 2.0

    def test_multi_page_transaction(self, sqlite):
        ops = sqlite.lower(
            AppOp(0.0, AppOpType.DB_TRANSACTION, "a.db", nbytes=3 * DB_PAGE)
        )
        db_writes = [op for op in ops if op.path == "a.db"]
        assert len(db_writes) == 3
        journal = [op for op in ops if op.path.endswith("-journal")][0]
        assert journal.nbytes == 4 * DB_PAGE  # header + 3 old images

    def test_stats_accumulate(self, sqlite):
        for _ in range(3):
            sqlite.lower(AppOp(0.0, AppOpType.DB_TRANSACTION, "a.db", nbytes=DB_PAGE))
        assert sqlite.stats.transactions == 3
        assert sqlite.stats.syncs == 6


class TestQuery:
    def test_query_emits_page_reads(self, sqlite):
        ops = sqlite.lower(AppOp(0.0, AppOpType.DB_QUERY, "a.db", nbytes=2 * DB_PAGE))
        assert len(ops) == 2
        assert all(op.op_type is FileOpType.READ for op in ops)
        assert all(op.nbytes == DB_PAGE for op in ops)

    def test_reads_are_page_aligned(self, sqlite):
        ops = sqlite.lower(AppOp(0.0, AppOpType.DB_QUERY, "a.db", nbytes=DB_PAGE))
        assert ops[0].offset % DB_PAGE == 0


class TestErrors:
    def test_non_db_op_rejected(self, sqlite):
        with pytest.raises(ValueError):
            sqlite.lower(AppOp(0.0, AppOpType.FILE_READ, "f", nbytes=1))
