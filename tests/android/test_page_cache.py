"""Unit tests for the page cache."""

import pytest

from repro.trace import KIB
from repro.android import FileOp, FileOpType, PageCache


def _write(at, path="f", offset=0, nbytes=4 * KIB, sync=False):
    return FileOp(at, FileOpType.WRITE, path, offset=offset, nbytes=nbytes, sync=sync)


def _read(at, path="f", offset=0, nbytes=4 * KIB):
    return FileOp(at, FileOpType.READ, path, offset=offset, nbytes=nbytes)


class TestWriteBuffering:
    def test_async_write_absorbed(self):
        cache = PageCache()
        assert cache.handle(_write(0.0)) == []
        assert cache.stats.writes_buffered == 1

    def test_sync_write_passes_through_with_dirty_flush(self):
        cache = PageCache()
        cache.handle(_write(0.0, offset=0))
        out = cache.handle(_write(1.0, offset=8 * KIB, sync=True))
        # Dirty page 0 flushed plus the sync write itself.
        assert len(out) == 2
        assert out[-1].sync

    def test_fsync_flushes_file(self):
        cache = PageCache()
        cache.handle(_write(0.0, offset=0, nbytes=8 * KIB))
        out = cache.handle(FileOp(1.0, FileOpType.SYNC, "f"))
        flushed = [op for op in out if op.op_type is FileOpType.WRITE]
        assert sum(op.nbytes for op in flushed) == 8 * KIB

    def test_writeback_coalesces_contiguous_pages(self):
        cache = PageCache()
        cache.handle(_write(0.0, offset=0))
        cache.handle(_write(1.0, offset=4 * KIB))
        cache.handle(_write(2.0, offset=12 * KIB))
        out = cache.writeback(3.0)
        sizes = sorted(op.nbytes for op in out)
        assert sizes == [4 * KIB, 8 * KIB]  # one run of 2 pages, one of 1

    def test_periodic_writeback_fires(self):
        cache = PageCache(writeback_interval_us=1000.0)
        cache.handle(_write(0.0))
        out = cache.handle(_read(2000.0, path="other"))
        assert any(op.op_type is FileOpType.WRITE for op in out)

    def test_dirty_limit_forces_flush(self):
        cache = PageCache(dirty_limit_pages=4)
        out = []
        for i in range(6):
            out.extend(cache.handle(_write(float(i), offset=i * 8 * KIB)))
        assert any(op.op_type is FileOpType.WRITE for op in out)
        assert cache._dirty_count <= 4


class TestReadCaching:
    def test_miss_then_hit(self):
        cache = PageCache()
        first = cache.handle(_read(0.0))
        assert len(first) == 1
        second = cache.handle(_read(1.0))
        assert second == []
        assert cache.stats.read_hits == 1
        assert cache.stats.read_misses == 1

    def test_dirty_pages_satisfy_reads(self):
        cache = PageCache()
        cache.handle(_write(0.0))
        assert cache.handle(_read(1.0)) == []

    def test_partial_miss_fetches_runs(self):
        cache = PageCache()
        cache.handle(_read(0.0, offset=0, nbytes=4 * KIB))
        out = cache.handle(_read(1.0, offset=0, nbytes=12 * KIB))
        assert len(out) == 1
        assert out[0].offset == 4 * KIB
        assert out[0].nbytes == 8 * KIB

    def test_readahead_on_sequential_reads(self):
        cache = PageCache(readahead_pages=4)
        cache.handle(_read(0.0, offset=0, nbytes=8 * KIB))  # pages 0-1
        out = cache.handle(_read(1.0, offset=8 * KIB, nbytes=4 * KIB))  # page 2
        # Sequential continuation: fetch page 2 plus 4 readahead pages.
        assert sum(op.nbytes for op in out) == 5 * 4 * KIB
        assert cache.stats.readahead_pages == 4
        # The read-ahead pages now hit.
        assert cache.handle(_read(2.0, offset=12 * KIB, nbytes=16 * KIB)) == []

    def test_no_readahead_on_random_reads(self):
        cache = PageCache(readahead_pages=4)
        cache.handle(_read(0.0, offset=0))
        out = cache.handle(_read(1.0, offset=40 * KIB))
        assert sum(op.nbytes for op in out) == 4 * KIB
        assert cache.stats.readahead_pages == 0

    def test_readahead_validated(self):
        import pytest as _pytest
        with _pytest.raises(ValueError):
            PageCache(readahead_pages=-1)

    def test_clean_eviction_caps_memory(self):
        cache = PageCache(cache_limit_pages=8)
        for i in range(4):
            cache.handle(_read(float(i), path=f"f{i}", nbytes=16 * KIB))
        total_clean = sum(len(pages) for pages in cache._clean.values())
        assert total_clean <= 8
