"""Tests for BIOtracer and the assembled Android stack."""

import pytest

from repro.trace import KIB, Op, Request
from repro.android import (
    ARCHETYPES,
    AndroidStack,
    BIOTracer,
    RECORDS_PER_BUFFER,
    app_model,
    collect_trace,
)
from repro.android.fileops import AppOp, AppOpType
from repro.emmc import EmmcDevice, four_ps


def _completed(at=0.0, lba=0):
    return Request(at, lba, 4 * KIB, Op.WRITE, service_start_us=at, finish_us=at + 100)


class TestBIOTracer:
    def test_flush_every_buffer_fill(self):
        tracer = BIOTracer(name="t")
        flushes = 0
        for i in range(2 * RECORDS_PER_BUFFER):
            extra = tracer.record(_completed(at=float(i)))
            if extra:
                flushes += 1
                assert len(extra) == 6
        assert flushes == 2
        assert tracer.stats.flushes == 2

    def test_overhead_ratio_about_two_percent(self):
        tracer = BIOTracer(name="t")
        for i in range(10 * RECORDS_PER_BUFFER):
            tracer.record(_completed(at=float(i)))
        assert tracer.stats.overhead_ratio == pytest.approx(0.02, abs=0.002)

    def test_rejects_uncompleted(self):
        tracer = BIOTracer(name="t")
        with pytest.raises(ValueError):
            tracer.record(Request(0.0, 0, 4 * KIB, Op.WRITE))

    def test_trace_excludes_monitor_ios(self):
        tracer = BIOTracer(name="t")
        for i in range(RECORDS_PER_BUFFER):
            tracer.record(_completed(at=float(i)))
        assert len(tracer.trace()) == RECORDS_PER_BUFFER


class TestAppModels:
    def test_all_18_have_archetypes(self):
        assert len(ARCHETYPES) == 18

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            app_model("Nope")

    def test_ops_sorted_and_bounded(self, rng):
        ops = app_model("Messaging").ops(60_000_000.0, rng)
        times = [op.at_us for op in ops]
        assert times == sorted(times)
        assert all(0 <= t for t in times)


class TestStack:
    def test_db_transaction_reaches_device(self):
        stack = AndroidStack(EmmcDevice(four_ps()), name="t")
        stack.handle_op(AppOp(0.0, AppOpType.DB_TRANSACTION, "a.db", nbytes=4 * KIB))
        trace = stack.tracer.trace()
        assert len(trace) > 0
        assert all(r.completed for r in trace)
        assert trace.written_bytes > 4 * KIB  # journaling amplification

    def test_async_file_write_deferred_until_writeback(self):
        stack = AndroidStack(EmmcDevice(four_ps()), name="t")
        stack.handle_op(AppOp(0.0, AppOpType.FILE_WRITE, "cache/x", nbytes=16 * KIB))
        assert len(stack.tracer.trace()) == 0  # buffered in page cache
        stack.handle_op(AppOp(0.0, AppOpType.FSYNC, "cache/x"))
        assert len(stack.tracer.trace()) > 0

    def test_collect_trace_end_to_end(self):
        result = collect_trace("Messaging", duration_s=60, seed=3)
        assert len(result.trace) > 10
        stats = result.sqlite_stats
        assert stats.write_amplification >= 2.0
        # Messaging is write-dominant at block level (Characteristic 1).
        writes = sum(1 for r in result.trace if r.is_write)
        assert writes / len(result.trace) > 0.6

    def test_camera_produces_large_packed_writes(self):
        result = collect_trace("CameraVideo", duration_s=60, seed=3)
        assert max(r.size for r in result.trace) >= 512 * KIB

    def test_deterministic_per_seed(self):
        first = collect_trace("Messaging", duration_s=30, seed=5)
        second = collect_trace("Messaging", duration_s=30, seed=5)
        assert [(r.lba, r.size) for r in first.trace] == [
            (r.lba, r.size) for r in second.trace
        ]

    def test_concurrent_apps_share_the_stack(self):
        """Section III-D mechanistically: a combo run through one stack."""
        from repro.emmc import EmmcDevice, four_ps

        def rate(apps):
            stack = AndroidStack(EmmcDevice(four_ps()), name="combo", seed=7)
            result = stack.run_concurrent(apps, duration_s=120)
            trace = result.trace
            return trace.arrival_rate(), trace

        combo_rate, combo_trace = rate(["Messaging", "WebBrowsing"])
        single_rate, _ = rate(["Messaging"])
        assert len(combo_trace) > 0
        assert combo_rate > single_rate
        # Combo patterns stay write-dominant and small-request-heavy.
        writes = sum(1 for r in combo_trace if r.is_write)
        assert writes / len(combo_trace) > 0.5
