"""Unit tests for the ext4-like file system model."""

import pytest

from repro.trace import KIB, MIB, Op, SECTOR
from repro.android import Ext4Layer, FileOp, FileOpType

DEVICE = 32 * 1024 * MIB


@pytest.fixture
def ext4():
    return Ext4Layer(device_bytes=DEVICE)


class TestAllocation:
    def test_sequential_writes_are_contiguous(self, ext4):
        first = ext4.lower(FileOp(0.0, FileOpType.WRITE, "f", offset=0, nbytes=8 * KIB))
        second = ext4.lower(FileOp(1.0, FileOpType.WRITE, "f", offset=8 * KIB, nbytes=8 * KIB))
        data_first = [io for io in first if io.nbytes > SECTOR or io.lba % MIB][0]
        data_second = second[0]
        assert data_second.lba == data_first.lba + 8 * KIB

    def test_reads_resolve_same_blocks_as_writes(self, ext4):
        write = ext4.lower(FileOp(0.0, FileOpType.WRITE, "f", offset=0, nbytes=16 * KIB))
        read = ext4.lower(FileOp(1.0, FileOpType.READ, "f", offset=0, nbytes=16 * KIB))
        assert read[0].op is Op.READ
        assert read[0].lba == write[0].lba
        assert read[0].nbytes == 16 * KIB

    def test_different_files_in_different_groups(self, ext4):
        a = ext4.lower(FileOp(0.0, FileOpType.WRITE, "alpha", offset=0, nbytes=4 * KIB))
        b = ext4.lower(FileOp(0.0, FileOpType.WRITE, "beta", offset=0, nbytes=4 * KIB))
        # Group separation is probabilistic via the name hash, but the
        # addresses must differ and stay device-resident.
        assert a[0].lba != b[0].lba
        for io in a + b:
            assert 0 <= io.lba < DEVICE

    def test_blocks_are_aligned(self, ext4):
        for io in ext4.lower(FileOp(0.0, FileOpType.WRITE, "f", offset=100, nbytes=5000)):
            assert io.lba % SECTOR == 0
            assert io.nbytes % SECTOR == 0


class TestMetadataAndJournal:
    def test_write_emits_metadata_block(self, ext4):
        ios = ext4.lower(FileOp(0.0, FileOpType.WRITE, "f", offset=0, nbytes=4 * KIB))
        assert len(ios) == 2  # data + inode metadata
        assert ext4.stats.metadata_writes == 1

    def test_sync_write_commits_journal(self, ext4):
        ios = ext4.lower(
            FileOp(0.0, FileOpType.WRITE, "f", offset=0, nbytes=4 * KIB, sync=True)
        )
        journal_ios = [io for io in ios if io.lba >= DEVICE - 32 * MIB]
        assert len(journal_ios) == 1
        assert journal_ios[0].nbytes == 16 * KIB  # descriptor + 2 meta + commit
        assert ext4.stats.journal_commits == 1

    def test_journal_writes_sequential_and_wrap(self, ext4):
        first = ext4.lower(FileOp(0.0, FileOpType.SYNC, "f"))[0]
        second = ext4.lower(FileOp(1.0, FileOpType.SYNC, "f"))[0]
        assert second.lba == first.lba + 16 * KIB
        # Force a wrap.
        for _ in range(3000):
            last = ext4.lower(FileOp(2.0, FileOpType.SYNC, "f"))[0]
        assert DEVICE - 32 * MIB <= last.lba < DEVICE


class TestErrors:
    def test_device_too_small(self):
        with pytest.raises(ValueError):
            Ext4Layer(device_bytes=MIB)
