"""Every one of the 18 application archetypes runs end to end."""

import numpy as np
import pytest

from repro.trace import US_PER_S
from repro.android import ARCHETYPES, app_model


@pytest.mark.parametrize("name", sorted(ARCHETYPES))
def test_archetype_generates_valid_ops(name, rng):
    # Long enough that even the sparse archetypes (Idle: ~45 s between
    # background commits) emit something.
    ops = app_model(name).ops(900 * US_PER_S, rng)
    assert ops, name
    times = [op.at_us for op in ops]
    assert times == sorted(times)
    assert all(0 <= t for t in times)
    for op in ops:
        if op.op_type.value != "fsync":
            assert op.nbytes > 0


@pytest.mark.parametrize("name", ["Idle", "Movie", "CameraVideo", "AngryBrid"])
def test_archetype_through_full_stack(name):
    from repro.android import collect_trace

    result = collect_trace(name, duration_s=60, seed=2)
    # Some sparse archetypes (Idle) may emit very little in 60 s, but the
    # stack must still complete and produce a consistent result object.
    assert result.trace.completed
    assert result.tracer_stats.records == len(result.trace)
