"""Unit tests for the block layer merge and eMMC-driver packing."""

import pytest

from repro.trace import KIB, MIB, Op
from repro.android import BlockLayer, EmmcDriver
from repro.android.ext4 import BlockIO


def _bio(lba, nbytes, op=Op.WRITE, at=0.0):
    return BlockIO(at_us=at, op=op, lba=lba, nbytes=nbytes)


class TestBlockLayerMerge:
    def test_adjacent_same_op_merged(self):
        layer = BlockLayer()
        out = layer.submit([_bio(0, 4 * KIB), _bio(4 * KIB, 8 * KIB)])
        assert len(out) == 1
        assert out[0].nbytes == 12 * KIB

    def test_non_adjacent_not_merged(self):
        out = BlockLayer().submit([_bio(0, 4 * KIB), _bio(16 * KIB, 4 * KIB)])
        assert len(out) == 2

    def test_different_ops_not_merged(self):
        out = BlockLayer().submit(
            [_bio(0, 4 * KIB, Op.WRITE), _bio(4 * KIB, 4 * KIB, Op.READ)]
        )
        assert len(out) == 2

    def test_512k_cap(self):
        bios = [_bio(i * 256 * KIB, 256 * KIB) for i in range(4)]
        out = BlockLayer().submit(bios)
        assert [io.nbytes for io in out] == [512 * KIB, 512 * KIB]

    def test_unsorted_input_merged_after_sorting(self):
        out = BlockLayer().submit([_bio(8 * KIB, 4 * KIB), _bio(0, 8 * KIB)])
        assert len(out) == 1

    def test_merge_ratio_stat(self):
        layer = BlockLayer()
        layer.submit([_bio(0, 4 * KIB), _bio(4 * KIB, 4 * KIB)])
        assert layer.stats.merge_ratio == 2.0

    def test_sync_flag_propagates(self):
        sync_bio = BlockIO(0.0, Op.WRITE, 4 * KIB, 4 * KIB, sync=True)
        out = BlockLayer().submit([_bio(0, 4 * KIB), sync_bio])
        assert out[0].sync


class TestDriverPacking:
    def test_contiguous_writes_packed_beyond_512k(self):
        driver = EmmcDriver()
        requests = [_bio(i * 512 * KIB, 512 * KIB) for i in range(4)]
        out = driver.pack(requests)
        assert len(out) == 1
        assert out[0].nbytes == 2 * MIB
        assert driver.stats.packed_commands == 3

    def test_reads_never_packed(self):
        out = EmmcDriver().pack(
            [_bio(0, 4 * KIB, Op.READ), _bio(4 * KIB, 4 * KIB, Op.READ)]
        )
        assert len(out) == 2

    def test_16m_cap(self):
        requests = [_bio(i * 8 * MIB, 8 * MIB) for i in range(3)]
        out = EmmcDriver().pack(requests)
        assert [io.nbytes for io in out] == [16 * MIB, 8 * MIB]

    def test_packing_ratio(self):
        driver = EmmcDriver()
        driver.pack([_bio(0, 4 * KIB), _bio(4 * KIB, 4 * KIB)])
        assert driver.stats.packing_ratio == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            EmmcDriver(max_packed_bytes=0)
        with pytest.raises(ValueError):
            BlockLayer(max_request_bytes=0)
