"""Property-based tests for the Android stack layers (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import KIB, MIB, SECTOR
from repro.android import Ext4Layer, FileOp, FileOpType, PageCache
from repro.android.page_cache import _runs

file_ops = st.lists(
    st.tuples(
        st.sampled_from(["read", "write", "sync"]),
        st.sampled_from(["a", "b", "c"]),  # path
        st.integers(min_value=0, max_value=64),  # page offset
        st.integers(min_value=1, max_value=16),  # pages
        st.booleans(),  # sync flag for writes
    ),
    min_size=1,
    max_size=60,
)


def _to_op(index, kind, path, page, pages, sync):
    at = float(index) * 1000.0
    if kind == "read":
        return FileOp(at, FileOpType.READ, path, offset=page * SECTOR,
                      nbytes=pages * SECTOR)
    if kind == "write":
        return FileOp(at, FileOpType.WRITE, path, offset=page * SECTOR,
                      nbytes=pages * SECTOR, sync=sync)
    return FileOp(at, FileOpType.SYNC, path)


@given(ops=file_ops)
@settings(max_examples=50, deadline=None)
def test_page_cache_conserves_dirty_pages(ops):
    """Every page written either remains dirty in the cache or was flushed
    to the file system; nothing is lost or duplicated per flush."""
    cache = PageCache(writeback_interval_us=1e12, dirty_limit_pages=10**6)
    written = {}  # path -> set of dirty page indices expected
    flushed_pages = {}
    for index, spec in enumerate(ops):
        op = _to_op(index, *spec)
        out = cache.handle(op)
        if op.op_type is FileOpType.WRITE and not op.sync:
            written.setdefault(op.path, set()).update(
                range(op.offset // SECTOR, (op.offset + op.nbytes) // SECTOR)
            )
        for emitted in out:
            if emitted.op_type is FileOpType.WRITE and not emitted.sync:
                flushed_pages.setdefault(emitted.path, set()).update(
                    range(emitted.offset // SECTOR,
                          (emitted.offset + emitted.nbytes) // SECTOR)
                )
    # Final writeback drains everything still dirty.
    for emitted in cache.writeback(1e9):
        flushed_pages.setdefault(emitted.path, set()).update(
            range(emitted.offset // SECTOR, (emitted.offset + emitted.nbytes) // SECTOR)
        )
    for path, pages in written.items():
        assert pages <= flushed_pages.get(path, set()), path


@given(pages=st.lists(st.integers(min_value=0, max_value=100), unique=True))
@settings(max_examples=60)
def test_runs_partition_pages(pages):
    runs = _runs(sorted(pages))
    covered = []
    for start, length in runs:
        covered.extend(range(start, start + length))
    assert covered == sorted(pages)
    # Runs are maximal: no two adjacent runs touch.
    for (s1, l1), (s2, _) in zip(runs, runs[1:]):
        assert s1 + l1 < s2


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["a", "b"]),
            st.integers(min_value=0, max_value=50),
            st.integers(min_value=1, max_value=8),
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=50, deadline=None)
def test_ext4_reads_resolve_written_ranges(ops):
    """Whatever was written can be read back at the same block addresses."""
    ext4 = Ext4Layer(device_bytes=32 * 1024 * MIB)
    mapping = {}
    for index, (path, page, pages) in enumerate(ops):
        write = FileOp(float(index), FileOpType.WRITE, path,
                       offset=page * SECTOR, nbytes=pages * SECTOR)
        ios = [io for io in ext4.lower(write) if io.nbytes >= pages * 0]
        data_ios = [io for io in ext4.lower(
            FileOp(float(index) + 0.5, FileOpType.READ, path,
                   offset=page * SECTOR, nbytes=pages * SECTOR)
        )]
        key = (path, page, pages)
        lbas = tuple(io.lba for io in data_ios)
        if key in mapping:
            assert mapping[key] == lbas  # stable mapping
        mapping[key] = lbas
        total = sum(io.nbytes for io in data_ios)
        assert total == pages * SECTOR
