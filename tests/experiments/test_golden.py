"""Golden-snapshot regression tests for the headline paper experiments.

Each golden file freezes an experiment's structured data at a small,
fixed (seed, num_requests) so perf-oriented PRs cannot silently drift the
paper numbers.  Comparison is tolerance-aware (tiny float noise from e.g.
a numpy upgrade is fine; a real numeric change is not).

Refresh intentionally with::

    PYTHONPATH=src python -m pytest tests/experiments/test_golden.py --update-golden
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import fig3, fig8, runner, table3

GOLDEN_DIR = Path(__file__).parent / "golden"
#: Frozen run parameters -- changing these requires regenerating goldens.
GOLDEN_SEED = 20150614
GOLDEN_REQUESTS = 120

#: Relative/absolute tolerance for float comparisons.
REL_TOL = 1e-9
ABS_TOL = 1e-12

GOLDEN_EXPERIMENTS = {
    "fig3": fig3.run,
    "table3": table3.run,
    "fig8": fig8.run,
}


def assert_close(expected, actual, path="$", rel=REL_TOL, abs_tol=ABS_TOL):
    """Deep compare with float tolerance; pinpoints the diverging path."""
    if isinstance(expected, dict):
        assert isinstance(actual, dict), f"{path}: {type(actual).__name__} != dict"
        assert sorted(expected) == sorted(actual), (
            f"{path}: keys {sorted(actual)} != golden {sorted(expected)}"
        )
        for key in expected:
            assert_close(expected[key], actual[key], f"{path}.{key}", rel, abs_tol)
    elif isinstance(expected, list):
        assert isinstance(actual, list), f"{path}: {type(actual).__name__} != list"
        assert len(expected) == len(actual), (
            f"{path}: length {len(actual)} != golden {len(expected)}"
        )
        for index, (a, b) in enumerate(zip(expected, actual)):
            assert_close(a, b, f"{path}[{index}]", rel, abs_tol)
    elif isinstance(expected, float) or isinstance(actual, float):
        assert actual == pytest.approx(expected, rel=rel, abs=abs_tol), (
            f"{path}: {actual!r} != golden {expected!r}"
        )
    else:
        assert expected == actual, f"{path}: {actual!r} != golden {expected!r}"


def _golden_path(experiment_id: str) -> Path:
    return GOLDEN_DIR / f"{experiment_id}.json"


def _current_snapshot(experiment_id: str):
    result = GOLDEN_EXPERIMENTS[experiment_id](
        seed=GOLDEN_SEED, num_requests=GOLDEN_REQUESTS
    )
    return {
        "experiment_id": result.experiment_id,
        "seed": GOLDEN_SEED,
        "num_requests": GOLDEN_REQUESTS,
        "data": runner._jsonable(result.data),
    }


@pytest.mark.parametrize("experiment_id", sorted(GOLDEN_EXPERIMENTS))
def test_golden_snapshot(experiment_id, update_golden):
    snapshot = _current_snapshot(experiment_id)
    path = _golden_path(experiment_id)
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"golden refreshed: {path}")
    assert path.exists(), (
        f"missing golden {path}; generate it with --update-golden"
    )
    golden = json.loads(path.read_text())
    assert golden["seed"] == GOLDEN_SEED
    assert golden["num_requests"] == GOLDEN_REQUESTS
    assert_close(golden["data"], snapshot["data"])


class TestComparator:
    def test_accepts_tiny_float_noise(self):
        assert_close({"x": [1.0, 2.0]}, {"x": [1.0 + 1e-12, 2.0]})

    def test_rejects_real_drift(self):
        with pytest.raises(AssertionError, match=r"\$\.x\[0\]"):
            assert_close({"x": [1.0]}, {"x": [1.001]})

    def test_rejects_missing_key(self):
        with pytest.raises(AssertionError, match="keys"):
            assert_close({"a": 1}, {"b": 1})

    def test_rejects_length_change(self):
        with pytest.raises(AssertionError, match="length"):
            assert_close([1, 2], [1])

    def test_exact_for_non_floats(self):
        with pytest.raises(AssertionError):
            assert_close({"n": "4 KiB"}, {"n": "8 KiB"})
