"""Tests for the experiment harness's shared caching layer."""

import os

from repro.experiments import common


class TestCaching:
    def test_traces_cached_per_key(self):
        first = common.individual_traces(seed=42, num_requests=50)
        second = common.individual_traces(seed=42, num_requests=50)
        assert first[0] is second[0]  # same objects: cache hit

    def test_distinct_keys_not_shared(self):
        a = common.individual_traces(seed=42, num_requests=50)
        b = common.individual_traces(seed=43, num_requests=50)
        assert a[0] is not b[0]
        assert [r.lba for r in a[0]] != [r.lba for r in b[0]]

    def test_all_traces_superset_of_individual(self):
        everything = common.all_traces(seed=42, num_requests=50)
        names = [trace.name for trace in everything]
        assert len(names) == 25
        individual = [t.name for t in common.individual_traces(seed=42, num_requests=50)]
        assert names[:18] == individual

    def test_collections_cached(self):
        first = common.replayed_individual(seed=42, num_requests=40)
        second = common.replayed_individual(seed=42, num_requests=40)
        assert first[0] is second[0]
        assert all(result.trace.completed for result in first)

    def test_replay_on_fresh_device(self):
        from repro.emmc import four_ps

        trace = common.individual_traces(seed=42, num_requests=30)[0]
        first = common.replay_on(four_ps(), trace)
        second = common.replay_on(four_ps(), trace)
        # Brand-new device each time: identical stats.
        assert first.stats.mean_response_ms == second.stats.mean_response_ms


class TestProcessLocalLRU:
    def test_hit_and_miss_accounting(self):
        cache = common.ProcessLocalLRU(maxsize=4)
        assert cache.get_or_compute("a", lambda: 1) == 1
        assert cache.get_or_compute("a", lambda: 2) == 1  # cached
        assert (cache.hits, cache.misses) == (1, 1)

    def test_bounded_lru_eviction(self):
        cache = common.ProcessLocalLRU(maxsize=2)
        for key in ("a", "b", "c"):
            cache.get_or_compute(key, lambda k=key: k.upper())
        assert len(cache) == 2
        assert "a" not in cache  # least recently used went first
        assert "b" in cache and "c" in cache

    def test_lru_order_refreshed_on_hit(self):
        cache = common.ProcessLocalLRU(maxsize=2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("a", lambda: 0)  # refresh "a"
        cache.get_or_compute("c", lambda: 3)  # evicts "b", not "a"
        assert "a" in cache and "b" not in cache

    def test_rejects_nonpositive_maxsize(self):
        import pytest

        with pytest.raises(ValueError):
            common.ProcessLocalLRU(maxsize=0)


class TestForkSafety:
    """Workers must never observe another process's trace cache."""

    def test_cache_emptied_when_pid_changes(self):
        cache = common.ProcessLocalLRU(maxsize=8)
        cache.get_or_compute("stale", lambda: "parent-value")
        assert "stale" in cache
        # Simulate "this object was inherited across a fork": the recorded
        # owner pid no longer matches os.getpid().
        cache._pid = os.getpid() + 1
        assert "stale" not in cache  # first touch from the "child" clears
        assert cache.fork_invalidations == 1
        assert cache.get_or_compute("stale", lambda: "child-value") == "child-value"

    def test_trace_cache_not_reused_across_processes(self):
        before = common.individual_traces(seed=11, num_requests=30)[0]
        assert common.individual_traces(seed=11, num_requests=30)[0] is before
        common._TRACE_CACHE._pid = os.getpid() + 1  # fake inherited-from-fork
        after = common.individual_traces(seed=11, num_requests=30)[0]
        assert after is not before  # recomputed, not served stale
        # Determinism: the recomputed trace is identical in content.
        assert [r.lba for r in after] == [r.lba for r in before]

    def test_fork_hook_clears_both_caches(self):
        common.cached_trace("Twitter", seed=12, num_requests=25)
        common.cached_collection("Twitter", seed=12, num_requests=25)
        assert len(common._TRACE_CACHE) > 0
        assert len(common._COLLECTION_CACHE) > 0
        # clear_experiment_caches is what os.register_at_fork runs in the
        # child; invoking it directly must leave both memos empty.
        common.clear_experiment_caches()
        assert len(common._TRACE_CACHE) == 0
        assert len(common._COLLECTION_CACHE) == 0

    def test_real_fork_child_starts_empty(self):
        if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
            import pytest

            pytest.skip("os.fork not available")
        common.cached_trace("Twitter", seed=13, num_requests=25)
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:  # pragma: no cover - child process
            os.close(read_fd)
            payload = b"empty" if len(common._TRACE_CACHE) == 0 else b"stale"
            os.write(write_fd, payload)
            os.close(write_fd)
            os._exit(0)
        os.close(write_fd)
        try:
            assert os.read(read_fd, 16) == b"empty"
        finally:
            os.close(read_fd)
            os.waitpid(pid, 0)


class TestTraceStoreSourcing:
    """``$REPRO_TRACE_STORE`` swaps synthesis for packed stores, exactly."""

    def _pack(self, root, name, seed, num_requests):
        from repro.store import pack
        from repro.workloads import generate_trace

        trace = generate_trace(name, seed=seed, num_requests=num_requests)
        key = common.trace_store_key(name, seed, num_requests)
        pack(trace, os.path.join(root, key), chunk_rows=32)
        return trace

    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(common.TRACE_STORE_ENV, raising=False)
        assert common._trace_from_store("Email", 1, 30) is None

    def test_store_key_escapes_slash(self):
        assert common.trace_store_key("Music/WB", 7, None) == "Music+WB-s7-nfull"
        assert common.trace_store_key("Email", 7, 90) == "Email-s7-n90"

    def test_sourced_trace_identical_to_synthesis(self, tmp_path, monkeypatch):
        expected = self._pack(tmp_path, "Email", 21, 80)
        monkeypatch.setenv(common.TRACE_STORE_ENV, str(tmp_path))
        common.clear_experiment_caches()
        sourced = common.cached_trace("Email", seed=21, num_requests=80)
        assert sourced.name == expected.name
        assert sourced.metadata == expected.metadata
        assert list(sourced) == list(expected)
        common.clear_experiment_caches()

    def test_missing_store_falls_back_to_synthesis(self, tmp_path, monkeypatch):
        monkeypatch.setenv(common.TRACE_STORE_ENV, str(tmp_path))
        common.clear_experiment_caches()
        trace = common.cached_trace("Twitter", seed=22, num_requests=40)
        assert len(trace) == 40
        common.clear_experiment_caches()
