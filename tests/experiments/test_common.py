"""Tests for the experiment harness's shared caching layer."""

from repro.experiments import common


class TestCaching:
    def test_traces_cached_per_key(self):
        first = common.individual_traces(seed=42, num_requests=50)
        second = common.individual_traces(seed=42, num_requests=50)
        assert first[0] is second[0]  # same objects: cache hit

    def test_distinct_keys_not_shared(self):
        a = common.individual_traces(seed=42, num_requests=50)
        b = common.individual_traces(seed=43, num_requests=50)
        assert a[0] is not b[0]
        assert [r.lba for r in a[0]] != [r.lba for r in b[0]]

    def test_all_traces_superset_of_individual(self):
        everything = common.all_traces(seed=42, num_requests=50)
        names = [trace.name for trace in everything]
        assert len(names) == 25
        individual = [t.name for t in common.individual_traces(seed=42, num_requests=50)]
        assert names[:18] == individual

    def test_collections_cached(self):
        first = common.replayed_individual(seed=42, num_requests=40)
        second = common.replayed_individual(seed=42, num_requests=40)
        assert first[0] is second[0]
        assert all(result.trace.completed for result in first)

    def test_replay_on_fresh_device(self):
        from repro.emmc import four_ps

        trace = common.individual_traces(seed=42, num_requests=30)[0]
        first = common.replay_on(four_ps(), trace)
        second = common.replay_on(four_ps(), trace)
        # Brand-new device each time: identical stats.
        assert first.stats.mean_response_ms == second.stats.mean_response_ms
