"""Behaviour of the on-disk result cache (cold/warm/invalidation/corruption)."""

from __future__ import annotations

import pickle

import pytest

from repro.experiments import parallel, runner
from repro.experiments.cache import (
    CACHE_DIR_ENV,
    NullCache,
    ResultCache,
    cache_key,
    code_fingerprint,
    default_cache_dir,
)
from repro.experiments.registry import REGISTRY

IDS = ["fig4", "fig6", "table3"]
SEED = 99
N = 80


@pytest.fixture
def cache(tmp_path):
    return ResultCache(cache_dir=tmp_path / "cache")


@pytest.fixture
def compute_spy(monkeypatch):
    """Count real experiment computations inside the engine."""
    calls = []
    original = parallel._run_whole

    def spy(experiment_id, seed, num_requests):
        calls.append(experiment_id)
        return original(experiment_id, seed, num_requests)

    monkeypatch.setattr(parallel, "_run_whole", spy)
    return calls


class TestColdWarm:
    def test_cold_run_misses_and_stores(self, cache, compute_spy):
        summary = parallel.execute(ids=IDS, seed=SEED, num_requests=N, cache=cache)
        assert sorted(compute_spy) == sorted(IDS)
        assert cache.stats.misses == len(IDS)
        assert cache.stats.stores == len(IDS)
        assert cache.stats.hits == 0
        assert all(t.cache == "miss" for t in summary.telemetry)

    def test_warm_run_hits_without_recompute(self, cache, compute_spy):
        cold = parallel.execute(ids=IDS, seed=SEED, num_requests=N, cache=cache)
        compute_spy.clear()
        warm_cache = ResultCache(cache_dir=cache.cache_dir)
        warm = parallel.execute(
            ids=IDS, seed=SEED, num_requests=N, cache=warm_cache
        )
        assert compute_spy == []  # nothing recomputed
        assert warm_cache.stats.hits == len(IDS)
        assert warm_cache.stats.misses == 0
        assert warm_cache.stats.hit_ids == IDS
        assert all(t.cache == "hit" for t in warm.telemetry)
        # Cached results replay byte-identically.
        assert [r.render() for r in warm.results] == [
            r.render() for r in cold.results
        ]
        assert [runner._jsonable(r.data) for r in warm.results] == [
            runner._jsonable(r.data) for r in cold.results
        ]

    def test_null_cache_never_reads_or_writes(self, tmp_path, compute_spy):
        null = NullCache()
        parallel.execute(ids=["fig4"], seed=SEED, num_requests=N, cache=null)
        parallel.execute(ids=["fig4"], seed=SEED, num_requests=N, cache=null)
        assert compute_spy == ["fig4", "fig4"]  # recomputed both times
        assert null.stats.stores == 0 and null.stats.hits == 0


class TestInvalidation:
    def test_changed_seed_misses(self, cache, compute_spy):
        parallel.execute(ids=["fig4"], seed=SEED, num_requests=N, cache=cache)
        compute_spy.clear()
        parallel.execute(ids=["fig4"], seed=SEED + 1, num_requests=N, cache=cache)
        assert compute_spy == ["fig4"]

    def test_changed_num_requests_misses(self, cache, compute_spy):
        parallel.execute(ids=["fig4"], seed=SEED, num_requests=N, cache=cache)
        compute_spy.clear()
        parallel.execute(ids=["fig4"], seed=SEED, num_requests=N + 1, cache=cache)
        assert compute_spy == ["fig4"]

    def test_key_depends_on_code_fingerprint(self, monkeypatch):
        spec = REGISTRY["fig4"]
        before = cache_key(spec, SEED, N)
        monkeypatch.setattr(
            "repro.experiments.cache.code_fingerprint", lambda _spec: "different"
        )
        assert cache_key(spec, SEED, N) != before

    def test_key_depends_on_package_version(self, monkeypatch):
        spec = REGISTRY["fig4"]
        before = cache_key(spec, SEED, N)
        monkeypatch.setattr("repro.experiments.cache.__version__", "0.0.0-test")
        assert cache_key(spec, SEED, N) != before

    def test_seed_independent_experiment_shares_entries(self):
        spec = REGISTRY["overhead"]  # declared uses_seed=False
        assert cache_key(spec, 1, N) == cache_key(spec, 2, N)
        assert cache_key(spec, 1, N) != cache_key(spec, 1, None)

    def test_fingerprint_covers_common_helpers(self):
        spec = REGISTRY["fig4"]
        fingerprint = code_fingerprint(spec)
        assert fingerprint == code_fingerprint(spec)  # stable
        assert len(fingerprint) == 64


class TestCorruption:
    def _entry_paths(self, cache):
        return sorted(cache.results_dir.glob("*.pkl"))

    def test_corrupt_entry_recomputes_gracefully(self, cache, compute_spy):
        parallel.execute(ids=["fig4"], seed=SEED, num_requests=N, cache=cache)
        (path,) = self._entry_paths(cache)
        path.write_bytes(b"not a pickle at all")
        compute_spy.clear()
        fresh = ResultCache(cache_dir=cache.cache_dir)
        summary = parallel.execute(
            ids=["fig4"], seed=SEED, num_requests=N, cache=fresh
        )
        assert compute_spy == ["fig4"]  # degraded to recompute
        assert fresh.stats.invalidated == 1
        assert fresh.stats.hits == 0
        assert summary.results[0].experiment_id == "fig4"
        # The corrupt entry was replaced by a fresh store...
        again = ResultCache(cache_dir=cache.cache_dir)
        assert again.load(REGISTRY["fig4"], SEED, N) is not None

    def test_wrong_payload_type_treated_as_corrupt(self, cache):
        spec = REGISTRY["fig4"]
        parallel.execute(ids=["fig4"], seed=SEED, num_requests=N, cache=cache)
        (path,) = self._entry_paths(cache)
        key = path.stem
        path.write_bytes(
            pickle.dumps({"key": key, "format": 1, "result": "not-a-result"})
        )
        fresh = ResultCache(cache_dir=cache.cache_dir)
        assert fresh.load(spec, SEED, N) is None
        assert fresh.stats.invalidated == 1
        assert not path.exists()  # corrupt entry removed

    def test_unwritable_cache_degrades_to_compute(self, tmp_path, compute_spy):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file where the cache dir should be")
        cache = ResultCache(cache_dir=blocked)  # mkdir will fail
        summary = parallel.execute(
            ids=["fig4"], seed=SEED, num_requests=N, cache=cache
        )
        assert compute_spy == ["fig4"]
        assert summary.results[0].experiment_id == "fig4"
        assert cache.stats.errors >= 1  # store failed, run succeeded


class TestLocationResolution:
    def test_env_var_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "via-env"))
        assert default_cache_dir() == tmp_path / "via-env"

    def test_xdg_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro"


class TestRunnerCacheFlags:
    def test_warm_cli_rerun_reports_hits(self, capsys, tmp_path):
        argv = ["fig4", "--quick", "--seed", "5", "--cache-dir", str(tmp_path)]
        assert runner.main(argv) == 0
        first = capsys.readouterr().out
        assert "cache: 0/1 hits" in first
        assert runner.main(argv) == 0
        second = capsys.readouterr().out
        assert "cache hit" in second
        assert "cache: 1/1 hits" in second

    def test_no_cache_flag_recomputes(self, capsys, tmp_path, compute_spy):
        argv = [
            "fig4", "--quick", "--seed", "5", "--cache-dir", str(tmp_path),
            "--no-cache",
        ]
        assert runner.main(argv) == 0
        assert runner.main(argv) == 0
        assert compute_spy == ["fig4", "fig4"]
        assert list(tmp_path.glob("**/*.pkl")) == []
