"""Tests for the repro-experiments CLI entry point."""

import json

from repro.experiments import runner


class TestMain:
    def test_single_quick_experiment(self, capsys, tmp_path):
        output = tmp_path / "report.txt"
        json_path = tmp_path / "data.json"
        code = runner.main(
            ["fig4", "--quick", "--seed", "3",
             "--output", str(output), "--json", str(json_path)]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "fig4" in printed
        assert "finished in" in printed
        assert "Request size distributions" in output.read_text()
        data = json.loads(json_path.read_text())
        assert "fig4" in data
        assert "histograms" in data["fig4"]
        assert "Twitter" in data["fig4"]["histograms"]

    def test_jsonable_handles_everything(self):
        import dataclasses

        @dataclasses.dataclass
        class Point:
            x: int

        value = {"a": [Point(1), (2, 3)], 4: {"b": None, "c": object()}}
        converted = runner._jsonable(value)
        assert converted["a"][0] == {"x": 1}
        assert converted["4"]["b"] is None
        assert isinstance(converted["4"]["c"], str)
        json.dumps(converted)  # fully serializable


class TestNewFlags:
    def test_list_shows_registry(self, capsys):
        assert runner.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "calibration" in out
        assert "18 shards" in out  # fig8/fig9 shard plans surfaced

    def test_unknown_id_exits_2_with_message(self, capsys):
        assert runner.main(["nope"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_jobs_flag_produces_same_report_file(self, tmp_path):
        serial = tmp_path / "serial.txt"
        par = tmp_path / "par.txt"
        base = ["fig4", "fig6", "--quick", "--seed", "9", "--no-cache"]
        assert runner.main(base + ["--jobs", "1", "--output", str(serial)]) == 0
        assert runner.main(base + ["--jobs", "2", "--output", str(par)]) == 0
        assert serial.read_bytes() == par.read_bytes()

    def test_json_meta_telemetry(self, tmp_path):
        json_path = tmp_path / "data.json"
        code = runner.main(
            ["fig4", "--quick", "--seed", "3", "--cache-dir",
             str(tmp_path / "cache"), "--json", str(json_path)]
        )
        assert code == 0
        meta = json.loads(json_path.read_text())["_meta"]
        assert meta["run"]["jobs"] == 1
        assert meta["run"]["cache"]["misses"] == 1
        assert meta["run"]["experiments"][0]["experiment_id"] == "fig4"
        assert meta["num_requests"] == 1500

    def test_profile_writes_top_lines_next_to_meta(self, tmp_path, capsys):
        json_path = tmp_path / "data.json"
        code = runner.main(
            ["fig4", "--quick", "--seed", "3", "--profile",
             "--json", str(json_path)]
        )
        assert code == 0
        data = json.loads(json_path.read_text())
        assert "_meta" in data and "_profile" in data
        lines = data["_profile"]["fig4"]
        # Header row plus at most 20 hotspot lines, cumulative-sorted.
        assert lines[0].lstrip().startswith("ncalls")
        assert 2 <= len(lines) <= 21
        assert any("cumtime" in line for line in lines[:1])
        assert any("fig4" in line or "parallel.py" in line for line in lines)

    def test_profile_without_json_prints_to_stdout(self, capsys):
        assert runner.main(["fig4", "--quick", "--seed", "3", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "[profile: fig4]" in out
        assert "cumtime" in out
