"""Tests for the repro-experiments CLI entry point."""

import json

from repro.experiments import runner


class TestMain:
    def test_single_quick_experiment(self, capsys, tmp_path):
        output = tmp_path / "report.txt"
        json_path = tmp_path / "data.json"
        code = runner.main(
            ["fig4", "--quick", "--seed", "3",
             "--output", str(output), "--json", str(json_path)]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "fig4" in printed
        assert "finished in" in printed
        assert "Request size distributions" in output.read_text()
        data = json.loads(json_path.read_text())
        assert "fig4" in data
        assert "histograms" in data["fig4"]
        assert "Twitter" in data["fig4"]["histograms"]

    def test_jsonable_handles_everything(self):
        import dataclasses

        @dataclasses.dataclass
        class Point:
            x: int

        value = {"a": [Point(1), (2, 3)], 4: {"b": None, "c": object()}}
        converted = runner._jsonable(value)
        assert converted["a"][0] == {"x": 1}
        assert converted["4"]["b"] is None
        assert isinstance(converted["4"]["c"], str)
        json.dumps(converted)  # fully serializable
