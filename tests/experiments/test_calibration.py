"""Tests for the calibration-report experiment."""

import pytest

from repro.experiments import calibration


class TestCellDelta:
    def test_abs_tolerance(self):
        cell = calibration._check("T", "write_req_pct", 52.0, 50.0)
        assert cell.within_budget
        assert cell.delta == pytest.approx(2.0)
        assert not calibration._check("T", "write_req_pct", 60.0, 50.0).within_budget

    def test_rel_tolerance(self):
        assert calibration._check("T", "avg_size_kib", 12.0, 10.0).within_budget
        assert not calibration._check("T", "avg_size_kib", 20.0, 10.0).within_budget

    def test_zero_published_passes_rel(self):
        assert calibration._check("T", "avg_size_kib", 5.0, 0.0).within_budget


class TestQuickReport:
    def test_quick_mode_skips_length_dependent_columns(self):
        result = calibration.run(seed=5, num_requests=400)
        columns = {d.column for d in result.data["deltas"]}
        assert "duration_s" not in columns  # only checked at full length
        assert "write_req_pct" in columns
        assert "nowait_pct" in columns

    def test_quick_mode_mostly_within_budget(self):
        result = calibration.run(seed=5, num_requests=1500)
        deltas = result.data["deltas"]
        bad = result.data["out_of_budget"]
        # Shortened traces add sampling noise (the budget is sized for the
        # published trace lengths); the vast majority must still fit.
        assert len(bad) <= len(deltas) * 0.10
