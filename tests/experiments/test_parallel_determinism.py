"""Serial vs parallel determinism of the experiment engine.

The parallel engine's contract is that ``--jobs N`` output is
bit-identical to serial output for every experiment.  These tests pin the
contract at shortened trace lengths (the code path is identical at every
length; the full ``--quick`` sweep runs in CI and the ``slow`` marker).
"""

from __future__ import annotations

import pytest

from repro.experiments import parallel, runner
from repro.experiments.registry import REGISTRY

#: Short traces keep the 19x3 experiment runs affordable in tier-1.
N = 150
SEED = 1234

ALL_IDS = list(REGISTRY)


def _deep_data(results):
    """Fully JSON-able deep copy of every result's structured data."""
    return [runner._jsonable(result.data) for result in results]


@pytest.fixture(scope="module")
def serial_summary():
    return parallel.execute(ids=ALL_IDS, seed=SEED, num_requests=N, jobs=1)


@pytest.fixture(scope="module")
def parallel_summary():
    return parallel.execute(ids=ALL_IDS, seed=SEED, num_requests=N, jobs=4)


class TestSerialVsParallel:
    def test_every_experiment_ran_once(self, serial_summary, parallel_summary):
        assert [r.experiment_id for r in serial_summary.results] == ALL_IDS
        assert [r.experiment_id for r in parallel_summary.results] == ALL_IDS

    def test_data_identical(self, serial_summary, parallel_summary):
        serial = _deep_data(serial_summary.results)
        par = _deep_data(parallel_summary.results)
        for eid, a, b in zip(ALL_IDS, serial, par):
            assert a == b, f"{eid}: parallel data diverged from serial"

    def test_rendered_reports_identical(self, serial_summary, parallel_summary):
        for a, b in zip(serial_summary.results, parallel_summary.results):
            assert a.render() == b.render()

    def test_heavy_experiments_actually_sharded(self, parallel_summary):
        shards = {t.experiment_id: t.shards for t in parallel_summary.telemetry}
        assert shards["fig8"] == 18
        assert shards["fig9"] == 18
        assert shards["fig3"] == 19  # device sweep + 18 apps

    def test_telemetry_covers_run(self, parallel_summary):
        assert parallel_summary.jobs == 4
        assert parallel_summary.wall_s > 0
        assert parallel_summary.compute_s > 0
        assert all(t.cache == "off" for t in parallel_summary.telemetry)


class TestParallelVsParallel:
    def test_two_parallel_runs_identical(self, parallel_summary):
        again = parallel.execute(
            ids=["fig3", "fig8", "table4", "overhead"],
            seed=SEED,
            num_requests=N,
            jobs=2,
        )
        by_id = {r.experiment_id: r for r in parallel_summary.results}
        for result in again.results:
            reference = by_id[result.experiment_id]
            assert result.render() == reference.render()
            assert runner._jsonable(result.data) == runner._jsonable(reference.data)


class TestSeedSensitivity:
    def test_different_seed_changes_seeded_experiments(self, serial_summary):
        other = parallel.execute(ids=["table3"], seed=SEED + 1, num_requests=N, jobs=1)
        reference = next(
            r for r in serial_summary.results if r.experiment_id == "table3"
        )
        assert runner._jsonable(other.results[0].data) != runner._jsonable(
            reference.data
        )


class TestEngineEdges:
    def test_rejects_zero_jobs(self):
        with pytest.raises(ValueError):
            parallel.execute(ids=["fig4"], seed=1, num_requests=50, jobs=0)

    def test_unknown_id_raises_keyerror(self):
        with pytest.raises(KeyError):
            parallel.execute(ids=["nope"], seed=1, num_requests=50)

    def test_selection_order_preserved(self):
        summary = parallel.execute(
            ids=["fig6", "fig4", "fig5"], seed=3, num_requests=60, jobs=2
        )
        assert [r.experiment_id for r in summary.results] == ["fig6", "fig4", "fig5"]

    def test_dependency_cycle_detected(self):
        import dataclasses

        from repro.experiments import fig4 as fig4_module

        a = dataclasses.replace(fig4_module.SPEC, experiment_id="a", deps=("b",))
        b = dataclasses.replace(fig4_module.SPEC, experiment_id="b", deps=("a",))
        with pytest.raises(ValueError, match="cycle"):
            parallel._topological_waves([a, b])

    def test_deps_scheduled_in_earlier_wave(self):
        import dataclasses

        from repro.experiments import fig4 as fig4_module

        first = dataclasses.replace(fig4_module.SPEC, experiment_id="first")
        second = dataclasses.replace(
            fig4_module.SPEC, experiment_id="second", deps=("first",)
        )
        waves = parallel._topological_waves([second, first])
        assert [[s.experiment_id for s in wave] for wave in waves] == [
            ["first"],
            ["second"],
        ]


@pytest.mark.slow
class TestQuickModeDeterminism:
    """The full ``--quick`` contract (1500 requests), as CI runs it."""

    def test_quick_serial_vs_parallel(self):
        serial = parallel.execute(ids=ALL_IDS, seed=SEED, num_requests=1500, jobs=1)
        par = parallel.execute(ids=ALL_IDS, seed=SEED, num_requests=1500, jobs=2)
        assert _deep_data(serial.results) == _deep_data(par.results)
        assert [r.render() for r in serial.results] == [
            r.render() for r in par.results
        ]
