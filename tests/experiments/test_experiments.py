"""Quick-mode tests for the experiment harness (shortened traces)."""

import pytest

from repro.workloads import COMBO_APPS, INDIVIDUAL_APPS
from repro.experiments import runner
from repro.experiments import fig3, fig4, fig6, fig7, fig8, fig9, table3, table4

QUICK = 400  # requests per trace in quick mode
SEED = 77


class TestTable3:
    def test_covers_all_25_traces(self):
        result = table3.run(seed=SEED, num_requests=QUICK)
        assert len(result.data["measured"]) == 25
        assert "Twitter" in result.table

    def test_write_pcts_in_band(self):
        result = table3.run(seed=SEED, num_requests=QUICK)
        for name, stats in result.data["measured"].items():
            assert 0 <= stats.write_req_pct <= 100


class TestTable4:
    def test_device_columns_present(self):
        result = table4.run(seed=SEED, num_requests=QUICK)
        for stats in result.data["measured"].values():
            assert stats.mean_response_ms > 0
            assert stats.mean_response_ms >= stats.mean_service_ms * 0.99
            assert 0 < stats.nowait_pct <= 100


class TestFig4:
    def test_histograms_sum_to_one(self):
        result = fig4.run(seed=SEED, num_requests=QUICK)
        assert len(result.data["histograms"]) == 18
        for histogram in result.data["histograms"].values():
            assert sum(histogram.values()) == pytest.approx(1.0)

    def test_movie_concentrates_mid_sizes(self):
        histogram = fig4.run(seed=SEED, num_requests=QUICK).data["histograms"]["Movie"]
        assert histogram["(16K,64K]"] > 0.5


class TestFig6:
    def test_covers_individual_apps(self):
        result = fig6.run(seed=SEED, num_requests=QUICK)
        assert set(result.data["histograms"]) == set(INDIVIDUAL_APPS)


class TestFig7:
    def test_three_panels_for_combos(self):
        result = fig7.run(seed=SEED, num_requests=QUICK)
        assert set(result.data["sizes"]) == set(COMBO_APPS)
        assert "(d) arrival-rate inflation" in result.table


class TestFig8:
    def test_subset_run_has_all_schemes(self):
        result = fig8.run(seed=SEED, num_requests=QUICK, apps=["Twitter", "Booting"])
        mrt = result.data["mrt"]
        assert set(mrt) == {"Twitter", "Booting"}
        for per_scheme in mrt.values():
            assert set(per_scheme) == {"4PS", "8PS", "HPS"}
            assert all(value > 0 for value in per_scheme.values())

    def test_hps_beats_4ps_on_heavy_trace(self):
        result = fig8.run(seed=SEED, num_requests=1500, apps=["Booting"])
        assert result.data["improvements"]["Booting"] > 0.2


class TestFig9:
    def test_hps_matches_4ps_and_beats_8ps(self):
        result = fig9.run(seed=SEED, num_requests=QUICK, apps=["Twitter", "Messaging"])
        for per_scheme in result.data["utilization"].values():
            assert per_scheme["HPS"] == pytest.approx(per_scheme["4PS"])
            assert per_scheme["HPS"] > per_scheme["8PS"]


class TestRunner:
    def test_registry_covers_paper(self):
        expected = {"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
                    "table3", "table4", "characteristics", "implications",
                    "overhead", "slc_study", "lifetime", "sensitivity", "power_study", "sdcard_study",
                    "calibration", "ftl_study"}
        assert set(runner.EXPERIMENTS) == expected

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            runner.run_experiments(["nope"])

    def test_run_selected(self):
        results = runner.run_experiments(["fig4"], seed=SEED, num_requests=QUICK)
        assert results[0].experiment_id == "fig4"
        assert results[0].render().startswith("== fig4")
