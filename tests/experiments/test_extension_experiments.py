"""Tests for the extension experiments (SLC study, lifetime, implications)."""

import pytest

from repro.experiments import implications, lifetime, slc_study

SEED = 88


class TestSlcStudy:
    def test_slc_beats_hps_on_small_request_apps(self):
        result = slc_study.run(seed=SEED, num_requests=800,
                               apps=["Messaging", "Twitter"])
        for name, mrt in result.data["mrt"].items():
            assert mrt["HPS-SLC"] < mrt["HPS"], name
        assert result.data["capacities_gib"]["HPS-SLC"] == pytest.approx(24.0)
        assert result.data["capacities_gib"]["HPS"] == pytest.approx(32.0)


class TestLifetime:
    def test_8ps_wears_blocks_fastest(self):
        result = lifetime.run(seed=SEED, num_requests=1500, rounds=4)
        data = result.data
        # The paper's lifetime argument: fewer, larger pages -> each block
        # turns over more often under small random writes.
        assert data["8PS"]["mean_block_cycles"] > data["4PS"]["mean_block_cycles"]
        # Padding shows up as write amplification on 8PS.
        assert data["8PS"]["write_amplification"] > 1.05
        assert data["4PS"]["write_amplification"] == pytest.approx(1.0, abs=0.01)
        for scheme in ("4PS", "8PS", "HPS"):
            assert data[scheme]["erases"] > 0


class TestImplications:
    def test_all_five_reported(self):
        result = implications.run(seed=SEED, num_requests=800)
        assert set(result.data) == {"impl1", "impl2", "impl3", "impl4", "impl5"}
        impl1 = result.data["impl1"]
        assert impl1[1] > impl1[2]  # one channel is clearly worse
        impl2 = result.data["impl2"]
        assert impl2["foreground_gc_with_idle"] < impl2["foreground_gc_threshold_only"]
        assert result.data["impl3"]["read_hit_rate"] < 0.5
        assert result.data["impl5"]["traces_with_4k_majority"] >= 13
