"""Tests for the remaining extension studies (power, sensitivity, sdcard)."""

import pytest

from repro.experiments import power_study, sdcard_study, sensitivity
from repro.experiments.sdcard_study import sdcard_config, split_trace
from repro.workloads import generate_trace

SEED = 99


class TestPowerStudy:
    def test_tradeoff_shape(self):
        result = power_study.run(
            seed=SEED, num_requests=600,
            thresholds_us=(10_000.0, 1_000_000.0, float("inf")),
        )
        data = result.data
        labels = list(data)
        # Longer thresholds: fewer wake-ups, lower MRT, more energy.
        assert data[labels[0]]["wakeups"] > data[labels[1]]["wakeups"]
        assert data["never"]["wakeups"] == 0
        assert data[labels[0]]["mrt_ms"] >= data["never"]["mrt_ms"]
        assert data[labels[0]]["energy_mj"] < data["never"]["energy_mj"]


class TestSensitivity:
    def test_queueing_amplifies_hps_advantage(self):
        result = sensitivity.run(
            seed=SEED, num_requests=1200, factors=(1.0, 8.0)
        )
        curves = result.data["curves"]
        # MRT grows with load for every scheme.
        for name in ("4PS", "8PS", "HPS"):
            assert curves[name][1] > curves[name][0]
        # HPS's relative advantage over 4PS grows with load.
        light = curves["HPS"][0] / curves["4PS"][0]
        heavy = curves["HPS"][1] / curves["4PS"][1]
        assert heavy < light


class TestSdcardStudy:
    def test_split_is_deterministic_partition(self):
        trace = generate_trace("Email", seed=SEED, num_requests=400)
        parts = split_trace(trace, 0.4)
        assert len(parts["internal"]) + len(parts["external"]) == 400
        again = split_trace(trace, 0.4)
        assert [r.lba for r in parts["external"]] == [r.lba for r in again["external"]]

    def test_extremes(self):
        trace = generate_trace("Email", seed=SEED, num_requests=200)
        assert len(split_trace(trace, 0.0)["external"]) == 0
        assert len(split_trace(trace, 1.0)["internal"]) == 0
        with pytest.raises(ValueError):
            split_trace(trace, 1.5)

    def test_sdcard_is_slower_than_emmc(self):
        from repro.trace import KIB, Op, Request
        from repro.emmc import EmmcDevice, four_ps

        request = Request(0.0, 0, 16 * KIB, Op.READ)
        emmc = EmmcDevice(four_ps()).submit(request)
        card = EmmcDevice(sdcard_config()).submit(request)
        assert card.service_us > 2 * emmc.service_us

    def test_offloading_degrades_mrt(self):
        result = sdcard_study.run(
            seed=SEED, num_requests=1000, fractions=(0.0, 0.5)
        )
        data = result.data["mrt_by_fraction"]
        assert data[0.5] > data[0.0]
