"""Unit tests for :mod:`repro.fleet.scenario`."""

import json

import pytest

from repro.fleet import FleetScenario, derive_seed, device_stream


def _scenario(**overrides):
    base = dict(
        devices=10,
        name="s",
        seed=7,
        requests_per_device=50,
        apps={"Twitter": 2.0, "WebBrowsing": 1.0},
        configs={"small-4PS": 3.0, "small-HPS": 1.0},
        fault_profiles={"none": 9.0, "flaky": 1.0},
    )
    base.update(overrides)
    return FleetScenario(**base)


class TestValidation:
    def test_rejects_nonpositive_devices(self):
        with pytest.raises(ValueError, match="devices"):
            _scenario(devices=0)

    def test_rejects_nonpositive_requests(self):
        with pytest.raises(ValueError, match="requests_per_device"):
            _scenario(requests_per_device=-1)

    def test_rejects_unknown_app(self):
        with pytest.raises(ValueError, match="unknown app"):
            _scenario(apps={"NotAnApp": 1.0})

    def test_rejects_unknown_config(self):
        with pytest.raises(ValueError, match="unknown config"):
            _scenario(configs={"9PS": 1.0})

    def test_rejects_unknown_fault_profile(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            _scenario(fault_profiles={"meltdown": 1.0})

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError, match="non-positive weight"):
            _scenario(apps={"Twitter": 0.0})

    def test_rejects_duplicate_mix_member(self):
        with pytest.raises(ValueError, match="duplicate"):
            _scenario(apps=[("Twitter", 1.0), ("Twitter", 2.0)])

    def test_rejects_empty_mix(self):
        with pytest.raises(ValueError, match="empty"):
            _scenario(apps={})

    def test_rejects_bad_factor_range(self):
        with pytest.raises(ValueError, match="rate_factor_range"):
            _scenario(rate_factor_range=(2.0, 0.5))
        with pytest.raises(ValueError, match="size_factor_range"):
            _scenario(size_factor_range=(0.0, 1.0))


class TestRoundTrip:
    def test_json_round_trip_is_identity(self):
        scenario = _scenario(rate_factor_range=(0.5, 2.0), size_factor_range=(1.0, 4.0))
        assert FleetScenario.loads(scenario.dumps()) == scenario

    def test_mix_order_survives_canonical_json(self):
        # Mix order fixes the sampling edges; sort_keys canonical JSON
        # must not be able to reorder it (regression: mixes were once
        # serialized as objects and alphabetized by sort_keys).
        scenario = _scenario(apps={"WebBrowsing": 1.0, "Twitter": 2.0})
        restored = FleetScenario.loads(scenario.dumps())
        assert restored.app_names() == ["WebBrowsing", "Twitter"]
        assert restored == scenario

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "scenario.json"
        scenario = _scenario()
        path.write_text(scenario.dumps())
        assert FleetScenario.load(path) == scenario

    def test_dumps_is_byte_stable(self):
        scenario = _scenario()
        assert scenario.dumps() == scenario.dumps()
        assert scenario.dumps().endswith("\n")

    def test_from_dict_rejects_unknown_fields(self):
        raw = json.loads(_scenario().dumps())
        raw["colour"] = "red"
        with pytest.raises(ValueError, match="unknown fleet scenario fields"):
            FleetScenario.from_dict(raw)

    def test_from_dict_requires_devices(self):
        with pytest.raises(ValueError, match="devices"):
            FleetScenario.from_dict({"name": "x"})

    def test_mixes_accept_pair_lists(self):
        scenario = FleetScenario(devices=3, apps=[["Twitter", 1.0]])
        assert scenario.apps == (("Twitter", 1.0),)


class TestDerived:
    def test_name_tables_in_mix_order(self):
        scenario = _scenario()
        assert scenario.app_names() == ["Twitter", "WebBrowsing"]
        assert scenario.config_names() == ["small-4PS", "small-HPS"]
        assert scenario.fault_profile_names() == ["none", "flaky"]

    def test_with_overrides(self):
        scenario = _scenario().with_overrides(devices=99, seed=1)
        assert scenario.devices == 99
        assert scenario.seed == 1
        assert scenario.apps == _scenario().apps

    def test_describe_mentions_population(self):
        text = _scenario(rate_factor_range=(0.5, 2.0)).describe()
        assert "10 devices" in text
        assert "Twitter" in text
        assert "flaky" in text
        assert "rate x[0.5, 2]" in text

    def test_scenario_is_hashable_and_picklable(self):
        import pickle

        scenario = _scenario()
        assert hash(scenario) == hash(_scenario())
        assert pickle.loads(pickle.dumps(scenario)) == scenario


class TestStreams:
    def test_device_stream_depends_on_seed_and_index(self):
        a = device_stream(0, 1).random()
        assert device_stream(0, 1).random() == a
        assert device_stream(0, 2).random() != a
        assert device_stream(1, 1).random() != a

    def test_derive_seed_is_label_addressed(self):
        assert derive_seed(0, 5, "trace") == derive_seed(0, 5, "trace")
        assert derive_seed(0, 5, "trace") != derive_seed(0, 5, "faults")
        assert derive_seed(0, 5, "trace") != derive_seed(0, 6, "trace")
        assert derive_seed(3, 5, "trace") != derive_seed(0, 5, "trace")
