"""Out-of-core proof: a 1000-device fleet under a hard memory cap.

The acceptance claim: a fleet run's peak memory is bounded by the shard
size, never by the fleet size.  A subprocess imports the stack, clamps
``RLIMIT_DATA`` (brk + private anonymous mappings; see
``tests/store/test_out_of_core.py`` for why not ``RLIMIT_RSS``) to its
usage-at-clamp plus a margin far below the fleet's aggregate request
footprint, and then:

* allocating the whole fleet's worth of per-request data anonymously
  fails with ``MemoryError`` -- the cap genuinely forbids whole-fleet
  materialization;
* the sharded fleet run (devices simulated one at a time, rows streamed
  into chunked store files, O(1) metric state) still completes.

The parent then verifies the store the capped run wrote and re-simulates
one device against its stored row, proving the cap changed nothing.
"""

import json
import os
import resource
import subprocess
import sys

import pytest

from repro.fleet import open_fleet_store, simulate_device

pytestmark = pytest.mark.skipif(
    not sys.platform.startswith("linux") or not hasattr(resource, "RLIMIT_DATA"),
    reason="RLIMIT_DATA enforcement on anonymous mappings is Linux-specific",
)

DEVICES = 1000
REQUESTS_PER_DEVICE = 250
#: Conservative per-request anonymous footprint if the whole fleet were
#: materialized as Request objects at once (a Request dataclass plus list
#: slot comfortably exceeds this).
BYTES_PER_REQUEST = 384
#: Anonymous headroom granted beyond usage at clamp time.  Far below the
#: fleet's aggregate request footprint, comfortably above one shard's
#: transient needs (one device's trace + one simulated device + one
#: buffered store chunk).
MARGIN_BYTES = 48 * 1024 * 1024

_SCRIPT = r"""
import json, resource, sys
import numpy as np
from repro.fleet import FleetScenario, run_fleet

scenario = FleetScenario.loads(sys.argv[2])
fleet_nbytes = int(sys.argv[3])

with open("/proc/self/status") as status:
    vmdata_kb = next(
        int(line.split()[1]) for line in status if line.startswith("VmData:")
    )
cap = vmdata_kb * 1024 + int(sys.argv[4])
resource.setrlimit(resource.RLIMIT_DATA, (cap, cap))

try:  # the cap must forbid materializing the fleet's requests at once...
    block = np.ones(fleet_nbytes, dtype=np.uint8)
    probe = "allocated"
except MemoryError:
    probe = "memoryerror"

# ...while the sharded, streaming fleet run sails through.
result = run_fleet(scenario, sys.argv[1], jobs=1, shard_devices=32)
print(json.dumps({
    "probe": probe,
    "devices": result.devices,
    "maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
}))
"""


@pytest.fixture(scope="module")
def capped_fleet(tmp_path_factory):
    """Run the capped 1000-device fleet subprocess, return (path, result)."""
    from repro.fleet import FleetScenario

    scenario = FleetScenario(
        devices=DEVICES,
        name="ooc",
        seed=17,
        requests_per_device=REQUESTS_PER_DEVICE,
        apps={"Twitter": 2.0, "WebBrowsing": 1.0, "Music": 1.0},
        configs={"small-4PS": 3.0, "small-HPS": 1.0},
    )
    path = tmp_path_factory.mktemp("fleet-ooc") / "fleet"
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            _SCRIPT,
            str(path),
            scenario.dumps(),
            str(DEVICES * REQUESTS_PER_DEVICE * BYTES_PER_REQUEST),
            str(MARGIN_BYTES),
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    return path, scenario, json.loads(proc.stdout)


class TestFleetOutOfCore:
    def test_cap_forbids_whole_fleet_materialization(self, capped_fleet):
        _, _, result = capped_fleet
        assert result["probe"] == "memoryerror"

    def test_capped_run_completes_all_devices(self, capped_fleet):
        path, _, result = capped_fleet
        assert result["devices"] == DEVICES
        store = open_fleet_store(path)
        store.verify()
        assert len(store) == DEVICES

    def test_capped_run_bytes_are_uncorrupted(self, capped_fleet):
        # Re-simulate one device uncapped: bit-identity with the row the
        # capped run stored proves the cap changed nothing.
        path, scenario, _ = capped_fleet
        store = open_fleet_store(path)
        assert store.scenario() == scenario
        assert simulate_device(scenario, 123).row == store.device_row(123)

    def test_fleet_dwarfs_the_anonymous_margin(self, capped_fleet):
        # Guard against the scenario silently degenerating: the probe is
        # only meaningful while the fleet's aggregate request footprint
        # is much larger than the allowed margin.
        assert DEVICES * REQUESTS_PER_DEVICE * BYTES_PER_REQUEST > 1.5 * MARGIN_BYTES
