"""Report tests over a fabricated fleet store (exact, no simulation)."""

import numpy as np
import pytest

from repro.fleet import FleetScenario, FleetStoreWriter, fleet_report, open_fleet_store
from repro.fleet.store import FLEET_COLUMNS


def _scenario(devices):
    return FleetScenario(
        devices=devices,
        name="report-test",
        apps={"Twitter": 1.0, "Music": 1.0},
        configs={"small-4PS": 1.0},
    )


def _write_store(path, rows):
    writer = FleetStoreWriter(path, _scenario(len(rows)))
    for index, overrides in enumerate(rows):
        row = {name: 0.0 if np.dtype(d).kind == "f" else 0 for name, d in FLEET_COLUMNS}
        row["device_index"] = index
        row.update(overrides)
        writer.append_row(row)
    writer.close()
    return open_fleet_store(path)


_DAY_US = 86_400.0 * 1e6


class TestFleetReport:
    def test_totals_and_percentiles(self, tmp_path):
        store = _write_store(
            tmp_path / "f",
            [
                {"requests": 10, "mean_response_us": 1000.0},
                {"requests": 20, "mean_response_us": 3000.0},
                {"requests": 30, "mean_response_us": 5000.0},
            ],
        )
        report = fleet_report(store, percentiles=(50.0,))
        assert report.devices == 3
        assert report.total_requests == 60
        row = report.percentiles["mean response (ms)"]
        assert row["p50"] == pytest.approx(3.0)
        assert row["mean"] == pytest.approx(3.0)

    def test_per_app_breakdown_groups_by_app_id(self, tmp_path):
        store = _write_store(
            tmp_path / "f",
            [
                {"app_id": 0, "requests": 10, "erases": 4},
                {"app_id": 0, "requests": 10, "erases": 6},
                {"app_id": 1, "requests": 30, "erases": 0},
            ],
        )
        report = fleet_report(store)
        assert report.per_app["Twitter"]["devices"] == 2
        assert report.per_app["Twitter"]["mean_erases"] == pytest.approx(5.0)
        assert report.per_app["Music"]["requests"] == 30

    def test_absent_app_omitted_from_breakdown(self, tmp_path):
        store = _write_store(tmp_path / "f", [{"app_id": 0}])
        report = fleet_report(store)
        assert "Music" not in report.per_app

    def test_eol_projection_from_wear_rate(self, tmp_path):
        # One device: hottest block at 30 cycles after a 1-day recording.
        # Budget 3000 -> 100 days to EOL at the observed rate.
        store = _write_store(
            tmp_path / "f",
            [{"max_erase": 30, "duration_us": _DAY_US}],
        )
        report = fleet_report(store, percentiles=(50.0,), erase_budget=3000)
        assert report.eol_days["p50"] == pytest.approx(100.0)

    def test_unworn_devices_project_infinite_life(self, tmp_path):
        store = _write_store(tmp_path / "f", [{"duration_us": _DAY_US}] * 3)
        report = fleet_report(store, percentiles=(50.0,))
        assert report.eol_days["p50"] == float("inf")

    def test_mixed_wear_uses_order_statistics(self, tmp_path):
        store = _write_store(
            tmp_path / "f",
            [
                {"max_erase": 30, "duration_us": _DAY_US},   # 100 days
                {"max_erase": 300, "duration_us": _DAY_US},  # 10 days
                {"max_erase": 0, "duration_us": _DAY_US},    # inf
            ],
        )
        report = fleet_report(store, percentiles=(10.0, 90.0))
        assert report.eol_days["p10"] == pytest.approx(10.0)
        assert report.eol_days["p90"] == float("inf")

    def test_render_mentions_the_headlines(self, tmp_path):
        store = _write_store(
            tmp_path / "f",
            [{"app_id": 0, "requests": 5, "max_erase": 30, "duration_us": _DAY_US}],
        )
        text = fleet_report(store).render()
        assert "report-test" in text
        assert "mean response (ms)" in text
        assert "Twitter" in text
        assert "end-of-life" in text

    def test_rejects_bad_budget(self, tmp_path):
        store = _write_store(tmp_path / "f", [{}])
        with pytest.raises(ValueError, match="erase_budget"):
            fleet_report(store, erase_budget=0)
