"""Executor tests: sharding, bit-identical parallelism, re-simulation."""

import pytest

from repro.fleet import (
    FleetScenario,
    open_fleet_store,
    plan_shards,
    run_fleet,
    simulate_device,
)
from repro.fleet.store import FLEET_MANIFEST_NAME


def _scenario(**overrides):
    base = dict(
        devices=12,
        name="exec-test",
        seed=5,
        requests_per_device=25,
        apps={"Twitter": 1.0, "Music": 1.0},
        configs={"small-4PS": 1.0},
        fault_profiles={"none": 5.0, "flaky": 1.0},
        rate_factor_range=(0.5, 2.0),
    )
    base.update(overrides)
    return FleetScenario(**base)


def _store_bytes(path):
    files = sorted(p.name for p in path.iterdir())
    return {name: (path / name).read_bytes() for name in files}


class TestPlanShards:
    def test_covers_population_contiguously(self):
        shards = plan_shards(10, 4)
        assert shards == [(0, 4), (4, 8), (8, 10)]

    def test_single_shard_when_large(self):
        assert plan_shards(3, 100) == [(0, 3)]

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            plan_shards(0, 4)
        with pytest.raises(ValueError):
            plan_shards(4, 0)


class TestRunFleet:
    def test_serial_run_packs_every_device(self, tmp_path):
        result = run_fleet(_scenario(), tmp_path / "fleet", jobs=1, shard_devices=5)
        assert result.devices == 12
        assert result.shards == 3
        store = open_fleet_store(tmp_path / "fleet")
        store.verify()
        assert store.column("device_index").tolist() == list(range(12))
        assert (store.column("requests") == 25).all()

    def test_jobs_do_not_change_a_single_byte(self, tmp_path):
        scenario = _scenario()
        run_fleet(scenario, tmp_path / "j1", jobs=1, shard_devices=3)
        run_fleet(scenario, tmp_path / "j3", jobs=3, shard_devices=3)
        assert _store_bytes(tmp_path / "j1") == _store_bytes(tmp_path / "j3")

    def test_shard_size_does_not_change_a_single_byte(self, tmp_path):
        scenario = _scenario()
        run_fleet(scenario, tmp_path / "s3", jobs=1, shard_devices=3)
        run_fleet(scenario, tmp_path / "s7", jobs=2, shard_devices=7)
        assert _store_bytes(tmp_path / "s3") == _store_bytes(tmp_path / "s7")

    def test_request_summary_lands_in_manifest(self, tmp_path):
        result = run_fleet(_scenario(), tmp_path / "fleet", jobs=1)
        summary = open_fleet_store(tmp_path / "fleet").request_summary
        assert summary["size_stats"]["num_requests"] == 12 * 25
        assert result.request_summary["size_stats"].num_requests == 12 * 25
        assert set(summary) == {
            "size_stats", "size_distribution", "response_distribution",
        }

    def test_fleet_summary_equals_single_device_sum(self, tmp_path):
        scenario = _scenario(devices=3, fault_profiles={"none": 1.0})
        result = run_fleet(scenario, tmp_path / "fleet", jobs=1)
        per_device = sum(
            len(simulate_device(scenario, i).columns) for i in range(3)
        )
        assert result.request_summary["size_stats"].num_requests == per_device

    def test_rejects_bad_jobs(self, tmp_path):
        with pytest.raises(ValueError, match="jobs"):
            run_fleet(_scenario(), tmp_path / "fleet", jobs=0)

    def test_wall_sink_records_fleet_and_shard_spans(self, tmp_path):
        from repro.telemetry import Telemetry

        sink = Telemetry()
        run_fleet(
            _scenario(), tmp_path / "fleet", jobs=1, shard_devices=4, wall_sink=sink
        )
        assert len(sink.spans_named("fleet")) == 1
        shard_spans = [s for s in range(len(sink)) if s not in sink.spans_named("fleet")]
        assert len(shard_spans) == 3  # one per shard

    def test_telemetry_never_affects_store_bytes(self, tmp_path):
        from repro.telemetry import Telemetry

        scenario = _scenario(devices=6)
        run_fleet(scenario, tmp_path / "plain", jobs=1)
        run_fleet(scenario, tmp_path / "traced", jobs=1, wall_sink=Telemetry())
        assert _store_bytes(tmp_path / "plain") == _store_bytes(tmp_path / "traced")


class TestSimulateDevice:
    def test_resimulation_matches_in_fleet_rows(self, tmp_path):
        scenario = _scenario()
        run_fleet(scenario, tmp_path / "fleet", jobs=2, shard_devices=4)
        store = open_fleet_store(tmp_path / "fleet")
        for index in (0, 5, 11):
            assert simulate_device(store.scenario(), index).row == store.device_row(index)

    def test_accepts_spec_or_index(self):
        from repro.fleet import device_spec

        scenario = _scenario(devices=2)
        by_index = simulate_device(scenario, 1)
        by_spec = simulate_device(scenario, device_spec(scenario, 1))
        assert by_index.row == by_spec.row
        assert by_index.digest == by_spec.digest

    def test_digest64_is_digest_prefix(self):
        result = simulate_device(_scenario(devices=1), 0)
        assert result.row["stats_digest64"] == int(result.digest[:16], 16)

    def test_faulty_devices_report_fault_columns(self, tmp_path):
        scenario = _scenario(devices=8, fault_profiles={"flaky": 1.0})
        run_fleet(scenario, tmp_path / "fleet", jobs=1)
        store = open_fleet_store(tmp_path / "fleet")
        assert store.column("fault_events").sum() > 0


class TestManifestDeterminism:
    def test_manifest_identical_across_jobs(self, tmp_path):
        scenario = _scenario(devices=9)
        run_fleet(scenario, tmp_path / "a", jobs=1, shard_devices=2)
        run_fleet(scenario, tmp_path / "b", jobs=4, shard_devices=2)
        a = (tmp_path / "a" / FLEET_MANIFEST_NAME).read_bytes()
        b = (tmp_path / "b" / FLEET_MANIFEST_NAME).read_bytes()
        assert a == b
