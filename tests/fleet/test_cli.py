"""CLI tests for ``repro-fleet`` (in-process via ``main``)."""

import json

import pytest

from repro.fleet import FleetScenario
from repro.fleet.cli import _parse_mix, _parse_range, main


@pytest.fixture()
def small_store(tmp_path):
    """A packed 6-device store plus its path."""
    out = tmp_path / "fleet"
    code = main([
        "run", "--devices", "6", "--requests", "20",
        "--apps", "Twitter:1,Music:1", "--configs", "small-4PS",
        "--seed", "3", "-o", str(out),
    ])
    assert code == 0
    return out


class TestParsers:
    def test_parse_mix_with_weights(self):
        assert _parse_mix("Twitter:2,Music:1") == {"Twitter": 2.0, "Music": 1.0}

    def test_parse_mix_defaults_weight_to_one(self):
        assert _parse_mix("Twitter, Music") == {"Twitter": 1.0, "Music": 1.0}

    def test_parse_mix_rejects_empty(self):
        with pytest.raises(Exception):
            _parse_mix(" , ")

    def test_parse_range(self):
        assert _parse_range("0.5:2") == [0.5, 2.0]
        with pytest.raises(Exception):
            _parse_range("abc")


class TestRun:
    def test_run_writes_a_store(self, tmp_path, capsys):
        out = tmp_path / "fleet"
        code = main([
            "run", "--devices", "3", "--requests", "10",
            "--configs", "small-4PS", "-o", str(out),
        ])
        assert code == 0
        assert (out / "fleet.json").exists()
        assert "simulated 3 devices" in capsys.readouterr().out

    def test_run_refuses_to_clobber(self, small_store, capsys):
        code = main([
            "run", "--devices", "2", "--requests", "20",
            "--configs", "small-4PS", "-o", str(small_store),
        ])
        assert code == 1
        assert "already holds" in capsys.readouterr().err

    def test_run_from_scenario_file(self, tmp_path, capsys):
        scenario = FleetScenario(
            devices=4, requests_per_device=15,
            apps={"Twitter": 1.0}, configs={"small-4PS": 1.0},
        )
        path = tmp_path / "scenario.json"
        path.write_text(scenario.dumps())
        code = main([
            "run", "--scenario", str(path), "--devices", "2",
            "-o", str(tmp_path / "out"),
        ])
        assert code == 0
        assert "simulated 2 devices" in capsys.readouterr().out

    def test_run_rejects_bad_scenario(self, tmp_path, capsys):
        code = main([
            "run", "--devices", "2", "--apps", "NotAnApp",
            "-o", str(tmp_path / "out"),
        ])
        assert code == 2
        assert "bad scenario" in capsys.readouterr().err

    def test_run_with_telemetry_writes_chrome_trace(self, tmp_path):
        out = tmp_path / "fleet"
        trace = tmp_path / "trace.json"
        code = main([
            "run", "--devices", "2", "--requests", "10",
            "--configs", "small-4PS", "-o", str(out),
            "--telemetry", str(trace),
        ])
        assert code == 0
        payload = json.loads(trace.read_text())
        assert any(event.get("name") == "fleet" for event in payload["traceEvents"])


class TestStats:
    def test_stats_renders_report(self, small_store, capsys):
        assert main(["stats", str(small_store), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "6 devices" in out
        assert "mean response (ms)" in out

    def test_stats_json_output(self, small_store, capsys):
        assert main(["stats", str(small_store), "--json"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["devices"] == 6

    def test_stats_missing_store_fails(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope")]) == 1
        assert "no fleet store" in capsys.readouterr().err


class TestShowDevice:
    def test_shows_row(self, small_store, capsys):
        assert main(["show-device", str(small_store), "4"]) == 0
        out = capsys.readouterr().out
        assert "device 4" in out
        assert "stats_digest64" in out

    def test_resimulate_proves_parity(self, small_store, capsys):
        assert main(["show-device", str(small_store), "5", "--resimulate"]) == 0
        assert "re-simulation matches" in capsys.readouterr().out

    def test_out_of_range_index_fails(self, small_store, capsys):
        assert main(["show-device", str(small_store), "17"]) == 1
