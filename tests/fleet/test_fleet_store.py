"""Unit tests for the chunked columnar fleet store."""

import json

import numpy as np
import pytest

from repro.fleet import FleetScenario, FleetStoreError, FleetStoreWriter, open_fleet_store
from repro.fleet.store import FLEET_COLUMNS, FLEET_MANIFEST_NAME


def _scenario(devices=10):
    return FleetScenario(
        devices=devices,
        name="store-test",
        apps={"Twitter": 1.0},
        configs={"small-4PS": 1.0},
    )


def _row(index):
    """A synthetic device row with distinguishable values."""
    row = {}
    for position, (name, dtype) in enumerate(FLEET_COLUMNS):
        if name == "device_index":
            row[name] = index
        elif np.dtype(dtype).kind == "f":
            row[name] = float(index * 100 + position)
        else:
            row[name] = index * 100 + position
    return row


def _pack(path, devices=10, chunk_devices=4, request_summary=None):
    writer = FleetStoreWriter(path, _scenario(devices), chunk_devices=chunk_devices)
    writer.append_rows([_row(i) for i in range(devices)])
    writer.close(request_summary=request_summary)
    return writer


class TestWriter:
    def test_chunks_by_device_count(self, tmp_path):
        writer = _pack(tmp_path / "f", devices=10, chunk_devices=4)
        assert [c["rows"] for c in writer.manifest["chunks"]] == [4, 4, 2]
        assert writer.rows_written == 10

    def test_rejects_out_of_order_rows(self, tmp_path):
        writer = FleetStoreWriter(tmp_path / "f", _scenario())
        writer.append_row(_row(0))
        with pytest.raises(FleetStoreError, match="device-index order"):
            writer.append_row(_row(2))

    def test_rejects_missing_columns(self, tmp_path):
        writer = FleetStoreWriter(tmp_path / "f", _scenario())
        row = _row(0)
        del row["energy_uj"]
        with pytest.raises(FleetStoreError, match="missing columns"):
            writer.append_row(row)

    def test_refuses_to_clobber_without_overwrite(self, tmp_path):
        _pack(tmp_path / "f")
        with pytest.raises(FleetStoreError, match="already holds"):
            FleetStoreWriter(tmp_path / "f", _scenario())
        FleetStoreWriter(tmp_path / "f", _scenario(), overwrite=True)

    def test_crashed_write_leaves_no_manifest(self, tmp_path):
        with pytest.raises(RuntimeError, match="boom"):
            with FleetStoreWriter(tmp_path / "f", _scenario()) as writer:
                writer.append_row(_row(0))
                raise RuntimeError("boom")
        assert not (tmp_path / "f" / FLEET_MANIFEST_NAME).exists()
        with pytest.raises(FleetStoreError, match="no fleet store"):
            open_fleet_store(tmp_path / "f")

    def test_context_manager_finalizes_clean_exit(self, tmp_path):
        with FleetStoreWriter(tmp_path / "f", _scenario(devices=1)) as writer:
            writer.append_row(_row(0))
        assert len(open_fleet_store(tmp_path / "f")) == 1

    def test_manifest_has_no_timestamps_and_is_byte_stable(self, tmp_path):
        _pack(tmp_path / "a")
        _pack(tmp_path / "b")
        a = (tmp_path / "a" / FLEET_MANIFEST_NAME).read_bytes()
        b = (tmp_path / "b" / FLEET_MANIFEST_NAME).read_bytes()
        assert a == b


class TestReader:
    def test_round_trips_every_row(self, tmp_path):
        _pack(tmp_path / "f", devices=10, chunk_devices=4)
        store = open_fleet_store(tmp_path / "f")
        assert len(store) == 10
        assert store.num_chunks == 3
        for index in range(10):
            assert store.device_row(index) == _row(index)

    def test_device_row_rejects_out_of_range(self, tmp_path):
        _pack(tmp_path / "f", devices=3)
        store = open_fleet_store(tmp_path / "f")
        with pytest.raises(IndexError):
            store.device_row(3)

    def test_column_concatenates_chunks(self, tmp_path):
        _pack(tmp_path / "f", devices=10, chunk_devices=3)
        store = open_fleet_store(tmp_path / "f")
        assert store.column("device_index").tolist() == list(range(10))
        with pytest.raises(KeyError):
            store.column("nope")

    def test_iter_chunks_streams_in_order(self, tmp_path):
        _pack(tmp_path / "f", devices=10, chunk_devices=4)
        store = open_fleet_store(tmp_path / "f")
        seen = np.concatenate([c["device_index"] for c in store.iter_chunks()])
        assert seen.tolist() == list(range(10))

    def test_scenario_round_trips_through_manifest(self, tmp_path):
        _pack(tmp_path / "f")
        assert open_fleet_store(tmp_path / "f").scenario() == _scenario()

    def test_request_summary_round_trips(self, tmp_path):
        _pack(tmp_path / "f", request_summary={"size_stats": {"num_requests": 7}})
        store = open_fleet_store(tmp_path / "f")
        assert store.request_summary == {"size_stats": {"num_requests": 7}}

    def test_string_tables_in_mix_order(self, tmp_path):
        writer = FleetStoreWriter(
            tmp_path / "f",
            FleetScenario(
                devices=1,
                apps={"WebBrowsing": 1.0, "Twitter": 1.0},
                configs={"small-HPS": 1.0, "small-4PS": 1.0},
            ),
        )
        writer.append_row(_row(0))
        writer.close()
        store = open_fleet_store(tmp_path / "f")
        assert store.apps == ["WebBrowsing", "Twitter"]
        assert store.configs == ["small-HPS", "small-4PS"]


class TestVerification:
    def test_verify_accepts_intact_store(self, tmp_path):
        _pack(tmp_path / "f")
        open_fleet_store(tmp_path / "f").verify()

    def test_verify_catches_flipped_byte(self, tmp_path):
        _pack(tmp_path / "f")
        chunk = tmp_path / "f" / "devices-00000.bin"
        blob = bytearray(chunk.read_bytes())
        blob[10] ^= 0xFF
        chunk.write_bytes(bytes(blob))
        with pytest.raises(FleetStoreError, match="checksum"):
            open_fleet_store(tmp_path / "f").verify()

    def test_truncated_chunk_is_detected_on_read(self, tmp_path):
        _pack(tmp_path / "f")
        chunk = tmp_path / "f" / "devices-00000.bin"
        chunk.write_bytes(chunk.read_bytes()[:-8])
        store = open_fleet_store(tmp_path / "f")
        with pytest.raises(FleetStoreError, match="bytes"):
            store.device_row(0)

    def test_missing_store_raises(self, tmp_path):
        with pytest.raises(FleetStoreError, match="no fleet store"):
            open_fleet_store(tmp_path / "missing")

    def test_corrupt_manifest_raises(self, tmp_path):
        path = tmp_path / "f"
        _pack(path)
        (path / FLEET_MANIFEST_NAME).write_text("{not json")
        with pytest.raises(FleetStoreError, match="corrupt"):
            open_fleet_store(path)

    def test_foreign_manifest_raises(self, tmp_path):
        path = tmp_path / "f"
        path.mkdir()
        (path / FLEET_MANIFEST_NAME).write_text(json.dumps({"format": "other"}))
        with pytest.raises(FleetStoreError, match="not a fleet store"):
            open_fleet_store(path)

    def test_schema_mismatch_raises(self, tmp_path):
        path = tmp_path / "f"
        _pack(path)
        manifest = json.loads((path / FLEET_MANIFEST_NAME).read_text())
        manifest["columns"][0][0] = "renamed"
        (path / FLEET_MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(FleetStoreError, match="schema"):
            open_fleet_store(path)
