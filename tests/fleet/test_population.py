"""Unit tests for the deterministic population sampler."""

import pytest

from repro.fleet import (
    FleetScenario,
    build_config,
    build_fault_plan,
    build_trace,
    device_spec,
    iter_population,
    population_counts,
)


def _scenario(**overrides):
    base = dict(
        devices=40,
        seed=11,
        requests_per_device=30,
        apps={"Twitter": 1.0, "Music": 1.0},
        configs={"small-4PS": 1.0},
        fault_profiles={"none": 3.0, "flaky": 1.0},
    )
    base.update(overrides)
    return FleetScenario(**base)


class TestDeviceSpec:
    def test_pure_function_of_seed_and_index(self):
        scenario = _scenario()
        assert device_spec(scenario, 7) == device_spec(scenario, 7)

    def test_independent_of_population_size(self):
        # Device 7's identity must not change when the fleet grows: any
        # device re-simulates in isolation regardless of fleet size.
        small = _scenario(devices=10)
        large = _scenario(devices=10_000)
        assert device_spec(small, 7) == device_spec(large, 7)

    def test_seed_changes_identities(self):
        a = [device_spec(_scenario(seed=0), i) for i in range(20)]
        b = [device_spec(_scenario(seed=1), i) for i in range(20)]
        assert any(x.app != y.app or x.trace_seed != y.trace_seed
                   for x, y in zip(a, b))

    def test_rejects_out_of_range_index(self):
        with pytest.raises(ValueError, match="outside population"):
            device_spec(_scenario(devices=5), 5)
        with pytest.raises(ValueError, match="outside population"):
            device_spec(_scenario(devices=5), -1)

    def test_sub_seeds_are_label_derived_not_drawn(self):
        # Adding scaling ranges changes the *drawn* fields but must not
        # reshuffle the label-derived trace/fault seeds.
        plain = device_spec(_scenario(), 3)
        scaled = device_spec(_scenario(rate_factor_range=(0.5, 2.0)), 3)
        assert plain.trace_seed == scaled.trace_seed
        assert plain.fault_seed == scaled.fault_seed

    def test_factors_default_to_exactly_one(self):
        spec = device_spec(_scenario(), 0)
        assert spec.rate_factor == 1.0
        assert spec.size_factor == 1.0

    def test_factors_respect_bounds(self):
        scenario = _scenario(
            devices=60, rate_factor_range=(0.5, 2.0), size_factor_range=(1.0, 4.0)
        )
        for spec in iter_population(scenario):
            assert 0.5 <= spec.rate_factor <= 2.0
            assert 1.0 <= spec.size_factor <= 4.0

    def test_degenerate_range_is_constant_without_a_draw(self):
        # (lo == hi) must behave exactly like the constant -- and take no
        # stream draw, so downstream fields are unaffected.
        plain = device_spec(_scenario(), 3)
        pinned = device_spec(_scenario(rate_factor_range=(2.0, 2.0)), 3)
        assert pinned.rate_factor == 2.0
        assert pinned.size_factor == plain.size_factor

    def test_describe_names_the_identity(self):
        scenario = _scenario(rate_factor_range=(2.0, 2.0))
        text = device_spec(scenario, 1).describe()
        assert "device 1" in text
        assert "app=" in text
        assert "rate x2" in text


class TestPopulation:
    def test_iter_population_covers_range(self):
        scenario = _scenario(devices=10)
        specs = list(iter_population(scenario, 2, 6))
        assert [s.index for s in specs] == [2, 3, 4, 5]

    def test_iter_population_rejects_bad_range(self):
        with pytest.raises(ValueError):
            list(iter_population(_scenario(devices=5), 3, 7))

    def test_counts_sum_to_population(self):
        scenario = _scenario(devices=80)
        counts = population_counts(scenario)
        assert sum(counts["apps"].values()) == 80
        assert sum(counts["configs"].values()) == 80
        assert sum(counts["fault_profiles"].values()) == 80

    def test_mix_weights_shape_the_population(self):
        counts = population_counts(
            _scenario(devices=300, fault_profiles={"none": 9.0, "flaky": 1.0})
        )
        # 9:1 mix over 300 devices: the flaky share should be minor.
        assert counts["fault_profiles"]["none"] > counts["fault_profiles"]["flaky"]
        assert counts["fault_profiles"]["flaky"] > 0


class TestBuilders:
    def test_build_config_returns_fresh_instances(self):
        spec = device_spec(_scenario(), 0)
        assert build_config(spec) is not build_config(spec)
        assert build_config(spec).name == build_config(spec).name

    def test_build_fault_plan_uses_device_fault_seed(self):
        scenario = _scenario(fault_profiles={"flaky": 1.0})
        spec = device_spec(scenario, 4)
        plan = build_fault_plan(spec)
        assert plan.seed == spec.fault_seed
        assert plan.read_error_rate > 0

    def test_build_trace_is_deterministic_and_tagged(self):
        scenario = _scenario()
        spec = device_spec(scenario, 2)
        a = build_trace(scenario, spec)
        b = build_trace(scenario, spec)
        assert a.requests == b.requests
        assert len(a) == scenario.requests_per_device
        assert a.name.startswith(spec.app)

    def test_build_trace_applies_scaling(self):
        scenario = _scenario(
            devices=60, rate_factor_range=(2.0, 2.0), size_factor_range=(2.0, 2.0)
        )
        spec = device_spec(scenario, 0)
        trace = build_trace(scenario, spec)
        assert trace.metadata["rate_factor"] == "2"
        assert trace.metadata["size_factor"] == "2"

    def test_different_devices_get_different_traces(self):
        scenario = _scenario(apps={"Twitter": 1.0})
        first = build_trace(scenario, device_spec(scenario, 0))
        second = build_trace(scenario, device_spec(scenario, 1))
        assert first.requests != second.requests
