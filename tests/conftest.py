"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace import Op, Request, Trace


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/experiments/golden/*.json from the current outputs",
    )


@pytest.fixture
def update_golden(request):
    """True when the run should refresh the golden snapshots."""
    return request.config.getoption("--update-golden")


@pytest.fixture(autouse=True)
def _hermetic_result_cache(tmp_path, monkeypatch):
    """Point the experiment result cache at a per-test directory.

    Keeps the suite from reading (or polluting) the operator's real
    ``~/.cache/repro`` when tests exercise the runner CLI.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-result-cache"))


@pytest.fixture
def rng():
    return np.random.default_rng(42)


def make_request(
    arrival_us=0.0, lba=0, size=4096, op=Op.WRITE, service_start_us=None, finish_us=None
):
    return Request(
        arrival_us=arrival_us,
        lba=lba,
        size=size,
        op=op,
        service_start_us=service_start_us,
        finish_us=finish_us,
    )


@pytest.fixture
def small_trace():
    """Five requests: a sequential write pair, a re-hit, and two reads."""
    requests = [
        make_request(arrival_us=0.0, lba=0, size=8192, op=Op.WRITE),
        make_request(arrival_us=100.0, lba=8192, size=4096, op=Op.WRITE),
        make_request(arrival_us=250.0, lba=0, size=4096, op=Op.READ),
        make_request(arrival_us=400.0, lba=40960, size=16384, op=Op.READ),
        make_request(arrival_us=900.0, lba=8192, size=4096, op=Op.WRITE),
    ]
    return Trace(name="small", requests=requests)


@pytest.fixture
def completed_trace():
    """Three requests with device timestamps (one queued, two immediate)."""
    requests = [
        make_request(0.0, 0, 4096, Op.WRITE, service_start_us=0.0, finish_us=1000.0),
        make_request(500.0, 4096, 4096, Op.WRITE, service_start_us=1000.0, finish_us=2000.0),
        make_request(5000.0, 8192, 8192, Op.READ, service_start_us=5000.0, finish_us=5400.0),
    ]
    return Trace(name="completed", requests=requests)
