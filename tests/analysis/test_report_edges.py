"""Additional rendering edge cases."""

from repro.analysis import render_histogram_table, render_table


class TestRenderEdges:
    def test_no_title(self):
        text = render_table(["a"], [[1]])
        assert text.splitlines()[0].strip() == "a"

    def test_no_rows(self):
        text = render_table(["col1", "col2"], [])
        lines = text.splitlines()
        assert len(lines) == 2  # header + separator only

    def test_wide_cells_stretch_columns(self):
        text = render_table(["x"], [["a-very-long-cell-value"]])
        header, separator, row = text.splitlines()
        assert len(header) == len(row)
        assert len(separator) == len(row)

    def test_mixed_types(self):
        text = render_table(["v"], [[True], [1.5], [3], ["s"]])
        assert "yes" in text and "1.50" in text and "3" in text and "s" in text

    def test_histogram_table_missing_keys_default_zero(self):
        text = render_histogram_table(
            ["a", "b"],
            [{"x": 1.0, "y": 0.0}, {"x": 0.25}],  # second lacks "y"
        )
        assert "25.00" in text
        assert "0.00" in text
