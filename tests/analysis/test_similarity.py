"""Unit tests for distribution-shape similarity (Fig. 5 claim)."""

import pytest

from repro.trace import Op, Request, Trace
from repro.analysis.similarity import (
    histogram_cosine,
    rank_alignment,
    size_response_similarity,
)


class TestHistogramCosine:
    def test_identical_histograms(self):
        h = {"a": 0.5, "b": 0.3, "c": 0.2}
        assert histogram_cosine(h, h) == pytest.approx(1.0)

    def test_orthogonal_histograms_unsmoothed(self):
        assert histogram_cosine(
            {"a": 1.0, "b": 0.0}, {"a": 0.0, "b": 1.0}, smooth=False
        ) == 0.0

    def test_far_spikes_score_low_even_smoothed(self):
        first = {"a": 1.0, "b": 0.0, "c": 0.0, "d": 0.0, "e": 0.0, "f": 0.0}
        second = {"a": 0.0, "b": 0.0, "c": 0.0, "d": 0.0, "e": 0.0, "f": 1.0}
        assert histogram_cosine(first, second) < 0.05

    def test_one_bucket_shift_scores_high(self):
        first = {"a": 0.0, "b": 1.0, "c": 0.0, "d": 0.0}
        second = {"a": 0.0, "b": 0.0, "c": 1.0, "d": 0.0}
        assert histogram_cosine(first, second) > 0.5

    def test_empty_histograms(self):
        assert histogram_cosine({"a": 0.0}, {"a": 0.0}) == 0.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            histogram_cosine({"a": 1.0}, {"a": 0.5, "b": 0.5})


def _uniform_trace(name, pages, response_ms, n=50):
    requests = [
        Request(i * 10_000.0, i * 1024 * 1024, pages * 4096, Op.READ,
                service_start_us=i * 10_000.0,
                finish_us=i * 10_000.0 + response_ms * 1000.0)
        for i in range(n)
    ]
    return Trace(name, requests)


class TestSizeResponseSimilarity:
    def test_concentrated_pair_scores_high(self):
        # All requests 32 KB responding in ~6 ms: both histograms are a
        # single spike at matching relative positions.
        # The spikes land one bucket apart on the two axes; smoothing caps
        # the similarity of a one-off shift at 2/3.
        trace = _uniform_trace("spike", pages=8, response_ms=6.0)
        assert size_response_similarity(trace) > 0.6


class TestRankAlignment:
    def test_aligned_apps(self):
        traces = [
            _uniform_trace("small", pages=1, response_ms=0.5),
            _uniform_trace("medium", pages=8, response_ms=5.0),
            _uniform_trace("large", pages=40, response_ms=30.0),
        ]
        assert rank_alignment(traces) == pytest.approx(1.0)

    def test_single_trace(self):
        assert rank_alignment([_uniform_trace("one", 1, 1.0)]) == 0.0

    def test_paper_claim_on_collected_traces(self):
        """Size and response distributions track each other per app."""
        from repro.workloads import collect

        traces = [
            collect(name, num_requests=600).trace
            for name in ("Movie", "Twitter", "Messaging", "Email")
        ]
        for trace in traces:
            assert size_response_similarity(trace) > 0.35, trace.name
        assert rank_alignment(traces) > 0.5
