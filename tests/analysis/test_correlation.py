"""Unit tests for size/response correlation analysis."""

import pytest

from repro.trace import Op, Request, Trace
from repro.analysis import mean_spearman, size_response_correlation


def _trace(pairs):
    """pairs: (size_pages, response_us) tuples."""
    requests = []
    at = 0.0
    for pages, response in pairs:
        requests.append(
            Request(at, 0, pages * 4096, Op.READ,
                    service_start_us=at, finish_us=at + response)
        )
        at += 10_000.0
    return Trace("corr", requests)


class TestCorrelation:
    def test_perfect_monotone_relationship(self):
        trace = _trace([(1, 100), (2, 200), (4, 400), (8, 800), (16, 1600)])
        result = size_response_correlation(trace)
        assert result.spearman == pytest.approx(1.0)
        assert result.strongly_correlated

    def test_anti_correlation(self):
        trace = _trace([(1, 800), (2, 400), (4, 200), (8, 100)])
        result = size_response_correlation(trace)
        assert result.spearman == pytest.approx(-1.0)
        assert not result.strongly_correlated

    def test_ties_handled(self):
        trace = _trace([(1, 100), (1, 100), (2, 200), (2, 200)])
        result = size_response_correlation(trace)
        assert result.spearman == pytest.approx(1.0)

    def test_constant_series_yields_zero(self):
        trace = _trace([(1, 100), (1, 100), (1, 100)])
        assert size_response_correlation(trace).spearman == 0.0

    def test_too_few_samples(self):
        trace = _trace([(1, 100)])
        result = size_response_correlation(trace)
        assert result.samples == 1
        assert result.spearman == 0.0

    def test_uncompleted_requests_ignored(self):
        trace = Trace("t", [Request(0.0, 0, 4096, Op.READ)])
        assert size_response_correlation(trace).samples == 0


class TestMeanSpearman:
    def test_requires_enough_samples(self):
        small = _trace([(1, 100), (2, 200)])
        assert mean_spearman([small]) is None

    def test_paper_claim_on_replayed_trace(self):
        """Section III-C: response times track request sizes.

        Per-request rank correlation is strong on size-diverse traces
        (Twitter); service-time correlation (the physical half of the
        claim) is substantial even on size-concentrated Movie.
        """
        from repro.workloads import collect

        twitter = collect("Twitter", num_requests=1000).trace
        assert size_response_correlation(twitter).pearson > 0.5
        movie = collect("Movie", num_requests=800).trace
        assert size_response_correlation(movie, use_service=True).spearman > 0.35
