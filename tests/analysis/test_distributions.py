"""Unit tests for distribution computations (Figs. 4-7)."""

import pytest

from repro.trace import KIB, Op, Request, Trace, US_PER_MS
from repro.analysis import (
    interarrival_distribution,
    long_gap_share,
    response_distribution,
    size_distribution,
    small_request_share,
)


class TestSizeDistribution:
    def test_buckets(self, small_trace):
        dist = size_distribution(small_trace)
        assert dist["<=4K"] == pytest.approx(3 / 5)
        assert dist["8K"] == pytest.approx(1 / 5)
        assert dist["(8K,16K]"] == pytest.approx(1 / 5)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_small_request_share(self, small_trace):
        assert small_request_share(small_trace) == pytest.approx(0.6)


class TestResponseDistribution:
    def test_only_completed_counted(self, completed_trace):
        dist = response_distribution(completed_trace)
        # Responses 1.0, 1.5, 0.4 ms: all <= 2 ms.
        assert dist["<=2ms"] == pytest.approx(1.0)

    def test_uncompleted_gives_zeros(self, small_trace):
        dist = response_distribution(small_trace)
        assert all(v == 0.0 for v in dist.values())


class TestInterarrivalDistribution:
    def test_gap_buckets(self):
        arrivals = [0.0, 0.5, 3.0, 30.0, 1000.0]  # ms
        trace = Trace("t", [
            Request(at * US_PER_MS, i * 4 * KIB, 4 * KIB, Op.WRITE)
            for i, at in enumerate(arrivals)
        ])
        dist = interarrival_distribution(trace)
        assert dist["<=1ms"] == pytest.approx(0.25)
        assert dist["(1,4]ms"] == pytest.approx(0.25)
        assert dist["(16,64]ms"] == pytest.approx(0.25)
        assert dist[">256ms"] == pytest.approx(0.25)

    def test_long_gap_share(self):
        trace = Trace("t", [
            Request(at, i * 4 * KIB, 4 * KIB, Op.WRITE)
            for i, at in enumerate([0.0, 1000.0, 50_000.0])
        ])
        # Gaps 1 ms and 49 ms: one of two above 16 ms.
        assert long_gap_share(trace) == pytest.approx(0.5)

    def test_long_gap_share_empty(self):
        assert long_gap_share(Trace("e")) == 0.0
