"""Property-style bit-identity tests: vectorized kernels vs scalar oracles.

Every vectorized analysis kernel keeps its original request-loop
implementation as a ``_reference_*`` oracle in ``tests/analysis/oracles.py``.
These tests feed both sides
randomized traces -- including the edge cases the columnar layer must get
right (empty, single-request, all-reads, all-writes, duplicate-LBA,
unsorted constructor input) -- and require **exact** equality: the
experiment digests are byte-compared in CI, so "close" is not enough.
"""

import numpy as np
import pytest

from repro.analysis.correlation import _rank, size_response_correlation
from repro.analysis.distributions import (
    interarrival_distribution,
    long_gap_share,
    response_distribution,
    size_distribution,
)
from repro.analysis.locality import spatial_locality, temporal_locality
from repro.analysis.percentiles import response_percentiles_ms, service_percentiles_ms
from repro.analysis.size_stats import size_stats
from repro.analysis.throughput import trace_throughput_by_size
from repro.analysis.timing_stats import timing_stats
from repro.trace import Op, Request, SECTOR, Trace
from repro.workloads.buckets import (
    INTERARRIVAL_BUCKETS_MS,
    RESPONSE_BUCKETS_MS,
    SIZE_BUCKETS,
    histogram,
)
from repro.workloads.sizes import calibrate

from .oracles import (
    _reference_histogram,
    _reference_interarrival_distribution,
    _reference_long_gap_share,
    _reference_rank,
    _reference_response_distribution,
    _reference_response_percentiles_ms,
    _reference_service_percentiles_ms,
    _reference_size_distribution,
    _reference_size_response_correlation,
    _reference_size_stats,
    _reference_spatial_locality,
    _reference_temporal_locality,
    _reference_timing_stats,
    _reference_trace_throughput_by_size,
)


def _random_trace(
    seed,
    count,
    completed_frac=0.7,
    all_reads=False,
    all_writes=False,
    duplicate_lba=False,
    unsorted=False,
):
    """One randomized trace exercising a chosen edge case."""
    rng = np.random.default_rng(seed)
    requests = []
    arrival = 0.0
    for _ in range(count):
        arrival += float(rng.exponential(5000.0))
        pages = int(rng.integers(1, 65))
        size = pages * SECTOR
        if duplicate_lba:
            lba = int(rng.integers(0, 4)) * SECTOR
        else:
            lba = int(rng.integers(0, 1 << 20)) * SECTOR
        if all_reads:
            op = Op.READ
        elif all_writes:
            op = Op.WRITE
        else:
            op = Op.WRITE if rng.random() < 0.6 else Op.READ
        if rng.random() < completed_frac:
            wait = float(rng.exponential(150.0))
            service = 1.0 + float(rng.exponential(900.0))
            requests.append(
                Request(
                    arrival_us=arrival,
                    lba=lba,
                    size=size,
                    op=op,
                    service_start_us=arrival + wait,
                    finish_us=arrival + wait + service,
                )
            )
        else:
            requests.append(Request(arrival_us=arrival, lba=lba, size=size, op=op))
    if unsorted:
        order = rng.permutation(len(requests))
        requests = [requests[int(i)] for i in order]
    return Trace(name=f"rand{seed}", requests=requests)


CASES = [
    pytest.param(_random_trace(0, 0), id="empty"),
    pytest.param(_random_trace(1, 1), id="single-completed"),
    pytest.param(_random_trace(2, 1, completed_frac=0.0), id="single-unreplayed"),
    pytest.param(_random_trace(3, 400, all_reads=True), id="all-reads"),
    pytest.param(_random_trace(4, 400, all_writes=True), id="all-writes"),
    pytest.param(_random_trace(5, 400, duplicate_lba=True), id="duplicate-lba"),
    pytest.param(_random_trace(6, 400, unsorted=True), id="unsorted"),
    pytest.param(_random_trace(7, 600), id="mixed"),
    pytest.param(_random_trace(8, 600, completed_frac=0.0), id="never-replayed"),
    pytest.param(_random_trace(9, 600, completed_frac=1.0), id="fully-replayed"),
]


@pytest.mark.parametrize("trace", CASES)
def test_localities_match_oracle(trace):
    assert spatial_locality(trace) == _reference_spatial_locality(trace)
    assert temporal_locality(trace) == _reference_temporal_locality(trace)


@pytest.mark.parametrize("trace", CASES)
def test_size_stats_match_oracle(trace):
    assert size_stats(trace) == _reference_size_stats(trace)


@pytest.mark.parametrize("trace", CASES)
def test_timing_stats_match_oracle(trace):
    assert timing_stats(trace) == _reference_timing_stats(trace)


@pytest.mark.parametrize("trace", CASES)
def test_distributions_match_oracle(trace):
    assert size_distribution(trace) == _reference_size_distribution(trace)
    assert response_distribution(trace) == _reference_response_distribution(trace)
    assert interarrival_distribution(trace) == _reference_interarrival_distribution(
        trace
    )
    for threshold in (1.0, 16.0, 256.0):
        assert long_gap_share(trace, threshold_ms=threshold) == _reference_long_gap_share(
            trace, threshold_ms=threshold
        )


@pytest.mark.parametrize("trace", CASES)
def test_percentiles_match_oracle(trace):
    assert response_percentiles_ms(trace) == _reference_response_percentiles_ms(trace)
    assert service_percentiles_ms(trace) == _reference_service_percentiles_ms(trace)


@pytest.mark.parametrize("trace", CASES)
def test_correlation_matches_oracle(trace):
    for use_service in (False, True):
        assert size_response_correlation(
            trace, use_service=use_service
        ) == _reference_size_response_correlation(trace, use_service=use_service)


def test_throughput_by_size_matches_oracle():
    traces = [
        _random_trace(20, 300),
        _random_trace(21, 300, duplicate_lba=True),
        _random_trace(22, 1, completed_frac=0.0),
        _random_trace(23, 0),
    ]
    for op in (Op.READ, Op.WRITE):
        assert trace_throughput_by_size(traces, op) == _reference_trace_throughput_by_size(
            traces, op
        )


def test_rank_matches_oracle_with_ties():
    rng = np.random.default_rng(11)
    for n in (0, 1, 2, 17, 500):
        # Coarse quantization forces plenty of ties.
        values = np.floor(rng.standard_normal(n) * 3.0)
        np.testing.assert_array_equal(_rank(values), _reference_rank(values))


def test_histogram_matches_oracle():
    rng = np.random.default_rng(13)
    sizes = (rng.integers(1, 400, 2000) * SECTOR).astype(np.float64)
    times_ms = rng.lognormal(1.0, 2.0, 2000)
    for values, buckets in [
        ([], SIZE_BUCKETS),
        ([0.0, -1.0], SIZE_BUCKETS),  # outside every bucket: ignored by both
        (sizes.tolist(), SIZE_BUCKETS),
        (times_ms.tolist(), RESPONSE_BUCKETS_MS),
        (times_ms.tolist(), INTERARRIVAL_BUCKETS_MS),
        ([4096.0, 4096.0 * 2, 4096.0], SIZE_BUCKETS),  # exact edge hits
    ]:
        assert histogram(values, buckets) == _reference_histogram(values, buckets)


def test_size_model_sample_is_stream_identical_to_choice():
    """The cdf-searchsorted fast path must consume the *same* RNG draws.

    Interleaved draws from two identically-seeded generators stay aligned
    for thousands of samples, and a final uncorrelated draw confirms both
    streams are at the same position.
    """
    model = calibrate(frac_4k=0.5, mean_pages=6.0, max_pages=512)
    fast_rng = np.random.default_rng(99)
    ref_rng = np.random.default_rng(99)
    for _ in range(5000):
        assert model.sample(fast_rng) == model._reference_sample(ref_rng)
    assert fast_rng.random() == ref_rng.random()
