"""Unit tests for the characteristic checks on crafted trace sets."""

import pytest

from repro.trace import KIB, Op, Request, Trace, US_PER_S
from repro.analysis import (
    characteristic_1,
    characteristic_2,
    characteristic_5,
    characteristic_6,
)


def _uniform_trace(name, n, size, write_frac, gap_us, lba_step=None):
    step = lba_step if lba_step is not None else size
    requests = []
    for i in range(n):
        op = Op.WRITE if i < n * write_frac else Op.READ
        requests.append(Request(i * gap_us, (i * step) % (1 << 30), size, op))
    return Trace(name, requests)


def _write_heavy_set():
    return [
        _uniform_trace(f"app{i}", 100, 4 * KIB, 0.95 if i < 16 else 0.2, 1000.0)
        for i in range(18)
    ]


class TestCharacteristic1:
    def test_holds_on_write_heavy_set(self):
        result = characteristic_1(_write_heavy_set())
        assert result.holds
        assert result.evidence["write_dominant_traces"] == 16

    def test_fails_on_read_heavy_set(self):
        traces = [_uniform_trace(f"a{i}", 50, 4 * KIB, 0.1, 1000.0) for i in range(18)]
        assert not characteristic_1(traces).holds


class TestCharacteristic2:
    def test_holds_with_half_4k(self):
        traces = []
        for i in range(18):
            requests = [
                Request(j * 1000.0, j * 64 * KIB, 4 * KIB if j % 2 else 32 * KIB, Op.WRITE)
                for j in range(100)
            ]
            traces.append(Trace(f"a{i}", requests))
        assert characteristic_2(traces).holds

    def test_fails_with_all_large(self):
        traces = [_uniform_trace(f"a{i}", 50, 64 * KIB, 0.9, 1000.0) for i in range(18)]
        assert not characteristic_2(traces).holds


class TestCharacteristic5:
    def test_holds_on_random_addresses(self):
        # Non-adjacent strides: no sequentiality, no re-hits, some temporal
        # from wrapping is absent with distinct addresses.
        traces = [
            _uniform_trace(f"a{i}", 100, 4 * KIB, 0.9, 1000.0, lba_step=64 * KIB)
            for i in range(18)
        ]
        result = characteristic_5(traces)
        assert result.evidence["mean_spatial"] == 0.0
        # mean temporal == mean spatial == 0 -> "spatial < temporal" fails.
        assert not result.holds

    def test_holds_with_moderate_temporal(self):
        traces = []
        for i in range(18):
            requests = [
                Request(j * 1000.0, (j % 3) * 64 * KIB, 4 * KIB, Op.WRITE)
                for j in range(100)
            ]
            traces.append(Trace(f"a{i}", requests))
        result = characteristic_5(traces)
        assert result.holds  # no sequentiality, strong re-hits


class TestCharacteristic6:
    def test_holds_with_long_gaps(self):
        traces = [
            _uniform_trace(f"a{i}", 60, 4 * KIB, 0.9, 0.3 * US_PER_S)
            for i in range(18)
        ]
        result = characteristic_6(traces)
        assert result.holds
        assert result.evidence["mean_iat_above_200ms"] == 18

    def test_fails_with_dense_arrivals(self):
        traces = [_uniform_trace(f"a{i}", 60, 4 * KIB, 0.9, 100.0) for i in range(18)]
        assert not characteristic_6(traces).holds
