"""Unit tests for the locality measures (paper Section III-C definitions)."""

import pytest

from repro.trace import Op, Request, Trace
from repro.analysis import measure, spatial_locality, temporal_locality


def _trace(specs):
    return Trace("t", [
        Request(float(i) * 100, lba, size, Op.WRITE) for i, (lba, size) in enumerate(specs)
    ])


class TestSpatial:
    def test_pure_sequential_stream(self):
        trace = _trace([(0, 4096), (4096, 4096), (8192, 8192), (16384, 4096)])
        # 3 of 4 requests continue their predecessor.
        assert spatial_locality(trace) == pytest.approx(0.75)

    def test_random_stream(self):
        trace = _trace([(0, 4096), (81920, 4096), (40960, 4096)])
        assert spatial_locality(trace) == 0.0

    def test_gap_breaks_sequentiality(self):
        trace = _trace([(0, 4096), (8192, 4096)])
        assert spatial_locality(trace) == 0.0

    def test_empty(self):
        assert spatial_locality(Trace("e")) == 0.0


class TestTemporal:
    def test_rehit_counted_every_time(self):
        trace = _trace([(0, 4096), (0, 4096), (0, 4096)])
        assert temporal_locality(trace) == pytest.approx(2 / 3)

    def test_distinct_addresses_no_hits(self):
        trace = _trace([(0, 4096), (4096, 4096), (8192, 4096)])
        assert temporal_locality(trace) == 0.0

    def test_hit_requires_same_start_address(self):
        # Overlap without identical start is not an address hit.
        trace = _trace([(0, 8192), (4096, 4096)])
        assert temporal_locality(trace) == 0.0

    def test_empty(self):
        assert temporal_locality(Trace("e")) == 0.0


class TestMeasure:
    def test_bundles_both(self, small_trace):
        localities = measure(small_trace)
        assert localities.spatial == spatial_locality(small_trace)
        assert localities.temporal == temporal_locality(small_trace)
        assert localities.spatial_pct == 100 * localities.spatial
