"""Unit tests for report rendering and the throughput sweep (Fig. 3)."""

import pytest

from repro.trace import KIB, Op
from repro.analysis import (
    measure_throughput,
    render_histogram_table,
    render_table,
    throughput_curves,
    trace_throughput_by_size,
)
from repro.emmc import small_four_ps
from repro.trace import Request, Trace


class TestRenderTable:
    def test_alignment_and_floats(self):
        text = render_table(["A", "Bee"], [["x", 1.234], ["yy", 10.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.23" in text
        assert "10.00" in text

    def test_bools(self):
        text = render_table(["ok"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_histogram_table(self):
        text = render_histogram_table(
            ["app"], [{"<=4K": 0.5, "8K": 0.5}], title="H"
        )
        assert "50.00" in text
        assert text.startswith("H")

    def test_histogram_table_empty(self):
        assert render_histogram_table([], [], title="H") == "H"


class TestThroughputSweep:
    def test_monotone_increasing_read_curve(self):
        points = measure_throughput(
            small_four_ps(), Op.READ, [4 * KIB, 16 * KIB, 64 * KIB],
            total_bytes_per_point=2 * 1024 * KIB,
        )
        rates = [p.mb_per_s for p in points]
        assert rates == sorted(rates)

    def test_read_faster_than_write(self):
        sizes = [4 * KIB, 64 * KIB]
        reads = measure_throughput(small_four_ps(), Op.READ, sizes,
                                   total_bytes_per_point=1024 * KIB)
        writes = measure_throughput(small_four_ps(), Op.WRITE, sizes,
                                    total_bytes_per_point=1024 * KIB)
        for read_point, write_point in zip(reads, writes):
            assert read_point.mb_per_s > write_point.mb_per_s

    def test_curves_shape(self):
        sizes = [4 * KIB, 32 * KIB]
        curves = throughput_curves(
            small_four_ps(), read_sizes=sizes, write_sizes=sizes,
            total_bytes_per_point=1024 * KIB,
        )
        assert {"read", "write"} == set(curves)
        assert len(curves["read"]) == 2


class TestTraceThroughput:
    def test_per_size_rates(self):
        trace = Trace("t", [
            Request(0.0, 0, 4 * KIB, Op.READ, service_start_us=0.0, finish_us=400.0),
            Request(1000.0, 0, 4 * KIB, Op.READ, service_start_us=1000.0, finish_us=1400.0),
            Request(2000.0, 0, 8 * KIB, Op.READ, service_start_us=2000.0, finish_us=2500.0),
        ])
        rates = trace_throughput_by_size([trace], Op.READ)
        assert rates[4 * KIB] == pytest.approx(4096 / 400)
        assert rates[8 * KIB] == pytest.approx(8192 / 500)

    def test_filters_by_op(self):
        trace = Trace("t", [
            Request(0.0, 0, 4 * KIB, Op.WRITE, service_start_us=0.0, finish_us=400.0),
        ])
        assert trace_throughput_by_size([trace], Op.READ) == {}
