"""Unit tests for latency percentile utilities."""

import pytest

from repro.trace import Op, Request, Trace
from repro.analysis.percentiles import (
    cdf,
    response_percentiles_ms,
    service_percentiles_ms,
)


def _trace(responses_ms):
    requests = [
        Request(i * 10_000.0, 0, 4096, Op.READ,
                service_start_us=i * 10_000.0 + 100.0,
                finish_us=i * 10_000.0 + ms * 1000.0)
        for i, ms in enumerate(responses_ms)
    ]
    return Trace("p", requests)


class TestPercentiles:
    def test_median_of_uniform(self):
        trace = _trace([1, 2, 3, 4, 5])
        result = response_percentiles_ms(trace, [50.0])
        assert result[50.0] == pytest.approx(3.0)

    def test_tail_percentiles_ordered(self):
        trace = _trace(list(range(1, 101)))
        result = response_percentiles_ms(trace)
        assert result[50.0] < result[90.0] < result[95.0] < result[99.0]

    def test_service_excludes_wait(self):
        trace = _trace([2.0])
        service = service_percentiles_ms(trace, [50.0])[50.0]
        response = response_percentiles_ms(trace, [50.0])[50.0]
        assert service == pytest.approx(response - 0.1)

    def test_empty_trace(self):
        assert response_percentiles_ms(Trace("e"))[50.0] == 0.0

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            response_percentiles_ms(_trace([1.0]), [120.0])


class TestCdf:
    def test_points(self):
        points = cdf([3.0, 1.0, 2.0])
        assert points == [(1.0, pytest.approx(1 / 3)),
                          (2.0, pytest.approx(2 / 3)),
                          (3.0, pytest.approx(1.0))]

    def test_empty(self):
        assert cdf([]) == []
