"""Scalar reference oracles: one request-loop twin per metric.

The production kernels live once in :mod:`repro.metrics` (and thin
adapters in :mod:`repro.analysis`); these per-request/per-value loop
implementations are the independent second opinion the bit-identity
tests compare against.  They are deliberately naive -- builtin ``sum``,
Python sets, nested loops -- so a vectorization bug in the kernels
cannot be mirrored here.

Kept in ``tests/`` only: production code must never import an oracle.
"""

from __future__ import annotations

from typing import Dict, Sequence, Set

import numpy as np

from repro.analysis.correlation import SizeResponseCorrelation, _safe_corrcoef
from repro.analysis.locality import Localities
from repro.analysis.percentiles import DEFAULT_PERCENTILES, _percentiles
from repro.analysis.size_stats import SizeStats
from repro.analysis.timing_stats import TimingStats
from repro.trace import KIB, Op, Trace, US_PER_MS
from repro.workloads.buckets import (
    Bucket,
    INTERARRIVAL_BUCKETS_MS,
    RESPONSE_BUCKETS_MS,
    SIZE_BUCKETS,
)


# -- histogram binning (repro.workloads.buckets.histogram) --------------------


def _reference_histogram(
    values: Sequence[float], buckets: Sequence[Bucket]
) -> Dict[str, float]:
    """Per-value loop twin of ``buckets.histogram`` (first match wins)."""
    counts = {bucket.label: 0 for bucket in buckets}
    for value in values:
        for bucket in buckets:
            if bucket.contains(value):
                counts[bucket.label] += 1
                break
    total = len(values)
    if total == 0:
        return {label: 0.0 for label in counts}
    return {label: count / total for label, count in counts.items()}


# -- size_stats ----------------------------------------------------------------


def _reference_size_stats(trace: Trace) -> SizeStats:
    """Request-loop twin of the ``size_stats`` metric (Table III)."""
    if len(trace) == 0:
        return SizeStats(trace.name, 0.0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    sizes = [request.size for request in trace]
    read_sizes = [request.size for request in trace if request.is_read]
    write_sizes = [request.size for request in trace if request.is_write]
    total = sum(sizes)
    written = sum(write_sizes)
    return SizeStats(
        name=trace.name,
        data_size_kib=total / KIB,
        num_requests=len(trace),
        max_size_kib=max(sizes) / KIB,
        avg_size_kib=total / len(sizes) / KIB,
        avg_read_kib=(sum(read_sizes) / len(read_sizes) / KIB) if read_sizes else 0.0,
        avg_write_kib=(written / len(write_sizes) / KIB) if write_sizes else 0.0,
        write_req_pct=100.0 * len(write_sizes) / len(sizes),
        write_size_pct=100.0 * written / total if total else 0.0,
    )


# -- localities ----------------------------------------------------------------


def _reference_spatial_locality(trace: Trace) -> float:
    """Request-loop twin of the ``spatial_locality`` metric."""
    if len(trace) == 0:
        return 0.0
    sequential = sum(
        1
        for previous, current in zip(trace.requests, trace.requests[1:])
        if current.lba == previous.end_lba
    )
    return sequential / len(trace)


def _reference_temporal_locality(trace: Trace) -> float:
    """Request-loop twin of the ``temporal_locality`` metric."""
    if len(trace) == 0:
        return 0.0
    seen: Set[int] = set()
    hits = 0
    for request in trace:
        if request.lba in seen:
            hits += 1
        seen.add(request.lba)
    return hits / len(trace)


def _reference_measure(trace: Trace) -> Localities:
    """Both locality oracles in one object (the ``localities`` metric)."""
    return Localities(
        spatial=_reference_spatial_locality(trace),
        temporal=_reference_temporal_locality(trace),
    )


# -- timing_stats --------------------------------------------------------------


def _reference_timing_stats(trace: Trace) -> TimingStats:
    """Request-loop twin of the ``timing_stats`` metric (Table IV)."""
    localities = _reference_measure(trace)
    completed = [request for request in trace if request.completed]
    arrivals = [r.arrival_us for r in trace.requests]
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    mean_gap_ms = (sum(gaps) / len(gaps) / US_PER_MS) if gaps else 0.0
    if completed:
        nowait_pct = 100.0 * sum(1 for r in completed if r.no_wait) / len(completed)
        mean_service_ms = sum(r.service_us for r in completed) / len(completed) / US_PER_MS
        mean_response_ms = sum(r.response_us for r in completed) / len(completed) / US_PER_MS
    else:
        nowait_pct = mean_service_ms = mean_response_ms = 0.0
    return TimingStats(
        name=trace.name,
        duration_s=trace.duration_s,
        arrival_rate=trace.arrival_rate(),
        access_rate_kib_s=trace.access_rate_kib_s(),
        nowait_pct=nowait_pct,
        mean_service_ms=mean_service_ms,
        mean_response_ms=mean_response_ms,
        spatial_locality_pct=localities.spatial_pct,
        temporal_locality_pct=localities.temporal_pct,
        mean_interarrival_ms=mean_gap_ms,
    )


# -- bucketed distributions ----------------------------------------------------


def _reference_size_distribution(trace: Trace) -> Dict[str, float]:
    """Request-loop twin of the ``size_distribution`` metric (Fig. 4)."""
    return _reference_histogram([request.size for request in trace], SIZE_BUCKETS)


def _reference_response_distribution(trace: Trace) -> Dict[str, float]:
    """Request-loop twin of the ``response_distribution`` metric (Fig. 5)."""
    values = [
        request.response_us / US_PER_MS for request in trace if request.completed
    ]
    return _reference_histogram(values, RESPONSE_BUCKETS_MS)


def _reference_interarrival_distribution(trace: Trace) -> Dict[str, float]:
    """Request-loop twin of the ``interarrival_distribution`` metric (Fig. 6)."""
    arrivals = [r.arrival_us for r in trace.requests]
    values = [(b - a) / US_PER_MS for a, b in zip(arrivals, arrivals[1:])]
    return _reference_histogram(values, INTERARRIVAL_BUCKETS_MS)


def _reference_long_gap_share(trace: Trace, threshold_ms: float = 16.0) -> float:
    """Request-loop twin of ``long_gap_share`` (Characteristic 6)."""
    arrivals = [r.arrival_us for r in trace.requests]
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    if not gaps:
        return 0.0
    return sum(1 for gap in gaps if gap > threshold_ms * US_PER_MS) / len(gaps)


# -- throughput by size --------------------------------------------------------


def _reference_trace_throughput_by_size(traces, op: Op) -> Dict[int, float]:
    """Request-loop twin of the per-op ``throughput_by_size_*`` metrics."""
    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for trace in traces:
        for request in trace:
            if request.op is not op or not request.completed:
                continue
            if request.response_us <= 0:
                continue
            rate = request.size / request.response_us  # bytes/us == MB/s
            sums[request.size] = sums.get(request.size, 0.0) + rate
            counts[request.size] = counts.get(request.size, 0) + 1
    return {size: sums[size] / counts[size] for size in sorted(sums)}


# -- percentiles ---------------------------------------------------------------


def _reference_response_percentiles_ms(
    trace: Trace, percentiles: Sequence[float] = DEFAULT_PERCENTILES
) -> Dict[float, float]:
    """Request-loop twin of ``response_percentiles_ms``."""
    values = [r.response_us for r in trace if r.completed]
    return _percentiles(values, percentiles)


def _reference_service_percentiles_ms(
    trace: Trace, percentiles: Sequence[float] = DEFAULT_PERCENTILES
) -> Dict[float, float]:
    """Request-loop twin of ``service_percentiles_ms``."""
    values = [r.service_us for r in trace if r.completed]
    return _percentiles(values, percentiles)


# -- rank correlation ----------------------------------------------------------


def _reference_rank(values: np.ndarray) -> np.ndarray:
    """Tie-loop twin of ``correlation._rank``."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(len(values), dtype=np.float64)
    ranks[order] = np.arange(len(values), dtype=np.float64)
    # Average ranks within tie groups.
    sorted_values = values[order]
    start = 0
    for index in range(1, len(values) + 1):
        if index == len(values) or sorted_values[index] != sorted_values[start]:
            ranks[order[start:index]] = (start + index - 1) / 2.0
            start = index
    return ranks


def _reference_size_response_correlation(
    trace: Trace, use_service: bool = False
) -> SizeResponseCorrelation:
    """Request-loop twin of ``size_response_correlation``."""
    completed = [r for r in trace if r.completed]
    sizes = np.array([r.size for r in completed], dtype=np.float64)
    responses = np.array(
        [r.service_us if use_service else r.response_us for r in completed],
        dtype=np.float64,
    )
    if len(completed) < 2:
        return SizeResponseCorrelation(trace.name, 0.0, 0.0, len(completed))
    spearman = _safe_corrcoef(_reference_rank(sizes), _reference_rank(responses))
    pearson = _safe_corrcoef(sizes, responses)
    return SizeResponseCorrelation(
        name=trace.name, spearman=spearman, pearson=pearson, samples=len(completed)
    )
