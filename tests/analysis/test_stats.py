"""Unit tests for size/timing statistics (Tables III/IV computations)."""

import pytest

from repro.trace import KIB, Op, Request, Trace
from repro.analysis import size_stats, timing_stats


class TestSizeStats:
    def test_all_columns(self, small_trace):
        stats = size_stats(small_trace)
        assert stats.num_requests == 5
        assert stats.data_size_kib == pytest.approx(36.0)
        assert stats.max_size_kib == 16.0
        assert stats.avg_size_kib == pytest.approx(36.0 / 5)
        assert stats.avg_read_kib == pytest.approx((4 + 16) / 2)
        assert stats.avg_write_kib == pytest.approx((8 + 4 + 4) / 3)
        assert stats.write_req_pct == pytest.approx(60.0)
        assert stats.write_size_pct == pytest.approx(100.0 * 16 / 36)

    def test_empty_trace(self):
        stats = size_stats(Trace("e"))
        assert stats.num_requests == 0
        assert stats.avg_size_kib == 0.0

    def test_read_only_trace(self):
        trace = Trace("r", [Request(0.0, 0, 4 * KIB, Op.READ)])
        stats = size_stats(trace)
        assert stats.avg_write_kib == 0.0
        assert stats.write_req_pct == 0.0


class TestTimingStats:
    def test_device_columns(self, completed_trace):
        stats = timing_stats(completed_trace)
        # Requests: waits 0, 500, 0 -> 2/3 no-wait.
        assert stats.nowait_pct == pytest.approx(100 * 2 / 3)
        # Services: 1000, 1000, 400 us.
        assert stats.mean_service_ms == pytest.approx(0.8)
        # Responses: 1000, 1500, 400 us.
        assert stats.mean_response_ms == pytest.approx(2900 / 3 / 1000)

    def test_trace_intrinsic_columns(self, completed_trace):
        stats = timing_stats(completed_trace)
        assert stats.duration_s == pytest.approx(5.4e-3)
        assert stats.arrival_rate == pytest.approx(3 / 5.4e-3)
        assert stats.mean_interarrival_ms == pytest.approx(2.5)

    def test_uncompleted_trace_zeroes_device_columns(self, small_trace):
        stats = timing_stats(small_trace)
        assert stats.nowait_pct == 0.0
        assert stats.mean_response_ms == 0.0
        assert stats.spatial_locality_pct >= 0.0
