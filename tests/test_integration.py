"""End-to-end integration tests across all subsystems."""

import pytest

from repro.trace import dumps, loads
from repro.analysis import size_stats, timing_stats
from repro.android import collect_trace as android_collect
from repro.emmc import EmmcDevice, eight_ps, four_ps, hps
from repro.workloads import collect, generate_trace


class TestGenerateReplayAnalyzeRoundTrip:
    def test_full_pipeline(self):
        """Generate -> serialize -> replay on all schemes -> characterize."""
        trace = generate_trace("Facebook", num_requests=600)
        restored = loads(dumps(trace))
        results = {
            config.name: EmmcDevice(config).replay(restored.without_timing())
            for config in (four_ps(), eight_ps(), hps())
        }
        for result in results.values():
            assert result.trace.completed
            stats = timing_stats(result.trace)
            assert stats.mean_response_ms > 0
        # The headline orderings of Figs. 8 and 9.
        assert results["HPS"].stats.mean_response_ms <= results["4PS"].stats.mean_response_ms
        assert results["HPS"].stats.space_utilization > results["8PS"].stats.space_utilization
        assert results["HPS"].stats.space_utilization == 1.0

    def test_8ps_close_to_hps_on_mrt(self):
        """The paper: '8PS has a very similar performance to HPS'."""
        trace = generate_trace("Installing", num_requests=800)
        mrts = {
            config.name: EmmcDevice(config).replay(trace.without_timing()).stats.mean_response_ms
            for config in (eight_ps(), hps())
        }
        assert mrts["8PS"] == pytest.approx(mrts["HPS"], rel=0.15)


class TestCollectionVsReplayConsistency:
    def test_collected_trace_replays_identically_shaped(self):
        collected = collect("Email", num_requests=500).trace
        replayed = EmmcDevice(four_ps()).replay(collected.without_timing())
        assert size_stats(replayed.trace).num_requests == 500
        # Same request attributes before/after replay.
        assert [(r.lba, r.size) for r in collected] == [
            (r.lba, r.size) for r in replayed.trace
        ]


class TestAndroidStackToAnalysis:
    def test_mechanistic_trace_is_analyzable(self):
        result = android_collect("WebBrowsing", duration_s=90, seed=11)
        stats = size_stats(result.trace)
        assert stats.num_requests > 10
        timing = timing_stats(result.trace)
        assert timing.mean_response_ms > 0
        # The mechanistic stack reproduces the write-dominance mechanism.
        assert stats.write_req_pct > 50
