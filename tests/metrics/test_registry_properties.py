"""Property-based enforcement of the registry's exactness contract.

For **every** registered metric (the suite quantifies over the registry,
so a newly added metric is covered the moment it registers), hypothesis
draws arbitrary contiguous partitions of one replayed trace's stream and
requires -- with ``==`` on floats, never approx:

* out-of-core: ``finalize(fold(chunks)) == batch(whole stream)`` for any
  chunking;
* sharded: any contiguous shard split, merged left to right, reproduces
  the batch bits;
* merge associativity: a pairwise merge tree over the shards equals the
  sequential left fold, bit for bit -- which is what licenses the
  parallel experiment runner's arbitrary merge order.
"""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import MetricSetState, all_metrics, batch_values, get_metric
from repro.workloads.collection import collect

#: One completed (replayed) trace shared by every example: collection is
#: the expensive part, and the properties quantify over chunkings and
#: splits of the stream, not over workloads (tests/metrics/
#: test_engine_parity.py covers all 25 of those).
_TRACE = collect("Email", seed=5, num_requests=150).trace
_COLUMNS = _TRACE.columns()
_N = len(_COLUMNS)
_METRICS = tuple(all_metrics())
_BATCH = batch_values(_METRICS, _COLUMNS, _TRACE.name)


#: Interior cut points 0 < c < N, drawn without replacement; with the
#: {0, N} endpoints they define an arbitrary contiguous partition.
cuts_strategy = st.lists(
    st.integers(min_value=1, max_value=_N - 1),
    unique=True,
    min_size=0,
    max_size=12,
).map(sorted)


def _segments(cuts):
    bounds = [0, *cuts, _N]
    return [_COLUMNS.select(slice(a, b)) for a, b in zip(bounds, bounds[1:])]


def _assert_batch_bits(values) -> None:
    for metric in _METRICS:
        assert values[metric.name] == _BATCH[metric.name], metric.name


@given(cuts=cuts_strategy)
@settings(max_examples=40, deadline=None)
def test_fold_of_any_chunking_equals_batch(cuts):
    """Out-of-core engine: finalize(fold(chunks)) == batch(whole trace)."""
    values = {
        metric.name: metric.fold(_segments(cuts), _TRACE.name, collapse=True)
        for metric in _METRICS
    }
    _assert_batch_bits(values)


@given(cuts=cuts_strategy)
@settings(max_examples=40, deadline=None)
def test_any_shard_split_merges_to_batch_bits(cuts):
    """Sharded engine: independent shard states merge to the batch bits."""
    shards = []
    for segment in _segments(cuts):
        shard = MetricSetState(_METRICS)
        shard.update(segment)
        shards.append(shard)
    merged = shards[0]
    for shard in shards[1:]:
        merged.merge(shard)
    _assert_batch_bits(merged.finalize(_TRACE.name))


@given(cuts=cuts_strategy)
@settings(max_examples=25, deadline=None)
def test_merge_tree_order_invariance(cuts):
    """A pairwise merge tree equals the sequential left fold, bit for bit."""
    shards = []
    for segment in _segments(cuts):
        shard = MetricSetState(_METRICS)
        shard.update(segment)
        shards.append(shard)

    sequential = copy.deepcopy(shards[0])
    for shard in shards[1:]:
        sequential.merge(copy.deepcopy(shard))

    level = shards
    while len(level) > 1:
        merged_level = []
        for index in range(0, len(level) - 1, 2):
            level[index].merge(level[index + 1])
            merged_level.append(level[index])
        if len(level) % 2:
            merged_level.append(level[-1])
        level = merged_level
    tree = level[0]

    a = sequential.finalize(_TRACE.name)
    b = tree.finalize(_TRACE.name)
    for metric in _METRICS:
        assert a[metric.name] == b[metric.name], metric.name
    _assert_batch_bits(b)


@given(
    cuts=cuts_strategy,
    chunk_rows=st.integers(min_value=1, max_value=2 * _N),
)
@settings(max_examples=25, deadline=None)
def test_rechunked_shards_compose(cuts, chunk_rows):
    """Chunking *within* each shard composes with merging across shards."""
    merged = None
    for segment in _segments(cuts):
        shard = MetricSetState(_METRICS)
        position = 0
        while position < len(segment):
            take = min(chunk_rows, len(segment) - position)
            shard.update(segment.select(slice(position, position + take)))
            position += take
        if merged is None:
            merged = shard
        else:
            merged.merge(shard)
    _assert_batch_bits(merged.finalize(_TRACE.name))


def test_registry_lookup_and_order():
    names = [metric.name for metric in _METRICS]
    assert names == sorted(set(names), key=names.index)  # unique, ordered
    assert "size_stats" in names and "timing_stats" in names
    for name in names:
        assert get_metric(name).name == name


def test_unknown_metric_raises_with_listing():
    try:
        get_metric("no_such_metric")
    except KeyError as error:
        assert "size_stats" in str(error)
    else:  # pragma: no cover
        raise AssertionError("expected KeyError")


def test_register_rejects_duplicates_and_unnamed():
    import pytest

    from repro.metrics.base import Metric
    from repro.metrics.registry import register

    class Fake(Metric):
        name = "size_stats"  # collides

        def batch(self, columns, name=""):  # pragma: no cover
            return None

        def init(self, collapse=False):  # pragma: no cover
            return None

        def finalize(self, state, name=""):  # pragma: no cover
            return None

    with pytest.raises(ValueError, match="already registered"):
        register(Fake())
    Fake.name = ""
    with pytest.raises(ValueError, match="no name"):
        register(Fake())
    # Re-registering the same object is idempotent.
    existing = get_metric("timing_stats")
    assert register(existing) is existing
