"""Engine parity across every workload: streaming == batch, bit for bit.

``test_registry_properties`` quantifies over arbitrary chunkings of one
trace; this suite quantifies over the *workloads*: every registered
metric, on all 25 paper traces, folded at the adversarial chunk sizes
(1 row, a small prime, one-short-of-everything, everything, and one
chunk larger than the stream) must finalize to the exact batch bits.
Replayed traces additionally exercise the completed-timestamp fields
(service/response sums, the no-wait ratio).
"""

import pytest

from repro.metrics import all_metrics, batch_values, chunked, fold_chunks
from repro.workloads import ALL_TRACES, generate_trace
from repro.workloads.collection import collect

#: Per-trace request budget: large enough that every bucket and both ops
#: appear, small enough that 25 traces x 5 chunkings stay fast.
_NUM_REQUESTS = 400

#: Replayed (closed-loop collected) apps: the completed-field coverage.
_REPLAYED = ("Email", "AngryBrid", "CameraVideo")


def _chunk_sizes(n):
    return sorted({1, 7, max(1, n - 1), n, 10 * n})


def _assert_engine_parity(trace):
    columns = trace.columns()
    metrics = all_metrics()
    batch = batch_values(metrics, columns, trace.name)
    for chunk_rows in _chunk_sizes(len(columns)):
        folded = fold_chunks(
            metrics, chunked(columns, chunk_rows), trace.name, collapse=True
        )
        for metric in metrics:
            assert folded[metric.name] == batch[metric.name], (
                f"{metric.name} diverges at chunk_rows={chunk_rows}"
            )


@pytest.mark.parametrize("app", ALL_TRACES)
def test_all_metrics_all_traces(app):
    """Every registered metric, every paper workload, adversarial chunks."""
    _assert_engine_parity(generate_trace(app, seed=7, num_requests=_NUM_REQUESTS))


@pytest.mark.parametrize("app", _REPLAYED)
def test_all_metrics_replayed_traces(app):
    """Same contract with completed timestamps (service/response/no-wait)."""
    _assert_engine_parity(collect(app, seed=11, num_requests=200).trace)


def test_empty_and_single_row_streams():
    """Degenerate streams: no chunks at all, and exactly one row."""
    trace = generate_trace("Email", seed=3, num_requests=1)
    _assert_engine_parity(trace)
    metrics = all_metrics()
    empty = trace.columns().select(slice(0, 0))
    batch = batch_values(metrics, empty, "empty")
    folded = fold_chunks(metrics, [], "empty", collapse=True)
    for metric in metrics:
        assert folded[metric.name] == batch[metric.name], metric.name
