"""Unit tests for trace CSV serialization."""

import csv
import io

import pytest

from repro.trace import Op, Request, Trace, dumps, loads, read_trace, write_trace


def _trace():
    return Trace(
        name="demo",
        requests=[
            Request(0.0, 0, 4096, Op.WRITE),
            Request(10.5, 8192, 8192, Op.READ, service_start_us=10.5, finish_us=300.25),
        ],
        metadata={"seed": "7", "profile": "Twitter"},
    )


class TestRoundTrip:
    def test_dumps_loads(self):
        original = _trace()
        restored = loads(dumps(original))
        assert restored.name == original.name
        assert restored.metadata == original.metadata
        assert len(restored) == len(original)
        for a, b in zip(original, restored):
            assert a == b

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "demo.csv"
        write_trace(_trace(), path)
        restored = read_trace(path)
        assert restored.name == "demo"
        assert restored[1].finish_us == 300.25

    def test_handle_round_trip(self):
        buffer = io.StringIO()
        write_trace(_trace(), buffer)
        buffer.seek(0)
        assert len(read_trace(buffer)) == 2

    def test_timestamps_precise(self):
        trace = Trace("t", [Request(0.123456789, 0, 4096, Op.READ)])
        assert loads(dumps(trace))[0].arrival_us == 0.123456789

    def test_uncompleted_fields_stay_none(self):
        restored = loads(dumps(_trace()))
        assert restored[0].service_start_us is None
        assert restored[0].finish_us is None


class TestMetadataEscaping:
    """Header lines must survive arbitrary metadata strings."""

    def _round_trip(self, metadata, name="demo"):
        trace = Trace(name=name, requests=[Request(0.0, 0, 4096, Op.READ)],
                      metadata=metadata)
        return loads(dumps(trace))

    def test_value_containing_equals(self):
        restored = self._round_trip({"expr": "a=b=c"})
        assert restored.metadata == {"expr": "a=b=c"}

    def test_value_containing_newline(self):
        # Regression: an embedded newline used to split the header line,
        # corrupting the file (the tail was mis-parsed as another line).
        restored = self._round_trip({"note": "line one\nline two"})
        assert restored.metadata == {"note": "line one\nline two"}

    def test_value_containing_carriage_return_and_backslash(self):
        value = "path\\to\\thing\r\nnext"
        restored = self._round_trip({"k": value})
        assert restored.metadata == {"k": value}

    def test_key_containing_equals(self):
        # Regression: the first ``=`` used to split the key, so
        # ``{"a=b": "c"}`` read back as ``{"a": "b=c"}``.
        restored = self._round_trip({"a=b": "c"})
        assert restored.metadata == {"a=b": "c"}

    def test_name_containing_newline(self):
        restored = self._round_trip({}, name="two\nlines")
        assert restored.name == "two\nlines"

    def test_escaped_payload_does_not_collide(self):
        # A value that *looks* like an escape must survive verbatim.
        restored = self._round_trip({"k": "\\n is not a newline"})
        assert restored.metadata == {"k": "\\n is not a newline"}

    def test_unescaped_legacy_file_parses_unchanged(self):
        text = "# name=legacy\n# key=va=lue\narrival_us,lba,size,op,service_start_us,finish_us\n0.0,0,4096,R,,\n"
        trace = loads(text)
        assert trace.name == "legacy"
        assert trace.metadata == {"key": "va=lue"}


class TestVectorizedFormat:
    """The columnar writer/reader must match the old csv-module bytes."""

    @staticmethod
    def _reference_dumps(trace):
        """The pre-vectorization per-request writer (without escaping)."""
        buffer = io.StringIO()
        buffer.write(f"# name={trace.name}\n")
        for key, value in sorted(trace.metadata.items()):
            buffer.write(f"# {key}={value}\n")
        writer = csv.writer(buffer)
        writer.writerow(
            ["arrival_us", "lba", "size", "op", "service_start_us", "finish_us"]
        )
        for request in trace:
            writer.writerow(
                [
                    repr(request.arrival_us),
                    request.lba,
                    request.size,
                    request.op.value,
                    "" if request.service_start_us is None
                    else repr(request.service_start_us),
                    "" if request.finish_us is None else repr(request.finish_us),
                ]
            )
        return buffer.getvalue()

    def test_bytes_identical_to_reference_writer(self):
        trace = _trace()
        assert dumps(trace) == self._reference_dumps(trace)

    def test_bytes_identical_on_generated_trace(self):
        from repro.workloads import generate_trace

        trace = generate_trace("Email", seed=3, num_requests=200)
        assert dumps(trace) == self._reference_dumps(trace)

    def test_reader_adopts_columns(self):
        restored = loads(dumps(_trace()))
        columns = restored.columns()
        assert len(columns) == 2
        assert restored[1].service_start_us == 10.5

    def test_out_of_order_rows_are_sorted(self):
        text = (
            "arrival_us,lba,size,op,service_start_us,finish_us\r\n"
            "5.0,0,4096,R,,\r\n"
            "1.0,4096,4096,W,,\r\n"
        )
        trace = loads(text)
        assert [r.arrival_us for r in trace] == [1.0, 5.0]

    def test_empty_trace_round_trip(self):
        empty = Trace("empty", [])
        restored = loads(dumps(empty))
        assert len(restored) == 0
        assert restored.name == "empty"


class TestErrors:
    def test_bad_header_rejected(self):
        with pytest.raises(ValueError, match="unexpected trace header"):
            loads("a,b,c\n1,2,3\n")

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "stemname.csv"
        trace = _trace()
        text = dumps(trace)
        # Drop the name metadata line.
        stripped = "\n".join(
            line for line in text.splitlines() if not line.startswith("# name")
        )
        path.write_text(stripped + "\n")
        assert read_trace(path).name == "stemname"
