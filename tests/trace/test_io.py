"""Unit tests for trace CSV serialization."""

import io

import pytest

from repro.trace import Op, Request, Trace, dumps, loads, read_trace, write_trace


def _trace():
    return Trace(
        name="demo",
        requests=[
            Request(0.0, 0, 4096, Op.WRITE),
            Request(10.5, 8192, 8192, Op.READ, service_start_us=10.5, finish_us=300.25),
        ],
        metadata={"seed": "7", "profile": "Twitter"},
    )


class TestRoundTrip:
    def test_dumps_loads(self):
        original = _trace()
        restored = loads(dumps(original))
        assert restored.name == original.name
        assert restored.metadata == original.metadata
        assert len(restored) == len(original)
        for a, b in zip(original, restored):
            assert a == b

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "demo.csv"
        write_trace(_trace(), path)
        restored = read_trace(path)
        assert restored.name == "demo"
        assert restored[1].finish_us == 300.25

    def test_handle_round_trip(self):
        buffer = io.StringIO()
        write_trace(_trace(), buffer)
        buffer.seek(0)
        assert len(read_trace(buffer)) == 2

    def test_timestamps_precise(self):
        trace = Trace("t", [Request(0.123456789, 0, 4096, Op.READ)])
        assert loads(dumps(trace))[0].arrival_us == 0.123456789

    def test_uncompleted_fields_stay_none(self):
        restored = loads(dumps(_trace()))
        assert restored[0].service_start_us is None
        assert restored[0].finish_us is None


class TestErrors:
    def test_bad_header_rejected(self):
        with pytest.raises(ValueError, match="unexpected trace header"):
            loads("a,b,c\n1,2,3\n")

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "stemname.csv"
        trace = _trace()
        text = dumps(trace)
        # Drop the name metadata line.
        stripped = "\n".join(
            line for line in text.splitlines() if not line.startswith("# name")
        )
        path.write_text(stripped + "\n")
        assert read_trace(path).name == "stemname"
