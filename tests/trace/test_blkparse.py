"""Unit tests for the blkparse importer."""

import random

import pytest

from repro.trace import Op, iter_requests, parse_blkparse

SAMPLE = """\
8,16   1     1     0.000100000  1234  Q  W  8 + 8 [app]
8,16   1     2     0.000200000  1234  D  W  8 + 8 [app]
8,16   1     3     0.001500000     0  C  W  8 + 8 [0]
8,16   1     4     0.002000000  1234  Q  R  1024 + 16 [app]
8,16   1     5     0.002100000  1234  D  R  1024 + 16 [app]
8,16   1     6     0.002900000     0  C  R  1024 + 16 [0]
"""


class TestParsing:
    def test_matched_qdc_triples(self):
        trace = parse_blkparse(SAMPLE, name="sample")
        assert len(trace) == 2
        write, read = trace[0], trace[1]
        assert write.op is Op.WRITE
        assert write.arrival_us == pytest.approx(100.0)
        assert write.service_start_us == pytest.approx(200.0)
        assert write.finish_us == pytest.approx(1500.0)
        assert read.op is Op.READ

    def test_sector_to_byte_conversion_and_alignment(self):
        trace = parse_blkparse(SAMPLE)
        # Sector 8 = byte 4096; 8 sectors = 4096 bytes.
        assert trace[0].lba == 4096
        assert trace[0].size == 4096
        # Sector 1024 = byte 524288; 16 sectors = 8192 bytes.
        assert trace[1].lba == 524288
        assert trace[1].size == 8192

    def test_unaligned_extents_rounded_to_pages(self):
        text = (
            "8,16 1 1 0.000000000 1 Q W 3 + 5 [x]\n"
            "8,16 1 2 0.000500000 0 C W 3 + 5 [0]\n"
        )
        trace = parse_blkparse(text)
        assert trace[0].lba == 0  # 3*512 aligned down
        assert trace[0].size == 4096  # 5*512 = 2560 aligned up

    def test_queue_without_completion_kept_unreplayed(self):
        text = "8,16 1 1 0.000000000 1 Q R 8 + 8 [x]\n"
        trace = parse_blkparse(text)
        assert len(trace) == 1
        assert not trace[0].completed

    def test_completion_without_queue(self):
        text = "8,16 1 1 0.005000000 0 C W 8 + 8 [0]\n"
        trace = parse_blkparse(text)
        assert len(trace) == 1
        assert trace[0].completed
        assert trace[0].wait_us == 0.0

    def test_non_data_lines_skipped(self):
        text = (
            "CPU0 (8,16):\n"
            " Reads Queued:          1,        4KiB\n"
            "8,16 1 1 0.000000000 1 Q N 0 + 0 [x]\n"
            + SAMPLE
        )
        assert len(parse_blkparse(text)) == 2

    def test_file_input(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text(SAMPLE)
        assert len(parse_blkparse(path)) == 2

    def test_metadata_marks_source(self):
        assert parse_blkparse(SAMPLE).metadata["source"] == "blkparse"


def _synthetic_log(events: int, seed: int = 5) -> str:
    """A messy blkparse log: interleaved Q/D/C, orphans, leftovers."""
    rng = random.Random(seed)
    lines = []
    time_s = 0.0
    seq = 0
    open_keys = []
    for _ in range(events):
        time_s += rng.random() / 1000.0
        seq += 1
        op = rng.choice("RW")
        roll = rng.random()
        if roll < 0.5 or not open_keys:
            sector = rng.randrange(0, 1 << 20, 8)
            count = rng.choice((8, 16, 32, 64))
            lines.append(
                f"8,16 1 {seq} {time_s:.9f} 77 Q {op} {sector} + {count} [app]"
            )
            open_keys.append((sector, count, op))
        elif roll < 0.7:
            sector, count, op = rng.choice(open_keys)
            lines.append(
                f"8,16 1 {seq} {time_s:.9f} 77 D {op} {sector} + {count} [app]"
            )
        else:
            sector, count, op = open_keys.pop(rng.randrange(len(open_keys)))
            lines.append(
                f"8,16 1 {seq} {time_s:.9f} 0 C {op} {sector} + {count} [0]"
            )
    # A few orphan completions (no queue event seen).
    for _ in range(3):
        time_s += 0.001
        seq += 1
        lines.append(f"8,16 1 {seq} {time_s:.9f} 0 C R 99999992 + 8 [0]")
    return "\n".join(lines) + "\n"


class TestIterRequests:
    """The chunked entry point must replicate the whole-file parse."""

    @pytest.mark.parametrize("batch_size", [1, 3, 7, 1000])
    def test_batches_equal_whole_parse(self, batch_size):
        text = _synthetic_log(300)
        whole = parse_blkparse(text, name="t")
        streamed = [r for batch in iter_requests(text, batch_size) for r in batch]
        # parse_blkparse sorts by arrival (stable); compare pre-sort order
        # by rebuilding a trace from the streamed requests.
        from repro.trace import Trace

        rebuilt = Trace(name="t", requests=streamed, metadata={"source": "blkparse"})
        assert list(rebuilt) == list(whole)

    def test_batch_sizes_respected(self):
        text = _synthetic_log(200)
        batches = list(iter_requests(text, batch_size=16))
        assert all(len(batch) <= 16 for batch in batches)
        assert all(len(batch) == 16 for batch in batches[:-1])

    def test_file_input(self, tmp_path):
        path = tmp_path / "log.txt"
        path.write_text(SAMPLE)
        assert sum(len(b) for b in iter_requests(path)) == 2

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(iter_requests(SAMPLE, batch_size=0))


class TestBlkparseStoreRoundTrip:
    """blkparse -> StoreWriter -> to_trace() equals parse_blkparse."""

    @pytest.mark.parametrize("chunk_rows", [7, 64, 100000])
    def test_round_trip_equality(self, tmp_path, chunk_rows):
        from repro.store import StoreWriter, open_store

        text = _synthetic_log(400, seed=11)
        whole = parse_blkparse(text, name="phone")
        writer = StoreWriter(
            tmp_path / "phone.store",
            name="phone",
            metadata={"source": "blkparse"},
            chunk_rows=chunk_rows,
        )
        for batch in iter_requests(text, batch_size=37):
            writer.append_requests(batch)
        manifest = writer.close()
        store = open_store(tmp_path / "phone.store")
        assert len(store) == len(whole)
        restored = store.to_trace()
        assert restored.name == whole.name
        assert restored.metadata == whole.metadata
        assert list(restored) == list(whole)
        # The importer's C-event order is generally not arrival order;
        # the manifest must record exactly whether the stream was sorted
        # (an unsorted store exercises the stable-sort materialization).
        streamed = [r for batch in iter_requests(text, batch_size=37) for r in batch]
        arrivals = [r.arrival_us for r in streamed]
        assert manifest.arrival_sorted == (arrivals == sorted(arrivals))
        assert manifest.arrival_sorted is False  # this log interleaves
