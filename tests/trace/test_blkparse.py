"""Unit tests for the blkparse importer."""

import pytest

from repro.trace import Op, parse_blkparse

SAMPLE = """\
8,16   1     1     0.000100000  1234  Q  W  8 + 8 [app]
8,16   1     2     0.000200000  1234  D  W  8 + 8 [app]
8,16   1     3     0.001500000     0  C  W  8 + 8 [0]
8,16   1     4     0.002000000  1234  Q  R  1024 + 16 [app]
8,16   1     5     0.002100000  1234  D  R  1024 + 16 [app]
8,16   1     6     0.002900000     0  C  R  1024 + 16 [0]
"""


class TestParsing:
    def test_matched_qdc_triples(self):
        trace = parse_blkparse(SAMPLE, name="sample")
        assert len(trace) == 2
        write, read = trace[0], trace[1]
        assert write.op is Op.WRITE
        assert write.arrival_us == pytest.approx(100.0)
        assert write.service_start_us == pytest.approx(200.0)
        assert write.finish_us == pytest.approx(1500.0)
        assert read.op is Op.READ

    def test_sector_to_byte_conversion_and_alignment(self):
        trace = parse_blkparse(SAMPLE)
        # Sector 8 = byte 4096; 8 sectors = 4096 bytes.
        assert trace[0].lba == 4096
        assert trace[0].size == 4096
        # Sector 1024 = byte 524288; 16 sectors = 8192 bytes.
        assert trace[1].lba == 524288
        assert trace[1].size == 8192

    def test_unaligned_extents_rounded_to_pages(self):
        text = (
            "8,16 1 1 0.000000000 1 Q W 3 + 5 [x]\n"
            "8,16 1 2 0.000500000 0 C W 3 + 5 [0]\n"
        )
        trace = parse_blkparse(text)
        assert trace[0].lba == 0  # 3*512 aligned down
        assert trace[0].size == 4096  # 5*512 = 2560 aligned up

    def test_queue_without_completion_kept_unreplayed(self):
        text = "8,16 1 1 0.000000000 1 Q R 8 + 8 [x]\n"
        trace = parse_blkparse(text)
        assert len(trace) == 1
        assert not trace[0].completed

    def test_completion_without_queue(self):
        text = "8,16 1 1 0.005000000 0 C W 8 + 8 [0]\n"
        trace = parse_blkparse(text)
        assert len(trace) == 1
        assert trace[0].completed
        assert trace[0].wait_us == 0.0

    def test_non_data_lines_skipped(self):
        text = (
            "CPU0 (8,16):\n"
            " Reads Queued:          1,        4KiB\n"
            "8,16 1 1 0.000000000 1 Q N 0 + 0 [x]\n"
            + SAMPLE
        )
        assert len(parse_blkparse(text)) == 2

    def test_file_input(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text(SAMPLE)
        assert len(parse_blkparse(path)) == 2

    def test_metadata_marks_source(self):
        assert parse_blkparse(SAMPLE).metadata["source"] == "blkparse"
