"""Property-based tests for the trace model (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import Op, Request, SECTOR, Trace, dumps, loads

requests_strategy = st.lists(
    st.builds(
        Request,
        arrival_us=st.floats(min_value=0, max_value=1e9, allow_nan=False),
        lba=st.integers(min_value=0, max_value=2**20).map(lambda n: n * SECTOR),
        size=st.integers(min_value=1, max_value=64).map(lambda n: n * SECTOR),
        op=st.sampled_from([Op.READ, Op.WRITE]),
    ),
    min_size=0,
    max_size=40,
)


@given(requests=requests_strategy)
@settings(max_examples=60)
def test_csv_round_trip_is_identity(requests):
    original = Trace("prop", requests)
    restored = loads(dumps(original))
    assert list(restored) == list(original)


@given(requests=requests_strategy)
@settings(max_examples=60)
def test_trace_is_sorted_by_arrival(requests):
    trace = Trace("prop", requests)
    arrivals = [r.arrival_us for r in trace]
    assert arrivals == sorted(arrivals)


@given(requests=requests_strategy, delta=st.floats(min_value=0, max_value=1e6))
@settings(max_examples=60)
def test_rebased_preserves_gaps(requests, delta):
    trace = Trace("prop", [r.shifted(delta) for r in requests])
    rebased = trace.rebased()
    for before, after in zip(trace.inter_arrival_us(), rebased.inter_arrival_us()):
        # Shifting is float arithmetic; gaps agree up to round-off.
        assert after == pytest.approx(before, abs=1e-6, rel=1e-9)
    if len(rebased):
        assert rebased.start_us == 0.0


@given(requests=requests_strategy)
@settings(max_examples=60)
def test_reads_plus_writes_partition_trace(requests):
    trace = Trace("prop", requests)
    assert len(trace.reads) + len(trace.writes) == len(trace)
    assert trace.read_bytes + trace.written_bytes == trace.total_bytes
