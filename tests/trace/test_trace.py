"""Unit tests for the trace container."""

import pytest

from repro.trace import Op, Request, Trace, merge


def _req(at, lba, size=4096, op=Op.WRITE):
    return Request(arrival_us=at, lba=lba, size=size, op=op)


class TestContainer:
    def test_sorts_on_construction(self):
        trace = Trace("t", [_req(100, 0), _req(50, 4096)])
        assert [r.arrival_us for r in trace] == [50, 100]

    def test_len_iter_getitem_bool(self, small_trace):
        assert len(small_trace) == 5
        assert list(small_trace)[0] is small_trace[0]
        assert bool(small_trace)
        assert not Trace("empty")


class TestAggregates:
    def test_reads_writes_split(self, small_trace):
        assert len(small_trace.reads) == 2
        assert len(small_trace.writes) == 3

    def test_byte_totals(self, small_trace):
        assert small_trace.total_bytes == 8192 + 4096 + 4096 + 16384 + 4096
        assert small_trace.written_bytes == 8192 + 4096 + 4096
        assert small_trace.read_bytes == 4096 + 16384

    def test_duration_from_arrivals(self, small_trace):
        assert small_trace.duration_us == 900.0

    def test_duration_includes_finish_times(self, completed_trace):
        assert completed_trace.end_us == 5400.0

    def test_empty_trace_durations(self):
        empty = Trace("empty")
        assert empty.duration_us == 0.0
        assert empty.arrival_rate() == 0.0
        assert empty.access_rate_kib_s() == 0.0

    def test_arrival_rate(self):
        trace = Trace("t", [_req(0, 0), _req(1_000_000, 4096)])
        assert trace.arrival_rate() == pytest.approx(2.0)

    def test_access_rate(self):
        trace = Trace("t", [_req(0, 0, 8192), _req(1_000_000, 8192, 8192)])
        assert trace.access_rate_kib_s() == pytest.approx(16.0)

    def test_inter_arrival(self, small_trace):
        assert small_trace.inter_arrival_us() == [100.0, 150.0, 150.0, 500.0]


class TestTransformations:
    def test_filter(self, small_trace):
        big = small_trace.filter(lambda r: r.size > 4096, name="big")
        assert big.name == "big"
        assert len(big) == 2

    def test_only(self, small_trace):
        reads = small_trace.only(Op.READ)
        assert all(r.is_read for r in reads)
        assert reads.name == "small[R]"

    def test_window(self, small_trace):
        mid = small_trace.window(100.0, 400.0)
        assert len(mid) == 2  # arrivals at 100 and 250

    def test_without_timing(self, completed_trace):
        assert not any(r.completed for r in completed_trace.without_timing())

    def test_rebased(self):
        trace = Trace("t", [_req(500, 0), _req(700, 4096)])
        rebased = trace.rebased()
        assert rebased.start_us == 0.0
        assert rebased.duration_us == 200.0

    def test_with_requests_keeps_metadata(self, small_trace):
        small_trace.metadata["k"] = "v"
        copy = small_trace.with_requests(small_trace.requests[:2])
        assert len(copy) == 2
        assert copy.metadata["k"] == "v"


class TestMerge:
    def test_merge_orders_by_arrival(self):
        first = Trace("a", [_req(0, 0), _req(500, 4096)])
        second = Trace("b", [_req(250, 8192)])
        merged = merge("ab", first, second)
        assert [r.arrival_us for r in merged] == [0, 250, 500]

    def test_merge_namespaces_metadata(self):
        first = Trace("a", [_req(0, 0)], metadata={"seed": "1"})
        second = Trace("b", [_req(1, 4096)], metadata={"seed": "2"})
        merged = merge("ab", first, second)
        assert merged.metadata["a.seed"] == "1"
        assert merged.metadata["b.seed"] == "2"
