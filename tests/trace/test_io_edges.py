"""Edge cases for trace serialization and the container."""

import pytest

from repro.trace import Op, Request, Trace, dumps, loads


class TestSerializationEdges:
    def test_empty_trace_round_trip(self):
        trace = Trace("empty", metadata={"note": "nothing here"})
        restored = loads(dumps(trace))
        assert restored.name == "empty"
        assert len(restored) == 0
        assert restored.metadata["note"] == "nothing here"

    def test_metadata_value_containing_equals(self):
        trace = Trace("t", [Request(0.0, 0, 4096, Op.READ)],
                      metadata={"cmdline": "a=b=c"})
        restored = loads(dumps(trace))
        assert restored.metadata["cmdline"] == "a=b=c"

    def test_huge_timestamps_survive(self):
        request = Request(1e12 + 0.5, 0, 4096, Op.WRITE)
        restored = loads(dumps(Trace("t", [request])))
        assert restored[0].arrival_us == 1e12 + 0.5

    def test_identical_arrivals_preserved(self):
        requests = [Request(5.0, i * 4096, 4096, Op.WRITE) for i in range(3)]
        restored = loads(dumps(Trace("t", requests)))
        assert len(restored) == 3
        assert all(r.arrival_us == 5.0 for r in restored)


class TestContainerEdges:
    def test_rebased_empty(self):
        assert len(Trace("e").rebased()) == 0

    def test_window_empty_result(self):
        trace = Trace("t", [Request(100.0, 0, 4096, Op.READ)])
        assert len(trace.window(0.0, 50.0)) == 0

    def test_only_on_empty(self):
        assert len(Trace("e").only(Op.READ)) == 0

    def test_single_request_interarrival(self):
        trace = Trace("t", [Request(0.0, 0, 4096, Op.READ)])
        assert trace.inter_arrival_us() == []
        assert trace.duration_us == 0.0
