"""Unit tests for the request record model."""

import pytest

from repro.trace import Op, Request, SECTOR


class TestOp:
    def test_parse_short_forms(self):
        assert Op.parse("R") is Op.READ
        assert Op.parse("w") is Op.WRITE

    def test_parse_full_words(self):
        assert Op.parse("read") is Op.READ
        assert Op.parse("WRITE") is Op.WRITE

    def test_parse_strips_whitespace(self):
        assert Op.parse("  R ") is Op.READ

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="unknown access type"):
            Op.parse("X")

    def test_str(self):
        assert str(Op.READ) == "R"
        assert str(Op.WRITE) == "W"


class TestRequestValidation:
    def test_valid_minimal(self):
        request = Request(arrival_us=0.0, lba=0, size=SECTOR, op=Op.READ)
        assert request.pages == 1

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError, match="arrival_us"):
            Request(arrival_us=-1.0, lba=0, size=SECTOR, op=Op.READ)

    def test_unaligned_lba_rejected(self):
        with pytest.raises(ValueError, match="lba"):
            Request(arrival_us=0.0, lba=123, size=SECTOR, op=Op.READ)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError, match="size"):
            Request(arrival_us=0.0, lba=0, size=0, op=Op.READ)

    def test_unaligned_size_rejected(self):
        with pytest.raises(ValueError, match="size"):
            Request(arrival_us=0.0, lba=0, size=SECTOR + 1, op=Op.READ)

    def test_service_before_arrival_rejected(self):
        with pytest.raises(ValueError, match="precedes arrival"):
            Request(arrival_us=10.0, lba=0, size=SECTOR, op=Op.READ,
                    service_start_us=5.0)

    def test_finish_without_service_start_rejected(self):
        with pytest.raises(ValueError, match="without service_start"):
            Request(arrival_us=0.0, lba=0, size=SECTOR, op=Op.READ,
                    service_start_us=None, finish_us=5.0)

    def test_finish_before_service_rejected(self):
        with pytest.raises(ValueError, match="precedes service_start"):
            Request(arrival_us=0.0, lba=0, size=SECTOR, op=Op.READ,
                    service_start_us=10.0, finish_us=5.0)


class TestDerivedQuantities:
    def test_end_lba_and_pages(self):
        request = Request(arrival_us=0.0, lba=8192, size=3 * SECTOR, op=Op.WRITE)
        assert request.end_lba == 8192 + 3 * SECTOR
        assert request.pages == 3

    def test_is_read_write(self):
        read = Request(arrival_us=0.0, lba=0, size=SECTOR, op=Op.READ)
        write = Request(arrival_us=0.0, lba=0, size=SECTOR, op=Op.WRITE)
        assert read.is_read and not read.is_write
        assert write.is_write and not write.is_read

    def test_timing_properties(self):
        request = Request(arrival_us=100.0, lba=0, size=SECTOR, op=Op.READ,
                          service_start_us=150.0, finish_us=400.0)
        assert request.wait_us == 50.0
        assert request.service_us == 250.0
        assert request.response_us == 300.0
        assert not request.no_wait

    def test_no_wait_when_served_immediately(self):
        request = Request(arrival_us=100.0, lba=0, size=SECTOR, op=Op.READ,
                          service_start_us=100.0, finish_us=400.0)
        assert request.no_wait

    def test_timing_requires_completion(self):
        request = Request(arrival_us=0.0, lba=0, size=SECTOR, op=Op.READ)
        assert not request.completed
        with pytest.raises(ValueError, match="no device timestamps"):
            _ = request.response_us


class TestTransformations:
    def test_with_timing(self):
        request = Request(arrival_us=0.0, lba=0, size=SECTOR, op=Op.READ)
        timed = request.with_timing(service_start_us=10.0, finish_us=20.0)
        assert timed.completed
        assert timed.service_us == 10.0
        assert not request.completed  # original untouched

    def test_without_timing(self):
        timed = Request(arrival_us=0.0, lba=0, size=SECTOR, op=Op.READ,
                        service_start_us=1.0, finish_us=2.0)
        assert not timed.without_timing().completed

    def test_shifted_moves_all_timestamps(self):
        timed = Request(arrival_us=10.0, lba=0, size=SECTOR, op=Op.READ,
                        service_start_us=11.0, finish_us=12.0)
        shifted = timed.shifted(100.0)
        assert shifted.arrival_us == 110.0
        assert shifted.service_start_us == 111.0
        assert shifted.finish_us == 112.0

    def test_shifted_uncompleted(self):
        request = Request(arrival_us=10.0, lba=0, size=SECTOR, op=Op.READ)
        assert request.shifted(5.0).arrival_us == 15.0
        assert request.shifted(5.0).service_start_us is None
