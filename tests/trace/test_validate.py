"""Unit tests for trace validation."""

import pytest

from repro.trace import (
    Op,
    Request,
    Trace,
    TraceValidationError,
    collect_problems,
    validate_trace,
)


def _trace(*requests):
    return Trace("t", list(requests))


class TestValidate:
    def test_clean_trace_passes(self, small_trace):
        validate_trace(small_trace)

    def test_capacity_violation_detected(self):
        trace = _trace(Request(0.0, 4096, 8192, Op.WRITE))
        problems = collect_problems(trace, device_bytes=8192)
        assert any("beyond device capacity" in p for p in problems)
        with pytest.raises(TraceValidationError):
            validate_trace(trace, device_bytes=8192)

    def test_capacity_fit_passes(self):
        trace = _trace(Request(0.0, 0, 8192, Op.WRITE))
        validate_trace(trace, device_bytes=8192)

    def test_problem_list_truncated_in_message(self):
        requests = [Request(0.0, i * 4096, 4096, Op.WRITE) for i in range(10)]
        trace = _trace(*requests)
        with pytest.raises(TraceValidationError, match="more"):
            validate_trace(trace, device_bytes=4096)

    def test_empty_trace_passes(self):
        validate_trace(Trace("empty"))
