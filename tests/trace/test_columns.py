"""Tests for the columnar struct-of-arrays layer (repro.trace.columns)."""

import pickle

import numpy as np
import pytest

from repro.trace import (
    FLAG_HAS_FINISH,
    FLAG_HAS_SERVICE,
    OP_READ,
    OP_WRITE,
    Op,
    Request,
    SECTOR,
    Trace,
    TraceColumns,
    sequential_sum,
)


def _mixed_requests():
    """A small hand-built list mixing replayed and never-replayed records."""
    return [
        Request(arrival_us=0.0, lba=0, size=SECTOR, op=Op.READ),
        Request(
            arrival_us=10.0,
            lba=SECTOR,
            size=2 * SECTOR,
            op=Op.WRITE,
            service_start_us=12.0,
            finish_us=20.0,
        ),
        Request(
            arrival_us=15.0,
            lba=8 * SECTOR,
            size=SECTOR,
            op=Op.WRITE,
            service_start_us=20.0,
            finish_us=31.5,
        ),
        Request(arrival_us=40.0, lba=3 * SECTOR, size=4 * SECTOR, op=Op.READ),
    ]


# -- sequential_sum -----------------------------------------------------------


def test_sequential_sum_matches_builtin_sum_bitwise():
    rng = np.random.default_rng(7)
    for n in (1, 2, 3, 10, 1000, 4097):
        values = rng.standard_normal(n) * 10.0 ** rng.integers(-6, 7, n)
        assert sequential_sum(values) == sum(values.tolist())


def test_sequential_sum_empty_is_zero():
    assert sequential_sum(np.empty(0)) == 0.0


# -- construction / schema ----------------------------------------------------


def test_from_requests_schema_and_flags():
    columns = TraceColumns.from_requests(_mixed_requests())
    assert len(columns) == 4
    assert columns.arrival_us.dtype == np.float64
    assert columns.service_start_us.dtype == np.float64
    assert columns.complete_us.dtype == np.float64
    assert columns.lba.dtype == np.int64
    assert columns.size.dtype == np.int64
    assert columns.op.dtype == np.uint8
    assert columns.flags.dtype == np.uint8
    # NaN where never replayed; flags mark the replayed rows.
    assert np.isnan(columns.service_start_us[0]) and np.isnan(columns.complete_us[0])
    assert columns.service_start_us[1] == 12.0 and columns.complete_us[2] == 31.5
    expected_flags = FLAG_HAS_SERVICE | FLAG_HAS_FINISH
    assert list(columns.flags) == [0, expected_flags, expected_flags, 0]
    assert list(columns.op) == [OP_READ, OP_WRITE, OP_WRITE, OP_READ]


def test_roundtrip_to_requests():
    requests = _mixed_requests()
    assert TraceColumns.from_requests(requests).to_requests() == requests


def test_empty_columns():
    columns = TraceColumns.empty()
    assert len(columns) == 0
    assert columns.inter_arrival_us.size == 0
    assert columns.completed_mask.size == 0
    assert TraceColumns.from_requests([]).to_requests() == []


def test_length_mismatch_rejected():
    good = TraceColumns.from_requests(_mixed_requests())
    with pytest.raises(ValueError):
        TraceColumns(
            good.arrival_us,
            good.service_start_us[:2],
            good.complete_us,
            good.lba,
            good.size,
            good.op,
            good.flags,
        )


# -- masks and derived columns ------------------------------------------------


def test_masks_and_caching():
    columns = TraceColumns.from_requests(_mixed_requests())
    assert list(columns.read_mask) == [True, False, False, True]
    assert list(columns.write_mask) == [False, True, True, False]
    assert list(columns.completed_mask) == [False, True, True, False]
    # Cached: repeated access returns the identical array object.
    assert columns.read_mask is columns.read_mask
    assert columns.completed_mask is columns.completed_mask


def test_derived_columns():
    columns = TraceColumns.from_requests(_mixed_requests())
    assert list(columns.end_lba) == [SECTOR, 3 * SECTOR, 9 * SECTOR, 7 * SECTOR]
    assert columns.inter_arrival_us.tolist() == [10.0, 5.0, 25.0]
    assert columns.wait_us[1] == 2.0
    assert columns.service_us[2] == 11.5
    assert columns.response_us[1] == 10.0
    assert np.isnan(columns.wait_us[0]) and np.isnan(columns.response_us[3])


def test_select_slice_is_view_mask_is_copy():
    columns = TraceColumns.from_requests(_mixed_requests())
    sliced = columns.select(slice(1, 3))
    assert len(sliced) == 2
    assert sliced.arrival_us.base is columns.arrival_us  # zero-copy view
    masked = columns.select(columns.write_mask)
    assert len(masked) == 2
    assert masked.arrival_us.base is None  # NumPy fancy indexing copies
    assert masked.lba.tolist() == [SECTOR, 8 * SECTOR]


def test_columns_pickle_roundtrip():
    columns = TraceColumns.from_requests(_mixed_requests())
    restored = pickle.loads(pickle.dumps(columns))
    assert restored.to_requests() == columns.to_requests()
    np.testing.assert_array_equal(restored.flags, columns.flags)


# -- Trace integration: cache, invalidation, adoption -------------------------


def test_trace_columns_cached_until_rebound():
    trace = Trace(name="t", requests=_mixed_requests())
    first = trace.columns()
    assert trace.columns() is first  # cached
    trace.requests = list(trace.requests)  # rebinding invalidates (new id)
    assert trace.columns() is not first


def test_trace_columns_invalidated_on_length_change():
    trace = Trace(name="t", requests=_mixed_requests())
    first = trace.columns()
    trace.requests.append(
        Request(arrival_us=50.0, lba=0, size=SECTOR, op=Op.READ)
    )
    rebuilt = trace.columns()
    assert rebuilt is not first
    assert len(rebuilt) == 5


def test_trace_invalidate_columns_explicit():
    trace = Trace(name="t", requests=_mixed_requests())
    first = trace.columns()
    # Same-length in-place element assignment is invisible to the token --
    # the documented contract requires an explicit invalidation.
    trace.requests[0] = Request(arrival_us=1.0, lba=0, size=SECTOR, op=Op.WRITE)
    assert trace.columns() is first
    trace.invalidate_columns()
    rebuilt = trace.columns()
    assert rebuilt is not first
    assert rebuilt.op[0] == OP_WRITE


def test_trace_pickle_drops_columns_cache():
    trace = Trace(name="t", requests=_mixed_requests())
    cached = trace.columns()
    restored = pickle.loads(pickle.dumps(trace))
    assert restored._columns is None  # lean wire format; rebuilt lazily
    np.testing.assert_array_equal(restored.columns().lba, cached.lba)


def test_from_columns_adopts_cache_and_validates_order():
    columns = TraceColumns.from_requests(_mixed_requests())
    trace = Trace.from_columns("t", columns)
    assert trace.columns() is columns  # adopted, not rebuilt
    assert trace.requests == _mixed_requests()
    shuffled = columns.select(np.array([2, 0, 1, 3]))
    with pytest.raises(ValueError, match="arrival-ordered"):
        Trace.from_columns("bad", shuffled)


def test_without_timing_fast_path_shares_columns():
    plain = [r.without_timing() for r in _mixed_requests()]
    columns = TraceColumns.from_requests(plain)
    trace = Trace.from_columns("t", columns, requests=plain)
    stripped = trace.without_timing()
    assert stripped.columns() is columns  # zero-copy: nothing to strip
    assert stripped.requests == plain
    # Slow path: a trace with device timestamps really strips them.
    replayed = Trace(name="r", requests=_mixed_requests())
    replayed.columns()
    stripped = replayed.without_timing()
    assert all(r.finish_us is None for r in stripped)
    assert not stripped.columns().flags.any()


# -- constructor sort behaviour (the O(n log n) skip) -------------------------


def test_constructor_preserves_already_sorted_input():
    requests = _mixed_requests()
    trace = Trace(name="t", requests=requests)
    assert trace.requests == requests
    assert trace.requests is not requests  # defensive copy either way


def test_constructor_sorts_unsorted_input():
    requests = _mixed_requests()
    shuffled = [requests[2], requests[0], requests[3], requests[1]]
    trace = Trace(name="t", requests=shuffled)
    assert trace.requests == sorted(shuffled, key=lambda r: r.arrival_us)
    assert [r.arrival_us for r in trace.requests] == [0.0, 10.0, 15.0, 40.0]


def test_constructor_keeps_equal_arrivals_stable():
    a = Request(arrival_us=5.0, lba=0, size=SECTOR, op=Op.READ)
    b = Request(arrival_us=5.0, lba=SECTOR, size=SECTOR, op=Op.WRITE)
    trace = Trace(name="t", requests=[a, b])
    assert trace.requests[0] is a and trace.requests[1] is b
