"""Fault injection must be bit-reproducible: same plan, same digests --
across parallel worker counts, separate processes and hash seeds."""

import subprocess
import sys
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro.emmc import small_four_ps
from repro.faults import FaultPlan, replay_with_faults, stats_digest
from repro.trace import Op, Request, SECTOR, Trace

REPO_ROOT = Path(__file__).resolve().parents[2]

#: One plan per fault class, plus a kitchen-sink plan with a power loss.
PLANS = [
    FaultPlan(seed=101, read_error_rate=0.2),
    FaultPlan(seed=102, program_error_rate=0.001, spare_blocks_per_plane=16),
    FaultPlan(seed=103, erase_error_rate=0.05, spare_blocks_per_plane=16),
    FaultPlan(
        seed=104,
        read_error_rate=0.05,
        program_error_rate=0.0005,
        erase_error_rate=0.01,
        spare_blocks_per_plane=16,
        power_loss_at_event=400,
    ),
]


def _trace():
    return Trace(
        "det",
        [
            Request(
                arrival_us=i * 25.0,
                lba=(i % 700) * SECTOR,
                size=2 * SECTOR,
                op=Op.WRITE if i % 2 else Op.READ,
            )
            for i in range(800)
        ],
    )


def _digest(plan_index: int) -> str:
    plan = PLANS[plan_index]
    result = replay_with_faults(small_four_ps(), _trace(), plan)
    return stats_digest(result.stats)


def _all_digests(jobs: int) -> list:
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(_digest, range(len(PLANS))))


class TestDeterminism:
    def test_jobs_1_vs_4_identical(self):
        assert _all_digests(1) == _all_digests(4)

    def test_digests_stable_across_hash_seeds(self):
        script = (
            "from tests.faults.test_determinism import _digest, PLANS;"
            "print('\\n'.join(_digest(i) for i in range(len(PLANS))))"
        )
        outputs = set()
        for hash_seed in ("0", "1", "2", "3"):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": hash_seed},
                cwd=str(REPO_ROOT),
            )
            outputs.add(proc.stdout.strip())
        assert len(outputs) == 1
        in_process = "\n".join(_digest(i) for i in range(len(PLANS)))
        assert outputs == {in_process}

    def test_digest_distinguishes_plans(self):
        digests = [_digest(i) for i in range(len(PLANS))]
        assert len(set(digests)) == len(PLANS)
