"""Program/erase failures: bad-block retirement, the spare pool, and the
FTL invariants that must hold around them (GC and wear-leveling skip
retired blocks; no live mapping entry points into one)."""

import pytest

from repro.emmc import small_four_ps
from repro.emmc.ftl.wear_leveling import collect_wear
from repro.faults import FaultPlan, SparePoolExhausted, replay_with_faults, stats_digest
from repro.trace import Op, Request, SECTOR, Trace


def _write_pressure_trace(num=3000, span=1500):
    """Write-heavy, span wider than a few blocks: fills flash, forces GC."""
    return Trace(
        "pressure",
        [
            Request(
                arrival_us=i * 20.0,
                lba=(i % span) * SECTOR,
                size=4 * SECTOR,
                op=Op.WRITE,
            )
            for i in range(num)
        ],
    )


#: Rates sized so a few thousand programs / dozens of erases retire a
#: handful of blocks without exhausting 16 spares per plane.
PLAN = FaultPlan(
    seed=11,
    program_error_rate=0.0008,
    erase_error_rate=0.02,
    spare_blocks_per_plane=16,
)


class TestRetirementUnderGcPressure:
    @classmethod
    def setup_class(cls):
        cls.trace = _write_pressure_trace()
        cls.config = small_four_ps()
        # Keep the device for structural inspection of its planes.
        from repro.emmc import EmmcDevice
        from repro.sim import Host

        cls.device = EmmcDevice(cls.config, faults=PLAN)
        cls.result = Host(cls.device).replay(cls.trace.without_timing())

    def test_blocks_were_retired(self):
        stats = self.result.stats
        assert stats.bad_blocks_retired > 0
        assert stats.program_failures + stats.erase_failures >= stats.bad_blocks_retired

    def test_spare_accounting_balances(self):
        stats = self.result.stats
        # Every retirement consumed exactly one spare.
        assert stats.spare_blocks_consumed == stats.bad_blocks_retired
        assert self.device.ftl.bad_blocks.retired == stats.bad_blocks_retired

    def test_retired_blocks_are_fully_quarantined(self):
        retired_seen = 0
        for plane in self.device.ftl.planes:
            for kind, pool in plane.blocks.items():
                free = set(plane.free_blocks[kind])
                active = plane.active_block.get(kind)
                for block in pool:
                    if not block.is_bad:
                        continue
                    retired_seen += 1
                    assert block.block_id not in free
                    assert active != block.block_id
                    assert block.valid_count == 0  # contents migrated away
                # GC must never pick a retired block as victim.
                for candidate in plane.gc_candidates(kind):
                    assert not candidate.is_bad
        assert retired_seen == self.result.stats.bad_blocks_retired

    def test_no_mapping_entry_points_into_a_bad_block(self):
        ftl = self.device.ftl
        for lpn in ftl.mapping.mapped_lpns():
            location = ftl.mapping.lookup(lpn)
            if location.preloaded:
                continue
            plane = ftl.planes[location.plane]
            block = plane.blocks[location.kind][location.block_id]
            assert not block.is_bad, f"lpn {lpn} maps into retired block"

    def test_wear_stats_exclude_retired_blocks(self):
        wear = collect_wear(self.device.ftl.planes)
        live_erases = sum(
            block.erase_count
            for plane in self.device.ftl.planes
            for pool in plane.blocks.values()
            for block in pool
            if not block.is_bad
        )
        all_erases = sum(
            block.erase_count
            for plane in self.device.ftl.planes
            for pool in plane.blocks.values()
            for block in pool
        )
        assert wear.total_erases == live_erases
        # Retired blocks carry erase history that the wear report drops.
        assert all_erases >= live_erases

    def test_migrated_slots_accounted(self):
        stats = self.result.stats
        assert stats.remap_migrated_slots == self.device.ftl.bad_blocks.migrated_slots
        # Retirement of in-use blocks migrates their valid pages.
        assert stats.remap_migrated_slots > 0

    def test_replay_is_deterministic(self):
        again = replay_with_faults(self.config, self.trace, PLAN)
        assert stats_digest(again.stats) == stats_digest(self.result.stats)


class TestSparePoolExhaustion:
    def test_exhaustion_raises_named_error(self):
        plan = FaultPlan(seed=11, erase_error_rate=0.9, spare_blocks_per_plane=1)
        with pytest.raises(SparePoolExhausted, match="spare"):
            replay_with_faults(small_four_ps(), _write_pressure_trace(), plan)

    def test_larger_pool_absorbs_the_same_faults(self):
        plan = FaultPlan(seed=11, erase_error_rate=0.05, spare_blocks_per_plane=64)
        result = replay_with_faults(small_four_ps(), _write_pressure_trace(), plan)
        assert result.stats.erase_failures > 0
        assert result.stats.bad_blocks_retired == result.stats.spare_blocks_consumed
