"""FaultPlan.none() parity: routing every experiment replay through the
fault-aware device with an inert plan must not move a single bit of the
published numbers."""

import pytest

from repro.emmc import EmmcDevice, small_four_ps
from repro.experiments import fig3, runner
from repro.experiments.common import FAULT_PROFILE_ENV, replay_on
from repro.faults import FaultPlan
from repro.sim import Host
from repro.workloads import generate_trace

GOLDEN_SEED = 20150614
GOLDEN_REQUESTS = 120


def _trace():
    return generate_trace("Email", seed=GOLDEN_SEED, num_requests=GOLDEN_REQUESTS)


class TestInertPlanParity:
    def test_replay_on_with_none_profile_bit_identical(self, monkeypatch):
        config = small_four_ps()
        monkeypatch.delenv(FAULT_PROFILE_ENV, raising=False)
        plain = replay_on(config, _trace())
        monkeypatch.setenv(FAULT_PROFILE_ENV, "none")
        inert = replay_on(config, _trace())
        assert vars(plain.stats) == vars(inert.stats)
        assert list(plain.trace) == list(inert.trace)

    def test_explicit_none_plan_matches_no_plan(self):
        config = small_four_ps()
        plain = Host(EmmcDevice(config)).replay(_trace().without_timing())
        inert = replay_on(config, _trace(), faults=FaultPlan.none())
        assert vars(plain.stats) == vars(inert.stats)
        assert list(plain.trace) == list(inert.trace)

    def test_fig3_data_identical_under_none_profile(self, monkeypatch):
        monkeypatch.delenv(FAULT_PROFILE_ENV, raising=False)
        plain = fig3.run(seed=GOLDEN_SEED, num_requests=GOLDEN_REQUESTS)
        monkeypatch.setenv(FAULT_PROFILE_ENV, "none")
        inert = fig3.run(seed=GOLDEN_SEED, num_requests=GOLDEN_REQUESTS)
        assert runner._jsonable(plain.data) == runner._jsonable(inert.data)

    def test_unknown_profile_env_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(FAULT_PROFILE_ENV, "no-such-profile")
        with pytest.raises(ValueError, match="no-such-profile"):
            replay_on(small_four_ps(), _trace())
