"""Transient read failures: the bounded ECC retry loop on the device."""

import pytest

from repro.emmc import EmmcDevice, small_four_ps
from repro.faults import FaultPlan, replay_with_faults, stats_digest
from repro.sim import EventKind, Host
from repro.trace import Op, Request, SECTOR, Trace


def _trace(num=60, writes_every=3):
    return Trace(
        "faulty",
        [
            Request(
                arrival_us=i * 50.0,
                lba=(i % 64) * SECTOR,
                size=SECTOR,
                op=Op.WRITE if i % writes_every == 0 else Op.READ,
            )
            for i in range(num)
        ],
    )


class TestEccRetries:
    def test_moderate_rate_corrects_reads(self):
        plan = FaultPlan(seed=7, read_error_rate=0.3, read_retry_limit=3)
        result = replay_with_faults(small_four_ps(), _trace(), plan)
        stats = result.stats
        assert stats.read_retries > 0
        assert stats.corrected_reads > 0
        assert stats.uncorrectable_reads == 0  # 0.3^4 over ~40 reads: none expected
        assert len(result.trace) == 60  # every request still served

    def test_retry_exhaustion_declares_uncorrectable(self):
        plan = FaultPlan(seed=7, read_error_rate=0.95, read_retry_limit=1)
        result = replay_with_faults(small_four_ps(), _trace(), plan)
        stats = result.stats
        assert stats.uncorrectable_reads > 0
        # An uncorrectable read burns exactly retry_limit retries.
        assert stats.read_retries >= stats.uncorrectable_reads * plan.read_retry_limit
        assert len(result.trace) == 60  # uncorrectable is reported, not fatal

    def test_zero_retry_limit_fails_immediately(self):
        plan = FaultPlan(seed=3, read_error_rate=0.5, read_retry_limit=0)
        result = replay_with_faults(small_four_ps(), _trace(), plan)
        assert result.stats.read_retries == 0
        assert result.stats.uncorrectable_reads > 0

    def test_retries_slow_the_replay(self):
        base = replay_with_faults(small_four_ps(), _trace(), FaultPlan.none())
        slow = replay_with_faults(
            small_four_ps(),
            _trace(),
            FaultPlan(seed=7, read_error_rate=0.4, read_retry_backoff_us=500.0),
        )
        assert slow.stats.read_retry_backoff_us > 0
        assert slow.trace.end_us > base.trace.end_us

    def test_retry_events_visible_in_kernel_trace(self):
        plan = FaultPlan(seed=7, read_error_rate=0.4, read_retry_limit=3)
        result = replay_with_faults(
            small_four_ps(), _trace(), plan, record_events=True
        )
        assert result.stats.read_retries > 0
        retry_events = [
            e for e in result.events if e[3] == EventKind.FAULT_RETRY.name
        ]
        assert len(retry_events) == result.stats.read_retries
        assert all(e[4].startswith("ecc-retry-") for e in retry_events)

    def test_fault_counters_deterministic(self):
        plan = FaultPlan(seed=21, read_error_rate=0.3)
        a = replay_with_faults(small_four_ps(), _trace(), plan)
        b = replay_with_faults(small_four_ps(), _trace(), plan)
        assert stats_digest(a.stats) == stats_digest(b.stats)
        assert list(a.trace) == list(b.trace)


class TestInertPlan:
    def test_none_plan_is_structurally_dropped(self):
        device = EmmcDevice(small_four_ps(), faults=FaultPlan.none())
        assert device.faults is None  # no injector, no branch anywhere

    def test_none_plan_replay_bit_identical_to_plain(self):
        faulted = replay_with_faults(small_four_ps(), _trace(), FaultPlan.none())
        plain = Host(EmmcDevice(small_four_ps())).replay(_trace().without_timing())
        assert stats_digest(faulted.stats) == stats_digest(plain.stats)
        assert list(faulted.trace) == list(plain.trace)

    def test_fault_events_property_sums_counters(self):
        plan = FaultPlan(seed=7, read_error_rate=0.5, read_retry_limit=1)
        stats = replay_with_faults(small_four_ps(), _trace(), plan).stats
        assert stats.fault_events == (
            stats.corrected_reads
            + stats.uncorrectable_reads
            + stats.program_failures
            + stats.erase_failures
        )
        assert stats.fault_events > 0


class TestConfigGuards:
    def test_program_faults_require_page_mapping(self):
        from dataclasses import replace

        config = replace(small_four_ps(), mapping_scheme="hybrid-log")
        with pytest.raises(ValueError, match="page mapping"):
            EmmcDevice(config, faults=FaultPlan(seed=1, program_error_rate=0.1))

    def test_read_faults_allowed_on_any_scheme(self):
        from dataclasses import replace

        config = replace(small_four_ps(), mapping_scheme="hybrid-log")
        device = EmmcDevice(config, faults=FaultPlan(seed=1, read_error_rate=0.1))
        assert device.faults is not None
