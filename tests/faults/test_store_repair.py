"""Store crash-consistency: torn writes from a killed writer process,
deterministic corruption injectors, and the repair workflow."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.faults import FaultPlan, corrupt_chunk, tear_chunk
from repro.store import (
    QUARANTINE_SUFFIX,
    StoreError,
    StoreWriter,
    journal_path,
    open_store,
    pack,
    repair,
)
from repro.trace import Op, Request, SECTOR, Trace

REPO_ROOT = Path(__file__).resolve().parents[2]


def _trace(num=2000):
    """Deterministic trace both parent and killed child can rebuild."""
    return Trace(
        "crashy",
        [
            Request(
                arrival_us=i * 10.0,
                lba=(i % 321) * SECTOR,
                size=SECTOR,
                op=Op.WRITE if i % 3 else Op.READ,
            )
            for i in range(num)
        ],
    )


#: Child process: streams the same trace into a store, then dies with a
#: torn chunk on disk and no manifest -- exactly what SIGKILL mid-write
#: leaves behind.  ``os._exit`` skips every finalizer, including
#: ``StoreWriter.close``.
_KILLED_WRITER = """
import os, sys
sys.path.insert(0, "src")
sys.path.insert(0, ".")
from tests.faults.test_store_repair import _trace
from repro.store import StoreWriter

writer = StoreWriter(sys.argv[1], name="crashy", chunk_rows=500)
columns = _trace().columns()
writer.append_columns(columns.select(slice(0, 1250)))  # 2 chunks + 250 pending
with open(os.path.join(sys.argv[1], "chunk-000002.bin"), "wb") as handle:
    handle.write(b"\\x7f" * 137)  # torn third chunk, never journaled
os._exit(9)
"""


def _kill_a_writer(store_dir: Path) -> None:
    proc = subprocess.run(
        [sys.executable, "-c", _KILLED_WRITER, str(store_dir)],
        cwd=str(REPO_ROOT),
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 9, proc.stderr
    assert journal_path(store_dir).is_file()
    assert not (store_dir / "manifest.json").exists()


def _same_bytes(a: Path, b: Path) -> bool:
    names_a = sorted(p.name for p in a.iterdir())
    names_b = sorted(p.name for p in b.iterdir())
    if names_a != names_b:
        return False
    return all((a / n).read_bytes() == (b / n).read_bytes() for n in names_a)


class TestKilledWriter:
    def test_repair_with_source_completes_to_clean_pack(self, tmp_path):
        crashed = tmp_path / "crashed"
        _kill_a_writer(crashed)
        clean = tmp_path / "clean"
        pack(_trace(), clean, chunk_rows=500)

        report = repair(crashed, source=_trace())
        assert report.used_journal
        assert "chunk-000002.bin" in report.quarantined  # the torn tail
        assert report.total_rows == 2000
        assert not journal_path(crashed).exists()
        for leftover in crashed.glob("*" + QUARANTINE_SUFFIX):
            leftover.unlink()
        assert _same_bytes(clean, crashed)  # bit-identical to a clean pack

    def test_repair_without_source_keeps_journaled_prefix(self, tmp_path):
        crashed = tmp_path / "crashed"
        _kill_a_writer(crashed)
        report = repair(crashed)
        assert report.used_journal
        assert report.total_rows == 1000  # the two journaled chunks
        store = open_store(crashed)
        assert store.verify().ok
        assert list(store.to_trace()) == list(_trace())[:1000]

    def test_writer_refuses_crashed_directory_without_overwrite(self, tmp_path):
        crashed = tmp_path / "crashed"
        _kill_a_writer(crashed)
        with pytest.raises(StoreError, match="journal"):
            StoreWriter(crashed, name="again")
        # overwrite=True clears the wreckage and works.
        with StoreWriter(crashed, name="again", overwrite=True) as writer:
            writer.append_trace(_trace(num=50))
        assert open_store(crashed).verify().ok


class TestInjectors:
    def test_corrupt_chunk_is_seed_deterministic(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        pack(_trace(), a, chunk_rows=500)
        pack(_trace(), b, chunk_rows=500)
        damage_a = corrupt_chunk(a, FaultPlan(seed=77))
        damage_b = corrupt_chunk(b, FaultPlan(seed=77))
        assert damage_a == damage_b
        assert damage_a.kind == "corrupt"

    def test_corrupt_then_verify_then_repair(self, tmp_path):
        store_dir = tmp_path / "store"
        pack(_trace(), store_dir, chunk_rows=500)
        damage = corrupt_chunk(store_dir, FaultPlan(seed=5))
        result = open_store(store_dir).verify(strict=False)
        assert [bad.file for bad in result.bad_chunks] == [damage.file]
        report = repair(store_dir, source=_trace())
        assert report.rebuilt == [damage.file]
        assert (store_dir / (damage.file + QUARANTINE_SUFFIX)).is_file()
        assert open_store(store_dir).verify().ok

    def test_tear_chunk_truncates(self, tmp_path):
        store_dir = tmp_path / "store"
        pack(_trace(), store_dir, chunk_rows=500)
        damage = tear_chunk(store_dir, chunk_index=-1)
        assert damage.kind == "torn"
        path = store_dir / damage.file
        assert path.stat().st_size == damage.damaged_nbytes < damage.original_nbytes
        result = open_store(store_dir).verify(strict=False)
        assert result.bad_chunks[0].reason == "truncated"

    def test_tail_tear_without_source_truncates_store(self, tmp_path):
        store_dir = tmp_path / "store"
        pack(_trace(), store_dir, chunk_rows=500)
        tear_chunk(store_dir, chunk_index=-1)
        report = repair(store_dir)
        assert report.dropped_chunks  # tail dropped from the index
        assert report.total_rows == 1500
        assert open_store(store_dir).verify().ok

    def test_mid_stream_damage_without_source_is_fatal(self, tmp_path):
        store_dir = tmp_path / "store"
        pack(_trace(), store_dir, chunk_rows=500)
        tear_chunk(store_dir, chunk_index=0)
        with pytest.raises(StoreError, match="mid-stream"):
            repair(store_dir)

    def test_wrong_source_is_rejected(self, tmp_path):
        store_dir = tmp_path / "store"
        pack(_trace(), store_dir, chunk_rows=500)
        corrupt_chunk(store_dir, FaultPlan(seed=5))
        other = Trace(
            "other",
            [
                Request(arrival_us=i * 10.0, lba=0, size=SECTOR, op=Op.READ)
                for i in range(2000)
            ],
        )
        with pytest.raises(StoreError, match="checksum"):
            repair(store_dir, source=other)

    def test_repair_on_intact_store_is_a_no_op(self, tmp_path):
        store_dir = tmp_path / "store"
        pack(_trace(), store_dir, chunk_rows=500)
        before = {p.name: p.read_bytes() for p in store_dir.iterdir()}
        report = repair(store_dir)
        assert not report.quarantined and not report.rebuilt
        assert not report.dropped_chunks and not report.used_journal
        after = {p.name: p.read_bytes() for p in store_dir.iterdir()}
        assert before == after

    def test_nothing_to_repair_from(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(StoreError, match="neither"):
            repair(empty)
