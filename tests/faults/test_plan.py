"""The FaultPlan/FaultInjector contract: validation, named streams,
profiles and draw determinism."""

import numpy as np
import pytest

from repro.faults import PROFILES, FaultInjector, FaultPlan


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"read_error_rate": -0.1},
            {"read_error_rate": 1.0},
            {"program_error_rate": 1.5},
            {"erase_error_rate": -1e-9},
            {"read_retry_limit": -1},
            {"read_retry_backoff_us": -5.0},
            {"spare_blocks_per_plane": -1},
            {"power_loss_at_event": -1},
            {"power_loss_recovery_us": -1.0},
        ],
    )
    def test_bad_parameters_raise(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_none_is_inactive(self):
        plan = FaultPlan.none()
        assert not plan.device_active
        assert not plan.read_active
        assert not plan.program_active
        assert not plan.erase_active

    def test_any_rate_activates(self):
        assert FaultPlan(read_error_rate=0.01).device_active
        assert FaultPlan(program_error_rate=0.01).device_active
        assert FaultPlan(erase_error_rate=0.01).device_active
        # Power loss is driven by the replay harness, not device draws:
        # a power-loss-only plan needs no injector inside the device.
        assert not FaultPlan(power_loss_at_event=5).device_active

    def test_with_overrides_returns_new_plan(self):
        plan = FaultPlan.none(seed=9)
        hot = plan.with_overrides(read_error_rate=0.5)
        assert hot.read_error_rate == 0.5
        assert hot.seed == 9
        assert plan.read_error_rate == 0.0  # original untouched


class TestProfiles:
    def test_known_profiles_resolve(self):
        for name in PROFILES:
            plan = FaultPlan.profile(name, seed=3)
            assert plan.seed == 3

    def test_none_profile_is_inactive(self):
        assert not FaultPlan.profile("none").device_active

    def test_unknown_profile_raises(self):
        with pytest.raises((KeyError, ValueError)):
            FaultPlan.profile("definitely-not-a-profile")


class TestStreams:
    def test_same_seed_same_label_same_sequence(self):
        a = FaultPlan(seed=42).stream("read").random(100)
        b = FaultPlan(seed=42).stream("read").random(100)
        assert np.array_equal(a, b)

    def test_different_labels_are_independent_streams(self):
        a = FaultPlan(seed=42).stream("read").random(100)
        b = FaultPlan(seed=42).stream("program").random(100)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1).stream("read").random(100)
        b = FaultPlan(seed=2).stream("read").random(100)
        assert not np.array_equal(a, b)

    def test_stream_isolation_across_draw_counts(self):
        """Draining one stream never shifts another stream's draws."""
        fresh = FaultPlan(seed=7)
        expected = fresh.stream("erase").random(10)
        injector = FaultPlan(seed=7).injector()
        for _ in range(1000):
            injector.read_failures()  # exhaust the read stream
        assert np.array_equal(injector._stream("erase").random(10), expected)


class TestInjectorDraws:
    def test_read_failures_bounded_by_limit(self):
        plan = FaultPlan(seed=11, read_error_rate=0.9, read_retry_limit=3)
        injector = plan.injector()
        draws = [injector.read_failures() for _ in range(500)]
        assert all(0 <= f <= plan.read_retry_limit + 1 for f in draws)
        assert any(f == plan.read_retry_limit + 1 for f in draws)  # exhaustion happens
        assert any(f == 0 for f in draws)

    def test_injector_draws_are_deterministic(self):
        plan = FaultPlan(seed=13, read_error_rate=0.3, program_error_rate=0.2)
        a = plan.injector()
        b = plan.injector()
        assert [a.read_failures() for _ in range(200)] == [
            b.read_failures() for _ in range(200)
        ]
        assert [a.program_fails() for _ in range(200)] == [
            b.program_fails() for _ in range(200)
        ]

    def test_injector_type(self):
        assert isinstance(FaultPlan.none().injector(), FaultInjector)

    def test_zero_rate_never_fails(self):
        injector = FaultPlan(seed=5).injector()
        assert not any(injector.program_fails() for _ in range(100))
        assert not any(injector.erase_fails() for _ in range(100))
        assert all(injector.read_failures() == 0 for _ in range(100))

    def test_describe_mentions_active_faults(self):
        text = FaultPlan(seed=5, read_error_rate=0.25).describe()
        assert "read" in text.lower()
