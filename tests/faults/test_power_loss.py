"""Power loss at *every* event index of a replay, plus the device
``recover()`` contract."""

import pytest

from repro.emmc import EmmcDevice, small_four_ps
from repro.faults import FaultPlan, replay_with_faults, stats_digest
from repro.sim import Host
from repro.trace import Op, Request, SECTOR, Trace


def _trace(num=12):
    return Trace(
        "cut",
        [
            Request(
                arrival_us=i * 100.0,
                lba=(i % 32) * SECTOR,
                size=2 * SECTOR,
                op=Op.WRITE if i % 2 else Op.READ,
            )
            for i in range(num)
        ],
    )


def _baseline_event_count(config, trace):
    # Counts kernel events, so the replay must run on the event kernel;
    # an on_complete observer pins it there (the fast path has no events).
    device = EmmcDevice(config)
    Host(device).replay(trace.without_timing(), on_complete=lambda _: None)
    return device.kernel.processed


class TestExhaustiveSweep:
    """Cut before event k, for every k the fault-free replay fires."""

    def test_every_cut_point_recovers_and_serves_everything(self):
        trace = _trace()
        config = small_four_ps()
        total_events = _baseline_event_count(config, trace)
        assert total_events > len(trace)  # arrivals + completions + timers

        baseline = replay_with_faults(config, trace, FaultPlan.none())
        for cut_at in range(total_events):
            plan = FaultPlan(seed=1, power_loss_at_event=cut_at)
            result = replay_with_faults(config, trace, plan)
            assert result.interrupted, f"cut at {cut_at} never triggered"
            assert result.stats.recoveries == 1
            assert result.recovery is not None
            assert result.recovery.resumed_us >= result.recovery.cut_us
            # Every request is eventually served, exactly once.
            assert len(result.trace) == len(trace)
            arrivals = [r.arrival_us for r in result.trace]
            assert arrivals == sorted(arrivals)
            # Requests served before the cut kept their fault-free timing.
            served_before = len(trace) - result.resubmitted
            for original, replayed in list(zip(baseline.trace, result.trace))[
                :served_before
            ]:
                assert replayed == original
            # Resubmitted requests never start before the device is back.
            for replayed in list(result.trace)[served_before:]:
                assert replayed.arrival_us >= result.recovery.resumed_us

    def test_cut_beyond_last_event_is_a_clean_run(self):
        trace = _trace()
        config = small_four_ps()
        total_events = _baseline_event_count(config, trace)
        plan = FaultPlan(seed=1, power_loss_at_event=total_events + 10)
        result = replay_with_faults(config, trace, plan)
        assert not result.interrupted
        assert result.recovery is None
        assert result.stats.recoveries == 0
        baseline = replay_with_faults(config, trace, FaultPlan.none())
        assert stats_digest(result.stats) == stats_digest(baseline.stats)


class TestRecoverContract:
    def test_recover_before_cut_time_rejected(self):
        device = EmmcDevice(small_four_ps())
        Host(device).replay(_trace().without_timing())
        with pytest.raises(ValueError):
            device.recover(at_us=device.kernel.now_us - 1.0)

    def test_recover_rebuilds_mapping_from_flash(self):
        device = EmmcDevice(small_four_ps())
        Host(device).replay(_trace(num=20).without_timing())
        written_before = {
            lpn
            for lpn in device.ftl.mapping.mapped_lpns()
            if not device.ftl.mapping.lookup(lpn).preloaded
        }
        assert written_before  # the trace wrote something
        report = device.recover()
        # Preloaded locations are dropped (re-derived on demand); every
        # flash-written LPN is rediscovered by the scan.
        assert report.remapped_entries == len(written_before)
        assert set(device.ftl.mapping.mapped_lpns()) == written_before

    def test_recovered_device_still_serves(self):
        device = EmmcDevice(small_four_ps())
        Host(device).replay(_trace().without_timing())
        report = device.recover(at_us=device.kernel.now_us + 100.0)
        box = []
        device.arrive(
            Request(
                arrival_us=report.resumed_us + 10.0,
                lba=0,
                size=SECTOR,
                op=Op.READ,
            ),
            record_to=box,
        )
        device.kernel.drain()
        assert len(box) == 1 and box[0].completed

    def test_recovery_charges_downtime(self):
        trace = _trace()
        config = small_four_ps()
        plan = FaultPlan(seed=1, power_loss_at_event=15, power_loss_recovery_us=50000.0)
        result = replay_with_faults(config, trace, plan)
        assert result.recovery.resumed_us == pytest.approx(
            result.recovery.cut_us + 50000.0
        )

    def test_power_loss_replay_deterministic(self):
        trace = _trace()
        config = small_four_ps()
        plan = FaultPlan(seed=1, power_loss_at_event=20)
        a = replay_with_faults(config, trace, plan)
        b = replay_with_faults(config, trace, plan)
        assert stats_digest(a.stats) == stats_digest(b.stats)
        assert list(a.trace) == list(b.trace)
