"""Public API sanity: every exported name exists and is importable."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.trace",
    "repro.sim",
    "repro.workloads",
    "repro.android",
    "repro.emmc",
    "repro.emmc.ftl",
    "repro.analysis",
    "repro.store",
    "repro.streaming",
    "repro.experiments",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", [])
    for name in exported:
        assert hasattr(package, name), f"{package_name}.{name} missing"


def test_no_duplicate_exports():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        exported = getattr(package, "__all__", [])
        assert len(exported) == len(set(exported)), package_name


def test_version():
    import repro

    assert repro.__version__


def test_console_entry_points_importable():
    from repro.cli import main as trace_main
    from repro.experiments.runner import main as experiments_main

    assert callable(trace_main)
    assert callable(experiments_main)
