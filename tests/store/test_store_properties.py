"""Property-based hardening of the trace store's round-trip and
integrity contracts.

* pack -> open -> ``to_trace`` is the identity for arbitrary request
  lists and arbitrary chunk sizes;
* ``verify()`` catches *any* single flipped byte anywhere in any chunk
  file and names the damaged chunk.
"""

import shutil
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import StoreError, open_store, pack
from repro.trace import Op, Request, SECTOR, Trace

requests_strategy = st.lists(
    st.builds(
        Request,
        arrival_us=st.floats(min_value=0, max_value=1e9, allow_nan=False),
        lba=st.integers(min_value=0, max_value=2**20).map(lambda n: n * SECTOR),
        size=st.integers(min_value=1, max_value=64).map(lambda n: n * SECTOR),
        op=st.sampled_from([Op.READ, Op.WRITE]),
    ),
    min_size=1,
    max_size=60,
)


@given(requests=requests_strategy, chunk_rows=st.integers(min_value=1, max_value=80))
@settings(max_examples=40, deadline=None)
def test_pack_round_trip_is_identity(requests, chunk_rows):
    trace = Trace("prop", requests, metadata={"k": "v"})
    root = Path(tempfile.mkdtemp())
    try:
        pack(trace, root / "store", chunk_rows=chunk_rows)
        restored = open_store(root / "store").to_trace()
        assert restored.name == trace.name
        assert restored.metadata == trace.metadata
        assert list(restored) == list(trace)
    finally:
        shutil.rmtree(root)


class TestVerifyCatchesEveryFlippedByte:
    """Flip one byte at an arbitrary position; verify must notice."""

    #: One store shared by every example -- the property quantifies over
    #: damage positions, and each example restores the byte it flipped.
    root = None
    store_dir = None
    layout = None  # [(path, nbytes, file_name), ...] in chunk order
    total = 0

    @classmethod
    def setup_class(cls):
        cls.root = Path(tempfile.mkdtemp())
        cls.store_dir = cls.root / "store"
        requests = [
            Request(
                arrival_us=i * 10.0,
                lba=(i % 97) * SECTOR,
                size=SECTOR,
                op=Op.WRITE if i % 3 else Op.READ,
            )
            for i in range(900)
        ]
        pack(Trace("prop", requests), cls.store_dir, chunk_rows=250)
        store = open_store(cls.store_dir)
        cls.layout = [
            (cls.store_dir / info.file, info.nbytes, info.file)
            for info in store.chunk_infos
        ]
        cls.total = sum(nbytes for _, nbytes, _ in cls.layout)
        assert len(cls.layout) > 1  # the property should span chunk files

    @classmethod
    def teardown_class(cls):
        shutil.rmtree(cls.root)

    def _locate(self, position):
        for path, nbytes, file_name in self.layout:
            if position < nbytes:
                return path, position, file_name
            position -= nbytes
        raise AssertionError("position beyond store payload")

    @given(position=st.integers(min_value=0), flip=st.integers(min_value=1, max_value=255))
    @settings(max_examples=80, deadline=None)
    def test_single_flipped_byte_is_caught(self, position, flip):
        position %= self.total
        path, offset, file_name = self._locate(position)
        with open(path, "r+b") as handle:
            handle.seek(offset)
            original = handle.read(1)[0]
            handle.seek(offset)
            handle.write(bytes([original ^ flip]))
        try:
            store = open_store(self.store_dir)
            result = store.verify(strict=False)
            assert not result.ok
            assert [bad.file for bad in result.bad_chunks] == [file_name]
            assert result.bad_chunks[0].reason == "corrupt"
            with pytest.raises(StoreError, match="checksum mismatch"):
                store.verify()
        finally:
            with open(path, "r+b") as handle:
                handle.seek(offset)
                handle.write(bytes([original]))
        assert open_store(self.store_dir).verify().ok
