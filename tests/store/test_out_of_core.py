"""Out-of-core proof: store stats under a hard anonymous-memory cap.

A subprocess opens a packed store, then clamps ``RLIMIT_DATA`` (the
Linux limit on brk + *private anonymous* mappings -- file-backed memory
maps are exempt, which is exactly the loophole :mod:`repro.store`'s
``np.memmap`` chunks live in) to its current usage plus a margin far
smaller than the store.  Under that cap:

* allocating the whole store's worth of anonymous memory fails with
  ``MemoryError`` -- the cap genuinely forbids whole-trace
  materialization;
* the chunked streaming pass (``summarize_store`` with O(1) float
  state) still completes and produces bit-identical statistics to the
  batch kernels run on the in-memory trace in the parent.

``RLIMIT_RSS`` is not used because Linux has ignored it for decades;
``RLIMIT_DATA`` (honoured for anonymous mappings since Linux 4.7) is
the enforceable equivalent.
"""

import dataclasses
import json
import os
import resource
import subprocess
import sys

import pytest

from repro.analysis import (
    interarrival_distribution,
    response_distribution,
    size_distribution,
    size_stats,
    timing_stats,
)
from repro.store import ROW_NBYTES, pack
from repro.workloads import generate_trace

pytestmark = pytest.mark.skipif(
    not sys.platform.startswith("linux") or not hasattr(resource, "RLIMIT_DATA"),
    reason="RLIMIT_DATA enforcement on anonymous mappings is Linux-specific",
)

#: Rows in the scaled trace.  At 42 bytes/row this is a ~50 MiB store.
SCALED_ROWS = 1_200_000
#: Anonymous headroom granted beyond the subprocess's usage at clamp
#: time.  Far below the store's byte size, comfortably above the
#: streaming pass's transient chunk buffers (a few MiB each).
MARGIN_BYTES = 32 * 1024 * 1024

_SCRIPT = r"""
import json, resource, sys
import numpy as np
from repro.store import open_store
from repro.streaming import summarize_store

store = open_store(sys.argv[1])
total_nbytes = int(sys.argv[2])

with open("/proc/self/status") as status:
    vmdata_kb = next(
        int(line.split()[1]) for line in status if line.startswith("VmData:")
    )
cap = vmdata_kb * 1024 + int(sys.argv[3])
resource.setrlimit(resource.RLIMIT_DATA, (cap, cap))

try:  # the cap must forbid materializing the store anonymously...
    block = np.ones(total_nbytes, dtype=np.uint8)
    probe = "allocated"
except MemoryError:
    probe = "memoryerror"

summary = summarize_store(store)  # ...while the chunked pass sails through
import dataclasses
print(json.dumps({
    "probe": probe,
    "rows": summary.size.num_requests,
    "size": dataclasses.asdict(summary.size),
    "timing": dataclasses.asdict(summary.timing),
    "size_distribution": summary.size_distribution,
    "response_distribution": summary.response_distribution,
    "interarrival_distribution": summary.interarrival_distribution,
    "maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
}))
"""


@pytest.fixture(scope="module")
def capped_run(tmp_path_factory):
    """Pack the scaled trace, run the capped subprocess, return both sides."""
    trace = generate_trace("Email", seed=29, num_requests=SCALED_ROWS)
    path = tmp_path_factory.mktemp("ooc") / "email.store"
    pack(trace, path)
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            _SCRIPT,
            str(path),
            str(SCALED_ROWS * ROW_NBYTES),
            str(MARGIN_BYTES),
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    return trace, json.loads(proc.stdout)


class TestOutOfCore:
    def test_cap_forbids_whole_store_materialization(self, capped_run):
        _, result = capped_run
        assert result["probe"] == "memoryerror"

    def test_streaming_stats_survive_the_cap_bit_identical(self, capped_run):
        trace, result = capped_run
        assert result["rows"] == SCALED_ROWS
        # json round-trips Python floats exactly (repr <-> strtod), so
        # == here is still a bit-identity assertion.
        assert result["size"] == dataclasses.asdict(size_stats(trace))
        assert result["timing"] == dataclasses.asdict(timing_stats(trace))
        assert result["size_distribution"] == size_distribution(trace)
        assert result["response_distribution"] == response_distribution(trace)
        assert result["interarrival_distribution"] == interarrival_distribution(trace)

    def test_store_dwarfs_the_anonymous_margin(self, capped_run):
        # Guard against the scenario silently degenerating: the probe is
        # only meaningful while the store is much larger than the margin.
        assert SCALED_ROWS * ROW_NBYTES > 1.5 * MARGIN_BYTES
