"""Tests for the chunked columnar trace store."""
