"""Unit and integration tests for :mod:`repro.store`."""

import json

import numpy as np
import pytest

from repro.store import (
    CHUNK_COLUMNS,
    COLUMN_DTYPES,
    DEFAULT_CHUNK_ROWS,
    MANIFEST_NAME,
    ROW_NBYTES,
    StoreError,
    StoreWriter,
    chunk_filename,
    concat_columns,
    open_store,
    pack,
    read_manifest,
)
from repro.streaming import chunked
from repro.trace import Op, Request, Trace
from repro.workloads import generate_trace


def _trace(n=500, seed=9, name="Email"):
    return generate_trace(name, seed=seed, num_requests=n)


class TestFormat:
    def test_row_width_matches_schema(self):
        widths = {"<f8": 8, "<i8": 8, "|u1": 1}
        assert ROW_NBYTES == sum(widths[COLUMN_DTYPES[c]] for c in CHUNK_COLUMNS)

    def test_chunk_filenames_sort_lexicographically(self):
        names = [chunk_filename(i) for i in (0, 1, 9, 10, 99, 100)]
        assert names == sorted(names)


class TestPackAndOpen:
    def test_round_trip_requests_equal(self, tmp_path):
        trace = _trace(401)
        pack(trace, tmp_path / "s", chunk_rows=97)
        store = open_store(tmp_path / "s")
        assert len(store) == 401
        assert store.num_chunks == 5
        restored = store.to_trace()
        assert restored.name == trace.name
        assert restored.metadata == trace.metadata
        assert list(restored) == list(trace)

    def test_replayed_trace_round_trips_timestamps(self, tmp_path):
        from repro.workloads.collection import collect

        trace = collect("Email", seed=3, num_requests=200).trace
        pack(trace, tmp_path / "s", chunk_rows=64)
        restored = open_store(tmp_path / "s").to_trace()
        assert list(restored) == list(trace)
        assert restored.completed

    def test_empty_trace(self, tmp_path):
        pack(Trace("empty", []), tmp_path / "s")
        store = open_store(tmp_path / "s")
        assert len(store) == 0
        assert store.num_chunks == 0
        assert len(store.to_trace()) == 0

    def test_pack_is_deterministic(self, tmp_path):
        trace = _trace(300)
        pack(trace, tmp_path / "a", chunk_rows=77)
        pack(trace, tmp_path / "b", chunk_rows=77)
        manifest_a = (tmp_path / "a" / MANIFEST_NAME).read_bytes()
        manifest_b = (tmp_path / "b" / MANIFEST_NAME).read_bytes()
        assert manifest_a == manifest_b
        for info in read_manifest(tmp_path / "a").chunks:
            assert (tmp_path / "a" / info.file).read_bytes() == (
                tmp_path / "b" / info.file
            ).read_bytes()

    def test_refuses_overwrite_without_flag(self, tmp_path):
        pack(_trace(50), tmp_path / "s")
        with pytest.raises(StoreError, match="already holds"):
            pack(_trace(50), tmp_path / "s")
        pack(_trace(60), tmp_path / "s", overwrite=True)
        assert len(open_store(tmp_path / "s")) == 60

    def test_pack_from_column_batches(self, tmp_path):
        trace = _trace(250)
        batches = list(chunked(trace.columns(), 33))
        pack(batches, tmp_path / "s", chunk_rows=40, name=trace.name,
             metadata=trace.metadata)
        assert list(open_store(tmp_path / "s").to_trace()) == list(trace)


class TestWriter:
    def test_rechunks_arbitrary_batches(self, tmp_path):
        trace = _trace(321)
        writer = StoreWriter(tmp_path / "s", name="t", chunk_rows=100)
        columns = trace.columns()
        for start, stop in [(0, 1), (1, 150), (150, 155), (155, 321)]:
            writer.append_columns(columns.select(slice(start, stop)))
        manifest = writer.close()
        assert [c.rows for c in manifest.chunks] == [100, 100, 100, 21]
        assert list(open_store(tmp_path / "s").to_trace()) == list(trace)

    def test_append_after_close_rejected(self, tmp_path):
        writer = StoreWriter(tmp_path / "s", name="t")
        writer.close()
        with pytest.raises(StoreError):
            writer.append_requests([Request(0.0, 0, 4096, Op.READ)])

    def test_crash_leaves_no_manifest(self, tmp_path):
        with pytest.raises(RuntimeError):
            with StoreWriter(tmp_path / "s", name="t") as writer:
                writer.append_requests([Request(0.0, 0, 4096, Op.READ)])
                raise RuntimeError("boom")
        assert not (tmp_path / "s" / MANIFEST_NAME).exists()
        with pytest.raises(StoreError):
            open_store(tmp_path / "s")

    def test_context_manager_closes_cleanly(self, tmp_path):
        with StoreWriter(tmp_path / "s", name="t", chunk_rows=8) as writer:
            writer.append_requests(
                [Request(float(i), i * 4096, 4096, Op.WRITE) for i in range(20)]
            )
        store = open_store(tmp_path / "s")
        assert len(store) == 20
        assert writer.manifest is not None
        assert writer.manifest.total_rows == 20

    def test_unsorted_stream_flagged(self, tmp_path):
        writer = StoreWriter(tmp_path / "s", name="t")
        writer.append_requests(
            [Request(5.0, 0, 4096, Op.READ), Request(1.0, 4096, 4096, Op.READ)]
        )
        assert writer.close().arrival_sorted is False

    def test_sorted_across_batches_flagged_sorted(self, tmp_path):
        writer = StoreWriter(tmp_path / "s", name="t")
        writer.append_requests([Request(1.0, 0, 4096, Op.READ)])
        writer.append_requests([Request(1.0, 0, 4096, Op.READ)])  # ties allowed
        writer.append_requests([Request(2.0, 0, 4096, Op.READ)])
        assert writer.close().arrival_sorted is True


class TestReader:
    def test_iter_chunks_rechunking_preserves_stream(self, tmp_path):
        trace = _trace(500)
        pack(trace, tmp_path / "s", chunk_rows=123)
        store = open_store(tmp_path / "s")
        for rows in (1, 7, 123, 200, 499, 500, 10000):
            pieces = list(store.iter_chunks(chunk_rows=rows))
            assert sum(len(p) for p in pieces) == 500
            assert all(len(p) == rows for p in pieces[:-1])
            rebuilt = concat_columns(pieces)
            np.testing.assert_array_equal(rebuilt.arrival_us,
                                          trace.columns().arrival_us)
            np.testing.assert_array_equal(rebuilt.lba, trace.columns().lba)

    def test_columns_match_source(self, tmp_path):
        trace = _trace(260)
        pack(trace, tmp_path / "s", chunk_rows=64)
        columns = open_store(tmp_path / "s").columns()
        source = trace.columns()
        for name in CHUNK_COLUMNS:
            np.testing.assert_array_equal(getattr(columns, name),
                                          getattr(source, name))

    def test_range_selection_prunes_chunks(self, tmp_path):
        trace = _trace(600)
        pack(trace, tmp_path / "s", chunk_rows=100)
        store = open_store(tmp_path / "s")
        infos = store.chunk_infos
        # A range strictly inside the 4th chunk's arrival span.
        start = infos[3].min_arrival_us
        end = infos[3].max_arrival_us
        opened_before = store.chunks_opened
        selected = store.select_arrival_range(start, end)
        assert store.chunks_opened - opened_before == len(
            store.chunks_overlapping(start, end)
        )
        assert store.chunks_opened - opened_before < store.num_chunks
        arrivals = trace.columns().arrival_us
        expected = int(np.count_nonzero((arrivals >= start) & (arrivals < end)))
        assert len(selected) == expected

    def test_range_selection_matches_mask(self, tmp_path):
        trace = _trace(400)
        pack(trace, tmp_path / "s", chunk_rows=90)
        store = open_store(tmp_path / "s")
        arrivals = trace.columns().arrival_us
        mid = float(np.median(arrivals))
        end = float(arrivals.max())
        selected = store.select_arrival_range(mid, end)
        mask = (arrivals >= mid) & (arrivals < end)
        np.testing.assert_array_equal(selected.arrival_us, arrivals[mask])

    def test_where_predicate(self, tmp_path):
        trace = _trace(300)
        pack(trace, tmp_path / "s", chunk_rows=64)
        store = open_store(tmp_path / "s")
        writes = store.where(lambda chunk: chunk.write_mask)
        assert len(writes) == int(np.count_nonzero(trace.columns().write_mask))
        assert bool(writes.op.all())

    def test_verify_detects_corruption(self, tmp_path):
        pack(_trace(100), tmp_path / "s", chunk_rows=40)
        store = open_store(tmp_path / "s")
        store.verify()
        target = tmp_path / "s" / store.chunk_infos[1].file
        payload = bytearray(target.read_bytes())
        payload[10] ^= 0xFF
        target.write_bytes(bytes(payload))
        with pytest.raises(StoreError, match="checksum"):
            open_store(tmp_path / "s").verify()

    def test_verify_detects_truncation(self, tmp_path):
        pack(_trace(100), tmp_path / "s", chunk_rows=40)
        store = open_store(tmp_path / "s")
        target = tmp_path / "s" / store.chunk_infos[0].file
        target.write_bytes(target.read_bytes()[:-8])
        with pytest.raises(StoreError, match="bytes on disk"):
            open_store(tmp_path / "s").verify()


class TestManifestValidation:
    def test_rejects_tampered_schema(self, tmp_path):
        pack(_trace(50), tmp_path / "s")
        path = tmp_path / "s" / MANIFEST_NAME
        payload = json.loads(path.read_text())
        payload["columns"]["lba"] = "<i4"
        path.write_text(json.dumps(payload))
        with pytest.raises(StoreError, match="schema"):
            open_store(tmp_path / "s")

    def test_rejects_wrong_version(self, tmp_path):
        pack(_trace(50), tmp_path / "s")
        path = tmp_path / "s" / MANIFEST_NAME
        payload = json.loads(path.read_text())
        payload["version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(StoreError, match="version"):
            open_store(tmp_path / "s")

    def test_rejects_missing_chunk_file(self, tmp_path):
        pack(_trace(150), tmp_path / "s", chunk_rows=50)
        (tmp_path / "s" / chunk_filename(1)).unlink()
        with pytest.raises(StoreError, match="missing"):
            open_store(tmp_path / "s")

    def test_default_chunk_rows_sane(self):
        assert DEFAULT_CHUNK_ROWS > 0
        assert DEFAULT_CHUNK_ROWS * ROW_NBYTES < 64 * 1024 * 1024
