"""Kernel page cache with write-back and read caching.

Sits between the libraries (SQLite, direct file I/O) and the file system:

* non-synchronous writes are buffered and flushed by a periodic write-back
  timer (or when the dirty set grows too large), coalesced per file into
  contiguous ranges -- this is where small app writes become the larger
  mergeable requests the block layer sees;
* reads of cached pages are absorbed; misses go to the file system.
* synchronous writes (journal commits, fsync) bypass buffering: they are
  flushed immediately together with any dirty pages of the same file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.trace import MIB, SECTOR

from .fileops import FileOp, FileOpType


@dataclass
class PageCacheStats:
    """Hit/miss/flush counters of the page cache."""
    read_hits: int = 0
    read_misses: int = 0
    readahead_pages: int = 0
    writes_buffered: int = 0
    writes_sync: int = 0
    writeback_flushes: int = 0


class PageCache:
    """File-level page cache (4 KB granularity)."""

    def __init__(
        self,
        writeback_interval_us: float = 5_000_000.0,
        dirty_limit_pages: int = 4096,
        cache_limit_pages: int = 65536,
        readahead_pages: int = 0,
    ) -> None:
        if readahead_pages < 0:
            raise ValueError("readahead must be non-negative")
        self._writeback_interval_us = writeback_interval_us
        self._dirty_limit = dirty_limit_pages
        self._cache_limit = cache_limit_pages
        self._readahead_pages = readahead_pages
        self._last_read_end: Dict[str, int] = {}
        self._clean: Dict[str, Set[int]] = {}
        self._dirty: Dict[str, Set[int]] = {}
        self._dirty_count = 0
        self._next_writeback_us = writeback_interval_us
        self.stats = PageCacheStats()

    # -- main entry ------------------------------------------------------------

    def handle(self, op: FileOp) -> List[FileOp]:
        """Process one file op; returns the file ops that reach the FS."""
        out: List[FileOp] = []
        if op.at_us >= self._next_writeback_us:
            out.extend(self.writeback(op.at_us))
            while self._next_writeback_us <= op.at_us:
                self._next_writeback_us += self._writeback_interval_us
        if op.op_type is FileOpType.READ:
            out.extend(self._read(op))
        elif op.op_type is FileOpType.WRITE:
            out.extend(self._write(op))
        elif op.op_type is FileOpType.SYNC:
            out.extend(self._flush_file(op.path, op.at_us))
            out.append(op)
        if self._dirty_count > self._dirty_limit:
            out.extend(self.writeback(op.at_us))
        return out

    # -- reads ---------------------------------------------------------------------

    def _pages_of(self, op: FileOp) -> range:
        first = op.offset // SECTOR
        last = (op.offset + op.nbytes + SECTOR - 1) // SECTOR
        return range(first, last)

    def _read(self, op: FileOp) -> List[FileOp]:
        cached = self._clean.setdefault(op.path, set())
        dirty = self._dirty.get(op.path, set())
        wanted = self._pages_of(op)
        missing = [p for p in wanted if p not in cached and p not in dirty]
        self.stats.read_hits += len(wanted) - len(missing)
        self.stats.read_misses += len(missing)
        # Sequential detection: a read continuing the previous one widens
        # the fetch by the readahead window (Linux-style).
        fetch = list(missing)
        if (
            self._readahead_pages
            and missing
            and self._last_read_end.get(op.path) == wanted[0]
        ):
            ahead_start = wanted[-1] + 1
            fetch.extend(
                p
                for p in range(ahead_start, ahead_start + self._readahead_pages)
                if p not in cached and p not in dirty
            )
            self.stats.readahead_pages += len(fetch) - len(missing)
        self._last_read_end[op.path] = wanted[-1] + 1 if len(wanted) else 0
        cached.update(fetch)
        self._evict_clean_if_needed()
        return [
            FileOp(op.at_us, FileOpType.READ, op.path, offset=start * SECTOR,
                   nbytes=length * SECTOR)
            for start, length in _runs(fetch)
        ]

    def _evict_clean_if_needed(self) -> None:
        total = sum(len(pages) for pages in self._clean.values())
        if total <= self._cache_limit:
            return
        # Drop whole files' clean sets, largest first (coarse but cheap).
        for path in sorted(self._clean, key=lambda p: -len(self._clean[p])):
            total -= len(self._clean[path])
            self._clean[path] = set()
            if total <= self._cache_limit:
                break

    # -- writes ----------------------------------------------------------------------

    def _write(self, op: FileOp) -> List[FileOp]:
        if op.sync:
            self.stats.writes_sync += 1
            flushed = self._flush_file(op.path, op.at_us)
            return flushed + [op]
        pages = self._dirty.setdefault(op.path, set())
        before = len(pages)
        pages.update(self._pages_of(op))
        self._dirty_count += len(pages) - before
        self.stats.writes_buffered += 1
        return []

    def _flush_file(self, path: str, at_us: float) -> List[FileOp]:
        pages = sorted(self._dirty.pop(path, set()))
        if not pages:
            return []
        self._dirty_count -= len(pages)
        self._clean.setdefault(path, set()).update(pages)
        return [
            FileOp(at_us, FileOpType.WRITE, path, offset=start * SECTOR,
                   nbytes=length * SECTOR)
            for start, length in _runs(pages)
        ]

    def writeback(self, at_us: float) -> List[FileOp]:
        """Flush every dirty page (the periodic write-back daemon)."""
        out: List[FileOp] = []
        for path in list(self._dirty):
            out.extend(self._flush_file(path, at_us))
        if out:
            self.stats.writeback_flushes += 1
        return out


def _runs(pages: List[int]) -> List[Tuple[int, int]]:
    """Collapse sorted page indices into (start, length) runs."""
    runs: List[Tuple[int, int]] = []
    ordered = sorted(pages)
    for page in ordered:
        if runs and page == runs[-1][0] + runs[-1][1]:
            runs[-1] = (runs[-1][0], runs[-1][1] + 1)
        else:
            runs.append((page, 1))
    return runs
