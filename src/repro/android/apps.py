"""Application behaviour models (the 18 traced applications, Table I).

Each application is reduced to an *archetype* -- a stochastic script of
app-level I/O actions (database transactions/queries, media reads, cache
writes) whose mix mirrors what the paper observed for that application
class: messaging-style apps commit many tiny SQLite transactions, media
playback streams large reads, CameraVideo appends megabytes per second,
Installing writes a package and fsyncs, and so on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from repro.trace import KIB, MIB, US_PER_S

from .fileops import AppOp, AppOpType

Script = Callable[[float, np.random.Generator], List[AppOp]]


def _poisson_times(duration_us: float, mean_gap_us: float, rng: np.random.Generator) -> List[float]:
    times: List[float] = []
    now = rng.exponential(mean_gap_us)
    while now < duration_us:
        times.append(now)
        now += rng.exponential(mean_gap_us)
    return times


def messaging_script(duration_us: float, rng: np.random.Generator) -> List[AppOp]:
    """Bursty small transactions: receive/compose/read messages."""
    ops: List[AppOp] = []
    for at in _poisson_times(duration_us, 8 * US_PER_S, rng):
        # Each user action: a couple of queries plus 1-3 journaled commits.
        for _ in range(int(rng.integers(1, 3))):
            ops.append(AppOp(at, AppOpType.DB_QUERY, "msgstore.db",
                             nbytes=int(rng.integers(1, 5)) * KIB))
        for commit in range(int(rng.integers(1, 4))):
            ops.append(AppOp(at + commit * 2_000, AppOpType.DB_TRANSACTION,
                             "msgstore.db", nbytes=int(rng.integers(1, 3)) * KIB))
    return ops


def browsing_script(duration_us: float, rng: np.random.Generator) -> List[AppOp]:
    """Page loads: cache-file writes, history commits, cache reads."""
    ops: List[AppOp] = []
    for at in _poisson_times(duration_us, 15 * US_PER_S, rng):
        cache_file = f"cache/page{int(rng.integers(64))}"
        ops.append(AppOp(at, AppOpType.FILE_WRITE, cache_file,
                         nbytes=int(rng.integers(8, 200)) * KIB))
        ops.append(AppOp(at + 5_000, AppOpType.DB_TRANSACTION, "history.db",
                         nbytes=int(rng.integers(1, 4)) * KIB))
        if rng.random() < 0.5:
            ops.append(AppOp(at + 10_000, AppOpType.FILE_READ, cache_file,
                             nbytes=int(rng.integers(8, 120)) * KIB, offset=0))
        if rng.random() < 0.3:
            ops.append(AppOp(at + 12_000, AppOpType.DB_QUERY, "cookies.db",
                             nbytes=4 * KIB))
    return ops


def media_playback_script(duration_us: float, rng: np.random.Generator) -> List[AppOp]:
    """Streaming reads of a local media file plus rare position commits."""
    ops: List[AppOp] = []
    offset = 0
    now = rng.exponential(0.5 * US_PER_S)
    while now < duration_us:
        chunk = int(rng.integers(16, 129)) * 4 * KIB
        ops.append(AppOp(now, AppOpType.FILE_READ, "media/movie.mp4",
                         nbytes=chunk, offset=offset))
        offset += chunk
        now += rng.exponential(2 * US_PER_S)
    for at in _poisson_times(duration_us, 30 * US_PER_S, rng):
        ops.append(AppOp(at, AppOpType.DB_TRANSACTION, "player.db", nbytes=1 * KIB))
    return ops


def camera_script(duration_us: float, rng: np.random.Generator) -> List[AppOp]:
    """Continuous large appends with periodic fsyncs (video recording)."""
    ops: List[AppOp] = []
    now = 0.0
    while now < duration_us:
        ops.append(AppOp(now, AppOpType.FILE_WRITE, "dcim/video.mp4",
                         nbytes=int(rng.integers(256, 1025)) * 4 * KIB))
        if rng.random() < 0.1:
            ops.append(AppOp(now + 1_000, AppOpType.FSYNC, "dcim/video.mp4"))
        now += rng.exponential(0.8 * US_PER_S)
    ops.append(AppOp(max(0.0, duration_us - 1), AppOpType.DB_TRANSACTION,
                     "media.db", nbytes=2 * KIB))
    return ops


def installer_script(duration_us: float, rng: np.random.Generator) -> List[AppOp]:
    """Package download (large appends) plus many small state commits."""
    ops: List[AppOp] = []
    now = 0.0
    while now < duration_us * 0.8:
        ops.append(AppOp(now, AppOpType.FILE_WRITE, "download/app.apk",
                         nbytes=int(rng.integers(64, 513)) * 4 * KIB))
        if rng.random() < 0.4:
            ops.append(AppOp(now + 2_000, AppOpType.DB_TRANSACTION, "packages.db",
                             nbytes=int(rng.integers(1, 3)) * KIB))
        now += rng.exponential(0.4 * US_PER_S)
    ops.append(AppOp(duration_us * 0.85, AppOpType.FSYNC, "download/app.apk"))
    return ops


def game_script(duration_us: float, rng: np.random.Generator) -> List[AppOp]:
    """Frequent small state/log commits, occasional asset reads."""
    ops: List[AppOp] = []
    for at in _poisson_times(duration_us, 2 * US_PER_S, rng):
        ops.append(AppOp(at, AppOpType.DB_TRANSACTION, "savegame.db",
                         nbytes=int(rng.integers(1, 6)) * KIB))
        if rng.random() < 0.15:
            ops.append(AppOp(at + 3_000, AppOpType.FILE_READ, "assets/levels.bin",
                             nbytes=int(rng.integers(16, 128)) * 4 * KIB,
                             offset=int(rng.integers(0, 512)) * 64 * KIB))
    return ops


def idle_script(duration_us: float, rng: np.random.Generator) -> List[AppOp]:
    """Background services only: rare sync commits."""
    ops: List[AppOp] = []
    for at in _poisson_times(duration_us, 45 * US_PER_S, rng):
        ops.append(AppOp(at, AppOpType.DB_TRANSACTION, "accounts.db",
                         nbytes=int(rng.integers(1, 3)) * KIB))
        if rng.random() < 0.2:
            ops.append(AppOp(at + 4_000, AppOpType.DB_QUERY, "accounts.db",
                             nbytes=4 * KIB))
    return ops


#: Archetype for each of the paper's 18 applications.
ARCHETYPES: Dict[str, Script] = {
    "Idle": idle_script,
    "CallIn": idle_script,
    "CallOut": idle_script,
    "Booting": installer_script,  # heavy mixed I/O burst
    "Movie": media_playback_script,
    "Music": media_playback_script,
    "AngryBrid": game_script,
    "CameraVideo": camera_script,
    "GoogleMaps": browsing_script,
    "Messaging": messaging_script,
    "Twitter": messaging_script,
    "Email": messaging_script,
    "Facebook": browsing_script,
    "Amazon": browsing_script,
    "YouTube": browsing_script,
    "Radio": media_playback_script,
    "Installing": installer_script,
    "WebBrowsing": browsing_script,
}


@dataclass(frozen=True)
class AppModel:
    """A named application behaviour."""

    name: str
    script: Script

    def ops(self, duration_us: float, rng: np.random.Generator) -> List[AppOp]:
        """Generate the app's I/O actions over ``duration_us``, time-sorted."""
        return sorted(self.script(duration_us, rng), key=lambda op: op.at_us)


def app_model(name: str) -> AppModel:
    """Model for one of the 18 applications (see :data:`ARCHETYPES`)."""
    try:
        return AppModel(name=name, script=ARCHETYPES[name])
    except KeyError:
        raise KeyError(f"no archetype for {name!r}; known: {', '.join(ARCHETYPES)}")
