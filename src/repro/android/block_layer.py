"""Block layer: request queue with adjacent-request merging.

Linux's block layer merges bios that are contiguous on disk into single
requests, capped at 512 KB ("the largest allowed size for a request in
Linux kernel", Section III-B).  We merge within each batch of block I/O
that enters the queue at one instant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.trace import KIB

from .ext4 import BlockIO

#: Linux's maximum merged request size.
MAX_REQUEST_BYTES = 512 * KIB


@dataclass
class BlockLayerStats:
    """Counters of bios in and merged requests out."""
    bios_in: int = 0
    requests_out: int = 0

    @property
    def merge_ratio(self) -> float:
        """Average bios folded into one request."""
        if self.requests_out == 0:
            return 1.0
        return self.bios_in / self.requests_out


class BlockLayer:
    """Merges a batch of bios into dispatchable requests."""

    def __init__(self, max_request_bytes: int = MAX_REQUEST_BYTES) -> None:
        if max_request_bytes <= 0:
            raise ValueError("merge cap must be positive")
        self._max_bytes = max_request_bytes
        self.stats = BlockLayerStats()

    def submit(self, bios: List[BlockIO]) -> List[BlockIO]:
        """Merge contiguous same-op bios (sorted by lba) up to the cap."""
        self.stats.bios_in += len(bios)
        merged: List[BlockIO] = []
        for bio in sorted(bios, key=lambda b: (b.op.value, b.lba, b.at_us)):
            if merged:
                last = merged[-1]
                if (
                    last.op is bio.op
                    and last.lba + last.nbytes == bio.lba
                    and last.nbytes + bio.nbytes <= self._max_bytes
                ):
                    merged[-1] = BlockIO(
                        at_us=min(last.at_us, bio.at_us),
                        op=last.op,
                        lba=last.lba,
                        nbytes=last.nbytes + bio.nbytes,
                        sync=last.sync or bio.sync,
                    )
                    continue
            merged.append(bio)
        self.stats.requests_out += len(merged)
        return merged
