"""A behavioural model of an ext4-like file system.

Responsibilities modelled:

* extent-based block allocation -- sequential file data gets contiguous
  logical blocks, so streaming writes reach the block layer as large,
  mergeable requests;
* metadata (inode) updates -- small writes near the file's block group;
* a JBD2-style journal -- synchronous operations commit a transaction:
  descriptor block + journaled metadata blocks + commit block, written
  sequentially into a dedicated journal region.

The output is block-level I/O: (op, lba, nbytes) triples at a timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.trace import KIB, MIB, Op, SECTOR

from .fileops import FileOp, FileOpType

#: Size of one block group; files are allocated inside a group chosen by
#: name hash, spreading unrelated files across the device.
BLOCK_GROUP_BYTES = 128 * MIB


@dataclass(frozen=True)
class BlockIO:
    """One block-level request produced by the file system."""

    at_us: float
    op: Op
    lba: int
    nbytes: int
    sync: bool = False


@dataclass
class Ext4Stats:
    """Counters of data, metadata and journal activity."""
    data_bytes_written: int = 0
    data_bytes_read: int = 0
    metadata_writes: int = 0
    journal_commits: int = 0
    journal_bytes: int = 0


@dataclass
class _FileState:
    """Allocation state of one file: list of extents (file_block, lba, blocks)."""

    extents: List[Tuple[int, int, int]] = field(default_factory=list)
    size_blocks: int = 0


class Ext4Layer:
    """Lowers file ops to block I/O with journaling."""

    def __init__(self, device_bytes: int, journal_bytes: int = 32 * MIB) -> None:
        if device_bytes < 4 * BLOCK_GROUP_BYTES:
            raise ValueError("device too small for the ext4 model")
        self._device_bytes = device_bytes
        self._journal_start = device_bytes - journal_bytes
        self._journal_bytes = journal_bytes
        self._journal_head = 0
        self._files: Dict[str, _FileState] = {}
        self._group_cursor: Dict[int, int] = {}
        self.stats = Ext4Stats()

    # -- public queries ---------------------------------------------------------

    def file_size_bytes(self, path: str) -> int:
        """Allocated size of ``path`` in bytes (0 for a file never seen).

        The append path of the stack (``AppOp(..., offset=None)``) asks
        the file system where the file currently ends; sparse writes and
        reads materialize blocks, so this is the *allocated* size, which
        is what an append lands after.
        """
        state = self._files.get(path)
        return 0 if state is None else state.size_blocks * SECTOR

    # -- allocation -------------------------------------------------------------

    def _group_of(self, path: str) -> int:
        groups = (self._journal_start) // BLOCK_GROUP_BYTES
        return hash(path) % max(1, groups)

    def _allocate(self, path: str, file_block: int, blocks: int) -> List[Tuple[int, int]]:
        """Extend ``path`` so ``file_block .. +blocks`` are mapped.

        Returns (lba, blocks) runs for the requested range, allocating
        contiguously from the file's block group cursor.
        """
        state = self._files.setdefault(path, _FileState())
        group = self._group_of(path)
        runs: List[Tuple[int, int]] = []
        needed_end = file_block + blocks
        while state.size_blocks < needed_end:
            cursor = self._group_cursor.get(group, group * BLOCK_GROUP_BYTES)
            grow = needed_end - state.size_blocks
            lba = cursor
            if lba + grow * SECTOR > self._journal_start:
                # Wrap into the lowest group when the device-end is reached.
                group = 0
                cursor = self._group_cursor.get(group, 0)
                lba = cursor
            state.extents.append((state.size_blocks, lba, grow))
            state.size_blocks += grow
            self._group_cursor[group] = lba + grow * SECTOR
        # Walk extents to resolve the requested range.
        remaining = blocks
        block = file_block
        while remaining > 0:
            for start, lba, length in state.extents:
                if start <= block < start + length:
                    span = min(remaining, start + length - block)
                    runs.append((lba + (block - start) * SECTOR, span))
                    block += span
                    remaining -= span
                    break
            else:
                raise RuntimeError(f"unmapped block {block} in {path}")
        return runs

    # -- lowering ------------------------------------------------------------------

    def lower(self, op: FileOp) -> List[BlockIO]:
        """Translate one file op into block-level I/O."""
        if op.op_type is FileOpType.READ:
            return self._read(op)
        if op.op_type is FileOpType.WRITE:
            return self._write(op)
        if op.op_type is FileOpType.SYNC:
            return self._commit(op.at_us)
        raise ValueError(f"ext4 cannot lower {op.op_type}")

    def _span(self, op: FileOp) -> Tuple[int, int]:
        first_block = op.offset // SECTOR
        last_block = (op.offset + op.nbytes + SECTOR - 1) // SECTOR
        return first_block, last_block - first_block

    def _read(self, op: FileOp) -> List[BlockIO]:
        first_block, blocks = self._span(op)
        runs = self._allocate(op.path, first_block, blocks)
        self.stats.data_bytes_read += blocks * SECTOR
        return [
            BlockIO(op.at_us, Op.READ, lba, length * SECTOR) for lba, length in runs
        ]

    def _write(self, op: FileOp) -> List[BlockIO]:
        first_block, blocks = self._span(op)
        runs = self._allocate(op.path, first_block, blocks)
        self.stats.data_bytes_written += blocks * SECTOR
        ios = [
            BlockIO(op.at_us, Op.WRITE, lba, length * SECTOR, sync=op.sync)
            for lba, length in runs
        ]
        # Inode/bitmap update: one metadata block at the head of the group.
        self.stats.metadata_writes += 1
        meta_lba = self._group_of(op.path) * BLOCK_GROUP_BYTES
        ios.append(BlockIO(op.at_us, Op.WRITE, meta_lba, SECTOR, sync=False))
        if op.sync:
            ios.extend(self._commit(op.at_us))
        return ios

    def _commit(self, at_us: float) -> List[BlockIO]:
        """One JBD2 transaction: descriptor + 2 metadata blocks + commit."""
        self.stats.journal_commits += 1
        blocks = 4
        nbytes = blocks * SECTOR
        if self._journal_head + nbytes > self._journal_bytes:
            self._journal_head = 0
        lba = self._journal_start + self._journal_head
        self._journal_head += nbytes
        self.stats.journal_bytes += nbytes
        return [BlockIO(at_us, Op.WRITE, lba, nbytes, sync=True)]
