"""eMMC driver: request packing.

"The packing function merges multiple write requests into a large one if
possible" (Section II-B) -- eMMC 4.5 packed commands.  This is why the
traces contain requests far beyond the block layer's 512 KB cap (up to
16 MB, Table III): contiguous write requests queued together are packed
into a single command, and BIOtracer records the packed request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.trace import MIB, Op

from .ext4 import BlockIO

#: Upper bound on one packed command (the largest write in the paper's traces).
MAX_PACKED_BYTES = 16 * MIB


@dataclass
class DriverStats:
    """Counters of requests in and packed commands out."""
    requests_in: int = 0
    commands_out: int = 0
    packed_commands: int = 0

    @property
    def packing_ratio(self) -> float:
        """Average requests folded into one packed command."""
        if self.commands_out == 0:
            return 1.0
        return self.requests_in / self.commands_out


class EmmcDriver:
    """Packs contiguous queued writes into single commands."""

    def __init__(self, max_packed_bytes: int = MAX_PACKED_BYTES) -> None:
        if max_packed_bytes <= 0:
            raise ValueError("packing cap must be positive")
        self._max_bytes = max_packed_bytes
        self.stats = DriverStats()

    def pack(self, requests: List[BlockIO]) -> List[BlockIO]:
        """Pack contiguous write requests of one queue batch."""
        self.stats.requests_in += len(requests)
        packed: List[BlockIO] = []
        for request in requests:
            if packed:
                last = packed[-1]
                if (
                    last.op is Op.WRITE
                    and request.op is Op.WRITE
                    and last.lba + last.nbytes == request.lba
                    and last.nbytes + request.nbytes <= self._max_bytes
                ):
                    packed[-1] = BlockIO(
                        at_us=min(last.at_us, request.at_us),
                        op=Op.WRITE,
                        lba=last.lba,
                        nbytes=last.nbytes + request.nbytes,
                        sync=last.sync or request.sync,
                    )
                    self.stats.packed_commands += 1
                    continue
            packed.append(request)
        self.stats.commands_out += len(packed)
        return packed
