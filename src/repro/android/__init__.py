"""Simulated Android I/O stack (Fig. 1) with BIOtracer instrumentation."""

from .apps import ARCHETYPES, AppModel, app_model
from .biotracer import BIOTracer, BUFFER_BYTES, FLUSH_EXTRA_IOS, RECORDS_PER_BUFFER, TracerStats
from .block_layer import BlockLayer, BlockLayerStats, MAX_REQUEST_BYTES
from .emmc_driver import DriverStats, EmmcDriver, MAX_PACKED_BYTES
from .ext4 import BLOCK_GROUP_BYTES, BlockIO, Ext4Layer, Ext4Stats
from .fileops import AppOp, AppOpType, FileOp, FileOpType
from .page_cache import PageCache, PageCacheStats
from .sqlite import DB_PAGE, SQLiteLayer, SQLiteStats
from .stack import AndroidStack, StackResult, collect_trace

__all__ = [
    "ARCHETYPES",
    "AppModel",
    "app_model",
    "BIOTracer",
    "BUFFER_BYTES",
    "FLUSH_EXTRA_IOS",
    "RECORDS_PER_BUFFER",
    "TracerStats",
    "BlockLayer",
    "BlockLayerStats",
    "MAX_REQUEST_BYTES",
    "DriverStats",
    "EmmcDriver",
    "MAX_PACKED_BYTES",
    "BLOCK_GROUP_BYTES",
    "BlockIO",
    "Ext4Layer",
    "Ext4Stats",
    "AppOp",
    "AppOpType",
    "FileOp",
    "FileOpType",
    "PageCache",
    "PageCacheStats",
    "DB_PAGE",
    "SQLiteLayer",
    "SQLiteStats",
    "AndroidStack",
    "StackResult",
    "collect_trace",
]
