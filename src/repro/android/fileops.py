"""File-level operations flowing between the Android stack's layers.

Applications emit :class:`AppOp`s (database transactions, media reads,
file appends); the SQLite layer lowers database ops to file ops; the file
system lowers file ops to block I/O.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AppOpType(enum.Enum):
    """What an application asks its libraries to do."""

    DB_QUERY = "db-query"          # SELECT: page reads through SQLite
    DB_TRANSACTION = "db-txn"      # INSERT/UPDATE: journaled page writes
    FILE_READ = "file-read"        # media/content read
    FILE_WRITE = "file-write"      # cache/download/append
    FSYNC = "fsync"                # explicit durability point


@dataclass(frozen=True)
class AppOp:
    """One application-level I/O action.

    Attributes:
        at_us: when the application issues the op.
        op_type: action kind.
        path: file identifier (database file, media file, cache file).
        nbytes: payload size (ignored for FSYNC).
        offset: file offset for reads/overwrites; ``None`` appends.
        origin: which application issued the op (concurrent runs tag ops
            so equal-time ties break by app name, not submission order).
    """

    at_us: float
    op_type: AppOpType
    path: str
    nbytes: int = 0
    offset: int = None  # type: ignore[assignment]
    origin: str = ""

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise ValueError("op time must be non-negative")
        if self.op_type is not AppOpType.FSYNC and self.nbytes <= 0:
            raise ValueError(f"{self.op_type} needs a positive size")


class FileOpType(enum.Enum):
    """What a library asks the file system to do."""

    READ = "read"
    WRITE = "write"
    SYNC = "sync"


@dataclass(frozen=True)
class FileOp:
    """One VFS-level operation against a named file."""

    at_us: float
    op_type: FileOpType
    path: str
    offset: int = 0
    nbytes: int = 0
    sync: bool = False  # write-through (O_SYNC / journal commit)
