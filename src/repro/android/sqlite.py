"""A behavioural model of SQLite's I/O (rollback-journal mode).

The paper (and its closest related work, Lee & Won [10]) attributes the
write-heavy, 4 KB-dominant block patterns of Android applications to
SQLite: every transaction in rollback-journal mode

1. writes the old content of each dirtied B-tree page to the journal,
2. syncs the journal,
3. writes the new page content to the database file,
4. syncs the database, and
5. truncates/deletes the journal (a small metadata write).

One application-level transaction therefore multiplies into several small
synchronous writes -- the "smart layers, dumb result" effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.trace import SECTOR

from .fileops import AppOp, AppOpType, FileOp, FileOpType

#: SQLite's default page size on Android (4 KB, matching the flash page).
DB_PAGE = SECTOR


@dataclass
class SQLiteStats:
    """Counters of transactions, queries and bytes written."""
    transactions: int = 0
    queries: int = 0
    journal_bytes: int = 0
    db_bytes: int = 0
    syncs: int = 0

    @property
    def write_amplification(self) -> float:
        """Bytes written per byte of user payload committed."""
        if self.db_bytes == 0:
            return 1.0
        return (self.journal_bytes + self.db_bytes) / self.db_bytes


class SQLiteLayer:
    """Lowers database ops to journaled file ops."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._db_pages: Dict[str, int] = {}  # pages currently in each DB file
        self.stats = SQLiteStats()

    def _pages_for(self, nbytes: int) -> int:
        return max(1, (nbytes + DB_PAGE - 1) // DB_PAGE)

    def lower(self, op: AppOp) -> List[FileOp]:
        """Translate one app-level database op into file ops."""
        if op.op_type is AppOpType.DB_QUERY:
            return self._query(op)
        if op.op_type is AppOpType.DB_TRANSACTION:
            return self._transaction(op)
        raise ValueError(f"SQLite cannot lower {op.op_type}")

    def _query(self, op: AppOp) -> List[FileOp]:
        """A SELECT reads interior + leaf pages of the B-tree."""
        self.stats.queries += 1
        pages = self._pages_for(op.nbytes)
        db_size = max(self._db_pages.get(op.path, 16), pages + 1)
        ops: List[FileOp] = []
        for _ in range(pages):
            page_index = int(self._rng.integers(db_size))
            ops.append(
                FileOp(
                    at_us=op.at_us,
                    op_type=FileOpType.READ,
                    path=op.path,
                    offset=page_index * DB_PAGE,
                    nbytes=DB_PAGE,
                )
            )
        return ops

    def _transaction(self, op: AppOp) -> List[FileOp]:
        """An INSERT/UPDATE with rollback journaling."""
        self.stats.transactions += 1
        pages = self._pages_for(op.nbytes)
        db_size = self._db_pages.get(op.path, 16)
        journal_path = op.path + "-journal"
        ops: List[FileOp] = []
        # 1-2: journal the old page images (header + pages), synchronously.
        journal_bytes = (pages + 1) * DB_PAGE
        ops.append(
            FileOp(
                at_us=op.at_us,
                op_type=FileOpType.WRITE,
                path=journal_path,
                offset=0,
                nbytes=journal_bytes,
                sync=True,
            )
        )
        self.stats.journal_bytes += journal_bytes
        self.stats.syncs += 1
        # 3-4: write the new page contents, synchronously.  Updates hit
        # existing pages; growth appends new ones.
        for page in range(pages):
            grows = self._rng.random() < 0.3 or db_size == 0
            page_index = db_size + page if grows else int(self._rng.integers(db_size))
            ops.append(
                FileOp(
                    at_us=op.at_us,
                    op_type=FileOpType.WRITE,
                    path=op.path,
                    offset=page_index * DB_PAGE,
                    nbytes=DB_PAGE,
                    sync=True,
                )
            )
        self.stats.db_bytes += pages * DB_PAGE
        self.stats.syncs += 1
        self._db_pages[op.path] = db_size + pages  # upper bound on growth
        # 5: drop the journal -- a tiny synchronous metadata write.
        ops.append(
            FileOp(
                at_us=op.at_us,
                op_type=FileOpType.WRITE,
                path=journal_path,
                offset=0,
                nbytes=DB_PAGE,
                sync=True,
            )
        )
        return ops
