"""The assembled Android I/O stack (Fig. 1 of the paper).

Applications -> SQLite -> VFS page cache -> ext4 -> block layer -> eMMC
driver (packing) -> eMMC device, with BIOtracer instrumenting the bottom
of the stack.  Running an application model through the stack *collects* a
block-level trace mechanistically -- the companion to the calibrated
statistical generator in :mod:`repro.workloads` (see DESIGN.md).

The stack shares the device's event kernel: application ops are ``APP_OP``
events, the block requests they lower to are ``ARRIVAL`` events, and the
monitor's log flushes are scheduled from the triggering request's
``COMPLETE`` event.  Requests therefore keep their *natural* arrival
times -- the old implementation serialized every submission through a
``_last_submit_us`` clamp, which silently pushed whole bursts later
whenever a tracer flush intervened; now a request that must wait simply
waits in the admission queue, visible as ``wait_us``.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.trace import MIB, Request, Trace, US_PER_S
from repro.emmc.device import EmmcDevice
from repro.emmc.stats import DeviceStats
from repro.sim import EventKind

from .apps import AppModel, app_model
from .biotracer import BIOTracer, TracerStats
from .block_layer import BlockLayer, BlockLayerStats
from .emmc_driver import DriverStats, EmmcDriver
from .ext4 import BlockIO, Ext4Layer, Ext4Stats
from .fileops import AppOp, AppOpType, FileOp, FileOpType
from .page_cache import PageCache, PageCacheStats
from .sqlite import SQLiteLayer, SQLiteStats


@dataclass
class StackResult:
    """Everything a stack run produces."""

    trace: Trace
    tracer_stats: TracerStats
    sqlite_stats: SQLiteStats
    ext4_stats: Ext4Stats
    cache_stats: PageCacheStats
    block_stats: BlockLayerStats
    driver_stats: DriverStats
    device_stats: DeviceStats

    @property
    def software_write_amplification(self) -> float:
        """Device-level bytes written per app-payload byte (the [10] effect)."""
        payload = self.sqlite_stats.db_bytes + self.ext4_stats.data_bytes_written
        if payload == 0:
            return 1.0
        return max(1.0, self.device_stats.data_bytes_written / max(1, payload))


class AndroidStack:
    """Wires the layers of Fig. 1 on top of a simulated eMMC device."""

    def __init__(self, device: EmmcDevice, name: str = "stack", seed: int = 0) -> None:
        self._name = name
        self._seed = seed
        # The base stream keeps the historical (name, seed) derivation so
        # single-app runs reproduce the traces they always produced.
        digest = hashlib.sha256(f"{name}:{seed}".encode()).digest()
        self._rng = np.random.default_rng(int.from_bytes(digest[:8], "big"))
        self.device = device
        #: The stack runs on the device's event kernel: app ops, block
        #: request arrivals and monitor flushes all share one clock.
        self.kernel = device.kernel
        self.sqlite = SQLiteLayer(self._rng)
        self.cache = PageCache()
        self.ext4 = Ext4Layer(device_bytes=device.capacity_bytes)
        self.block_layer = BlockLayer()
        self.driver = EmmcDriver()
        # Keep the monitor's log away from the block groups apps land in.
        self.tracer = BIOTracer(name=name, log_lba=device.capacity_bytes // 2)

    def _stream(self, label: str) -> np.random.Generator:
        """A named, independent random stream derived from (name, seed).

        Streams depend only on their label -- never on how many draws some
        other stream has consumed -- which is what makes concurrent-app
        runs independent of the order the apps are listed in.
        """
        digest = hashlib.sha256(f"{self._name}:{self._seed}:{label}".encode()).digest()
        return np.random.default_rng(int.from_bytes(digest[:8], "big"))

    # -- public API ---------------------------------------------------------------

    def run_app(self, app: "AppModel | str", duration_s: float) -> StackResult:
        """Run an application model for ``duration_s`` and collect its trace."""
        if isinstance(app, str):
            app = app_model(app)
        ops = app.ops(duration_s * US_PER_S, self._rng)
        return self.run_ops(ops)

    def run_concurrent(self, apps, duration_s: float) -> StackResult:
        """Run several application models concurrently (Section III-D).

        The apps share every layer -- page cache, file system, block queue,
        device -- which is exactly the "limited shared resources" situation
        the paper gives for combo traces showing higher rates than the sum
        of their parts.

        Each app draws from its own named random stream and its ops are
        tagged with an ``origin``, so both the generated ops and their
        interleaving are invariant under permutations of ``apps``.
        """
        ops: List[AppOp] = []
        for app in apps:
            if isinstance(app, str):
                app = app_model(app)
            app_ops = app.ops(duration_s * US_PER_S, self._stream(f"app:{app.name}"))
            ops.extend(
                dataclasses.replace(op, origin=app.name) for op in app_ops
            )
        return self.run_ops(ops)

    def run_ops(self, ops: List[AppOp]) -> StackResult:
        """Schedule app-level ops on the kernel and drain it.

        Ops fire as ``APP_OP`` events in ``(time, origin)`` order,
        interleaved with device completions and monitor flushes at their
        natural instants.
        """
        for op in sorted(ops, key=lambda o: (o.at_us, o.origin)):
            self.kernel.schedule(
                max(op.at_us, self.kernel.now_us),
                self._fire_app_op,
                kind=EventKind.APP_OP,
                payload=op,
            )
        self.kernel.drain()
        return self._result()

    def handle_op(self, op: AppOp) -> None:
        """Push one app-level op through the stack, synchronously.

        Lowers the op, schedules the resulting block requests, and drains
        the kernel so the op's full effect (including completions and any
        monitor flush) is visible on return.
        """
        self._lower_op(op)
        self.kernel.drain()

    # -- internals ---------------------------------------------------------------------

    def _fire_app_op(self, event) -> None:
        self._lower_op(event.payload)

    def _lower_op(self, op: AppOp) -> None:
        """Push one app op through every layer; schedule its block I/O."""
        file_ops = self._to_file_ops(op)
        cache_out: List[FileOp] = []
        for file_op in file_ops:
            cache_out.extend(self.cache.handle(file_op))
        bios: List[BlockIO] = []
        for file_op in cache_out:
            bios.extend(self.ext4.lower(file_op))
        if not bios:
            return
        requests = self.driver.pack(self.block_layer.submit(bios))
        self._dispatch(requests)

    def _to_file_ops(self, op: AppOp) -> List[FileOp]:
        if op.op_type in (AppOpType.DB_QUERY, AppOpType.DB_TRANSACTION):
            return self.sqlite.lower(op)
        if op.op_type is AppOpType.FILE_READ:
            return [FileOp(op.at_us, FileOpType.READ, op.path,
                           offset=op.offset or 0, nbytes=op.nbytes)]
        if op.op_type is AppOpType.FILE_WRITE:
            offset = op.offset if op.offset is not None else self._append_offset(op.path)
            return [FileOp(op.at_us, FileOpType.WRITE, op.path,
                           offset=offset, nbytes=op.nbytes)]
        if op.op_type is AppOpType.FSYNC:
            return [FileOp(op.at_us, FileOpType.SYNC, op.path)]
        raise ValueError(f"unhandled op type {op.op_type}")

    def _append_offset(self, path: str) -> int:
        return self.ext4.file_size_bytes(path)

    def _dispatch(self, requests: List[BlockIO]) -> None:
        """Schedule packed requests as arrivals on the device's kernel.

        Arrivals keep their natural times (clamped to "now" -- a request
        cannot arrive in the simulation's past); the admission queue, not
        the producer, decides when each is dispatched.
        """
        for bio in requests:
            self.device.arrive(
                Request(
                    arrival_us=max(bio.at_us, self.kernel.now_us),
                    lba=bio.lba,
                    size=bio.nbytes,
                    op=bio.op,
                ),
                on_complete=self._on_device_complete,
            )

    def _on_device_complete(self, completed: Request) -> None:
        """A traced request finished: record it; flush the log if full."""
        flush_ios = self.tracer.record(completed)
        if flush_ios:
            for extra in flush_ios:
                # The monitor's own log writes: replayed on the device but
                # never recorded (they are not part of the collected trace).
                self.device.arrive(
                    Request(
                        arrival_us=max(extra.arrival_us, self.kernel.now_us),
                        lba=extra.lba,
                        size=extra.size,
                        op=extra.op,
                    )
                )

    def _result(self) -> StackResult:
        return StackResult(
            trace=self.tracer.trace(),
            tracer_stats=self.tracer.stats,
            sqlite_stats=self.sqlite.stats,
            ext4_stats=self.ext4.stats,
            cache_stats=self.cache.stats,
            block_stats=self.block_layer.stats,
            driver_stats=self.driver.stats,
            device_stats=self.device.stats,
        )


def collect_trace(
    app_name: str,
    duration_s: float,
    device: Optional[EmmcDevice] = None,
    seed: int = 0,
) -> StackResult:
    """Convenience: run one app on a fresh 4PS device and collect its trace."""
    if device is None:
        from repro.emmc.configs import four_ps

        device = EmmcDevice(four_ps())
    stack = AndroidStack(device, name=app_name, seed=seed)
    return stack.run_app(app_name, duration_s)
