"""The assembled Android I/O stack (Fig. 1 of the paper).

Applications -> SQLite -> VFS page cache -> ext4 -> block layer -> eMMC
driver (packing) -> eMMC device, with BIOtracer instrumenting the bottom
of the stack.  Running an application model through the stack *collects* a
block-level trace mechanistically -- the companion to the calibrated
statistical generator in :mod:`repro.workloads` (see DESIGN.md).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.trace import MIB, Request, Trace, US_PER_S
from repro.emmc.device import EmmcDevice

from .apps import AppModel, app_model
from .biotracer import BIOTracer, TracerStats
from .block_layer import BlockLayer
from .emmc_driver import EmmcDriver
from .ext4 import BlockIO, Ext4Layer
from .fileops import AppOp, AppOpType, FileOp, FileOpType
from .page_cache import PageCache
from .sqlite import SQLiteLayer


@dataclass
class StackResult:
    """Everything a stack run produces."""

    trace: Trace
    tracer_stats: TracerStats
    sqlite_stats: object
    ext4_stats: object
    cache_stats: object
    block_stats: object
    driver_stats: object
    device_stats: object

    @property
    def software_write_amplification(self) -> float:
        """Device-level bytes written per app-payload byte (the [10] effect)."""
        payload = self.sqlite_stats.db_bytes + self.ext4_stats.data_bytes_written
        if payload == 0:
            return 1.0
        return max(1.0, self.device_stats.data_bytes_written / max(1, payload))


class AndroidStack:
    """Wires the layers of Fig. 1 on top of a simulated eMMC device."""

    def __init__(self, device: EmmcDevice, name: str = "stack", seed: int = 0) -> None:
        digest = hashlib.sha256(f"{name}:{seed}".encode()).digest()
        self._rng = np.random.default_rng(int.from_bytes(digest[:8], "big"))
        self.device = device
        self.sqlite = SQLiteLayer(self._rng)
        self.cache = PageCache()
        self.ext4 = Ext4Layer(device_bytes=device.capacity_bytes)
        self.block_layer = BlockLayer()
        self.driver = EmmcDriver()
        # Keep the monitor's log away from the block groups apps land in.
        self.tracer = BIOTracer(name=name, log_lba=device.capacity_bytes // 2)
        self._last_submit_us = 0.0

    # -- public API ---------------------------------------------------------------

    def run_app(self, app: "AppModel | str", duration_s: float) -> StackResult:
        """Run an application model for ``duration_s`` and collect its trace."""
        if isinstance(app, str):
            app = app_model(app)
        ops = app.ops(duration_s * US_PER_S, self._rng)
        return self.run_ops(ops)

    def run_concurrent(self, apps, duration_s: float) -> StackResult:
        """Run several application models concurrently (Section III-D).

        The apps share every layer -- page cache, file system, block queue,
        device -- which is exactly the "limited shared resources" situation
        the paper gives for combo traces showing higher rates than the sum
        of their parts.
        """
        ops = []
        for app in apps:
            if isinstance(app, str):
                app = app_model(app)
            ops.extend(app.ops(duration_s * US_PER_S, self._rng))
        return self.run_ops(ops)

    def run_ops(self, ops: List[AppOp]) -> StackResult:
        """Push app-level ops through every layer down to the device."""
        for op in sorted(ops, key=lambda o: o.at_us):
            self.handle_op(op)
        return self._result()

    def handle_op(self, op: AppOp) -> None:
        """Push one app-level op through every layer to the device."""
        file_ops = self._to_file_ops(op)
        cache_out: List[FileOp] = []
        for file_op in file_ops:
            cache_out.extend(self.cache.handle(file_op))
        bios: List[BlockIO] = []
        for file_op in cache_out:
            bios.extend(self.ext4.lower(file_op))
        if not bios:
            return
        requests = self.driver.pack(self.block_layer.submit(bios))
        self._dispatch(requests)

    # -- internals ---------------------------------------------------------------------

    def _to_file_ops(self, op: AppOp) -> List[FileOp]:
        if op.op_type in (AppOpType.DB_QUERY, AppOpType.DB_TRANSACTION):
            return self.sqlite.lower(op)
        if op.op_type is AppOpType.FILE_READ:
            return [FileOp(op.at_us, FileOpType.READ, op.path,
                           offset=op.offset or 0, nbytes=op.nbytes)]
        if op.op_type is AppOpType.FILE_WRITE:
            offset = op.offset if op.offset is not None else self._append_offset(op.path)
            return [FileOp(op.at_us, FileOpType.WRITE, op.path,
                           offset=offset, nbytes=op.nbytes)]
        if op.op_type is AppOpType.FSYNC:
            return [FileOp(op.at_us, FileOpType.SYNC, op.path)]
        raise ValueError(f"unhandled op type {op.op_type}")

    def _append_offset(self, path: str) -> int:
        state = self.ext4._files.get(path)
        return 0 if state is None else state.size_blocks * 4096

    def _dispatch(self, requests: List[BlockIO]) -> None:
        """Send packed requests to the device; record them via BIOtracer."""
        for bio in requests:
            arrival = max(bio.at_us, self._last_submit_us)
            self._last_submit_us = arrival
            completed = self.device.submit(
                Request(arrival_us=arrival, lba=bio.lba, size=bio.nbytes, op=bio.op)
            )
            flush_ios = self.tracer.record(completed)
            if flush_ios:
                for extra in flush_ios:
                    arrival = max(extra.arrival_us, self._last_submit_us)
                    self._last_submit_us = arrival
                    self.device.submit(
                        Request(arrival_us=arrival, lba=extra.lba,
                                size=extra.size, op=extra.op)
                    )

    def _result(self) -> StackResult:
        return StackResult(
            trace=self.tracer.trace(),
            tracer_stats=self.tracer.stats,
            sqlite_stats=self.sqlite.stats,
            ext4_stats=self.ext4.stats,
            cache_stats=self.cache.stats,
            block_stats=self.block_layer.stats,
            driver_stats=self.driver.stats,
            device_stats=self.device.stats,
        )


def collect_trace(
    app_name: str,
    duration_s: float,
    device: Optional[EmmcDevice] = None,
    seed: int = 0,
) -> StackResult:
    """Convenience: run one app on a fresh 4PS device and collect its trace."""
    if device is None:
        from repro.emmc.configs import four_ps

        device = EmmcDevice(four_ps())
    stack = AndroidStack(device, name=app_name, seed=seed)
    return stack.run_app(app_name, duration_s)
