"""BIOtracer: the block-level I/O monitor (Section II-B/C).

Records, for every request reaching the eMMC driver, the three timestamps
of Fig. 2 (block-layer arrival, device service start, completion) into a
32 KB in-memory record buffer holding ~300 records.  When the buffer fills,
it is flushed to a log file on the eMMC device itself -- which costs about
6 extra I/O operations (synchronously opening, appending and closing the
log), the ~2 % monitoring overhead analyzed in Section II-C.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.trace import KIB, Op, Request, SECTOR, Trace

#: Buffer geometry from the paper: 32 KB holding about 300 records.
BUFFER_BYTES = 32 * KIB
RECORDS_PER_BUFFER = 300
#: Extra I/Os per flush ("always generates 5-7 extra I/O operations").
FLUSH_EXTRA_IOS = 6


@dataclass
class TracerStats:
    """Counters of the monitor's own activity."""
    records: int = 0
    flushes: int = 0
    overhead_ios: int = 0

    @property
    def overhead_ratio(self) -> float:
        """Extra I/Os per traced request (~2 % in the paper)."""
        if self.records == 0:
            return 0.0
        return self.overhead_ios / self.records


@dataclass
class BIOTracer:
    """Collects completed requests and models its own flush overhead.

    Attributes:
        name: name of the trace being collected.
        log_lba: where the log file lives on the device; flush I/Os are
            issued there (appending 4 KB records plus small metadata).
    """

    name: str
    log_lba: int = 0
    _records: List[Request] = field(default_factory=list)
    _pending: int = 0
    _log_offset: int = 0
    stats: TracerStats = field(default_factory=TracerStats)

    def record(self, request: Request) -> Optional[List[Request]]:
        """Store one completed request; returns flush I/Os when buffer fills.

        The returned requests (if any) must be replayed on the device by
        the caller -- they are the monitor's own log writes and are *not*
        part of the collected trace.
        """
        if not request.completed:
            raise ValueError("BIOtracer records completed requests only")
        self._records.append(request)
        self.stats.records += 1
        self._pending += 1
        if self._pending < RECORDS_PER_BUFFER:
            return None
        self._pending = 0
        return self._flush(request.finish_us)

    def _flush(self, at_us: float) -> List[Request]:
        """Write the full buffer to the log file: ~6 small sync I/Os."""
        self.stats.flushes += 1
        ios: List[Request] = []
        # Open/metadata read, buffer append (32 KB as 4 x 8 KB), metadata
        # update -- six operations, matching the paper's observation.
        ios.append(Request(at_us, self.log_lba, SECTOR, Op.READ))
        for chunk in range(4):
            lba = self.log_lba + SECTOR + (self._log_offset % (8 * 1024 * KIB))
            ios.append(Request(at_us, lba, 8 * KIB, Op.WRITE))
            self._log_offset += 8 * KIB
        ios.append(Request(at_us, self.log_lba, SECTOR, Op.WRITE))
        self.stats.overhead_ios += len(ios)
        return ios

    def trace(self) -> Trace:
        """The collected trace (monitor's own log I/Os excluded)."""
        return Trace(
            name=self.name,
            requests=list(self._records),
            metadata={
                "collector": "BIOtracer",
                "flushes": str(self.stats.flushes),
                "overhead_ios": str(self.stats.overhead_ios),
            },
        )
