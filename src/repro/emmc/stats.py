"""Per-replay device statistics.

Collects everything the paper's evaluation reports: per-request service and
response times (Fig. 8, Table IV), the no-wait ratio (Characteristic 3),
space utilization (Fig. 9), GC and wear activity, and power-mode switching
(Characteristic 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.trace import US_PER_MS

from .geometry import PageKind


@dataclass
class DeviceStats:
    """Mutable counters filled in during a trace replay."""

    # Per-request samples, microseconds.
    response_us: List[float] = field(default_factory=list)
    service_us: List[float] = field(default_factory=list)
    wait_us: List[float] = field(default_factory=list)

    # Host-visible accounting.
    requests: int = 0
    no_wait_requests: int = 0
    data_bytes_written: int = 0
    flash_bytes_consumed: int = 0
    data_bytes_read: int = 0

    # Flash-level activity.
    page_reads: Dict[PageKind, int] = field(default_factory=dict)
    page_programs: Dict[PageKind, int] = field(default_factory=dict)
    erases: int = 0
    gc_collections: int = 0
    gc_migrated_slots: int = 0
    idle_gc_collections: int = 0
    preloaded_pages: int = 0

    # Power and busy-time accounting (for the energy model).
    wakeups: int = 0
    busy_read_us: float = 0.0
    busy_program_us: float = 0.0
    busy_erase_us: float = 0.0
    busy_transfer_us: float = 0.0
    active_idle_us: float = 0.0
    low_power_us: float = 0.0

    # Cache (only populated when a RAM buffer is attached).
    cache_read_hits: int = 0
    cache_read_misses: int = 0

    # Fault injection (all zero unless a FaultPlan is active).
    read_retries: int = 0
    corrected_reads: int = 0
    uncorrectable_reads: int = 0
    read_retry_backoff_us: float = 0.0
    program_failures: int = 0
    erase_failures: int = 0
    bad_blocks_retired: int = 0
    spare_blocks_consumed: int = 0
    remap_migrated_slots: int = 0
    recoveries: int = 0

    def reset(self) -> None:
        """Return every counter to its just-constructed value.

        Batch runners (the fleet executor, benchmark loops) reuse device
        objects across replays; this is the explicit guarantee that no
        statistic leaks from one replay into the next.
        """
        self.__init__()

    @property
    def fresh(self) -> bool:
        """True iff no replay has touched these stats yet.

        The fleet executor asserts this before every replay, so a device
        accidentally carrying stats across replays fails loudly instead
        of silently skewing fleet rows.
        """
        return vars(self) == vars(DeviceStats())

    def record_op_counts(self, kind: PageKind, reads: int = 0, programs: int = 0) -> None:
        """Accumulate per-kind read/program counters."""
        if reads:
            self.page_reads[kind] = self.page_reads.get(kind, 0) + reads
        if programs:
            self.page_programs[kind] = self.page_programs.get(kind, 0) + programs

    # -- derived metrics -------------------------------------------------------

    @property
    def fault_events(self) -> int:
        """Total injected faults observed (reads that needed correction,
        uncorrectable reads, and failed programs/erases)."""
        return (
            self.corrected_reads
            + self.uncorrectable_reads
            + self.program_failures
            + self.erase_failures
        )

    @property
    def mean_response_ms(self) -> float:
        """Mean response time (MRT), the paper's Fig. 8 metric."""
        if not self.response_us:
            return 0.0
        return sum(self.response_us) / len(self.response_us) / US_PER_MS

    @property
    def mean_service_ms(self) -> float:
        """Mean device service time, milliseconds."""
        if not self.service_us:
            return 0.0
        return sum(self.service_us) / len(self.service_us) / US_PER_MS

    @property
    def no_wait_ratio(self) -> float:
        """Fraction of requests served immediately on arrival (Table IV)."""
        return self.no_wait_requests / self.requests if self.requests else 0.0

    @property
    def space_utilization(self) -> float:
        """Data written / flash consumed by host writes (Fig. 9's metric).

        1.0 means no padding was ever written (4PS and HPS by construction);
        below 1.0 quantifies the pure-8KB scheme's waste on odd-page writes.
        """
        if self.flash_bytes_consumed == 0:
            return 1.0
        return self.data_bytes_written / self.flash_bytes_consumed

    @property
    def padding_bytes(self) -> int:
        """Flash consumed beyond the host data."""
        return self.flash_bytes_consumed - self.data_bytes_written

    @property
    def write_amplification(self) -> float:
        """(host + GC) programs over host programs, weighted by bytes."""
        host = self.flash_bytes_consumed
        if host == 0:
            return 1.0
        gc_bytes = 0
        for kind, programs in self.page_programs.items():
            gc_bytes += programs * kind.bytes
        # page_programs counts *all* programs incl. GC; host share is
        # flash_bytes_consumed, the rest is GC-induced.
        return gc_bytes / host if gc_bytes >= host else 1.0
