"""Latency parameters of the simulated eMMC device.

Page latencies follow Table V (taken by the authors from Micron MLC
datasheets); bus and command-overhead parameters are chosen so the device's
measured throughput-vs-request-size curve has the shape of Fig. 3 (read
saturating near 100 MB/s, writes far slower and still climbing at multi-MB
request sizes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .geometry import PageKind


@dataclass(frozen=True)
class PageTiming:
    """Read and program latency of one page kind, microseconds."""

    read_us: float
    program_us: float

    def __post_init__(self) -> None:
        if self.read_us <= 0 or self.program_us <= 0:
            raise ValueError("page latencies must be positive")


#: Table V latencies: 4 KB pages read/program in 160/1385 us, 8 KB pages in
#: 244/1491 us; block erase is 3800 us for every scheme.  The SLC-mode
#: entry is the extension Implication 5 suggests: operating an MLC block in
#: SLC mode yields SLC-class latencies (values typical of MLC fast pages).
TABLE_V_TIMINGS: Dict[PageKind, PageTiming] = {
    PageKind.K4: PageTiming(read_us=160.0, program_us=1385.0),
    PageKind.K8: PageTiming(read_us=244.0, program_us=1491.0),
    PageKind.K4_SLC: PageTiming(read_us=60.0, program_us=400.0),
}


@dataclass(frozen=True)
class LatencyParams:
    """All timing knobs of the device model.

    Attributes:
        page: per-kind read/program latencies.
        erase_us: block erase latency.
        bus_bytes_per_us: per-channel transfer rate (60 bytes/us = 60 MB/s).
        command_overhead_us: fixed channel occupation per page operation
            (command + address cycles).
        ftl_overhead_us: controller processing per flash operation (mapping
            lookup, command issue), serialized device-wide -- eMMC
            controllers are single, weak cores, which is precisely why
            fewer-but-larger page operations win (Section V).  At the
            default values a single 4 KB read costs ~313 us end to end,
            close to the ~287 us implied by the paper's measured 13.94 MB/s
            4 KB read throughput (Fig. 3).
        warmup_us: extra latency for the first request after the device
            wakes from its low-power mode (Characteristic 4).
        power_threshold_us: idle time after which the device enters the
            low-power mode.
    """

    page: Dict[PageKind, PageTiming] = field(
        default_factory=lambda: dict(TABLE_V_TIMINGS)
    )
    erase_us: float = 3800.0
    bus_bytes_per_us: float = 60.0
    command_overhead_us: float = 20.0
    ftl_overhead_us: float = 65.0
    warmup_us: float = 4000.0
    power_threshold_us: float = 100_000.0

    def __post_init__(self) -> None:
        if self.erase_us <= 0 or self.bus_bytes_per_us <= 0:
            raise ValueError("erase latency and bus rate must be positive")
        if self.command_overhead_us < 0 or self.warmup_us < 0 or self.ftl_overhead_us < 0:
            raise ValueError("overheads must be non-negative")
        if self.power_threshold_us <= 0:
            raise ValueError("power threshold must be positive")

    def timing(self, kind: PageKind) -> PageTiming:
        """Read/program latencies of ``kind`` (KeyError if unconfigured)."""
        try:
            return self.page[kind]
        except KeyError:
            raise KeyError(f"no latency configured for {kind} pages")

    def transfer_us(self, num_bytes: int) -> float:
        """Channel occupation to move ``num_bytes`` plus command overhead."""
        return self.command_overhead_us + num_bytes / self.bus_bytes_per_us
