"""Wear-leveling statistics and policies.

Implication 4 of the paper argues that the weak localities of smartphone
workloads mean *a simple wear-leveling strategy is sufficient* for an eMMC
device.  The FTL accordingly defaults to dynamic wear-leveling only: when a
new active block is needed, the free block with the lowest erase count is
chosen (:meth:`repro.emmc.ftl.blocks.Plane.take_free_block`).

For the ablation that backs the implication, :class:`StaticWearLeveler`
implements the heavier alternative: when the erase-count spread inside a
pool exceeds a threshold, the coldest full block is forcibly collected so
its (possibly fully valid) data moves onto hotter blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..geometry import PageKind
from .blocks import Plane


@dataclass(frozen=True)
class WearStats:
    """Summary of per-block erase counts across the device."""

    total_erases: int
    max_erase: int
    min_erase: int
    mean_erase: float

    @property
    def spread(self) -> int:
        """Max-minus-min erase count; 0 means perfectly even wear."""
        return self.max_erase - self.min_erase

    @property
    def evenness(self) -> float:
        """1.0 when all blocks have equal erase counts, lower otherwise."""
        if self.max_erase == 0:
            return 1.0
        return self.min_erase / self.max_erase


class StaticWearLeveler:
    """Threshold-triggered cold-block relocation.

    When ``max_erase - min_erase`` inside a plane's pool exceeds
    ``spread_threshold``, the coldest full block is collected (its valid
    data migrates to a low-erase-count free block) so the pool's wear
    evens out.  Each check relocates at most one block.
    """

    def __init__(self, spread_threshold: int = 8) -> None:
        if spread_threshold < 1:
            raise ValueError("spread threshold must be positive")
        self.spread_threshold = spread_threshold
        self.relocations = 0

    def maybe_level(self, plane: Plane, kind: PageKind, gc, allocator, mapping):
        """Relocate one cold block if the spread warrants it.

        Returns the :class:`~repro.emmc.ftl.gc.GcResult` of the relocation,
        or ``None`` when the pool is even enough (or has no candidate).
        """
        pool = plane.blocks[kind]
        erase_counts = [block.erase_count for block in pool if not block.is_bad]
        if not erase_counts:
            return None
        if max(erase_counts) - min(erase_counts) < self.spread_threshold:
            return None
        candidates = plane.gc_candidates(kind)
        if not candidates:
            return None
        coldest = min(candidates, key=lambda block: block.erase_count)
        if max(erase_counts) - coldest.erase_count < self.spread_threshold:
            return None
        result = gc.collect_block(plane, kind, coldest, allocator, mapping)
        self.relocations += 1
        return result


def collect_wear(planes: Iterable[Plane]) -> WearStats:
    """Aggregate erase-count statistics over all blocks of all planes."""
    counts: List[int] = []
    for plane in planes:
        for pool in plane.blocks.values():
            counts.extend(block.erase_count for block in pool if not block.is_bad)
    if not counts:
        return WearStats(total_erases=0, max_erase=0, min_erase=0, mean_erase=0.0)
    return WearStats(
        total_erases=sum(counts),
        max_erase=max(counts),
        min_erase=min(counts),
        mean_erase=sum(counts) / len(counts),
    )
