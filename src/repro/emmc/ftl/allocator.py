"""Physical page allocation: dynamic, channel-first round-robin striping.

Write groups are spread over planes in flat-index order, which alternates
channels first (see :meth:`repro.emmc.geometry.Geometry.channel_of`), so a
multi-page request exploits all channels, then all dies/planes -- SSDsim's
dynamic allocation scheme that the paper's Table V geometry relies on for
"internal parallelism [having the] same effects" across the three schemes.
"""

from __future__ import annotations

from typing import List, Tuple

from ..geometry import Geometry, PageKind
from .blocks import Block, Plane


class PageAllocator:
    """Hands out (plane, block, page) targets for write groups."""

    def __init__(self, geometry: Geometry, planes: List[Plane]) -> None:
        if len(planes) != geometry.num_planes:
            raise ValueError("plane list does not match geometry")
        self._geometry = geometry
        self._planes = planes
        self._cursor = 0

    @property
    def planes(self) -> List[Plane]:
        """The planes this allocator serves."""
        return self._planes

    @property
    def cursor(self) -> int:
        """The round-robin cursor: plane index of the next write group."""
        return self._cursor

    def next_plane(self) -> Plane:
        """Round-robin plane choice for the next write group."""
        plane = self._planes[self._cursor]
        self._cursor = (self._cursor + 1) % len(self._planes)
        return plane

    def advance(self, count: int) -> int:
        """Advance the round-robin cursor by ``count`` plane choices.

        Returns the cursor *before* advancing.  The replay planner
        computes a whole request's plane striping arithmetically and
        settles the cursor with one call instead of ``count``
        :meth:`next_plane` calls.
        """
        cursor = self._cursor
        self._cursor = (cursor + count) % len(self._planes)
        return cursor

    def allocate(self, plane: Plane, kind: PageKind) -> Tuple[Block, int]:
        """Reserve the next page of ``plane``'s active ``kind`` block.

        Opens a new active block (lowest erase count first) when needed.
        Raises :class:`~repro.emmc.ftl.blocks.OutOfSpaceError` when the
        plane has no free block left -- callers run garbage collection and
        retry.

        The page is only *reserved* here; the caller programs it via
        :meth:`Block.program` so slot contents and mapping stay in one
        place.
        """
        active_id = plane.active_block[kind]
        block = None if active_id is None else plane.block(kind, active_id)
        if block is None or block.is_full:
            block = plane.take_free_block(kind)
            plane.active_block[kind] = block.block_id
        return block, block.write_ptr
