"""A hybrid log-block FTL (BAST-style) as an alternative mapping scheme.

The paper notes an eMMC "has a simpler FTL and architecture as well as a
smaller RAM buffer compared to an SSD".  The classic simple FTL is *block
mapping* with a small pool of page-mapped **log blocks**:

* logical block ``n`` maps to one physical **data block**; page ``i`` of
  the logical block lives at page ``i`` of the data block (no per-page
  table);
* an overwrite cannot rewrite in place, so it goes to a **log block**
  associated with the logical block;
* when no log block is free, one is reclaimed by a **merge**:

  - *switch merge*: the log block was written exactly sequentially from
    page 0 -- it simply becomes the new data block (one erase);
  - *full merge*: valid pages are gathered from the data block and the log
    block into a fresh block (reads + programs + two erases).

Under the smartphone workloads' small random writes this FTL pays heavy
full merges -- the measurable reason page-mapped FTLs (the default
:class:`~repro.emmc.ftl.core.Ftl`) are worth their RAM, which the
``ftl_study`` experiment quantifies.

Scope: single page kind (4 KB) geometries; the HPS distributor needs the
page-mapped FTL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..geometry import Geometry, PageKind
from ..ops import FlashOp, FlashOpType, WriteGroup
from .core import ReadOutcome, WriteOutcome
from .gc import GcResult


@dataclass
class _LogBlock:
    """A log block: page-mapped journal of overwrites for one logical block."""

    physical: int
    logical_block: int
    write_ptr: int = 0
    page_map: Dict[int, int] = field(default_factory=dict)  # logical page -> log page

    def is_sequential(self, pages_per_block: int) -> bool:
        """Switch-merge eligible: pages 0..k-1 written exactly in order."""
        return all(
            self.page_map.get(i) == i for i in range(self.write_ptr)
        )


@dataclass
class HybridFtlStats:
    """Merge and erase counters of the hybrid FTL."""
    switch_merges: int = 0
    full_merges: int = 0
    merge_page_copies: int = 0
    erases: int = 0


class BlockMappedFtl:
    """Block mapping + log blocks, behind the same interface as ``Ftl``.

    The physical space is modelled as a flat pool of blocks (plane
    placement round-robin by physical block id, so parallelism matches the
    page-mapped FTL's striping at block granularity).
    """

    def __init__(self, geometry: Geometry, log_blocks: int = 8) -> None:
        kinds = geometry.kinds()
        if kinds != [PageKind.K4]:
            raise ValueError("the hybrid log-block FTL supports 4K-only geometries")
        if log_blocks < 1:
            raise ValueError("need at least one log block")
        self.geometry = geometry
        self.pages_per_block = geometry.pages_per_block
        total_blocks = geometry.num_planes * geometry.blocks_per_plane[PageKind.K4]
        self._free: List[int] = list(range(total_blocks))
        self._data_block: Dict[int, int] = {}  # logical block -> physical
        self._valid: Dict[int, List[bool]] = {}  # data block validity per page
        self._logs: Dict[int, _LogBlock] = {}  # logical block -> log block
        self._max_logs = log_blocks
        self.stats = HybridFtlStats()
        self.gc_results_total = 0
        self.gc_migrated_slots = 0

    # -- placement ------------------------------------------------------------

    def _plane_of(self, physical_block: int) -> int:
        return physical_block % self.geometry.num_planes

    def _take_free(self) -> int:
        if not self._free:
            raise RuntimeError("hybrid FTL ran out of physical blocks")
        return self._free.pop(0)

    def _op(self, op_type: FlashOpType, physical_block: int, gc: bool = False) -> FlashOp:
        payload = 0 if op_type is FlashOpType.ERASE else PageKind.K4.bytes
        return FlashOp(op_type, self._plane_of(physical_block), PageKind.K4, payload, gc=gc)

    # -- write path -------------------------------------------------------------

    def write(self, groups: Sequence[WriteGroup]) -> WriteOutcome:
        """Program the given 4K write groups, merging logs as needed."""
        ops: List[FlashOp] = []
        gc_results: List[GcResult] = []
        data_bytes = 0
        for group in groups:
            if group.kind is not PageKind.K4:
                raise ValueError("hybrid FTL accepts 4K write groups only")
            (lpn,) = group.lpns
            assert lpn is not None
            ops.extend(self._write_page(lpn, gc_results))
            data_bytes += PageKind.K4.bytes
        return WriteOutcome(
            ops=ops, data_bytes=data_bytes, flash_bytes=data_bytes, gc_results=gc_results
        )

    def _write_page(self, lpn: int, gc_results: List[GcResult]) -> List[FlashOp]:
        logical_block, page = divmod(lpn, self.pages_per_block)
        ops: List[FlashOp] = []
        data = self._data_block.get(logical_block)
        if data is None:
            # First touch of this logical block: allocate its data block.
            data = self._take_free()
            self._data_block[logical_block] = data
            self._valid[data] = [False] * self.pages_per_block
        valid = self._valid[data]
        if not valid[page] and logical_block not in self._logs:
            # Page never written (and no log shadowing it): write in place.
            valid[page] = True
            ops.append(self._op(FlashOpType.PROGRAM, data))
            return ops
        # Overwrite (or block already has a log): append to the log block.
        log = self._logs.get(logical_block)
        if log is None or log.write_ptr >= self.pages_per_block:
            if log is not None:
                ops.extend(self._merge(logical_block, gc_results))
            if len(self._logs) >= self._max_logs:
                victim = next(iter(self._logs))
                ops.extend(self._merge(victim, gc_results))
            log = _LogBlock(physical=self._take_free(), logical_block=logical_block)
            self._logs[logical_block] = log
        log.page_map[page] = log.write_ptr
        log.write_ptr += 1
        ops.append(self._op(FlashOpType.PROGRAM, log.physical))
        return ops

    # -- merges ---------------------------------------------------------------------

    def _merge(self, logical_block: int, gc_results: List[GcResult]) -> List[FlashOp]:
        """Fold a log block back into its data block."""
        log = self._logs.pop(logical_block)
        data = self._data_block[logical_block]
        valid = self._valid[data]
        ops: List[FlashOp] = []
        data_written = any(valid)
        if log.is_sequential(self.pages_per_block) and not data_written:
            # Switch merge: the log simply becomes the data block.
            self.stats.switch_merges += 1
            self._data_block[logical_block] = log.physical
            new_valid = [False] * self.pages_per_block
            for page in log.page_map:
                new_valid[page] = True
            self._valid[log.physical] = new_valid
            del self._valid[data]
            ops.append(self._op(FlashOpType.ERASE, data, gc=True))
            self._recycle(data)
            self.stats.erases += 1
            copies = 0
        else:
            # Full merge: gather the freshest copy of every page.
            self.stats.full_merges += 1
            fresh = self._take_free()
            fresh_valid = [False] * self.pages_per_block
            copies = 0
            for page in range(self.pages_per_block):
                source: Optional[int] = None
                if page in log.page_map:
                    source = log.physical
                elif valid[page]:
                    source = data
                if source is None:
                    continue
                ops.append(self._op(FlashOpType.READ, source, gc=True))
                ops.append(self._op(FlashOpType.PROGRAM, fresh, gc=True))
                fresh_valid[page] = True
                copies += 1
            self._data_block[logical_block] = fresh
            self._valid[fresh] = fresh_valid
            del self._valid[data]
            for physical in (data, log.physical):
                ops.append(self._op(FlashOpType.ERASE, physical, gc=True))
                self._recycle(physical)
                self.stats.erases += 1
            self.stats.merge_page_copies += copies
        self.gc_results_total += 1
        self.gc_migrated_slots += copies
        gc_results.append(
            GcResult(ops=list(ops), migrated_slots=copies, erased_block=data)
        )
        return ops

    def _recycle(self, physical: int) -> None:
        self._free.append(physical)

    # -- read path --------------------------------------------------------------------

    def read(self, lpns: Sequence[int]) -> ReadOutcome:
        """Emit page reads, resolving log blocks and pre-existing data."""
        ops: List[FlashOp] = []
        preloaded = 0
        for lpn in lpns:
            logical_block, page = divmod(lpn, self.pages_per_block)
            log = self._logs.get(logical_block)
            if log is not None and page in log.page_map:
                ops.append(self._op(FlashOpType.READ, log.physical))
                continue
            data = self._data_block.get(logical_block)
            if data is None:
                # Pre-existing data (written before the trace): under block
                # mapping it lives in place; materialize the data block.
                data = self._take_free()
                self._data_block[logical_block] = data
                self._valid[data] = [False] * self.pages_per_block
            if not self._valid[data][page]:
                preloaded += 1
                self._valid[data][page] = True  # the data existed already
            ops.append(self._op(FlashOpType.READ, data))
        return ReadOutcome(ops=ops, preloaded_pages=preloaded)

    # -- interface parity with Ftl ----------------------------------------------------

    def idle_collect(self, soft_threshold: int) -> List[GcResult]:
        """Merge one log block during idle time when logs run low on room."""
        results: List[GcResult] = []
        if len(self._logs) >= max(1, self._max_logs - soft_threshold):
            victim = next(iter(self._logs))
            self._merge(victim, results)
        return results

    @property
    def mapping_entries(self) -> int:
        """RAM cost proxy: block-map entries + per-log page entries."""
        return len(self._data_block) + sum(len(l.page_map) for l in self._logs.values())
