"""FTL façade: page-mapped address translation, allocation and GC.

This is the controller logic the paper says an eMMC hides behind its block
interface ("its controller locally processes address mapping, wear-leveling,
and garbage collection").  The device timing engine feeds it logical-page
reads and distributor-produced write groups; the FTL returns the flash
operations (with their plane placement) the request expands to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..geometry import Geometry, PageKind
from ..ops import FlashOp, FlashOpType, WriteGroup
from .allocator import PageAllocator
from .badblocks import BadBlockManager
from .blocks import OutOfSpaceError, Plane
from .gc import GcResult, GreedyGC
from .mapping import PageMapping, PhysicalLocation, PRELOADED_BLOCK
from .wear_leveling import StaticWearLeveler


@dataclass(frozen=True)
class WriteOutcome:
    """Flash ops for one host write, plus accounting."""

    ops: List[FlashOp]
    data_bytes: int
    flash_bytes: int
    gc_results: List[GcResult] = field(default_factory=list)

    @property
    def padding_bytes(self) -> int:
        """Flash consumed beyond the host data (8PS-style waste)."""
        return self.flash_bytes - self.data_bytes


@dataclass(frozen=True)
class ReadOutcome:
    """Flash ops for one host read, plus accounting."""

    ops: List[FlashOp]
    preloaded_pages: int


class Ftl:
    """Page-mapping flash translation layer over a set of planes."""

    def __init__(
        self,
        geometry: Geometry,
        gc: Optional[GreedyGC] = None,
        preload_kind: Optional[PageKind] = None,
        wear_leveler: Optional[StaticWearLeveler] = None,
        faults=None,
    ) -> None:
        self.geometry = geometry
        self.planes: List[Plane] = [
            Plane.create(index, geometry) for index in range(geometry.num_planes)
        ]
        self.allocator = PageAllocator(geometry, self.planes)
        self.mapping = PageMapping()
        self.gc = gc or GreedyGC()
        kinds = geometry.kinds()
        # Pre-existing data is assumed to have been written by large
        # sequential writes, so it lives in the largest pages available.
        self.preload_kind = preload_kind or kinds[-1]
        if self.preload_kind not in kinds:
            raise ValueError(f"{self.preload_kind} pages not present in geometry")
        self.wear_leveler = wear_leveler
        self.gc_results_total = 0
        self.gc_migrated_slots = 0
        # Fault injection: ``faults`` is a duck-typed
        # :class:`repro.faults.plan.FaultInjector` (no import -- the faults
        # package sits above repro.emmc).  Kept only when the plan can
        # actually fail a program or erase, so a no-fault FTL carries no
        # injection state at all.
        self.faults = (
            faults
            if faults is not None and (faults.program_active or faults.erase_active)
            else None
        )
        self.bad_blocks: Optional[BadBlockManager] = None
        self.program_failures = 0
        if self.faults is not None:
            self.bad_blocks = BadBlockManager(self.faults.plan.spare_blocks_per_plane)
            self.gc.faults = self.faults
            self.gc.bad_blocks = self.bad_blocks
        # Telemetry (structurally absent by default): the owning device
        # attaches its sink plus the kernel clock so FTL-internal moments
        # (GC victims, bad-block retirements) surface as instant events
        # stamped with the sim time of the request being served.
        self.telemetry = None
        self._telemetry_clock = None

    def attach_telemetry(self, sink, clock) -> None:
        """Record FTL instants (GC, remap) into ``sink``, timed by ``clock``."""
        self.telemetry = sink
        self._telemetry_clock = clock

    # -- write path ----------------------------------------------------------

    def write(self, groups: Sequence[WriteGroup]) -> WriteOutcome:
        """Program the given write groups, running GC where needed."""
        ops: List[FlashOp] = []
        gc_results: List[GcResult] = []
        data_bytes = 0
        flash_bytes = 0
        for group in groups:
            plane = self.allocator.next_plane()
            while True:
                block, _ = self._allocate_with_gc(plane, group.kind, ops, gc_results)
                if (
                    self.faults is None
                    or not self.faults.program_active
                    or not self.faults.program_fails()
                ):
                    break
                # Program failure: the attempt still consumed a program
                # cycle (the op below), then the block is retired and the
                # group redone on a freshly mapped block.  Each failure
                # burns one spare, so the loop is bounded by the spare
                # budget (SparePoolExhausted ends it).
                self.program_failures += 1
                ops.append(
                    FlashOp(
                        FlashOpType.PROGRAM, plane.plane_id, group.kind, group.kind.bytes
                    )
                )
                ops.extend(
                    self.bad_blocks.retire(
                        plane, group.kind, block, self.allocator, self.mapping
                    )
                )
                if self.telemetry is not None:
                    self.telemetry.add_event(
                        "bad-block-remap",
                        self._telemetry_clock.now_us,
                        cat="ftl",
                        track="ftl",
                        args=(plane.plane_id, block.block_id),
                    )
            page_index = block.program(group.lpns)
            for slot, lpn in enumerate(group.lpns):
                if lpn is None:
                    continue
                location = PhysicalLocation(
                    plane.plane_id, group.kind, block.block_id, page_index, slot
                )
                self._invalidate(self.mapping.update(lpn, location))
            ops.append(
                FlashOp(FlashOpType.PROGRAM, plane.plane_id, group.kind, group.kind.bytes)
            )
            data_bytes += group.data_slots * (group.kind.bytes // group.kind.slots)
            flash_bytes += group.kind.bytes
        if self.telemetry is not None:
            self.telemetry.add_event(
                "ftl-write",
                self._telemetry_clock.now_us,
                cat="ftl",
                track="ftl",
                args=(len(ops), flash_bytes),
            )
        return WriteOutcome(
            ops=ops, data_bytes=data_bytes, flash_bytes=flash_bytes, gc_results=gc_results
        )

    def _allocate_with_gc(
        self,
        plane: Plane,
        kind: PageKind,
        ops: List[FlashOp],
        gc_results: List[GcResult],
    ):
        """Allocate a page, reclaiming space first when the pool runs low."""
        if self.gc.needs_gc(plane, kind):
            self._run_gc(plane, kind, ops, gc_results)
        try:
            return self.allocator.allocate(plane, kind)
        except OutOfSpaceError:
            self._run_gc(plane, kind, ops, gc_results)
            return self.allocator.allocate(plane, kind)

    def _run_gc(
        self,
        plane: Plane,
        kind: PageKind,
        ops: List[FlashOp],
        gc_results: List[GcResult],
    ) -> None:
        for result in self.gc.reclaim_until_safe(plane, kind, self.allocator, self.mapping):
            ops.extend(result.ops)
            gc_results.append(result)
            self.gc_results_total += 1
            self.gc_migrated_slots += result.migrated_slots
            if self.telemetry is not None:
                self.telemetry.add_event(
                    "gc-collect",
                    self._telemetry_clock.now_us,
                    cat="gc",
                    track="ftl",
                    args=(plane.plane_id, result.migrated_slots),
                )
        if self.wear_leveler is not None:
            leveled = self.wear_leveler.maybe_level(
                plane, kind, self.gc, self.allocator, self.mapping
            )
            if leveled is not None:
                ops.extend(leveled.ops)
                gc_results.append(leveled)
                self.gc_migrated_slots += leveled.migrated_slots

    def _invalidate(self, stale: Optional[PhysicalLocation]) -> None:
        if stale is None or stale.preloaded:
            return
        self.planes[stale.plane].block(stale.kind, stale.block_id).invalidate(
            stale.page, stale.slot
        )

    # -- read path -------------------------------------------------------------

    def read(self, lpns: Sequence[int]) -> ReadOutcome:
        """Look up (pre-loading unmapped data) and emit page reads.

        LPNs sharing a physical page produce a single read op whose payload
        covers only the requested slots.
        """
        preloaded = 0
        grouped: Dict[Tuple[int, PageKind, int, int], int] = {}
        order: List[Tuple[int, PageKind, int, int]] = []
        for lpn in lpns:
            location = self.mapping.lookup(lpn)
            if location is None:
                location = self._preload(lpn)
                preloaded += 1
            key = (location.plane, location.kind, location.block_id, location.page)
            if key not in grouped:
                grouped[key] = 0
                order.append(key)
            grouped[key] += 1
        slot_bytes = {kind: kind.bytes // kind.slots for kind in self.geometry.kinds()}
        ops = [
            FlashOp(FlashOpType.READ, plane, kind, grouped[(plane, kind, block, page)] * slot_bytes[kind])
            for plane, kind, block, page in order
        ]
        if self.telemetry is not None:
            self.telemetry.add_event(
                "ftl-read",
                self._telemetry_clock.now_us,
                cat="ftl",
                track="ftl",
                args=(len(ops), preloaded),
            )
        return ReadOutcome(ops=ops, preloaded_pages=preloaded)

    def _preload(self, lpn: int) -> PhysicalLocation:
        """Deterministic placement for data that predates the trace.

        Adjacent LPNs share a physical page (for multi-slot kinds) and
        consecutive page groups stripe over planes, matching what the
        device's own allocator would have produced for a large sequential
        write.
        """
        slots = self.preload_kind.slots
        group = lpn // slots
        plane = group % self.geometry.num_planes
        page = group // self.geometry.num_planes
        location = PhysicalLocation(
            plane=plane,
            kind=self.preload_kind,
            block_id=PRELOADED_BLOCK,
            page=page,
            slot=lpn % slots,
        )
        self.mapping.update(lpn, location)
        return location

    # -- idle-time GC (Implication 2) -----------------------------------------

    def idle_collect(self, soft_threshold: int) -> List[GcResult]:
        """Collect one victim on every plane/kind below ``soft_threshold``.

        Used by the device during long inter-arrival gaps so foreground
        writes rarely stall on GC.  Returns the collections performed.
        """
        results: List[GcResult] = []
        for plane in self.planes:
            for kind in self.geometry.kinds():
                if plane.free_count(kind) <= soft_threshold:
                    result = self.gc.collect(plane, kind, self.allocator, self.mapping)
                    if result is not None:
                        results.append(result)
                        self.gc_results_total += 1
                        self.gc_migrated_slots += result.migrated_slots
        return results

    # -- power-loss recovery ----------------------------------------------------

    def rebuild_mapping(self) -> int:
        """Rebuild the RAM mapping table by scanning flash (recovery path).

        Power loss wipes the controller's RAM; block contents (the
        ``slots`` arrays, which model programmed pages plus their
        out-of-band validity) survive.  The scan re-derives the LPN table
        from every non-bad block, recomputes each pool's active block (the
        at-most-one partially written block outside the free list) and
        resets the allocator's striping cursor.  Pre-loaded locations
        (data that predates the trace) are deliberately dropped: they are
        re-derived on demand by :meth:`_preload`, deterministically.

        Returns the number of LPNs recovered.  Raises ``RuntimeError`` if
        the scan finds an inconsistent image (an LPN valid in two places,
        or two in-flight active blocks) -- states the event-granular
        power-loss model can never produce.
        """
        mapping = PageMapping()
        for plane in self.planes:
            for kind, pool in plane.blocks.items():
                for block in pool:
                    if block.is_bad:
                        continue
                    for page, slot, lpn in block.valid_entries():
                        if lpn in mapping:
                            raise RuntimeError(
                                f"recovery scan found LPN {lpn} valid twice"
                            )
                        mapping.update(
                            lpn,
                            PhysicalLocation(
                                plane.plane_id, kind, block.block_id, page, slot
                            ),
                        )
        self.mapping = mapping
        for plane in self.planes:
            for kind, pool in plane.blocks.items():
                free = set(plane.free_blocks[kind])
                partial = [
                    block
                    for block in pool
                    if not block.is_bad
                    and 0 < block.write_ptr < block.pages_per_block
                    and block.block_id not in free
                ]
                if len(partial) > 1:
                    raise RuntimeError(
                        f"recovery scan found {len(partial)} in-flight blocks "
                        f"in plane {plane.plane_id} {kind} pool"
                    )
                plane.active_block[kind] = partial[0].block_id if partial else None
        self.allocator = PageAllocator(self.geometry, self.planes)
        return len(mapping)

    # -- capacity accounting ----------------------------------------------------

    def free_pages_by_kind(self) -> Dict[PageKind, int]:
        """Programmable pages remaining, per page kind."""
        totals = {kind: 0 for kind in self.geometry.kinds()}
        for plane in self.planes:
            for kind in totals:
                totals[kind] += plane.total_free_pages(kind)
        return totals
