"""Flash translation layer: mapping, allocation, GC, wear-leveling."""

from .allocator import PageAllocator
from .badblocks import BadBlockManager
from .blocks import Block, OutOfSpaceError, Plane
from .core import Ftl, ReadOutcome, WriteOutcome
from .gc import GcResult, GreedyGC, VictimPolicy
from .mapping import PageMapping, PhysicalLocation, PRELOADED_BLOCK
from .wear_leveling import StaticWearLeveler, WearStats, collect_wear

__all__ = [
    "PageAllocator",
    "BadBlockManager",
    "Block",
    "OutOfSpaceError",
    "Plane",
    "Ftl",
    "ReadOutcome",
    "WriteOutcome",
    "GcResult",
    "GreedyGC",
    "VictimPolicy",
    "PageMapping",
    "PhysicalLocation",
    "PRELOADED_BLOCK",
    "StaticWearLeveler",
    "WearStats",
    "collect_wear",
]
