"""Page-level address mapping for the eMMC FTL.

The mapping translates 4 KB logical page numbers (LPNs) to physical slots.
A physical 8 KB page holds two slots, so two LPNs can map into one physical
page (the HPS and 8PS write paths exploit this).

Locations with ``block_id == PRELOADED_BLOCK`` describe data that existed on
the device before the trace started (the paper replays traces of *reads of
pre-existing data* on a brand-new simulated device); such pseudo-blocks have
realistic plane placement for timing purposes but are not part of the GC
pool -- see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..geometry import PageKind

#: Sentinel block id for pre-existing ("pre-loaded") data.
PRELOADED_BLOCK = -1


@dataclass(frozen=True)
class PhysicalLocation:
    """Where one logical 4 KB page lives on flash."""

    plane: int
    kind: PageKind
    block_id: int
    page: int
    slot: int

    @property
    def preloaded(self) -> bool:
        """True for data that existed before the trace started."""
        return self.block_id == PRELOADED_BLOCK


class PageMapping:
    """LPN -> :class:`PhysicalLocation` table maintained by the controller."""

    def __init__(self) -> None:
        self._table: Dict[int, PhysicalLocation] = {}

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, lpn: int) -> bool:
        return lpn in self._table

    def lookup(self, lpn: int) -> Optional[PhysicalLocation]:
        """Location of ``lpn``, or ``None`` if unmapped."""
        return self._table.get(lpn)

    def update(self, lpn: int, location: PhysicalLocation) -> Optional[PhysicalLocation]:
        """Map ``lpn`` to ``location``; returns the stale old location if any."""
        old = self._table.get(lpn)
        self._table[lpn] = location
        return old

    def remove(self, lpn: int) -> Optional[PhysicalLocation]:
        """Unmap ``lpn`` (TRIM); returns the stale location if any."""
        return self._table.pop(lpn, None)

    def mapped_lpns(self):
        """Iterator over all mapped LPNs (test/introspection helper)."""
        return iter(self._table)

    def items(self):
        """Iterator over ``(lpn, location)`` pairs (bulk readers)."""
        return self._table.items()

    def bulk_table(self) -> Dict[int, PhysicalLocation]:
        """The live LPN table, for bulk maintainers.

        The replay planner batches thousands of :meth:`update`-equivalent
        writes per request; handing it the dict avoids a method call per
        LPN.  Callers take on ``update``'s implicit obligations: stale
        locations they overwrite must be invalidated in their blocks.
        """
        return self._table
