"""Greedy garbage collection for the page-mapping FTL.

A plane needs GC for a page kind when its free-block pool for that kind
drops to the configured threshold.  The victim is the full block with the
most invalid slots (greedy policy, as in SSDsim); its valid slots are
migrated into the plane's active block of the same kind and the victim is
erased back into the free pool.

The paper's Implication 2 -- launch GC during the long idle gaps instead of
waiting for the free-block count to run low -- is implemented at the device
level (:class:`repro.emmc.device.EmmcDevice` calls :meth:`GreedyGC.collect`
during idle periods when ``idle_gc`` is enabled); the policy here is shared
by both the foreground and the idle path.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import List, Optional

from ..geometry import PageKind
from ..ops import FlashOp, FlashOpType
from .blocks import Block, OutOfSpaceError, Plane
from .mapping import PageMapping, PhysicalLocation


class VictimPolicy(enum.Enum):
    """How GC picks its victim among the full blocks.

    * GREEDY -- most invalid slots (SSDsim's default; fewest migrations).
    * FIFO -- lowest block id among reclaimable blocks (round-robin-ish,
      cheap to implement in firmware).
    * RANDOM -- uniformly random reclaimable block (the strawman).
    """

    GREEDY = "greedy"
    FIFO = "fifo"
    RANDOM = "random"


@dataclass(frozen=True)
class GcResult:
    """Outcome of collecting one victim block."""

    ops: List[FlashOp]
    migrated_slots: int
    erased_block: int


class GreedyGC:
    """Victim selection and migration policy."""

    def __init__(
        self,
        threshold_blocks: int = 2,
        policy: VictimPolicy = VictimPolicy.GREEDY,
        seed: int = 0,
    ) -> None:
        if threshold_blocks < 1:
            raise ValueError("GC threshold must keep at least one block in reserve")
        self.threshold_blocks = threshold_blocks
        self.policy = policy
        self._rng = random.Random(seed)
        #: Fault injection (wired by the FTL when a plan enables erase
        #: failures): a duck-typed :class:`repro.faults.plan.FaultInjector`
        #: and the FTL's :class:`~repro.emmc.ftl.badblocks.BadBlockManager`.
        self.faults = None
        self.bad_blocks = None
        self.erase_failures = 0

    def needs_gc(self, plane: Plane, kind: PageKind) -> bool:
        """Free pool at or below the threshold and something is reclaimable."""
        if plane.free_count(kind) > self.threshold_blocks:
            return False
        return self.select_victim(plane, kind) is not None

    def select_victim(self, plane: Plane, kind: PageKind) -> Optional[Block]:
        """Pick a reclaimable full block per the policy; ``None`` if none."""
        candidates = [
            block for block in plane.gc_candidates(kind) if block.invalid_count > 0
        ]
        if not candidates:
            return None
        if self.policy is VictimPolicy.GREEDY:
            return max(candidates, key=lambda block: block.invalid_count)
        if self.policy is VictimPolicy.FIFO:
            return min(candidates, key=lambda block: block.block_id)
        return self._rng.choice(candidates)

    def collect(
        self,
        plane: Plane,
        kind: PageKind,
        allocator,
        mapping: PageMapping,
    ) -> Optional[GcResult]:
        """Collect one victim in ``plane`` for ``kind``; ``None`` if no victim.

        Valid slots are re-packed into fresh pages of the same kind in the
        same plane (lone 4 KB residents of an 8 KB victim stay in 8 KB pages
        and are re-paired where possible).
        """
        victim = self.select_victim(plane, kind)
        if victim is None:
            return None
        return self.collect_block(plane, kind, victim, allocator, mapping)

    def collect_block(
        self,
        plane: Plane,
        kind: PageKind,
        victim: Block,
        allocator,
        mapping: PageMapping,
    ) -> GcResult:
        """Migrate ``victim``'s valid slots elsewhere and erase it.

        Used by normal GC (victim chosen by :meth:`select_victim`) and by
        static wear-leveling (victim chosen by coldness).
        """
        ops: List[FlashOp] = []
        entries = victim.valid_entries()
        # One page read per physical page that still holds valid data.
        pages_with_valid = sorted({page for page, _, _ in entries})
        slot_bytes = kind.bytes // kind.slots
        for page in pages_with_valid:
            valid_here = sum(1 for p, _, _ in entries if p == page)
            ops.append(
                FlashOp(FlashOpType.READ, plane.plane_id, kind, valid_here * slot_bytes, gc=True)
            )
        # Re-pack the valid LPNs into fresh pages.
        lpns = [lpn for _, _, lpn in entries]
        for start in range(0, len(lpns), kind.slots):
            chunk = lpns[start : start + kind.slots]
            padded = tuple(chunk) + (None,) * (kind.slots - len(chunk))
            block, _ = allocator.allocate(plane, kind)
            page_index = block.program(padded)
            for slot, lpn in enumerate(padded):
                if lpn is None:
                    continue
                old = mapping.update(
                    lpn,
                    PhysicalLocation(plane.plane_id, kind, block.block_id, page_index, slot),
                )
                if old is None or old.block_id != victim.block_id:
                    raise RuntimeError("GC migrated an LPN that moved underneath it")
            ops.append(FlashOp(FlashOpType.PROGRAM, plane.plane_id, kind, kind.bytes, gc=True))
        # Invalidate the victim's now-stale slots and erase it.
        for page, slot, _ in entries:
            victim.invalidate(page, slot)
        if (
            self.faults is not None
            and self.faults.erase_active
            and self.faults.erase_fails()
        ):
            # Erase failure: the block is retired (never rejoins the free
            # pool) and a spare is swapped in.  The ERASE op below is still
            # emitted -- the failed attempt consumed the die either way.
            self.erase_failures += 1
            ops.extend(
                self.bad_blocks.retire(plane, kind, victim, allocator, mapping)
            )
        else:
            victim.erase()
            plane.free_blocks[kind].append(victim.block_id)
        ops.append(FlashOp(FlashOpType.ERASE, plane.plane_id, kind, 0, gc=True))
        return GcResult(ops=ops, migrated_slots=len(entries), erased_block=victim.block_id)

    def reclaim_until_safe(
        self,
        plane: Plane,
        kind: PageKind,
        allocator,
        mapping: PageMapping,
        max_rounds: int = 8,
    ) -> List[GcResult]:
        """Collect victims until the free pool is above the threshold."""
        results: List[GcResult] = []
        rounds = 0
        while plane.free_count(kind) <= self.threshold_blocks and rounds < max_rounds:
            result = self.collect(plane, kind, allocator, mapping)
            if result is None:
                if plane.free_count(kind) == 0:
                    raise OutOfSpaceError(
                        f"plane {plane.plane_id} exhausted {kind} blocks and "
                        "GC found nothing reclaimable"
                    )
                break
            results.append(result)
            rounds += 1
        return results
