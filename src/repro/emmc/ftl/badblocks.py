"""Bad-block management: retirement, remap migration and the spare pool.

Real eMMC parts ship with spare blocks and a bad-block table: when a
program or erase operation fails, the controller migrates whatever valid
data the failing block still holds, marks the block bad, and maps a spare
into the pool in its place.  This module is that logic for the
page-mapping FTL.

Retirement order matters for boundedness:

1. a spare is swapped in *first* (raising
   :class:`~repro.faults.plan.SparePoolExhausted` when the per-plane
   budget is gone), so the remap migration always has at least one free
   block's worth of destination pages;
2. the victim's valid slots are re-packed into fresh pages (same repack
   as GC migration, ``gc=True`` ops so timing and counters attribute them
   to background work);
3. the victim is detached: never erased, never freed, skipped by GC and
   wear-leveling from then on.

Remap migration itself is fault-exempt: a victim holds at most one
block's worth of valid slots and the fresh spare can absorb all of them,
so exempting the migration programs keeps every retirement a bounded,
always-terminating operation (the real-world analogue is the controller
retrying migrations internally until they stick).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..geometry import PageKind
from ..ops import FlashOp, FlashOpType
from .blocks import Block, Plane
from .mapping import PageMapping, PhysicalLocation


class BadBlockManager:
    """Spare-pool accounting and the retire-and-remap operation.

    One manager per FTL.  ``spare_blocks_per_plane`` is the replacement
    budget for each (plane, page-kind) pool; exhausting it models a
    device at end of life, surfaced as ``SparePoolExhausted``.
    """

    def __init__(self, spare_blocks_per_plane: int) -> None:
        self.spare_blocks_per_plane = spare_blocks_per_plane
        self._spares_used: Dict[Tuple[int, PageKind], int] = {}
        #: Counters mirrored into :class:`repro.emmc.stats.DeviceStats`.
        self.retired = 0
        self.spares_consumed = 0
        self.migrated_slots = 0

    def spares_remaining(self, plane: Plane, kind: PageKind) -> int:
        """Spare blocks still available for this (plane, kind) pool."""
        used = self._spares_used.get((plane.plane_id, kind), 0)
        return self.spare_blocks_per_plane - used

    def retire(
        self,
        plane: Plane,
        kind: PageKind,
        victim: Block,
        allocator,
        mapping: PageMapping,
    ) -> List[FlashOp]:
        """Swap in a spare, migrate ``victim``'s valid data, mark it bad.

        Returns the flash ops of the remap migration (reads + programs of
        the surviving slots).  The failing program/erase op itself is the
        caller's to account -- it already consumed bus/die time.
        """
        # Importing lazily keeps repro.emmc importable without the faults
        # package on the path (the dependency only exists at fault time).
        from repro.faults.plan import SparePoolExhausted

        key = (plane.plane_id, kind)
        if self.spares_remaining(plane, kind) <= 0:
            raise SparePoolExhausted(
                f"plane {plane.plane_id} exhausted its {self.spare_blocks_per_plane} "
                f"spare {kind} blocks"
            )
        self._spares_used[key] = self._spares_used.get(key, 0) + 1
        self.spares_consumed += 1
        plane.add_spare_block(kind)

        # The victim may be the active block (a program just failed on
        # it); detach it so migration never allocates into it.
        if plane.active_block[kind] == victim.block_id:
            plane.active_block[kind] = None

        ops: List[FlashOp] = []
        entries = victim.valid_entries()
        pages_with_valid = sorted({page for page, _, _ in entries})
        slot_bytes = kind.bytes // kind.slots
        for page in pages_with_valid:
            valid_here = sum(1 for p, _, _ in entries if p == page)
            ops.append(
                FlashOp(FlashOpType.READ, plane.plane_id, kind, valid_here * slot_bytes, gc=True)
            )
        lpns = [lpn for _, _, lpn in entries]
        for start in range(0, len(lpns), kind.slots):
            chunk = lpns[start : start + kind.slots]
            padded = tuple(chunk) + (None,) * (kind.slots - len(chunk))
            block, _ = allocator.allocate(plane, kind)
            page_index = block.program(padded)
            for slot, lpn in enumerate(padded):
                if lpn is None:
                    continue
                old = mapping.update(
                    lpn,
                    PhysicalLocation(plane.plane_id, kind, block.block_id, page_index, slot),
                )
                if old is None or old.block_id != victim.block_id:
                    raise RuntimeError("remap migrated an LPN that moved underneath it")
            ops.append(FlashOp(FlashOpType.PROGRAM, plane.plane_id, kind, kind.bytes, gc=True))
        for page, slot, _ in entries:
            victim.invalidate(page, slot)

        plane.retire_block(kind, victim.block_id)
        self.retired += 1
        self.migrated_slots += len(entries)
        return ops
