"""Flash block and plane state for the page-mapping FTL."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..geometry import Geometry, PageKind


class OutOfSpaceError(RuntimeError):
    """A plane ran out of reclaimable space (nothing left for GC to free)."""


@dataclass
class Block:
    """One erase block: fixed page kind, append-only write pointer.

    Each physical page holds ``kind.slots`` 4 KB logical sub-pages; a slot
    stores the logical page number (LPN) it holds, or ``None`` when the slot
    is invalid (stale data) or padding (never valid).
    """

    block_id: int
    kind: PageKind
    pages_per_block: int
    erase_count: int = 0
    write_ptr: int = 0
    valid_count: int = 0
    slots: List[Tuple[Optional[int], ...]] = field(default_factory=list)
    #: Retired by bad-block management (program/erase failure).  Bad
    #: blocks stay in the pool list (ids are positions) but hold no valid
    #: data, are never free, never active, never a GC victim, and are
    #: excluded from wear statistics.
    is_bad: bool = False

    @property
    def is_full(self) -> bool:
        """True when every page has been programmed."""
        return self.write_ptr >= self.pages_per_block

    @property
    def free_pages(self) -> int:
        """Pages still programmable in this block."""
        return self.pages_per_block - self.write_ptr

    @property
    def invalid_count(self) -> int:
        """Slots that were programmed but no longer hold valid data."""
        return self.write_ptr * self.kind.slots - self.valid_count

    def program(self, lpns: Tuple[Optional[int], ...]) -> int:
        """Program the next page with the given slot contents.

        ``lpns`` must have exactly ``kind.slots`` entries; ``None`` entries
        are padding.  Returns the programmed page index.
        """
        if self.is_bad:
            raise RuntimeError(f"block {self.block_id} is retired (bad)")
        if self.is_full:
            raise RuntimeError(f"block {self.block_id} is full")
        if len(lpns) != self.kind.slots:
            raise ValueError(f"expected {self.kind.slots} slots, got {len(lpns)}")
        page = self.write_ptr
        self.slots.append(tuple(lpns))
        self.valid_count += sum(1 for lpn in lpns if lpn is not None)
        self.write_ptr += 1
        return page

    def invalidate(self, page: int, slot: int) -> None:
        """Mark one slot stale (its LPN was overwritten or trimmed)."""
        current = self.slots[page]
        if current[slot] is None:
            raise RuntimeError(
                f"slot {slot} of page {page} in block {self.block_id} already invalid"
            )
        updated = list(current)
        updated[slot] = None
        self.slots[page] = tuple(updated)
        self.valid_count -= 1

    def valid_entries(self) -> List[Tuple[int, int, int]]:
        """All valid (page, slot, lpn) triples, in program order."""
        return [
            (page, slot, lpn)
            for page, slots in enumerate(self.slots)
            for slot, lpn in enumerate(slots)
            if lpn is not None
        ]

    def erase(self) -> None:
        """Erase the block (must hold no valid data); bumps the cycle count."""
        if self.valid_count:
            raise RuntimeError(
                f"erasing block {self.block_id} with {self.valid_count} valid slots"
            )
        self.slots.clear()
        self.write_ptr = 0
        self.erase_count += 1


@dataclass
class Plane:
    """One plane: per-kind block pools, free lists and active blocks."""

    plane_id: int
    blocks: Dict[PageKind, List[Block]] = field(default_factory=dict)
    free_blocks: Dict[PageKind, List[int]] = field(default_factory=dict)
    active_block: Dict[PageKind, Optional[int]] = field(default_factory=dict)

    @classmethod
    def create(cls, plane_id: int, geometry: Geometry) -> "Plane":
        """Build a plane with full free pools per the geometry."""
        plane = cls(plane_id=plane_id)
        for kind in geometry.kinds():
            count = geometry.blocks_per_plane[kind]
            pages = geometry.pages_for(kind)
            plane.blocks[kind] = [
                Block(block_id=index, kind=kind, pages_per_block=pages)
                for index in range(count)
            ]
            plane.free_blocks[kind] = list(range(count))
            plane.active_block[kind] = None
        return plane

    def block(self, kind: PageKind, block_id: int) -> Block:
        """The block of ``kind`` with id ``block_id``."""
        return self.blocks[kind][block_id]

    def free_count(self, kind: PageKind) -> int:
        """Number of free blocks of ``kind``."""
        return len(self.free_blocks[kind])

    def take_free_block(self, kind: PageKind) -> Block:
        """Pop the free block with the lowest erase count (wear-aware)."""
        free = self.free_blocks[kind]
        if not free:
            raise OutOfSpaceError(
                f"plane {self.plane_id} has no free {kind} blocks"
            )
        pool = self.blocks[kind]
        # First position with the minimal erase count, as a C-level min +
        # index over a plain int list (a keyed min pays a Python call per
        # candidate, and free pools run to tens of thousands of blocks).
        counts = [pool[block_id].erase_count for block_id in free]
        best_position = counts.index(min(counts))
        block_id = free.pop(best_position)
        return pool[block_id]

    def gc_candidates(self, kind: PageKind) -> List[Block]:
        """Blocks eligible as GC victims: full, not free, not active, not bad."""
        free = set(self.free_blocks[kind])
        active = self.active_block[kind]
        return [
            block
            for block in self.blocks[kind]
            if block.is_full
            and not block.is_bad
            and block.block_id not in free
            and block.block_id != active
        ]

    def add_spare_block(self, kind: PageKind) -> Block:
        """Grow the pool with one fresh spare block (bad-block remap).

        Block ids are positions in the pool list, so the spare is appended
        with ``block_id == len(pool)`` and goes straight to the free list.
        """
        pool = self.blocks[kind]
        if not pool:
            raise ValueError(f"plane {self.plane_id} has no {kind} pool to grow")
        spare = Block(
            block_id=len(pool), kind=kind, pages_per_block=pool[0].pages_per_block
        )
        pool.append(spare)
        self.free_blocks[kind].append(spare.block_id)
        return spare

    def retire_block(self, kind: PageKind, block_id: int) -> Block:
        """Mark a block bad and detach it from free/active bookkeeping.

        The caller must already have migrated (and invalidated) any valid
        data; a retired block is never erased and never rejoins the pool.
        """
        block = self.blocks[kind][block_id]
        if block.valid_count:
            raise RuntimeError(
                f"retiring block {block_id} with {block.valid_count} valid slots"
            )
        block.is_bad = True
        try:
            self.free_blocks[kind].remove(block_id)
        except ValueError:
            pass
        if self.active_block[kind] == block_id:
            self.active_block[kind] = None
        return block

    def total_free_pages(self, kind: PageKind) -> int:
        """Pages still programmable without reclaiming anything."""
        pages = self.free_count(kind) * (
            self.blocks[kind][0].pages_per_block if self.blocks[kind] else 0
        )
        active = self.active_block[kind]
        if active is not None:
            pages += self.blocks[kind][active].free_pages
        return pages
