"""HPS structure helpers (Fig. 10: the structure of an HPS die).

The hybrid-page-size idea: every block keeps a single page size and the
same page count, but a plane mixes blocks of different page sizes, so the
request distributor can steer 8 KB-aligned sub-requests to 8 KB-page blocks
and odd 4 KB tails to 4 KB-page blocks -- large requests enjoy the big
pages' better per-byte program time while small requests avoid both the
write-latency and the space penalty of padding.
"""

from __future__ import annotations

from typing import Dict, List

from .device import DeviceConfig
from .geometry import PageKind


def plane_layout(config: DeviceConfig) -> Dict[PageKind, int]:
    """Blocks per plane by page kind."""
    return dict(config.geometry.blocks_per_plane)


def describe_die(config: DeviceConfig) -> str:
    """ASCII rendition of one die's plane layout (Fig. 10 analogue)."""
    geometry = config.geometry
    lines: List[str] = [f"{config.name} die: {geometry.planes_per_die} planes"]
    for plane in range(geometry.planes_per_die):
        lines.append(f"  plane {plane}:")
        for kind in geometry.kinds():
            count = geometry.blocks_per_plane[kind]
            lines.append(
                f"    {count:5d} blocks x {geometry.pages_per_block} pages x {kind} "
                f"({count * geometry.pages_per_block * kind.bytes // (1024 * 1024)} MiB)"
            )
    lines.append(f"  plane capacity: {geometry.plane_bytes() // (1024 * 1024)} MiB")
    return "\n".join(lines)


def capacity_matches(*configs: DeviceConfig) -> bool:
    """Table V sanity: all schemes must expose the same total capacity."""
    capacities = {config.geometry.capacity_bytes() for config in configs}
    return len(capacities) == 1
