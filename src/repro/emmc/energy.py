"""Energy accounting for the device model (Characteristic 4's other half).

The paper's power observations are qualitative: the device drops into a
low-power mode after an idle threshold, and waking up costs latency.  This
module adds the energy side so the threshold trade-off can be studied: a
short threshold saves idle energy but wakes (and stalls) often; a long one
keeps the device hot.

Power draw is modelled per activity with typical eMMC-class magnitudes
(order-of-magnitude realistic; all knobs are configurable):

* flash array busy: read / program / erase rails,
* channel transfers,
* active idle (controller awake, nothing in flight),
* low-power mode (retention only),
* a fixed energy cost per wake-up (voltage ramp, re-init).
"""

from __future__ import annotations

from dataclasses import dataclass

from .stats import DeviceStats


@dataclass(frozen=True)
class EnergyParams:
    """Power rails in milliwatts and per-event costs in microjoules."""

    read_mw: float = 30.0
    program_mw: float = 60.0
    erase_mw: float = 45.0
    transfer_mw: float = 20.0
    active_idle_mw: float = 25.0
    low_power_mw: float = 0.5
    wakeup_uj: float = 50.0

    def __post_init__(self) -> None:
        for value in (self.read_mw, self.program_mw, self.erase_mw,
                      self.transfer_mw, self.active_idle_mw,
                      self.low_power_mw, self.wakeup_uj):
            if value < 0:
                raise ValueError("energy parameters must be non-negative")


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one replay, microjoules."""

    read_uj: float
    program_uj: float
    erase_uj: float
    transfer_uj: float
    active_idle_uj: float
    low_power_uj: float
    wakeup_uj: float

    @property
    def total_uj(self) -> float:
        """Total energy, microjoules."""
        return (
            self.read_uj + self.program_uj + self.erase_uj + self.transfer_uj
            + self.active_idle_uj + self.low_power_uj + self.wakeup_uj
        )

    @property
    def total_mj(self) -> float:
        """Total energy, millijoules."""
        return self.total_uj / 1000.0

    @property
    def idle_share(self) -> float:
        """Fraction of total energy spent while no request was in flight."""
        if self.total_uj == 0:
            return 0.0
        return (self.active_idle_uj + self.low_power_uj) / self.total_uj


def _mw_us_to_uj(milliwatts: float, microseconds: float) -> float:
    # 1 mW * 1 us = 1 nJ = 1e-3 uJ.
    return milliwatts * microseconds / 1000.0


def energy_report(stats: DeviceStats, params: EnergyParams = EnergyParams()) -> EnergyReport:
    """Compute the energy breakdown from a replay's busy-time counters."""
    return EnergyReport(
        read_uj=_mw_us_to_uj(params.read_mw, stats.busy_read_us),
        program_uj=_mw_us_to_uj(params.program_mw, stats.busy_program_us),
        erase_uj=_mw_us_to_uj(params.erase_mw, stats.busy_erase_us),
        transfer_uj=_mw_us_to_uj(params.transfer_mw, stats.busy_transfer_us),
        active_idle_uj=_mw_us_to_uj(params.active_idle_mw, stats.active_idle_us),
        low_power_uj=_mw_us_to_uj(params.low_power_mw, stats.low_power_us),
        wakeup_uj=params.wakeup_uj * stats.wakeups,
    )
