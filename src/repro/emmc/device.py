"""The simulated eMMC device: an event-driven timing engine on ``repro.sim``.

The device serves one host request at a time (eMMC's single command queue;
the paper's high NoWait ratios show real workloads rarely need higher
depths), but executes each request's flash operations with full internal
parallelism: channels transfer concurrently, and every plane can
read/program independently while its channel is free.  Garbage collection
triggered by a write extends that write's service time (foreground GC);
with ``idle_gc`` enabled, collections run during long inter-arrival gaps
instead (Implication 2).

Structure (one :class:`repro.sim.EventLoop` per device):

* Host requests enter as ``ARRIVAL`` events (:meth:`EmmcDevice.arrive`);
  the synchronous :meth:`submit` is a thin closed-loop wrapper that runs
  the kernel up to the arrival instant.
* Admission (who may dispatch when) lives in
  :class:`repro.sim.AdmissionQueue`, parameterized by ``queue_depth``.
* The timing engine reserves windows on serially-reusable
  :class:`repro.sim.ResourceTimeline` objects -- one controller, one per
  channel, one per die (or per plane with ``multi_plane``).
* Idle-time GC and the power-down transition are ``IDLE_GC`` /
  ``POWER_DOWN`` timer events armed after every request and canceled by
  the next arrival, instead of gap checks bolted onto the next dispatch.

Because service is FIFO with no preemption, each request's full schedule
is fixed at dispatch; the device therefore computes finish times eagerly
at the arrival event and posts a ``COMPLETE`` event for observers.  That
eager evaluation is provably order-identical to stepping one event per
resource grant, and keeps ``queue_depth=1`` replay bit-identical to the
old inline arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional

from repro.sim import (
    AdmissionQueue,
    Event,
    EventKind,
    EventLoop,
    Host,
    ResourcePool,
    ResourceTimeline,
)
from repro.telemetry import Telemetry
from repro.telemetry.decomposition import decompose_request
from repro.trace import Request, SECTOR, Trace

from .cache import RamBuffer
from .distributor import RequestDistributor
from .ftl import Ftl, GreedyGC, StaticWearLeveler, VictimPolicy
from .geometry import Geometry, PageKind
from .latency import LatencyParams
from .ops import FlashOp, FlashOpType, WriteGroup
from .power import PowerModel
from .stats import DeviceStats


@dataclass(frozen=True)
class DeviceConfig:
    """Everything needed to build an :class:`EmmcDevice`."""

    name: str
    geometry: Geometry
    latency: LatencyParams = field(default_factory=LatencyParams)
    gc_threshold_blocks: int = 2
    idle_gc: bool = False
    idle_gc_min_gap_us: float = 200_000.0
    idle_gc_soft_threshold: int = 8
    ram_buffer_bytes: int = 0
    preload_kind: Optional[PageKind] = None
    #: Multi-plane advanced commands: when True every plane is an
    #: independent read/program unit; when False (the default, matching
    #: Implication 1's "cannot be processed in a complete parallel
    #: manner") the die is the busy unit.
    multi_plane: bool = False
    #: Outstanding requests the host interface admits.  eMMC has a single
    #: command queue (depth 1); higher depths model the "parallel request
    #: queues at OS layer" idea that Implication 1 argues does not help.
    queue_depth: int = 1
    #: GC victim policy ("greedy" default, "fifo", "random").
    gc_policy: str = "greedy"
    #: Copy-back programming for GC migrations: valid pages move inside
    #: the plane without crossing the channel (an advanced command real
    #: eMMC parts support; off by default like the other advanced
    #: commands).
    gc_copyback: bool = False
    #: Static wear-leveling spread threshold; None disables it (the
    #: paper's Implication 4 default: dynamic-only is sufficient).
    static_wl_threshold: Optional[int] = None
    #: Address mapping scheme: "page" (default) or "hybrid-log" (a
    #: BAST-style block-mapped FTL with log blocks; 4K-only geometries).
    mapping_scheme: str = "page"
    #: Log-block pool size for the hybrid-log scheme.
    log_blocks: int = 8

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")

    def with_overrides(self, **changes) -> "DeviceConfig":
        """Copy with some fields replaced (ablation helper)."""
        return replace(self, **changes)


@dataclass
class ReplayResult:
    """A completed replay: the trace with device timestamps plus counters."""

    trace: Trace
    stats: DeviceStats
    config_name: str


@dataclass(frozen=True)
class RecoveryReport:
    """What one :meth:`EmmcDevice.recover` power-cycle did."""

    #: Simulated instant the power was cut (last fired event's time).
    cut_us: float
    #: Instant the device came back (cut + remount latency).
    resumed_us: float
    #: LPNs recovered by the FTL's flash scan (0 for FTLs without one).
    remapped_entries: int


class EmmcDevice:
    """Event-driven eMMC model (a light-weight SSD, per the paper)."""

    def __init__(
        self,
        config: DeviceConfig,
        kernel: Optional[EventLoop] = None,
        faults=None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.config = config
        self.geometry = config.geometry
        self.latency = config.latency
        for kind in self.geometry.kinds():
            self.latency.timing(kind)  # fail fast on missing latencies
        # ``faults`` is a duck-typed :class:`repro.faults.plan.FaultPlan`
        # (repro.emmc never imports the faults package -- it sits above).
        # An inactive plan (FaultPlan.none()) is dropped on the floor here,
        # so the no-fault device is structurally identical to one built
        # with no plan at all: no injector, no stream, no extra branch
        # taken anywhere in the replay path.
        self.fault_plan = faults
        self.faults = (
            faults.injector() if faults is not None and faults.device_active else None
        )
        if self.faults is not None and (
            self.faults.program_active or self.faults.erase_active
        ):
            if config.mapping_scheme != "page":
                raise ValueError(
                    "program/erase fault injection requires the page mapping "
                    f"scheme (got {config.mapping_scheme!r})"
                )
        if config.mapping_scheme == "page":
            self.ftl = Ftl(
                self.geometry,
                gc=GreedyGC(
                    config.gc_threshold_blocks, policy=VictimPolicy(config.gc_policy)
                ),
                preload_kind=config.preload_kind,
                wear_leveler=(
                    StaticWearLeveler(config.static_wl_threshold)
                    if config.static_wl_threshold is not None
                    else None
                ),
                faults=self.faults,
            )
        elif config.mapping_scheme == "hybrid-log":
            from .ftl.block_mapped import BlockMappedFtl

            self.ftl = BlockMappedFtl(self.geometry, log_blocks=config.log_blocks)
        else:
            raise ValueError(f"unknown mapping scheme {config.mapping_scheme!r}")
        self.distributor = RequestDistributor(self.geometry.kinds())
        self.power = PowerModel(
            power_threshold_us=config.latency.power_threshold_us,
            warmup_us=config.latency.warmup_us,
        )
        self.buffer: Optional[RamBuffer] = (
            RamBuffer(config.ram_buffer_bytes) if config.ram_buffer_bytes else None
        )
        self.stats = DeviceStats()

        # -- the event kernel and its schedulable state --------------------
        #: The discrete-event loop this device lives on.  Sharing one
        #: kernel between a device and its producers (the Android stack,
        #: concurrent app mixes) is what serializes out-of-order arrivals.
        self.kernel = kernel if kernel is not None else EventLoop()
        #: Host-interface admission: ``queue_depth`` slots.
        self.queue = AdmissionQueue(config.queue_depth)
        #: The FTL/controller is a single serialized resource.
        self.controller = ResourceTimeline("controller")
        #: One timeline per channel bus.
        self.channels = ResourcePool(self.geometry.channels, "channel")
        #: One timeline per busy unit: dies, or planes with multi_plane.
        units = (
            self.geometry.num_planes if config.multi_plane else self.geometry.num_dies
        )
        self.units = ResourcePool(units, "plane" if config.multi_plane else "die")
        # ``telemetry`` mirrors the fault-plan pattern: ``None`` (the
        # default) is structural absence -- no sink anywhere, no recording
        # branch taken while serving.  An attached sink is shared with the
        # kernel (event recording) and the FTL (GC/remap instants).
        self.telemetry = telemetry
        if telemetry is not None:
            self.kernel.telemetry = telemetry
            self.kernel._auto_sink = False
            attach = getattr(self.ftl, "attach_telemetry", None)
            if attach is not None:
                attach(telemetry, self.kernel.clock)
        #: Pending speculative timers (canceled by the next dispatch).
        self._idle_gc_timer: Optional[Event] = None
        self._power_down_timer: Optional[Event] = None
        self._arm_activity_timers()

    @property
    def capacity_bytes(self) -> int:
        """Raw device capacity in bytes."""
        return self.geometry.capacity_bytes()

    def describe(self) -> str:
        """One-paragraph status snapshot (geometry, activity, health)."""
        from .ftl.wear_leveling import collect_wear

        geometry = self.geometry
        lines = [
            f"{self.config.name}: {geometry.channels}ch x "
            f"{geometry.chips_per_channel}chip x {geometry.dies_per_chip}die x "
            f"{geometry.planes_per_die}plane, "
            f"{self.capacity_bytes // 2**30} GiB "
            f"({', '.join(f'{geometry.blocks_per_plane[k]}x{k}' for k in geometry.kinds())} "
            f"blocks/plane)",
            f"  served {self.stats.requests} requests "
            f"(MRT {self.stats.mean_response_ms:.2f} ms, "
            f"no-wait {self.stats.no_wait_ratio * 100:.1f}%)",
            f"  wrote {self.stats.data_bytes_written // 1024} KiB host data, "
            f"space utilization {self.stats.space_utilization:.3f}, "
            f"{self.stats.erases} erases, "
            f"{self.stats.gc_collections} foreground GC",
        ]
        planes = getattr(self.ftl, "planes", None)
        if planes is not None:
            wear = collect_wear(planes)
            lines.append(
                f"  wear: mean {wear.mean_erase:.2f} cycles/block, "
                f"spread {wear.spread}"
            )
        return "\n".join(lines)

    # -- the host interface -------------------------------------------------------

    def arrive(
        self,
        request: Request,
        on_complete: Optional[Callable[[Request], None]] = None,
        record_to: Optional[List[Request]] = None,
    ) -> Event:
        """Schedule ``request`` as an ``ARRIVAL`` event on the kernel.

        The request is served when the loop reaches its arrival time;
        ``record_to`` (if given) receives the timed request at that
        instant (submission order), while ``on_complete`` fires at the
        request's ``COMPLETE`` event (completion order).
        """

        def _on_arrival(event: Event) -> None:
            completed = self._serve(event.payload)
            if record_to is not None:
                record_to.append(completed)
            if on_complete is None:
                self.kernel.schedule(
                    completed.finish_us,
                    kind=EventKind.COMPLETE,
                    payload=completed,
                )
            else:
                self.kernel.schedule(
                    completed.finish_us,
                    self._fire_complete,
                    kind=EventKind.COMPLETE,
                    payload=(completed, on_complete),
                )

        return self.kernel.schedule(
            request.arrival_us, _on_arrival, kind=EventKind.ARRIVAL, payload=request
        )

    def _fire_complete(self, event: Event) -> None:
        """COMPLETE callback: hand the timed request to its observer.

        Exactly one COMPLETE event is scheduled per request, and the
        observer rides on that event's payload -- never wrapped a second
        time.  An attached telemetry sink sees the same completion
        through the kernel's event recording hook, not through another
        callback, so an observer and telemetry coexist without
        double-dispatch (regression-tested in
        ``tests/telemetry/test_host_observer.py``).
        """
        completed, observer = event.payload
        observer(completed)

    def submit(self, request: Request) -> Request:
        """Serve one request; returns it with device timestamps attached.

        Closed-loop convenience: schedules the arrival and runs the kernel
        up to (and including) the arrival instant, so any due completions
        and idle/power timers fire first.  Requests must be submitted in
        non-decreasing arrival order (the clock cannot move backwards).
        """
        box: List[Request] = []
        self.arrive(request, record_to=box)
        self.kernel.run_until(request.arrival_us)
        return box[0]

    def replay(self, trace: Trace) -> ReplayResult:
        """Serve every request of ``trace`` in arrival order.

        Returns the same trace with service-start and finish timestamps
        filled in, plus the device statistics -- the paper's replay
        methodology for Figs. 8 and 9.  Delegates to
        :class:`repro.sim.Host`, the open-loop front door.
        """
        return Host(self).replay(trace)

    # -- power-loss recovery -------------------------------------------------------

    def recover(self, at_us: Optional[float] = None) -> RecoveryReport:
        """Power-cycle the device: rebuild RAM state from flash, restart.

        Models what a real eMMC does on the remount after an abrupt power
        loss.  Everything volatile is discarded -- the event kernel (and
        any in-flight arrivals/completions/timers on it), the admission
        queue, the resource timelines, the RAM buffer's contents and the
        controller's mapping table -- and the mapping is re-derived by
        scanning flash (:meth:`Ftl.rebuild_mapping`).  Durable state
        (block contents, erase counts, bad-block marks, spare accounting)
        and replay-lifetime telemetry (``DeviceStats``, the fault
        injector's stream cursors) survive.

        ``at_us`` is the instant the device is back (defaults to the cut
        instant, i.e. a free remount); callers add their remount latency.
        The caller is responsible for re-arming any requests whose
        ``ARRIVAL`` event had not fired -- see
        :func:`repro.faults.replay.replay_with_faults`.
        """
        cut_us = self.kernel.now_us
        resume_us = cut_us if at_us is None else at_us
        if resume_us < cut_us:
            raise ValueError(
                f"cannot resume at {resume_us}us before the cut at {cut_us}us"
            )
        remapped = 0
        rebuild = getattr(self.ftl, "rebuild_mapping", None)
        if rebuild is not None:
            remapped = rebuild()
        if self.buffer is not None:
            self.buffer.power_cycle()
        self.kernel = self.kernel.successor(resume_us)
        self.queue = AdmissionQueue(self.config.queue_depth)
        self.controller = ResourceTimeline("controller")
        self.channels = ResourcePool(self.geometry.channels, "channel")
        units = (
            self.geometry.num_planes
            if self.config.multi_plane
            else self.geometry.num_dies
        )
        self.units = ResourcePool(units, "plane" if self.config.multi_plane else "die")
        self._idle_gc_timer = None
        self._power_down_timer = None
        self.power.reset_for_recovery(resume_us)
        self.stats.recoveries += 1
        if self.telemetry is not None:
            # Re-bind the FTL's event clock to the successor kernel and
            # mark the power cycle; the sink itself (spans recorded so
            # far) is replay-lifetime state and survives, like DeviceStats.
            attach = getattr(self.ftl, "attach_telemetry", None)
            if attach is not None:
                attach(self.telemetry, self.kernel.clock)
            self.telemetry.add_event(
                "recovery", resume_us, cat="power", track="power",
                args=remapped,
            )
        self._arm_activity_timers()
        return RecoveryReport(
            cut_us=cut_us, resumed_us=resume_us, remapped_entries=remapped
        )

    # -- serving one request (runs at its ARRIVAL event) ---------------------------

    def _serve(self, request: Request) -> Request:
        arrival = request.arrival_us
        dispatch = self.queue.admit(arrival)
        self._cancel_activity_timers()
        self._account_idle(dispatch)
        start = dispatch + self.power.wake(dispatch)
        ops, absorbed = self._expand(request)
        telemetry = self.telemetry
        legs = None if telemetry is None else []
        finish = self._schedule(ops, start, legs) if ops else start + self._absorbed_latency(absorbed)
        self._account(request, dispatch, finish, ops)
        self.queue.on_dispatch(finish)
        self.power.record_activity_end(finish)
        self.stats.wakeups = self.power.wakeups
        if self.faults is not None:
            self._sync_fault_stats()
        self._arm_activity_timers()
        if telemetry is not None:
            self._record_request_telemetry(
                telemetry, request, arrival, dispatch, start, finish, legs
            )
        return request.with_timing(service_start_us=dispatch, finish_us=finish)

    def _record_request_telemetry(
        self,
        telemetry: Telemetry,
        request: Request,
        arrival: float,
        dispatch: float,
        start: float,
        finish: float,
        legs: List[tuple],
    ) -> None:
        """Emit this request's span tree and exact latency decomposition.

        Pure observation: every number here was already computed by the
        serving path above; nothing is re-derived, reserved, or mutated,
        which is how telemetry-on stays bit-identical to telemetry-off.
        """
        rid = telemetry.add_span(
            "write" if request.is_write else "read",
            arrival,
            finish - arrival,
            cat="request",
            track="requests",
        )
        if dispatch > arrival:
            telemetry.add_span(
                "queue-wait", arrival, dispatch - arrival,
                cat="queue", track="requests", parent=rid,
            )
        if start > dispatch:
            telemetry.add_span(
                "wake-up", dispatch, start - dispatch,
                cat="power", track="requests", parent=rid,
            )
        unit_track = self.units.name
        gc_begin = gc_end = None
        for leg in legs:
            (gc, code, die, channel, issue_start, issue,
             unit_window, transfer_window, retries, op_finish) = leg
            cat = "gc" if gc else "flash"
            telemetry.add_span(
                "issue", issue_start, issue - issue_start,
                cat=cat, track="controller", parent=rid,
            )
            u0, u1 = unit_window
            telemetry.add_span(
                ("read", "program", "erase")[code], u0, u1 - u0,
                cat=cat, track=f"{unit_track}{die}", parent=rid,
            )
            prev = u1
            for attempt, (r0, r1) in enumerate(retries, start=1):
                telemetry.add_span(
                    f"ecc-backoff-{attempt}", prev, r0 - prev,
                    cat="fault", track=f"{unit_track}{die}", parent=rid,
                )
                telemetry.add_span(
                    "read-retry", r0, r1 - r0,
                    cat="fault", track=f"{unit_track}{die}", parent=rid,
                )
                prev = r1
            if transfer_window is not None:
                t0, t1 = transfer_window
                telemetry.add_span(
                    "xfer", t0, t1 - t0,
                    cat=cat, track=f"channel{channel}", parent=rid,
                )
            if gc:
                gc_begin = issue_start if gc_begin is None else min(gc_begin, issue_start)
                gc_end = op_finish if gc_end is None else max(gc_end, op_finish)
        if gc_begin is not None:
            telemetry.add_span(
                "gc", gc_begin, gc_end - gc_begin,
                cat="gc", track="requests", parent=rid,
            )
        telemetry.decompositions.append(
            decompose_request(arrival, dispatch, start, finish, legs)
        )

    def _sync_fault_stats(self) -> None:
        """Mirror the FTL-side fault counters into the device stats."""
        stats = self.stats
        stats.program_failures = getattr(self.ftl, "program_failures", 0)
        stats.erase_failures = getattr(getattr(self.ftl, "gc", None), "erase_failures", 0)
        bad = getattr(self.ftl, "bad_blocks", None)
        if bad is not None:
            stats.bad_blocks_retired = bad.retired
            stats.spare_blocks_consumed = bad.spares_consumed
            stats.remap_migrated_slots = bad.migrated_slots

    def _account_idle(self, dispatch: float) -> None:
        """Split the idle gap before this dispatch into power states."""
        gap = dispatch - self.power.last_activity_end_us
        if gap <= 0:
            return
        threshold = self.latency.power_threshold_us
        if gap > threshold:
            self.stats.active_idle_us += threshold
            self.stats.low_power_us += gap - threshold
        else:
            self.stats.active_idle_us += gap

    def _absorbed_latency(self, absorbed: bool) -> float:
        if absorbed and self.buffer is not None:
            return self.buffer.hit_latency_us
        return self.latency.command_overhead_us

    # -- request expansion --------------------------------------------------------

    def _expand(self, request: Request):
        """Turn a host request into flash ops (possibly via the RAM buffer)."""
        ops: List[FlashOp] = []
        absorbed = False
        if request.is_write:
            lpns = self.distributor.lpns_of(request)
            if self.buffer is not None:
                evicted = self.buffer.write(lpns)
                if evicted:
                    ops.extend(self._write_lpns(evicted))
                absorbed = not ops
                self.stats.data_bytes_written += request.size
            else:
                outcome = self.ftl.write(self.distributor.split_write(request))
                ops.extend(outcome.ops)
                self.stats.data_bytes_written += outcome.data_bytes
                self.stats.flash_bytes_consumed += outcome.flash_bytes
                self.stats.gc_collections += len(outcome.gc_results)
                self.stats.gc_migrated_slots += sum(
                    result.migrated_slots for result in outcome.gc_results
                )
        else:
            lpns = self.distributor.lpns_of(request)
            if self.buffer is not None:
                lpns = self.buffer.read(lpns)
                self.stats.cache_read_hits = self.buffer.stats.read_hits
                self.stats.cache_read_misses = self.buffer.stats.read_misses
                absorbed = not lpns
            if lpns:
                outcome = self.ftl.read(lpns)
                ops.extend(outcome.ops)
                self.stats.preloaded_pages += outcome.preloaded_pages
            self.stats.data_bytes_read += request.size
        return ops, absorbed

    def _write_lpns(self, lpns: List[int]) -> List[FlashOp]:
        """Flush buffered pages: pack into write groups like a host write."""
        groups: List[WriteGroup] = []
        large = self.distributor.largest
        index = 0
        while index + large.slots <= len(lpns):
            groups.append(WriteGroup(large, tuple(lpns[index : index + large.slots])))
            index += large.slots
        remainder = lpns[index:]
        if remainder:
            if self.distributor.hybrid or large.slots == 1:
                small = self.distributor.smallest
                groups.extend(WriteGroup(small, (lpn,)) for lpn in remainder)
            else:
                padded = tuple(remainder) + (None,) * (large.slots - len(remainder))
                groups.append(WriteGroup(large, padded))
        outcome = self.ftl.write(groups)
        self.stats.flash_bytes_consumed += outcome.flash_bytes
        self.stats.gc_collections += len(outcome.gc_results)
        return outcome.ops

    # -- timing engine --------------------------------------------------------------

    def _schedule(
        self,
        ops: List[FlashOp],
        start: float,
        legs: Optional[List[tuple]] = None,
    ) -> float:
        """Reserve ops on the controller/channel/unit timelines; returns makespan end.

        Each op claims ``[start, end)`` windows in arrival order with no
        preemption -- ``ResourceTimeline.reserve`` is the very ``max()``
        arithmetic this method used to inline, so the numbers (and their
        floating-point rounding) are unchanged.

        ``legs`` (telemetry enabled only) receives one tuple per op in
        the :data:`repro.telemetry.decomposition` ``L_*`` layout --
        every reservation window this loop computes anyway, captured
        instead of discarded.  Recording never changes a reservation.
        """
        record = legs is not None
        finish = start
        for op in ops:
            channel = self.geometry.channel_of(op.plane)
            die = op.plane if self.config.multi_plane else self.geometry.die_of(op.plane)
            timing = self.latency.timing(op.kind)
            # Controller processing (mapping lookup, command issue) is a
            # single serialized resource -- the structural reason per-op
            # counts matter as much as bytes on eMMC-class hardware.
            issue_start, issue = self.controller.reserve(
                start, self.latency.ftl_overhead_us
            )
            copyback = self.config.gc_copyback and op.gc
            transfer_window = None
            retries: tuple = ()
            if op.op_type is FlashOpType.READ:
                code = 0
                unit_start, die_end = self.units.reserve(die, issue, timing.read_us)
                unit_window = (unit_start, die_end)
                uncorrectable = False
                if self.faults is not None and self.faults.read_active:
                    retry_windows = [] if record else None
                    die_end, uncorrectable = self._inject_read_faults(
                        die, die_end, timing, retry_windows
                    )
                    if record and retry_windows:
                        retries = tuple(retry_windows)
                if copyback or uncorrectable:
                    # Copyback: data stays in the plane's page register.
                    # Uncorrectable: there is no good data to transfer --
                    # the command completes with an ECC error status.
                    op_finish = die_end
                else:
                    transfer_start, transfer_end = self.channels.reserve(
                        channel, die_end, self.latency.transfer_us(op.payload_bytes)
                    )
                    transfer_window = (transfer_start, transfer_end)
                    op_finish = transfer_end
                    self.stats.busy_transfer_us += transfer_end - transfer_start
                self.stats.busy_read_us += timing.read_us
                self.stats.record_op_counts(op.kind, reads=1)
            elif op.op_type is FlashOpType.PROGRAM:
                code = 1
                if copyback:
                    unit_start, die_end = self.units.reserve(
                        die, issue, timing.program_us
                    )
                    op_finish = die_end
                else:
                    transfer_start, transfer_end = self.channels.reserve(
                        channel, issue, self.latency.transfer_us(op.payload_bytes)
                    )
                    transfer_window = (transfer_start, transfer_end)
                    unit_start, die_end = self.units.reserve(
                        die, transfer_end, timing.program_us
                    )
                    op_finish = die_end
                    self.stats.busy_transfer_us += transfer_end - transfer_start
                unit_window = (unit_start, die_end)
                self.stats.busy_program_us += timing.program_us
                self.stats.record_op_counts(op.kind, programs=1)
            else:  # ERASE
                code = 2
                unit_start, die_end = self.units.reserve(
                    die, issue, self.latency.erase_us
                )
                unit_window = (unit_start, die_end)
                op_finish = die_end
                self.stats.erases += 1
                self.stats.busy_erase_us += self.latency.erase_us
            if record:
                legs.append((
                    op.gc, code, die, channel, issue_start, issue,
                    unit_window, transfer_window, retries, op_finish,
                ))
            if op_finish > finish:
                finish = op_finish
        return finish

    def _inject_read_faults(
        self, die: int, die_end: float, timing, retry_windows=None
    ):
        """Bounded ECC-retry loop for one page read; returns (end, fatal).

        Each failed attempt is retried after a linearly growing backoff
        (``attempt * read_retry_backoff_us``), modeled as a fresh die
        reservation plus a ``FAULT_RETRY`` kernel event at the retry's
        start -- so retries are visible in the recorded event trace and
        extend the request's service time through the ordinary timeline
        arithmetic.  After ``read_retry_limit`` failed retries the read is
        declared uncorrectable (the caller skips the data transfer).

        ``retry_windows`` (telemetry enabled only) receives each retry
        read's reserved ``(start, end)`` window.
        """
        failures = self.faults.read_failures()
        if failures == 0:
            return die_end, False
        plan = self.faults.plan
        retries = min(failures, plan.read_retry_limit)
        for attempt in range(1, retries + 1):
            backoff = attempt * plan.read_retry_backoff_us
            start, die_end = self.units.reserve(die, die_end + backoff, timing.read_us)
            self.kernel.schedule(
                start, kind=EventKind.FAULT_RETRY, label=f"ecc-retry-{attempt}"
            )
            if retry_windows is not None:
                retry_windows.append((start, die_end))
            self.stats.read_retries += 1
            self.stats.read_retry_backoff_us += backoff
            self.stats.busy_read_us += timing.read_us
        if failures > plan.read_retry_limit:
            self.stats.uncorrectable_reads += 1
            return die_end, True
        self.stats.corrected_reads += 1
        return die_end, False

    # -- idle/power timers (Implication 2 + Characteristic 4) -------------------------

    def _arm_activity_timers(self) -> None:
        """Arm the speculative "nothing else happens" timers.

        Scheduled relative to the last activity end; the next arrival
        cancels whichever have not fired.  The kernel's tie-break
        priorities reproduce the old gap comparisons exactly: IDLE_GC
        beats a same-instant arrival (the old check was ``gap >=
        min_gap``), POWER_DOWN loses to one (the old check was strictly
        ``gap > threshold``).
        """
        last_end = self.power.last_activity_end_us
        if self.config.idle_gc:
            self._idle_gc_timer = self.kernel.schedule(
                last_end + self.config.idle_gc_min_gap_us,
                self._fire_idle_gc,
                kind=EventKind.IDLE_GC,
            )
        self._power_down_timer = self.kernel.schedule(
            self.power.sleep_deadline_us,
            self._fire_power_down,
            kind=EventKind.POWER_DOWN,
        )

    def _cancel_activity_timers(self) -> None:
        """A dispatch happened: pending idle/power deadlines are moot."""
        if self._idle_gc_timer is not None:
            self.kernel.cancel(self._idle_gc_timer)
            self._idle_gc_timer = None
        if self._power_down_timer is not None:
            self.kernel.cancel(self._power_down_timer)
            self._power_down_timer = None

    def _fire_idle_gc(self, event: Event) -> None:
        """The device has been idle ``idle_gc_min_gap_us``: collect now."""
        self._idle_gc_timer = None
        results = self.ftl.idle_collect(self.config.idle_gc_soft_threshold)
        if results:
            self.stats.idle_gc_collections += len(results)
            self.stats.erases += len(results)
            for result in results:
                for op in result.ops:
                    if op.op_type is FlashOpType.READ:
                        self.stats.record_op_counts(op.kind, reads=1)
                    elif op.op_type is FlashOpType.PROGRAM:
                        self.stats.record_op_counts(op.kind, programs=1)
        if self.telemetry is not None and results:
            self.telemetry.add_event(
                "idle-gc", event.time_us, cat="gc", track="power",
                args=len(results),
            )

    def _fire_power_down(self, event: Event) -> None:
        """The device has been idle ``power_threshold_us``: power down."""
        self._power_down_timer = None
        self.power.sleep(event.time_us)
        if self.telemetry is not None:
            self.telemetry.add_event(
                "power-down", event.time_us, cat="power", track="power"
            )

    # -- accounting --------------------------------------------------------------------

    def _account(
        self, request: Request, dispatch: float, finish: float, ops: List[FlashOp]
    ) -> None:
        stats = self.stats
        stats.requests += 1
        wait = dispatch - request.arrival_us
        stats.wait_us.append(wait)
        stats.service_us.append(finish - dispatch)
        stats.response_us.append(finish - request.arrival_us)
        if wait <= 1e-9:
            stats.no_wait_requests += 1


def build_device(config: DeviceConfig) -> EmmcDevice:
    """Construct a fresh (brand-new, fully erased) device."""
    return EmmcDevice(config)
