"""Physical geometry of the simulated eMMC device.

Mirrors SSDsim's hierarchy (the paper's simulator substrate): the device has
``channels x chips x dies x planes``, each plane holds blocks, each block
holds pages.  The HPS extension (Section V) allows *blocks of different page
sizes inside one plane*: all pages in a block share one size, but a plane may
hold both 4 KB-page blocks and 8 KB-page blocks (Fig. 10).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.trace import SECTOR


class PageKind(enum.Enum):
    """Flash page size class of a block, plus its cell mode.

    ``K4_SLC`` models the paper's Implication 5: an MLC block operated in
    SLC mode (using only the fast pages) serves 4 KB requests with
    SLC-like latency at the cost of half the block's capacity.
    """

    K4 = (4096, "mlc")
    K8 = (8192, "mlc")
    K4_SLC = (4096, "slc")

    @property
    def bytes(self) -> int:
        """Page size in bytes."""
        return self.value[0]

    @property
    def mode(self) -> str:
        """Cell mode, ``"mlc"`` or ``"slc"``."""
        return self.value[1]

    @property
    def is_slc(self) -> bool:
        """True for blocks run in SLC mode (half the usable pages)."""
        return self.value[1] == "slc"

    @property
    def slots(self) -> int:
        """Number of 4 KB logical sub-pages one physical page holds."""
        return self.bytes // SECTOR

    def __str__(self) -> str:  # pragma: no cover - trivial
        suffix = "-SLC" if self.is_slc else ""
        return f"{self.bytes // 1024}K{suffix}"


@dataclass(frozen=True)
class Geometry:
    """Device shape (Table V's ``channel x chip x die x plane`` row).

    ``blocks_per_plane`` maps each page kind to the number of blocks of that
    kind inside every plane -- e.g. ``{K4: 1024}`` for the pure-4KB scheme or
    ``{K4: 512, K8: 256}`` for HPS.
    """

    channels: int = 2
    chips_per_channel: int = 1
    dies_per_chip: int = 2
    planes_per_die: int = 2
    blocks_per_plane: Dict[PageKind, int] = field(
        default_factory=lambda: {PageKind.K4: 1024}
    )
    pages_per_block: int = 1024

    def __post_init__(self) -> None:
        for count in (self.channels, self.chips_per_channel, self.dies_per_chip,
                      self.planes_per_die, self.pages_per_block):
            if count <= 0:
                raise ValueError("all geometry dimensions must be positive")
        if not self.blocks_per_plane or any(v <= 0 for v in self.blocks_per_plane.values()):
            raise ValueError("blocks_per_plane must have positive counts")

    @property
    def num_planes(self) -> int:
        """Total planes in the device."""
        return (
            self.channels
            * self.chips_per_channel
            * self.dies_per_chip
            * self.planes_per_die
        )

    @property
    def planes_per_channel(self) -> int:
        """Planes behind each channel."""
        return self.chips_per_channel * self.dies_per_chip * self.planes_per_die

    def channel_of(self, plane_index: int) -> int:
        """Channel a flat plane index belongs to.

        Planes are numbered channel-major: plane 0 is (channel 0, chip 0,
        die 0, plane 0), plane 1 is the *next channel's* first plane, and so
        on -- so round-robin allocation over flat plane indices stripes
        across channels first, maximizing bus parallelism (SSDsim's dynamic
        allocation, channel-first order).
        """
        if not 0 <= plane_index < self.num_planes:
            raise ValueError(f"plane index {plane_index} out of range")
        return plane_index % self.channels

    @property
    def num_dies(self) -> int:
        """Total dies in the device."""
        return self.channels * self.chips_per_channel * self.dies_per_chip

    def die_of(self, plane_index: int) -> int:
        """Flat die index of a plane.

        The die -- not the plane -- is the busy unit for reads, programs and
        erases: a cost-constrained eMMC controller issues no multi-plane
        advanced commands, which is the paper's Implication 1 observation
        that "multiple sub-requests split from a large-size request cannot
        be processed in a complete parallel manner".
        """
        channel, chip, die, _ = self.decompose(plane_index)
        return (channel * self.chips_per_channel + chip) * self.dies_per_chip + die

    def decompose(self, plane_index: int) -> Tuple[int, int, int, int]:
        """Flat plane index -> (channel, chip, die, plane)."""
        channel = plane_index % self.channels
        rest = plane_index // self.channels
        chip = rest % self.chips_per_channel
        rest //= self.chips_per_channel
        die = rest % self.dies_per_chip
        plane = rest // self.dies_per_chip
        return channel, chip, die, plane

    def pages_for(self, kind: PageKind) -> int:
        """Usable pages per block of ``kind``.

        SLC-mode blocks (Implication 5) expose only half the pages: the MLC
        cell stores one bit instead of two.
        """
        if kind.is_slc:
            return max(1, self.pages_per_block // 2)
        return self.pages_per_block

    def plane_bytes(self) -> int:
        """Capacity of one plane."""
        return sum(
            count * self.pages_for(kind) * kind.bytes
            for kind, count in self.blocks_per_plane.items()
        )

    def capacity_bytes(self) -> int:
        """Raw capacity of the whole device."""
        return self.num_planes * self.plane_bytes()

    def kinds(self) -> List[PageKind]:
        """Page kinds present, smallest first (SLC before MLC at a tie)."""
        return sorted(self.blocks_per_plane, key=lambda kind: (kind.bytes, kind.mode))
