"""Optional device RAM buffer (Implication 3 ablation).

The paper disables the simulator's RAM buffer for the Fig. 8/9 comparison
("The RAM buffer layer of the simulator is disabled to eliminate its
performance impact") and argues in Implication 3 that a large RAM buffer is
of little use because the workloads' localities are weak.  This module
provides the buffer so the ablation benchmarks can quantify that claim: an
LRU cache of 4 KB logical pages with write-back semantics.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List

from repro.trace import SECTOR


@dataclass
class CacheStats:
    """Hit/miss/flush counters of the RAM buffer."""
    read_hits: int = 0
    read_misses: int = 0
    write_absorbed: int = 0
    flushed_pages: int = 0

    @property
    def read_hit_rate(self) -> float:
        """Fraction of page reads served from the buffer."""
        total = self.read_hits + self.read_misses
        return self.read_hits / total if total else 0.0


@dataclass
class RamBuffer:
    """LRU write-back buffer of 4 KB logical pages.

    Attributes:
        capacity_bytes: buffer size; must hold at least one page.
        hit_latency_us: service latency for a request fully absorbed by the
            buffer.
    """

    capacity_bytes: int
    hit_latency_us: float = 50.0
    _pages: "OrderedDict[int, bool]" = field(default_factory=OrderedDict)  # lpn -> dirty
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.capacity_bytes < SECTOR:
            raise ValueError("buffer must hold at least one 4 KB page")

    @property
    def capacity_pages(self) -> int:
        """Buffer capacity in 4 KB pages."""
        return self.capacity_bytes // SECTOR

    def __len__(self) -> int:
        return len(self._pages)

    def power_cycle(self) -> None:
        """Drop the (volatile) contents on power loss; counters survive.

        Dirty pages are simply gone -- the host's view of data loss from
        an unflushed write-back buffer.  Hit/miss statistics are
        replay-lifetime telemetry and are kept.
        """
        self._pages.clear()

    def read(self, lpns: List[int]) -> List[int]:
        """Touch cached pages; return the LPNs that missed.

        Missed pages are *not* inserted (read data streams through; only
        writes populate the buffer), which keeps the model conservative for
        the Implication 3 claim.
        """
        misses: List[int] = []
        for lpn in lpns:
            if lpn in self._pages:
                self._pages.move_to_end(lpn)
                self.stats.read_hits += 1
            else:
                self.stats.read_misses += 1
                misses.append(lpn)
        return misses

    def write(self, lpns: List[int]) -> List[int]:
        """Absorb written pages; return dirty LPNs evicted (to be flushed)."""
        evicted: List[int] = []
        for lpn in lpns:
            if lpn in self._pages:
                self._pages.move_to_end(lpn)
                self._pages[lpn] = True
            else:
                self._pages[lpn] = True
            self.stats.write_absorbed += 1
            while len(self._pages) > self.capacity_pages:
                victim, dirty = self._pages.popitem(last=False)
                if dirty:
                    evicted.append(victim)
                    self.stats.flushed_pages += 1
        return evicted

    def flush_all(self) -> List[int]:
        """Drain every dirty page (device shutdown / sync)."""
        dirty = [lpn for lpn, is_dirty in self._pages.items() if is_dirty]
        self.stats.flushed_pages += len(dirty)
        self._pages.clear()
        return dirty
