"""Event-driven eMMC device simulator with the hybrid-page-size scheme."""

from .cache import CacheStats, RamBuffer
from .configs import (
    eight_ps,
    four_ps,
    hps,
    hps_slc,
    small_eight_ps,
    small_four_ps,
    small_hps,
    table_v_configs,
)
from .device import DeviceConfig, EmmcDevice, RecoveryReport, ReplayResult, build_device
from .distributor import RequestDistributor
from .energy import EnergyParams, EnergyReport, energy_report
from .ftl import (
    Ftl,
    GreedyGC,
    OutOfSpaceError,
    PageMapping,
    PhysicalLocation,
    StaticWearLeveler,
    VictimPolicy,
    WearStats,
    collect_wear,
)
from .geometry import Geometry, PageKind
from .structure import capacity_matches, describe_die, plane_layout
from .latency import LatencyParams, PageTiming, TABLE_V_TIMINGS
from .ops import FlashOp, FlashOpType, WriteGroup
from .power import PowerModel, PowerState
from .stats import DeviceStats

__all__ = [
    "CacheStats",
    "RamBuffer",
    "eight_ps",
    "four_ps",
    "hps",
    "hps_slc",
    "small_eight_ps",
    "small_four_ps",
    "small_hps",
    "table_v_configs",
    "DeviceConfig",
    "EmmcDevice",
    "RecoveryReport",
    "ReplayResult",
    "build_device",
    "RequestDistributor",
    "EnergyParams",
    "EnergyReport",
    "energy_report",
    "Ftl",
    "GreedyGC",
    "OutOfSpaceError",
    "PageMapping",
    "PhysicalLocation",
    "StaticWearLeveler",
    "VictimPolicy",
    "WearStats",
    "collect_wear",
    "Geometry",
    "PageKind",
    "capacity_matches",
    "describe_die",
    "plane_layout",
    "LatencyParams",
    "PageTiming",
    "TABLE_V_TIMINGS",
    "FlashOp",
    "FlashOpType",
    "WriteGroup",
    "PowerModel",
    "PowerState",
    "DeviceStats",
]
