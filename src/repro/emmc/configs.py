"""Device configurations: Table V's three schemes plus test-scale variants.

All three schemes share the geometry ``2 channels x 1 chip x 2 dies x
2 planes`` with 1,024 pages per block and a 32 GB total capacity; they
differ only in the per-plane block pools:

====  =========================================
4PS   1,024 blocks of 4 KB pages per plane
8PS   512 blocks of 8 KB pages per plane
HPS   512 4 KB-page blocks + 256 8 KB-page blocks per plane
====  =========================================
"""

from __future__ import annotations

from typing import Dict

from .device import DeviceConfig
from .geometry import Geometry, PageKind
from .latency import LatencyParams


def four_ps(**overrides) -> DeviceConfig:
    """The pure-4KB-page baseline (conventional eMMC structure)."""
    config = DeviceConfig(
        name="4PS",
        geometry=Geometry(blocks_per_plane={PageKind.K4: 1024}),
        latency=LatencyParams(),
    )
    return config.with_overrides(**overrides) if overrides else config


def eight_ps(**overrides) -> DeviceConfig:
    """The pure-8KB-page baseline (existing large-page architecture)."""
    config = DeviceConfig(
        name="8PS",
        geometry=Geometry(blocks_per_plane={PageKind.K8: 512}),
        latency=LatencyParams(),
    )
    return config.with_overrides(**overrides) if overrides else config


def hps(**overrides) -> DeviceConfig:
    """The hybrid-page-size scheme proposed by the paper (Fig. 10)."""
    config = DeviceConfig(
        name="HPS",
        geometry=Geometry(blocks_per_plane={PageKind.K4: 512, PageKind.K8: 256}),
        latency=LatencyParams(),
    )
    return config.with_overrides(**overrides) if overrides else config


def table_v_configs() -> Dict[str, DeviceConfig]:
    """The three schemes, keyed by their paper names."""
    return {"4PS": four_ps(), "8PS": eight_ps(), "HPS": hps()}


def hps_slc(**overrides) -> DeviceConfig:
    """HPS with its 4 KB blocks run in SLC mode (Implication 5 extension).

    Same die structure as :func:`hps`, but the 512 small-page blocks per
    plane operate as SLC: small requests get SLC-class latency at the cost
    of those blocks exposing half their pages -- the total capacity drops
    from 32 GB to 24 GB, the "performance gain ... at the cost of 50 %
    capacity loss" trade the paper describes for the SLC portion.
    """
    config = DeviceConfig(
        name="HPS-SLC",
        geometry=Geometry(blocks_per_plane={PageKind.K4_SLC: 512, PageKind.K8: 256}),
        latency=LatencyParams(),
    )
    return config.with_overrides(**overrides) if overrides else config


# -- scaled-down variants for fast tests and stress scenarios -------------------


def _small_geometry(blocks: Dict[PageKind, int], pages_per_block: int = 64) -> Geometry:
    return Geometry(
        channels=2,
        chips_per_channel=1,
        dies_per_chip=1,
        planes_per_die=2,
        blocks_per_plane=blocks,
        pages_per_block=pages_per_block,
    )


def small_four_ps(**overrides) -> DeviceConfig:
    """A tiny 4PS device (4 planes x 32 blocks x 64 pages x 4 KB = 32 MB)."""
    config = DeviceConfig(
        name="small-4PS", geometry=_small_geometry({PageKind.K4: 32})
    )
    return config.with_overrides(**overrides) if overrides else config


def small_eight_ps(**overrides) -> DeviceConfig:
    """A tiny 8PS device with the same capacity as :func:`small_four_ps`."""
    config = DeviceConfig(
        name="small-8PS", geometry=_small_geometry({PageKind.K8: 16})
    )
    return config.with_overrides(**overrides) if overrides else config


def small_hps(**overrides) -> DeviceConfig:
    """A tiny HPS device with the same capacity as :func:`small_four_ps`."""
    config = DeviceConfig(
        name="small-HPS",
        geometry=_small_geometry({PageKind.K4: 16, PageKind.K8: 8}),
    )
    return config.with_overrides(**overrides) if overrides else config
