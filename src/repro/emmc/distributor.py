"""The HPS request distributor (Section V-A).

"The request distributor splits a request into multiple pages. ... For
example, when the size of a write request is 20 KB, it will be divided into
two 8-KB sub-requests and one 4-KB sub-request."  On a pure 8 KB device the
same 20 KB write needs three 8 KB pages (24 KB of flash), wasting 4 KB --
the space-utilization loss Fig. 9 quantifies.

The split policy is derived from the page kinds the device geometry offers:

* only 4 KB blocks  -> every logical page gets its own 4 KB page (4PS);
* only 8 KB blocks  -> logical pages are paired into 8 KB pages, an odd
  trailing page padding half of its 8 KB page (8PS);
* both              -> pairs go to 8 KB pages, the odd trailing page to a
  4 KB page, so no padding is ever written (HPS).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.trace import Request, SECTOR

from .geometry import PageKind
from .ops import WriteGroup


class RequestDistributor:
    """Splits host requests into per-physical-page write groups."""

    def __init__(self, kinds: Sequence[PageKind]) -> None:
        if not kinds:
            raise ValueError("at least one page kind is required")
        self._kinds = sorted(kinds, key=lambda kind: kind.bytes)

    @property
    def smallest(self) -> PageKind:
        """Smallest page kind available."""
        return self._kinds[0]

    @property
    def largest(self) -> PageKind:
        """Largest page kind available."""
        return self._kinds[-1]

    @property
    def hybrid(self) -> bool:
        """True when both small and large pages are available (HPS)."""
        return len(self._kinds) > 1

    def lpns_of(self, request: Request) -> List[int]:
        """Logical 4 KB page numbers the request touches."""
        first = request.lba // SECTOR
        return list(range(first, first + request.pages))

    def split_write(self, request: Request) -> List[WriteGroup]:
        """Distribute a write request over physical pages."""
        if not request.is_write:
            raise ValueError("split_write needs a write request")
        lpns = self.lpns_of(request)
        large = self.largest
        if large.slots == 1:
            # Pure small-page device: one group per logical page.
            return [WriteGroup(large, (lpn,)) for lpn in lpns]
        groups: List[WriteGroup] = []
        index = 0
        while index + large.slots <= len(lpns):
            groups.append(WriteGroup(large, tuple(lpns[index : index + large.slots])))
            index += large.slots
        remainder = lpns[index:]
        if remainder:
            if self.hybrid:
                # HPS: the odd tail goes to small pages -- no padding.
                groups.extend(WriteGroup(self.smallest, (lpn,)) for lpn in remainder)
            else:
                # Pure large-page device: pad the last page.
                padded = tuple(remainder) + (None,) * (large.slots - len(remainder))
                groups.append(WriteGroup(large, padded))
        return groups

    def flash_bytes_for(self, request: Request) -> int:
        """Flash space the write consumes (Fig. 9's denominator)."""
        return sum(group.kind.bytes for group in self.split_write(request))
