"""Device power-state model (Characteristic 4).

"An eMMC device will enter into a low-power mode if the request
inter-arrival time is longer than its power-saving threshold. ... Frequent
mode switching, however, increases request mean response times."

The model is two-state: ACTIVE and LOW_POWER.  The device drops to
LOW_POWER after ``power_threshold_us`` of idleness; the first request after
that pays ``warmup_us`` before any flash op can start.  This is what gives
the low-arrival-rate applications (Idle, CallIn, CallOut, YouTube) their
elevated mean service times in Table IV.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class PowerState(enum.Enum):
    """Device power state: active or low-power."""
    ACTIVE = "active"
    LOW_POWER = "low-power"


@dataclass
class PowerModel:
    """Tracks idleness and charges wake-up latency.

    Two usage styles coexist:

    * *Arithmetic* (:meth:`state_at` / :meth:`wakeup_penalty`): derive the
      state from the idle gap at dispatch time.  This is the original
      closed-form model and remains the authority for the warm-up charge
      and the switch counters -- keeping the exact comparison
      ``gap > power_threshold_us`` is what keeps replay bit-identical.
    * *Event-driven* (:meth:`sleep` / :meth:`wake`): the device kernel
      schedules a ``POWER_DOWN`` timer at
      ``last_activity_end_us + power_threshold_us``; if no dispatch
      cancels it, :meth:`sleep` marks the transition, and the next
      dispatch calls :meth:`wake`.  The flag gives mid-simulation
      observability (``is_low_power``) that the closed form could only
      reconstruct after the fact.
    """

    power_threshold_us: float
    warmup_us: float
    _last_activity_end_us: float = 0.0
    wakeups: int = 0
    mode_switches: int = 0
    #: Event-driven state: True between a POWER_DOWN timer firing and the
    #: next dispatch's wake().
    _low_power: bool = False
    #: Telemetry: how many times the timer actually put the device down.
    low_power_entries: int = 0

    def state_at(self, now_us: float) -> PowerState:
        """Power state just before a request arriving at ``now_us``."""
        if now_us - self._last_activity_end_us > self.power_threshold_us:
            return PowerState.LOW_POWER
        return PowerState.ACTIVE

    def wakeup_penalty(self, dispatch_us: float) -> float:
        """Warm-up latency (0 when already active); call once per dispatch."""
        if self.state_at(dispatch_us) is PowerState.LOW_POWER:
            self.wakeups += 1
            self.mode_switches += 2  # down and back up
            return self.warmup_us
        return 0.0

    # -- event-driven transitions (driven by the device kernel) ----------------

    def sleep(self, now_us: float) -> None:
        """A POWER_DOWN timer fired: enter low-power mode at ``now_us``."""
        if not self._low_power:
            self._low_power = True
            self.low_power_entries += 1

    def wake(self, dispatch_us: float) -> float:
        """Charge the warm-up for a dispatch; clears the low-power flag.

        The returned penalty (and the switch counters) come from the same
        arithmetic as :meth:`wakeup_penalty`, so an event-driven device is
        charge-for-charge identical to the closed-form model.
        """
        penalty = self.wakeup_penalty(dispatch_us)
        self._low_power = False
        return penalty

    def reset_for_recovery(self, at_us: float) -> None:
        """A power-loss recovery finished at ``at_us``: restart ACTIVE.

        The remount is activity, so the idle clock restarts from the
        recovery instant (never moving backwards -- an eagerly accounted
        finish beyond the cut still counts).  The cumulative counters
        (wakeups, mode switches, low-power entries) survive: they are
        replay-lifetime telemetry, not volatile state.
        """
        self._low_power = False
        self._last_activity_end_us = max(self._last_activity_end_us, at_us)

    @property
    def is_low_power(self) -> bool:
        """Event-driven state: has a POWER_DOWN timer fired since activity?"""
        return self._low_power

    @property
    def sleep_deadline_us(self) -> float:
        """When the device will power down if nothing else happens."""
        return self._last_activity_end_us + self.power_threshold_us

    def record_activity_end(self, finish_us: float) -> None:
        """Note when the device last finished work."""
        self._last_activity_end_us = max(self._last_activity_end_us, finish_us)

    @property
    def last_activity_end_us(self) -> float:
        """When the device last finished work."""
        return self._last_activity_end_us
