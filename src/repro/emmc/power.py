"""Device power-state model (Characteristic 4).

"An eMMC device will enter into a low-power mode if the request
inter-arrival time is longer than its power-saving threshold. ... Frequent
mode switching, however, increases request mean response times."

The model is two-state: ACTIVE and LOW_POWER.  The device drops to
LOW_POWER after ``power_threshold_us`` of idleness; the first request after
that pays ``warmup_us`` before any flash op can start.  This is what gives
the low-arrival-rate applications (Idle, CallIn, CallOut, YouTube) their
elevated mean service times in Table IV.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class PowerState(enum.Enum):
    """Device power state: active or low-power."""
    ACTIVE = "active"
    LOW_POWER = "low-power"


@dataclass
class PowerModel:
    """Tracks idleness and charges wake-up latency."""

    power_threshold_us: float
    warmup_us: float
    _last_activity_end_us: float = 0.0
    wakeups: int = 0
    mode_switches: int = 0

    def state_at(self, now_us: float) -> PowerState:
        """Power state just before a request arriving at ``now_us``."""
        if now_us - self._last_activity_end_us > self.power_threshold_us:
            return PowerState.LOW_POWER
        return PowerState.ACTIVE

    def wakeup_penalty(self, dispatch_us: float) -> float:
        """Warm-up latency (0 when already active); call once per dispatch."""
        if self.state_at(dispatch_us) is PowerState.LOW_POWER:
            self.wakeups += 1
            self.mode_switches += 2  # down and back up
            return self.warmup_us
        return 0.0

    def record_activity_end(self, finish_us: float) -> None:
        """Note when the device last finished work."""
        self._last_activity_end_us = max(self._last_activity_end_us, finish_us)

    @property
    def last_activity_end_us(self) -> float:
        """When the device last finished work."""
        return self._last_activity_end_us
