"""``repro-fleet``: run, inspect and spot-check fleet simulations.

Three subcommands::

    repro-fleet run --devices 1000 --jobs 4 -o fleet/   # simulate a population
    repro-fleet stats fleet/                            # fleet rollup report
    repro-fleet show-device fleet/ 17 --resimulate      # one device, re-proved

``run`` accepts either a scenario JSON file (``--scenario``) or inline
population flags; mixes are ``name:weight`` lists, e.g. ``--apps
"Twitter:2,Web:1,Music:1"``.  ``show-device --resimulate`` re-runs the
device from the scenario embedded in the store manifest and compares its
stats digest bit-for-bit against the stored row -- the user-facing proof
of the fleet's per-device determinism contract.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from .executor import run_fleet, simulate_device
from .population import device_spec
from .report import DEFAULT_ERASE_BUDGET, DEFAULT_PERCENTILES, fleet_report
from .scenario import FleetScenario
from .store import FLEET_COLUMNS, FleetStoreError, open_fleet_store


def _parse_mix(text: str) -> Dict[str, float]:
    """``"Twitter:2,Web:1"`` (weight optional, default 1) -> mix dict."""
    mix: Dict[str, float] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if ":" in part:
            name, _, weight = part.rpartition(":")
            mix[name.strip()] = float(weight)
        else:
            mix[part] = 1.0
    if not mix:
        raise argparse.ArgumentTypeError(f"empty mix: {text!r}")
    return mix


def _parse_range(text: str) -> List[float]:
    """``"0.5:2"`` -> [0.5, 2.0]."""
    try:
        lo, _, hi = text.partition(":")
        return [float(lo), float(hi)]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected LO:HI, got {text!r}"
        ) from None


def _scenario_from_args(args: argparse.Namespace) -> FleetScenario:
    if args.scenario is not None:
        scenario = FleetScenario.load(args.scenario)
        if args.devices is not None:
            scenario = scenario.with_overrides(devices=args.devices)
        if args.seed is not None:
            scenario = scenario.with_overrides(seed=args.seed)
        return scenario
    kwargs: Dict[str, object] = {
        "devices": args.devices if args.devices is not None else 100,
        "name": args.name,
        "seed": args.seed if args.seed is not None else 0,
        "requests_per_device": args.requests,
    }
    if args.apps is not None:
        kwargs["apps"] = args.apps
    if args.configs is not None:
        kwargs["configs"] = args.configs
    if args.fault_profiles is not None:
        kwargs["fault_profiles"] = args.fault_profiles
    if args.rate_range is not None:
        kwargs["rate_factor_range"] = tuple(args.rate_range)
    if args.size_range is not None:
        kwargs["size_factor_range"] = tuple(args.size_range)
    return FleetScenario(**kwargs)  # type: ignore[arg-type]


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        scenario = _scenario_from_args(args)
    except (ValueError, OSError) as error:
        print(f"bad scenario: {error}", file=sys.stderr)
        return 2
    wall_sink = None
    if args.telemetry:
        from repro.telemetry import Telemetry

        wall_sink = Telemetry()
        wall_sink.meta["scenario"] = scenario.name
        wall_sink.meta["devices"] = scenario.devices
        wall_sink.meta["jobs"] = args.jobs
    print(f"fleet {scenario.name!r}: {scenario.describe()}")
    try:
        result = run_fleet(
            scenario,
            args.out,
            jobs=args.jobs,
            shard_devices=args.shard_devices,
            chunk_devices=args.chunk_devices,
            overwrite=args.force,
            wall_sink=wall_sink,
        )
    except FleetStoreError as error:
        print(str(error), file=sys.stderr)
        return 1
    rate = result.devices / result.wall_s if result.wall_s > 0 else 0.0
    print(
        f"simulated {result.devices} devices in {result.wall_s:.1f}s "
        f"({rate:.1f} devices/s, {result.shards} shards, "
        f"jobs={result.jobs}, speedup {result.speedup:.2f}x)"
    )
    print(f"fleet store written to {result.path}")
    if wall_sink is not None:
        from repro.telemetry import chrome_trace

        chrome_trace(wall_sink, args.telemetry)
        print(f"telemetry written to {args.telemetry}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    try:
        store = open_fleet_store(args.store)
        if args.verify:
            store.verify()
    except FleetStoreError as error:
        print(str(error), file=sys.stderr)
        return 1
    report = fleet_report(
        store,
        percentiles=tuple(args.percentiles),
        erase_budget=args.erase_budget,
    )
    if args.json:
        from dataclasses import asdict

        print(json.dumps(asdict(report), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0


def _cmd_show_device(args: argparse.Namespace) -> int:
    try:
        store = open_fleet_store(args.store)
        row = store.device_row(args.index)
    except (FleetStoreError, IndexError) as error:
        print(str(error), file=sys.stderr)
        return 1
    scenario = store.scenario()
    spec = device_spec(scenario, args.index)
    print(spec.describe())
    for name, _ in FLEET_COLUMNS:
        print(f"  {name:<22} {row[name]}")
    if not args.resimulate:
        return 0
    fresh = simulate_device(scenario, spec)
    mismatches = [
        name
        for name, _ in FLEET_COLUMNS
        if fresh.row[name] != row[name]
    ]
    if mismatches:
        print(
            f"re-simulation MISMATCH on columns: {', '.join(mismatches)}",
            file=sys.stderr,
        )
        return 1
    print(
        f"re-simulation matches: all {len(FLEET_COLUMNS)} columns equal, "
        f"stats digest {fresh.digest[:16]}.. bit-identical"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fleet",
        description="deterministic multi-device fleet simulation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate a device population into a fleet store")
    run.add_argument("--scenario", default=None, metavar="FILE.json",
                     help="load a FleetScenario JSON (inline flags override "
                          "devices/seed)")
    run.add_argument("--devices", type=int, default=None,
                     help="population size (default 100, or the scenario's)")
    run.add_argument("--name", default="fleet", help="scenario name")
    run.add_argument("--seed", type=int, default=None, help="base fleet seed")
    run.add_argument("--requests", type=int, default=400,
                     help="requests per device (inline scenarios)")
    run.add_argument("--apps", type=_parse_mix, default=None, metavar="MIX",
                     help='app mix, e.g. "Twitter:2,Web:1,Music:1"')
    run.add_argument("--configs", type=_parse_mix, default=None, metavar="MIX",
                     help='device-config mix, e.g. "small-4PS:3,small-HPS:1"')
    run.add_argument("--fault-profiles", type=_parse_mix, default=None,
                     metavar="MIX", help='fault-profile mix, e.g. "none:9,flaky:1"')
    run.add_argument("--rate-range", type=_parse_range, default=None,
                     metavar="LO:HI", help="per-device rate factor range "
                     "(log-uniform)")
    run.add_argument("--size-range", type=_parse_range, default=None,
                     metavar="LO:HI", help="per-device size factor range "
                     "(log-uniform)")
    run.add_argument("-o", "--out", required=True, metavar="DIR",
                     help="fleet store output directory")
    run.add_argument("-j", "--jobs", type=int, default=1,
                     help="worker processes (results are identical for any value)")
    run.add_argument("--shard-devices", type=int, default=32,
                     help="devices per worker task")
    run.add_argument("--chunk-devices", type=int, default=256,
                     help="devices per store chunk file")
    run.add_argument("-f", "--force", action="store_true",
                     help="replace an existing fleet store at the destination")
    run.add_argument("--telemetry", default=None, metavar="OUT.json",
                     help="record wall-clock shard spans as a Chrome trace")
    run.set_defaults(fn=_cmd_run)

    stats = sub.add_parser("stats", help="fleet-level rollup report")
    stats.add_argument("store", help="fleet store directory")
    stats.add_argument("--percentiles", type=lambda s: [float(x) for x in s.split(",")],
                       default=list(DEFAULT_PERCENTILES), metavar="P,P,...",
                       help="percentile grid across devices")
    stats.add_argument("--erase-budget", type=int, default=DEFAULT_ERASE_BUDGET,
                       help="P/E-cycle budget for end-of-life projection")
    stats.add_argument("--verify", action="store_true",
                       help="re-hash every chunk against the manifest first")
    stats.add_argument("--json", action="store_true",
                       help="also print the report as JSON")
    stats.set_defaults(fn=_cmd_stats)

    show = sub.add_parser(
        "show-device", help="one device's stored row (optionally re-proved)"
    )
    show.add_argument("store", help="fleet store directory")
    show.add_argument("index", type=int, help="device index")
    show.add_argument("--resimulate", action="store_true",
                      help="re-simulate the device from the embedded scenario "
                           "and compare bit-for-bit")
    show.set_defaults(fn=_cmd_show_device)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
