"""Chunked columnar fleet store -- ``repro/store``'s layout for devices.

A fleet store is a directory::

    fleet/
      fleet.json          # manifest: scenario, string tables, chunk index
      devices-00000.bin   # chunk: FLEET_COLUMNS arrays, column-major
      devices-00001.bin

Each chunk holds ``chunk_devices`` per-device rows (the last one fewer)
as concatenated little-endian column arrays in :data:`FLEET_COLUMNS`
order -- struct-of-arrays on disk, exactly like :mod:`repro.store` for
request traces and :mod:`repro.telemetry.spanstore` for spans.  Reads
memory-map one chunk at a time, so fleet analytics over arbitrarily
large populations run out of core.

Determinism: the manifest embeds the scenario (the store is
self-describing: ``show-device --resimulate`` needs nothing else), app /
config / fault-profile string tables in scenario-mix order, one SHA-256
per chunk, and no timestamps -- two runs of the same scenario produce
byte-identical directories regardless of ``--jobs`` or
``PYTHONHASHSEED`` (the CI fleet job compares manifests across both).
The manifest is written last via temp + ``os.replace``, so a crashed
run never leaves a directory that claims to be a complete fleet.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from types import TracebackType
from typing import Dict, Iterator, List, Optional, Tuple, Type, Union

import numpy as np

from .scenario import FleetScenario

#: Manifest file name inside a fleet-store directory.
FLEET_MANIFEST_NAME = "fleet.json"

_FORMAT = "repro-fleet-store"
_VERSION = 1

#: Per-device row schema: (column, little-endian dtype), in on-disk order.
#: ``*_id`` columns index the manifest's string tables (scenario-mix
#: order); ``stats_digest64`` is the leading 8 bytes of the device's
#: canonical :func:`repro.faults.replay.stats_digest`, the re-simulation
#: parity anchor.
FLEET_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("device_index", "<i8"),
    ("app_id", "<u4"),
    ("config_id", "<u4"),
    ("fault_id", "<u4"),
    ("rate_factor", "<f8"),
    ("size_factor", "<f8"),
    ("requests", "<i8"),
    ("duration_us", "<f8"),
    ("mean_response_us", "<f8"),
    ("mean_service_us", "<f8"),
    ("max_response_us", "<f8"),
    ("no_wait_requests", "<i8"),
    ("data_bytes_written", "<i8"),
    ("data_bytes_read", "<i8"),
    ("flash_bytes_consumed", "<i8"),
    ("gc_collections", "<i8"),
    ("idle_gc_collections", "<i8"),
    ("gc_migrated_slots", "<i8"),
    ("erases", "<i8"),
    ("max_erase", "<i8"),
    ("mean_erase", "<f8"),
    ("wakeups", "<i8"),
    ("low_power_us", "<f8"),
    ("energy_uj", "<f8"),
    ("read_retries", "<i8"),
    ("uncorrectable_reads", "<i8"),
    ("program_failures", "<i8"),
    ("erase_failures", "<i8"),
    ("bad_blocks_retired", "<i8"),
    ("fault_events", "<i8"),
    ("stats_digest64", "<u8"),
)

#: Column name -> dtype string, for quick lookups.
FLEET_DTYPES: Dict[str, str] = {name: dtype for name, dtype in FLEET_COLUMNS}

#: Default devices per chunk file (~66 KiB at 271 B/row).
DEFAULT_CHUNK_DEVICES = 256

#: A per-device row: column name -> Python scalar.
DeviceRow = Dict[str, Union[int, float]]


class FleetStoreError(RuntimeError):
    """A fleet store is missing, malformed, or fails verification."""


def _chunk_filename(index: int) -> str:
    return f"devices-{index:05d}.bin"


def _schema_as_json() -> List[List[str]]:
    return [[name, dtype] for name, dtype in FLEET_COLUMNS]


class FleetStoreWriter:
    """Incrementally write one fleet store directory, row batches in
    device-index order.

    The writer buffers at most ``chunk_devices`` rows before flushing a
    chunk file, so the executor's memory stays bounded by the shard
    size regardless of population size.
    """

    def __init__(
        self,
        path: Union[str, Path],
        scenario: FleetScenario,
        chunk_devices: int = DEFAULT_CHUNK_DEVICES,
        overwrite: bool = False,
    ) -> None:
        if chunk_devices <= 0:
            raise ValueError("chunk_devices must be positive")
        self.path = Path(path)
        self.scenario = scenario
        self.chunk_devices = int(chunk_devices)
        self._pending: List[DeviceRow] = []
        self._chunks: List[Dict[str, object]] = []
        self._rows_written = 0
        self._closed = False
        self.manifest: Optional[Dict[str, object]] = None
        self.path.mkdir(parents=True, exist_ok=True)
        manifest_file = self.path / FLEET_MANIFEST_NAME
        if manifest_file.exists():
            if not overwrite:
                raise FleetStoreError(
                    f"{self.path!s} already holds a fleet store "
                    "(pass overwrite=True to replace it)"
                )
            manifest_file.unlink()
            for stale in sorted(self.path.glob("devices-*.bin")):
                stale.unlink()

    @property
    def rows_written(self) -> int:
        """Rows already flushed to chunk files."""
        return self._rows_written

    def append_row(self, row: DeviceRow) -> None:
        """Queue one device's row (rows must arrive in device-index order)."""
        if self._closed:
            raise FleetStoreError("fleet writer is closed")
        expected = self._rows_written + len(self._pending)
        if int(row["device_index"]) != expected:
            raise FleetStoreError(
                f"rows must arrive in device-index order: got device "
                f"{row['device_index']}, expected {expected}"
            )
        missing = [name for name, _ in FLEET_COLUMNS if name not in row]
        if missing:
            raise FleetStoreError(f"device row is missing columns: {missing}")
        self._pending.append(row)
        if len(self._pending) >= self.chunk_devices:
            self._flush(self.chunk_devices)

    def append_rows(self, rows: List[DeviceRow]) -> None:
        """Queue a batch of rows (in device-index order)."""
        for row in rows:
            self.append_row(row)

    def _flush(self, count: int) -> None:
        batch, self._pending = self._pending[:count], self._pending[count:]
        digest = hashlib.sha256()
        nbytes = 0
        file_name = _chunk_filename(len(self._chunks))
        with open(self.path / file_name, "wb") as handle:
            for name, dtype in FLEET_COLUMNS:
                array = np.array([row[name] for row in batch], dtype=dtype)
                payload = array.tobytes()
                digest.update(payload)
                handle.write(payload)
                nbytes += len(payload)
        self._chunks.append(
            {
                "file": file_name,
                "rows": len(batch),
                "nbytes": nbytes,
                "sha256": digest.hexdigest(),
            }
        )
        self._rows_written += len(batch)

    def close(self, request_summary: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        """Flush the tail chunk and write the manifest atomically.

        ``request_summary`` (optional) is the fleet-level request-stat
        rollup the executor folded; it is embedded verbatim so the
        manifest's bytes cover the merged metric states too.
        """
        if self._closed:
            raise FleetStoreError("fleet writer is already closed")
        if self._pending:
            self._flush(len(self._pending))
        manifest: Dict[str, object] = {
            "format": _FORMAT,
            "version": _VERSION,
            "scenario": self.scenario.as_dict(),
            "columns": _schema_as_json(),
            "chunk_devices": self.chunk_devices,
            "total_devices": self._rows_written,
            "apps": self.scenario.app_names(),
            "configs": self.scenario.config_names(),
            "fault_profiles": self.scenario.fault_profile_names(),
            "chunks": self._chunks,
        }
        if request_summary is not None:
            manifest["request_summary"] = request_summary
        manifest_file = self.path / FLEET_MANIFEST_NAME
        temp = manifest_file.with_suffix(".json.tmp")
        temp.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        os.replace(temp, manifest_file)
        self._closed = True
        self.manifest = manifest
        return manifest

    def __enter__(self) -> "FleetStoreWriter":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        # Only finalize a clean exit; an exception leaves no manifest.
        if exc_type is None and not self._closed:
            self.close()


class FleetStore:
    """Read-side handle on a packed fleet store directory."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        manifest_path = self.path / FLEET_MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text())
        except FileNotFoundError:
            raise FleetStoreError(f"no fleet store at {self.path!s}") from None
        except json.JSONDecodeError as error:
            raise FleetStoreError(
                f"corrupt fleet manifest at {manifest_path!s}: {error}"
            ) from None
        if manifest.get("format") != _FORMAT:
            raise FleetStoreError(f"{manifest_path!s} is not a fleet store manifest")
        if manifest.get("version") != _VERSION:
            raise FleetStoreError(
                f"unsupported fleet store version {manifest.get('version')!r}"
            )
        if manifest.get("columns") != _schema_as_json():
            raise FleetStoreError(
                "fleet store column schema does not match this reader"
            )
        self.manifest = manifest
        self.apps: List[str] = list(manifest["apps"])
        self.configs: List[str] = list(manifest["configs"])
        self.fault_profiles: List[str] = list(manifest["fault_profiles"])

    def __len__(self) -> int:
        return int(self.manifest["total_devices"])

    @property
    def num_chunks(self) -> int:
        return len(self.manifest["chunks"])

    @property
    def request_summary(self) -> Optional[Dict[str, object]]:
        """The fleet-level request-stat rollup, when the run recorded one."""
        return self.manifest.get("request_summary")

    def scenario(self) -> FleetScenario:
        """The population description this store was produced from."""
        return FleetScenario.from_dict(self.manifest["scenario"])

    def _chunk_bytes(self, info: Dict[str, object]) -> np.memmap:
        chunk_path = self.path / str(info["file"])
        try:
            mapped = np.memmap(chunk_path, dtype=np.uint8, mode="r")
        except (FileNotFoundError, ValueError) as error:
            raise FleetStoreError(
                f"unreadable fleet chunk {info['file']!r}: {error}"
            ) from None
        if mapped.nbytes != info["nbytes"]:
            raise FleetStoreError(
                f"fleet chunk {info['file']!r} is {mapped.nbytes} bytes, "
                f"manifest says {info['nbytes']}"
            )
        return mapped

    def _decode_chunk(self, info: Dict[str, object]) -> Dict[str, np.ndarray]:
        mapped = self._chunk_bytes(info)
        rows = int(info["rows"])
        offset = 0
        columns: Dict[str, np.ndarray] = {}
        for name, dtype in FLEET_COLUMNS:
            width = np.dtype(dtype).itemsize * rows
            columns[name] = np.frombuffer(mapped, dtype=dtype, count=rows, offset=offset)
            offset += width
        return columns

    def iter_chunks(self) -> Iterator[Dict[str, np.ndarray]]:
        """Yield each chunk's columns, one memory-mapped chunk at a time."""
        for info in self.manifest["chunks"]:
            yield self._decode_chunk(info)

    def column(self, name: str) -> np.ndarray:
        """One column concatenated across all chunks (copies into memory)."""
        if name not in FLEET_DTYPES:
            raise KeyError(f"unknown fleet column {name!r}")
        pieces = [chunk[name] for chunk in self.iter_chunks()]
        if not pieces:
            return np.empty(0, dtype=FLEET_DTYPES[name])
        return np.concatenate(pieces)

    def device_row(self, index: int) -> DeviceRow:
        """Device ``index``'s row, touching only its chunk."""
        if not 0 <= index < len(self):
            raise IndexError(f"device index {index} outside [0, {len(self)})")
        position = index
        for info in self.manifest["chunks"]:
            rows = int(info["rows"])
            if position < rows:
                columns = self._decode_chunk(info)
                return {
                    name: (
                        float(columns[name][position])
                        if np.dtype(dtype).kind == "f"
                        else int(columns[name][position])
                    )
                    for name, dtype in FLEET_COLUMNS
                }
            position -= rows
        raise FleetStoreError("manifest chunk rows disagree with total_devices")

    def verify(self) -> None:
        """Re-hash every chunk against the manifest; raises on mismatch."""
        total = 0
        for info in self.manifest["chunks"]:
            digest = hashlib.sha256(self._chunk_bytes(info).tobytes()).hexdigest()
            if digest != info["sha256"]:
                raise FleetStoreError(
                    f"fleet chunk {info['file']!r} fails its checksum"
                )
            total += int(info["rows"])
        if total != len(self):
            raise FleetStoreError(
                f"chunk rows sum to {total}, manifest says {len(self)}"
            )


def open_fleet_store(path: Union[str, Path]) -> FleetStore:
    """Open a packed fleet store directory for reading."""
    return FleetStore(path)
