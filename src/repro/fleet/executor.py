"""Sharded fleet execution: simulate devices, stream rows, merge stats.

The executor turns a :class:`~repro.fleet.scenario.FleetScenario` into a
packed :mod:`fleet store <repro.fleet.store>` plus a fleet-level
request-statistics rollup, without ever materializing the whole fleet in
memory:

* **one device** (:func:`simulate_device`) builds the device's trace,
  config and fault plan from its :class:`~repro.fleet.population.DeviceSpec`,
  replays it through :class:`repro.sim.Host`, and reduces the result to a
  flat scalar row (:data:`~repro.fleet.store.FLEET_COLUMNS`) plus the
  replayed request columns;
* **one shard** folds a contiguous device range, accumulating request
  stats into mergeable :mod:`repro.metrics` states -- so a shard's
  footprint is its rows plus O(1) metric state, never the raw requests;
* **the run** (:func:`run_fleet`) executes shards either inline
  (``jobs=1``) or on a ``ProcessPoolExecutor`` (the
  :mod:`repro.experiments.parallel` machinery), and the parent commits
  shard payloads strictly in device-index order through a reorder
  buffer.

Determinism
-----------
Bit-identical output for any ``--jobs`` and any ``PYTHONHASHSEED``:

* a device's row is a pure function of ``(scenario, index)`` -- every
  random decision comes from named sha256-derived streams, so it does
  not matter which process simulates it;
* ``jobs=1`` and ``jobs=N`` run the *same* shard plan and the parent
  merges shard metric states left-to-right in start order, so float
  accumulation order never varies (the same argument -- and the same
  ``OrderedSum`` machinery -- as the experiment runner's);
* the store writer chunks purely by row count, so the chunk files and
  the manifest (which embeds the rollup) are byte-identical too.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.emmc import EmmcDevice, collect_wear
from repro.emmc.energy import energy_report
from repro.experiments.parallel import WallPoint, _pool_context, _worker_init
from repro.faults.replay import stats_digest
from repro.metrics import get_metric
from repro.sim import Host
from repro.trace import TraceColumns

from .population import DeviceSpec, build_config, build_fault_plan, build_trace, device_spec
from .scenario import FleetScenario
from .store import DEFAULT_CHUNK_DEVICES, DeviceRow, FleetStoreWriter

#: Request-level metrics folded fleet-wide (across every request of every
#: device).  Deliberately restricted to order-insensitive, bounded-state
#: metrics: locality metrics keep distinct-LBA sets (unbounded across a
#: fleet), and interarrival/timing statistics are meaningless across
#: device boundaries (every device's clock restarts near zero).
FLEET_REQUEST_METRICS: Tuple[str, ...] = (
    "size_stats",
    "size_distribution",
    "response_distribution",
)

#: Default devices per worker task.  Small enough to load-balance a
#: thousand-device fleet over a handful of workers, large enough that
#: fork/pickle overhead stays negligible against ~10ms+ per device.
DEFAULT_SHARD_DEVICES = 32


@dataclass
class DeviceResult:
    """One simulated device: its identity, flat row, and replayed columns."""

    spec: DeviceSpec
    row: DeviceRow
    digest: str
    columns: TraceColumns


@dataclass
class FleetRunResult:
    """Everything one :func:`run_fleet` invocation produced."""

    scenario: FleetScenario
    path: Path
    manifest: Dict[str, object]
    request_summary: Dict[str, Any]
    jobs: int
    wall_s: float
    compute_s: float
    shards: int = 0

    @property
    def devices(self) -> int:
        return int(self.manifest["total_devices"])

    @property
    def speedup(self) -> float:
        """Serial-equivalent seconds per wall second (1.0 = no benefit)."""
        return self.compute_s / self.wall_s if self.wall_s > 0 else 0.0


def simulate_device(
    scenario: FleetScenario, device: Union[int, DeviceSpec]
) -> DeviceResult:
    """Simulate one device of the fleet, bit-identical to its in-fleet run.

    Accepts either a device index or an already-sampled spec.  The
    returned row carries the leading 64 bits of the canonical
    :func:`~repro.faults.replay.stats_digest` so re-simulation parity is
    checkable from the store alone.
    """
    spec = device_spec(scenario, device) if isinstance(device, int) else device
    trace = build_trace(scenario, spec)
    emmc = EmmcDevice(build_config(spec), faults=build_fault_plan(spec))
    if not emmc.stats.fresh:
        raise RuntimeError(
            f"device {spec.index} started replay with non-fresh stats"
        )
    result = Host(emmc).replay(trace)
    stats = result.stats
    planes = getattr(emmc.ftl, "planes", None)
    wear = collect_wear(planes if planes is not None else ())
    digest = stats_digest(stats)
    responses = stats.response_us
    row: DeviceRow = {
        "device_index": spec.index,
        "app_id": scenario.app_names().index(spec.app),
        "config_id": scenario.config_names().index(spec.config_name),
        "fault_id": scenario.fault_profile_names().index(spec.fault_profile),
        "rate_factor": spec.rate_factor,
        "size_factor": spec.size_factor,
        "requests": stats.requests,
        "duration_us": result.trace.duration_us,
        "mean_response_us": sum(responses) / len(responses) if responses else 0.0,
        "mean_service_us": (
            sum(stats.service_us) / len(stats.service_us) if stats.service_us else 0.0
        ),
        "max_response_us": max(responses) if responses else 0.0,
        "no_wait_requests": stats.no_wait_requests,
        "data_bytes_written": stats.data_bytes_written,
        "data_bytes_read": stats.data_bytes_read,
        "flash_bytes_consumed": stats.flash_bytes_consumed,
        "gc_collections": stats.gc_collections,
        "idle_gc_collections": stats.idle_gc_collections,
        "gc_migrated_slots": stats.gc_migrated_slots,
        "erases": stats.erases,
        "max_erase": wear.max_erase,
        "mean_erase": wear.mean_erase,
        "wakeups": stats.wakeups,
        "low_power_us": stats.low_power_us,
        "energy_uj": energy_report(stats).total_uj,
        "read_retries": stats.read_retries,
        "uncorrectable_reads": stats.uncorrectable_reads,
        "program_failures": stats.program_failures,
        "erase_failures": stats.erase_failures,
        "bad_blocks_retired": stats.bad_blocks_retired,
        "fault_events": stats.fault_events,
        "stats_digest64": int(digest[:16], 16),
    }
    return DeviceResult(
        spec=spec, row=row, digest=digest, columns=result.trace.columns()
    )


def plan_shards(devices: int, shard_devices: int) -> List[Tuple[int, int]]:
    """Contiguous ``[start, stop)`` device ranges covering the population."""
    if devices <= 0:
        raise ValueError("devices must be positive")
    if shard_devices <= 0:
        raise ValueError("shard_devices must be positive")
    return [
        (start, min(start + shard_devices, devices))
        for start in range(0, devices, shard_devices)
    ]


#: One shard's payload back to the parent: rows in index order, the
#: shard's metric states keyed by registry name, and timing.
_ShardPayload = Tuple[int, List[DeviceRow], Dict[str, Any], float, WallPoint]


def _run_shard(scenario: FleetScenario, start: int, stop: int) -> _ShardPayload:
    """Simulate devices ``[start, stop)`` and fold their request stats."""
    started = time.perf_counter()
    rows: List[DeviceRow] = []
    states: Dict[str, Any] = {
        name: get_metric(name).init() for name in FLEET_REQUEST_METRICS
    }
    for index in range(start, stop):
        result = simulate_device(scenario, index)
        rows.append(result.row)
        for name in FLEET_REQUEST_METRICS:
            get_metric(name).update(states[name], result.columns)
    ended = time.perf_counter()
    label = f"devices[{start}:{stop}]"
    return start, rows, states, ended - started, (label, started, ended, os.getpid())


def _summary_as_json(summary: Dict[str, Any]) -> Dict[str, object]:
    """Finalized metric values as JSON-ready objects for the manifest."""
    import dataclasses

    encoded: Dict[str, object] = {}
    for name, value in summary.items():
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            encoded[name] = dataclasses.asdict(value)
        else:
            encoded[name] = value
    return encoded


def _emit_wall_spans(sink, walls: List[WallPoint], origin_s: float) -> None:
    """One parent ``fleet`` span plus a child span per shard task."""
    if not walls:
        return
    ordered = sorted(walls, key=lambda wall: wall[1])
    parent = sink.add_wall_span(
        "fleet",
        ordered[0][1],
        max(wall[2] for wall in ordered),
        cat="fleet",
        track="fleet",
        origin_s=origin_s,
    )
    for label, started, ended, pid in ordered:
        sink.add_wall_span(
            label, started, ended,
            cat="shard", track=f"worker-{pid}", parent=parent, origin_s=origin_s,
        )


def run_fleet(
    scenario: FleetScenario,
    out_path: Union[str, Path],
    jobs: int = 1,
    shard_devices: int = DEFAULT_SHARD_DEVICES,
    chunk_devices: int = DEFAULT_CHUNK_DEVICES,
    overwrite: bool = False,
    wall_sink=None,
) -> FleetRunResult:
    """Run the whole fleet into a packed store at ``out_path``.

    ``jobs=1`` executes the shard plan inline; ``jobs>1`` fans it over a
    process pool.  Either way the parent consumes shard payloads through
    a reorder buffer keyed by shard start, so rows reach the store writer
    -- and metric states merge -- strictly in device-index order, and the
    resulting store is byte-identical for any ``jobs``.

    ``wall_sink`` (optional :class:`repro.telemetry.Telemetry`) records
    the run's wall-clock shape: one ``fleet`` parent span plus one child
    span per shard on a per-worker track.  Recording never affects the
    store bytes.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    run_started = time.perf_counter()
    shards = plan_shards(scenario.devices, shard_devices)
    writer = FleetStoreWriter(
        out_path, scenario, chunk_devices=chunk_devices, overwrite=overwrite
    )
    merged: Dict[str, Any] = {}
    compute_s = 0.0
    walls: List[WallPoint] = []

    def _commit(payload: _ShardPayload) -> None:
        nonlocal compute_s
        _, rows, states, duration, wall = payload
        writer.append_rows(rows)
        for name in FLEET_REQUEST_METRICS:
            if name in merged:
                get_metric(name).merge(merged[name], states[name])
            else:
                merged[name] = states[name]
        compute_s += duration
        walls.append(wall)

    if jobs == 1:
        for start, stop in shards:
            _commit(_run_shard(scenario, start, stop))
    else:
        pool = ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=_pool_context(),
            initializer=_worker_init,
            initargs=(scenario.seed,),
        )
        try:
            futures = {
                pool.submit(_run_shard, scenario, start, stop): start
                for start, stop in shards
            }
            # Reorder buffer: payloads commit strictly in shard-start order
            # no matter which worker finishes first.
            ready: Dict[int, _ShardPayload] = {}
            order = [start for start, _ in shards]
            next_at = 0
            pending = set(futures)
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    payload = future.result()
                    ready[payload[0]] = payload
                while next_at < len(order) and order[next_at] in ready:
                    _commit(ready.pop(order[next_at]))
                    next_at += 1
        finally:
            pool.shutdown(wait=True)

    summary = {
        name: get_metric(name).finalize(merged[name], scenario.name)
        for name in FLEET_REQUEST_METRICS
    }
    manifest = writer.close(request_summary=_summary_as_json(summary))
    wall_s = time.perf_counter() - run_started
    if wall_sink is not None:
        _emit_wall_spans(wall_sink, walls, run_started)
    return FleetRunResult(
        scenario=scenario,
        path=Path(out_path),
        manifest=manifest,
        request_summary=summary,
        jobs=jobs,
        wall_s=wall_s,
        compute_s=compute_s,
        shards=len(shards),
    )
