"""Fleet simulation: deterministic multi-device population runs.

The paper characterizes I/O from 25 single-device traces; its eMMC-design
implications only matter at population scale -- millions of phones with
heterogeneous app mixes, device configurations and wear states.  This
package turns the single-device reproduction into a population engine:

* :mod:`repro.fleet.scenario` -- :class:`FleetScenario`, a frozen,
  JSON-loadable description of a device population (size, app mix,
  config mix, fault-profile mix, per-device rate/size scaling, seed);
* :mod:`repro.fleet.population` -- the deterministic sampler mapping a
  device index to its :class:`DeviceSpec` (app, config, scaling, fault
  plan), each device drawing from its own
  ``sha256("fleet:{seed}:{index}")`` stream so any device can be
  re-simulated in isolation, bit-identical to its in-fleet run;
* :mod:`repro.fleet.executor` -- sharded multi-process execution that
  folds per-request statistics into mergeable :mod:`repro.metrics`
  states and packs per-device rows into a chunked columnar fleet store,
  with merge order fixed by device index so results are bit-identical
  for any ``--jobs``;
* :mod:`repro.fleet.store` -- the ``repro/store``-style on-disk fleet
  store (manifest + sha256-checksummed chunks of device rows);
* :mod:`repro.fleet.report` -- fleet-level rollups: percentiles across
  devices, per-app breakdowns, end-of-life projections;
* :mod:`repro.fleet.cli` -- the ``repro-fleet run|stats|show-device``
  entry point.
"""

from .population import (
    DeviceSpec,
    build_config,
    build_fault_plan,
    build_trace,
    device_spec,
    iter_population,
    population_counts,
)
from .scenario import CONFIG_FACTORIES, FleetScenario, derive_seed, device_stream
from .executor import (
    DeviceResult,
    FleetRunResult,
    plan_shards,
    run_fleet,
    simulate_device,
)
from .report import FleetReport, fleet_report
from .store import (
    FLEET_COLUMNS,
    FleetStore,
    FleetStoreError,
    FleetStoreWriter,
    open_fleet_store,
)

__all__ = [
    "CONFIG_FACTORIES",
    "DeviceResult",
    "DeviceSpec",
    "FLEET_COLUMNS",
    "FleetReport",
    "FleetRunResult",
    "FleetScenario",
    "FleetStore",
    "FleetStoreError",
    "FleetStoreWriter",
    "build_config",
    "build_fault_plan",
    "build_trace",
    "derive_seed",
    "device_spec",
    "device_stream",
    "fleet_report",
    "iter_population",
    "open_fleet_store",
    "plan_shards",
    "population_counts",
    "run_fleet",
    "simulate_device",
]
