"""Deterministic population sampling: device index -> device identity.

:func:`device_spec` maps ``(scenario, index)`` to a :class:`DeviceSpec`
-- which app the device runs, which hardware configuration it has, its
per-device rate/size scaling and its fault profile -- using only the
device's own ``sha256("fleet:{seed}:{index}")`` stream.  The draw order
is fixed (app, config, fault profile, rate factor, size factor), so a
spec is a pure function of ``(seed, index)``: re-sampling any one device
in any process, under any ``PYTHONHASHSEED``, yields the same identity.

The trace and fault seeds are *label-derived* (not drawn from the
stream), so they do not shift when a new sampled field is added to the
scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.faults.plan import FaultPlan
from repro.trace import Trace
from repro.workloads import generate_trace, scale_rate, scale_sizes

from .scenario import CONFIG_FACTORIES, FleetScenario, derive_seed, device_stream

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.emmc.device import DeviceConfig


@dataclass(frozen=True)
class DeviceSpec:
    """One device's sampled identity inside a fleet."""

    index: int
    app: str
    config_name: str
    fault_profile: str
    rate_factor: float
    size_factor: float
    trace_seed: int
    fault_seed: int

    def describe(self) -> str:
        """One-line human summary for CLI output."""
        parts = [
            f"device {self.index}",
            f"app={self.app}",
            f"config={self.config_name}",
        ]
        if self.fault_profile != "none":
            parts.append(f"faults={self.fault_profile}")
        if self.rate_factor != 1.0:
            parts.append(f"rate x{self.rate_factor:g}")
        if self.size_factor != 1.0:
            parts.append(f"size x{self.size_factor:g}")
        return ", ".join(parts)


def _edges(mix: Tuple[Tuple[str, float], ...]) -> List[Tuple[float, str]]:
    """Cumulative normalized edges of a categorical mix, in mix order."""
    total = sum(weight for _, weight in mix)
    edges: List[Tuple[float, str]] = []
    cumulative = 0.0
    for name, weight in mix:
        cumulative += weight / total
        edges.append((cumulative, name))
    return edges


def _draw_categorical(stream: np.random.Generator, edges: List[Tuple[float, str]]) -> str:
    """One uniform draw against the cumulative edges (last bin catches 1.0)."""
    draw = stream.random()
    for edge, name in edges:
        if draw < edge:
            return name
    return edges[-1][1]


def _draw_log_uniform(
    stream: np.random.Generator, bounds: Optional[Tuple[float, float]]
) -> float:
    """A log-uniform factor in ``[lo, hi]``; 1.0 when no range is set.

    No draw is taken for an unset range, mirroring the fault plan's
    "structural absence" discipline: a scenario without scaling is
    sampled identically whether the feature exists or not.
    """
    if bounds is None:
        return 1.0
    lo, hi = bounds
    if lo == hi:
        return float(lo)
    return float(np.exp(stream.random() * (np.log(hi) - np.log(lo)) + np.log(lo)))


def device_spec(scenario: FleetScenario, index: int) -> DeviceSpec:
    """Sample device ``index``'s identity from its own stream."""
    if not 0 <= index < scenario.devices:
        raise ValueError(
            f"device index {index} outside population [0, {scenario.devices})"
        )
    stream = device_stream(scenario.seed, index)
    app = _draw_categorical(stream, _edges(scenario.apps))
    config_name = _draw_categorical(stream, _edges(scenario.configs))
    fault_profile = _draw_categorical(stream, _edges(scenario.fault_profiles))
    rate_factor = _draw_log_uniform(stream, scenario.rate_factor_range)
    size_factor = _draw_log_uniform(stream, scenario.size_factor_range)
    return DeviceSpec(
        index=index,
        app=app,
        config_name=config_name,
        fault_profile=fault_profile,
        rate_factor=rate_factor,
        size_factor=size_factor,
        trace_seed=derive_seed(scenario.seed, index, "trace"),
        fault_seed=derive_seed(scenario.seed, index, "faults"),
    )


def iter_population(
    scenario: FleetScenario, start: int = 0, stop: Optional[int] = None
) -> Iterator[DeviceSpec]:
    """Yield specs for device indices ``[start, stop)`` (default: all)."""
    stop = scenario.devices if stop is None else stop
    if not 0 <= start <= stop <= scenario.devices:
        raise ValueError(f"bad device range [{start}, {stop}) for {scenario.devices}")
    for index in range(start, stop):
        yield device_spec(scenario, index)


def population_counts(scenario: FleetScenario) -> Dict[str, Dict[str, int]]:
    """Realized population composition: device counts per mix member."""
    apps: Dict[str, int] = {name: 0 for name in scenario.app_names()}
    configs: Dict[str, int] = {name: 0 for name in scenario.config_names()}
    faults: Dict[str, int] = {name: 0 for name in scenario.fault_profile_names()}
    for spec in iter_population(scenario):
        apps[spec.app] += 1
        configs[spec.config_name] += 1
        faults[spec.fault_profile] += 1
    return {"apps": apps, "configs": configs, "fault_profiles": faults}


# -- building the simulation inputs from a spec --------------------------------


def build_config(spec: DeviceSpec) -> "DeviceConfig":
    """The device configuration this spec names (a fresh instance)."""
    return CONFIG_FACTORIES[spec.config_name]()


def build_fault_plan(spec: DeviceSpec) -> FaultPlan:
    """The device's fault plan, seeded with its label-derived fault seed."""
    return FaultPlan.profile(spec.fault_profile, seed=spec.fault_seed)


def build_trace(scenario: FleetScenario, spec: DeviceSpec) -> Trace:
    """Synthesize the device's workload: generate, then scale per-device.

    The generator draws from streams derived from ``(app, trace_seed)``
    -- independent of every other device -- and the scaling transforms
    are deterministic column arithmetic, so the trace is a pure function
    of ``(scenario, spec.index)``.
    """
    trace = generate_trace(
        spec.app,
        seed=spec.trace_seed,
        num_requests=scenario.requests_per_device,
        calibrate_temporal=scenario.calibrate_temporal,
    )
    if spec.rate_factor != 1.0:
        trace = scale_rate(trace, spec.rate_factor)
    if spec.size_factor != 1.0:
        trace = scale_sizes(trace, spec.size_factor)
    return trace
