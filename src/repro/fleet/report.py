"""Fleet-level rollups over a packed fleet store.

Single-trace numbers do not drive design decisions at population scale;
distributions across devices do.  :func:`fleet_report` reduces a fleet
store's per-device rows to:

* **percentiles across devices** for the headline metrics -- mean
  response time, erase wear, GC activity, energy;
* **per-app breakdowns** -- how each app population loads the device;
* **end-of-life projections** -- days until the hottest block of each
  device exhausts a P/E-cycle budget, assuming wear continues at the
  observed rate, summarized as percentiles over the fleet.

Everything here is pure arithmetic over the store columns (NumPy
percentiles with the default linear interpolation), so reports are
deterministic given the store bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .store import FleetStore

#: Device-row columns summarized as fleet-wide percentiles, with display
#: units: (column, report label, scale factor applied before reporting).
PERCENTILE_COLUMNS: Tuple[Tuple[str, str, float], ...] = (
    ("mean_response_us", "mean response (ms)", 1e-3),
    ("max_response_us", "max response (ms)", 1e-3),
    ("erases", "erases", 1.0),
    ("max_erase", "max erase count", 1.0),
    ("gc_collections", "GC collections", 1.0),
    ("energy_uj", "energy (mJ)", 1e-3),
)

#: Default percentile grid across devices.
DEFAULT_PERCENTILES: Tuple[float, ...] = (10.0, 50.0, 90.0, 99.0)

#: Default flash endurance budget (P/E cycles per block) for end-of-life
#: projections -- a typical MLC rating.
DEFAULT_ERASE_BUDGET = 3000

_US_PER_DAY = 86_400.0 * 1e6


@dataclass
class FleetReport:
    """The fleet rollup: percentiles, per-app breakdowns, EOL projection."""

    name: str
    devices: int
    total_requests: int
    #: report label -> {"p50": ..., ...} plus "mean", in display units.
    percentiles: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: app name -> summary row (device count, request/wear/latency means).
    per_app: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: percentile label -> projected days to end of life (may be ``inf``).
    eol_days: Dict[str, float] = field(default_factory=dict)
    erase_budget: int = DEFAULT_ERASE_BUDGET

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines: List[str] = [
            f"fleet {self.name!r}: {self.devices} devices, "
            f"{self.total_requests} requests",
            "",
            "across devices:",
        ]
        for label, row in self.percentiles.items():
            cells = "  ".join(f"{key}={value:.3f}" for key, value in row.items())
            lines.append(f"  {label:<22} {cells}")
        if self.per_app:
            lines.append("")
            lines.append("per app:")
            header = (
                f"  {'app':<14} {'devices':>7} {'requests':>9} "
                f"{'MRT ms':>8} {'erases':>8} {'GC':>6}"
            )
            lines.append(header)
            for app, row in self.per_app.items():
                lines.append(
                    f"  {app:<14} {int(row['devices']):>7} "
                    f"{int(row['requests']):>9} "
                    f"{row['mean_response_ms']:>8.3f} "
                    f"{row['mean_erases']:>8.1f} "
                    f"{row['mean_gc_collections']:>6.1f}"
                )
        if self.eol_days:
            lines.append("")
            lines.append(
                f"end-of-life projection (budget {self.erase_budget} P/E "
                "cycles, observed wear rate):"
            )
            cells = "  ".join(
                f"{key}={'inf' if np.isinf(value) else format(value, '.0f')}"
                for key, value in self.eol_days.items()
            )
            lines.append(f"  days to EOL: {cells}")
        return "\n".join(lines)


def _percentile_row(
    values: np.ndarray, percentiles: Sequence[float], scale: float
) -> Dict[str, float]:
    row = {
        f"p{point:g}": float(np.percentile(values, point)) * scale
        for point in percentiles
    }
    row["mean"] = float(values.mean()) * scale
    return row


def fleet_report(
    store: FleetStore,
    percentiles: Sequence[float] = DEFAULT_PERCENTILES,
    erase_budget: int = DEFAULT_ERASE_BUDGET,
) -> FleetReport:
    """Roll a fleet store up into a :class:`FleetReport`.

    Works on whole per-device columns: memory scales with the number of
    devices (8 bytes per device per column), never with the number of
    requests, so reporting stays cheap even for request-heavy fleets.
    """
    if erase_budget <= 0:
        raise ValueError("erase_budget must be positive")
    devices = len(store)
    report = FleetReport(
        name=store.scenario().name,
        devices=devices,
        total_requests=int(store.column("requests").sum()),
        erase_budget=erase_budget,
    )
    if devices == 0:
        return report

    for column, label, scale in PERCENTILE_COLUMNS:
        report.percentiles[label] = _percentile_row(
            store.column(column).astype(np.float64), percentiles, scale
        )

    app_ids = store.column("app_id")
    requests = store.column("requests")
    mean_response_us = store.column("mean_response_us")
    erases = store.column("erases")
    gc_collections = store.column("gc_collections")
    for app_id, app in enumerate(store.apps):
        mask = app_ids == app_id
        count = int(np.count_nonzero(mask))
        if count == 0:
            continue
        report.per_app[app] = {
            "devices": float(count),
            "requests": float(requests[mask].sum()),
            "mean_response_ms": float(mean_response_us[mask].mean()) * 1e-3,
            "mean_erases": float(erases[mask].mean()),
            "mean_gc_collections": float(gc_collections[mask].mean()),
        }

    # EOL: a device whose hottest block took max_erase cycles over
    # duration_us keeps wearing at that rate until the budget is gone.
    max_erase = store.column("max_erase").astype(np.float64)
    duration_days = store.column("duration_us") / _US_PER_DAY
    days = np.full(devices, np.inf)
    worn = max_erase > 0
    days[worn] = erase_budget * duration_days[worn] / max_erase[worn]
    finite = days[np.isfinite(days)]
    for point in percentiles:
        key = f"p{point:g}"
        if finite.size == days.size:
            report.eol_days[key] = float(np.percentile(days, point))
        elif finite.size == 0:
            report.eol_days[key] = float("inf")
        else:
            # Mixed: percentiles over the sorted array handle inf fine
            # with linear interpolation only when both neighbours are
            # finite; fall back to the exact order statistic.
            ordered = np.sort(days)
            rank = min(int(np.ceil(point / 100.0 * days.size)) - 1, days.size - 1)
            report.eol_days[key] = float(ordered[max(rank, 0)])
    return report
