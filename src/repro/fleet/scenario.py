"""Declarative fleet scenarios: who is in the population, and how many.

A :class:`FleetScenario` is pure data -- a frozen, JSON-loadable
description of a simulated device population:

* ``devices`` -- population size;
* ``apps`` -- a categorical mix over the paper's app profiles and combo
  workloads (any of the 25 :data:`repro.workloads.ALL_TRACES` names);
* ``configs`` -- a distribution over device configurations (the Table V
  schemes and their test-scale variants, :data:`CONFIG_FACTORIES`);
* ``fault_profiles`` -- a distribution over the named fault profiles of
  :data:`repro.faults.plan.PROFILES` (wear states, flaky flash);
* optional per-device rate/size scaling ranges, applied with
  :func:`repro.workloads.scale_rate` / :func:`~repro.workloads.scale_sizes`;
* one base ``seed``.

Determinism contract
--------------------
Every per-device random decision is drawn from a stream derived as
``sha256("fleet:{seed}:{device_index}")`` -- the same named-stream
discipline :mod:`repro.faults.plan` uses.  A device's identity therefore
depends only on ``(scenario.seed, index)``, never on how many other
devices were sampled or which process sampled them, so any single device
can be re-simulated in isolation bit-identically to its in-fleet run
(``repro-fleet show-device N --resimulate`` proves this).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.emmc.configs import (
    eight_ps,
    four_ps,
    hps,
    hps_slc,
    small_eight_ps,
    small_four_ps,
    small_hps,
)
from repro.faults.plan import PROFILES as FAULT_PROFILES
from repro.workloads import ALL_TRACES

#: Device-config factories a scenario may draw from, keyed by name.
CONFIG_FACTORIES = {
    "4PS": four_ps,
    "8PS": eight_ps,
    "HPS": hps,
    "HPS-SLC": hps_slc,
    "small-4PS": small_four_ps,
    "small-8PS": small_eight_ps,
    "small-HPS": small_hps,
}

#: A categorical mix: ``((name, weight), ...)`` with positive weights.
Mix = Tuple[Tuple[str, float], ...]


def device_stream(seed: int, index: int) -> np.random.Generator:
    """The per-device sampling stream, ``sha256("fleet:{seed}:{index}")``.

    Independent across devices and of every other stream in the system
    (faults, workload generation), so sampling device *k* never perturbs
    device *k+1*.
    """
    digest = hashlib.sha256(f"fleet:{seed}:{index}".encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "big"))


def derive_seed(seed: int, index: int, label: str) -> int:
    """A derived integer seed for a device's sub-system (trace, faults).

    Label-addressed like :meth:`repro.faults.plan.FaultPlan.stream`, so
    the trace seed does not depend on how many sampling draws the
    population sampler took -- adding a new sampled field to the
    scenario never reshuffles every device's trace.
    """
    digest = hashlib.sha256(f"fleet:{seed}:{index}:{label}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


def _normalize_mix(raw, what: str) -> Mix:
    """Coerce a dict / pair-list into the canonical tuple-of-pairs mix."""
    if isinstance(raw, dict):
        pairs = [(str(name), float(weight)) for name, weight in raw.items()]
    else:
        pairs = [(str(name), float(weight)) for name, weight in raw]
    if not pairs:
        raise ValueError(f"{what} mix must not be empty")
    return tuple(pairs)


def _check_mix(mix: Mix, known: Iterable[str], what: str) -> None:
    known = set(known)
    seen = set()
    for name, weight in mix:
        if name not in known:
            raise ValueError(
                f"unknown {what} {name!r} (known: {', '.join(sorted(known))})"
            )
        if name in seen:
            raise ValueError(f"duplicate {what} {name!r} in mix")
        seen.add(name)
        if not weight > 0:
            raise ValueError(f"{what} {name!r} has non-positive weight {weight}")


def _check_range(value: Optional[Tuple[float, float]], what: str) -> None:
    if value is None:
        return
    lo, hi = value
    if not (0 < lo <= hi):
        raise ValueError(f"{what} must satisfy 0 < lo <= hi, got ({lo}, {hi})")


@dataclass(frozen=True)
class FleetScenario:
    """Frozen, JSON-loadable description of one device population."""

    devices: int
    name: str = "fleet"
    seed: int = 0
    requests_per_device: int = 400
    apps: Mix = (("Twitter", 1.0),)
    configs: Mix = (("4PS", 1.0),)
    fault_profiles: Mix = (("none", 1.0),)
    rate_factor_range: Optional[Tuple[float, float]] = None
    size_factor_range: Optional[Tuple[float, float]] = None
    #: Run the generator's pilot-based temporal-locality calibration per
    #: device.  Off by default: a fleet draws a fresh trace seed per
    #: device, and the pilot (2 x 4000-request generations) would
    #: dominate the per-device cost at population scale.
    calibrate_temporal: bool = False

    def __post_init__(self) -> None:
        if self.devices <= 0:
            raise ValueError("devices must be positive")
        if self.requests_per_device <= 0:
            raise ValueError("requests_per_device must be positive")
        # Coerce list-of-pairs (e.g. straight from JSON) into tuples so
        # the dataclass stays hashable and picklable by value.
        for attr in ("apps", "configs", "fault_profiles"):
            object.__setattr__(self, attr, _normalize_mix(getattr(self, attr), attr))
        for attr in ("rate_factor_range", "size_factor_range"):
            value = getattr(self, attr)
            if value is not None:
                object.__setattr__(self, attr, (float(value[0]), float(value[1])))
        _check_mix(self.apps, ALL_TRACES, "app")
        _check_mix(self.configs, CONFIG_FACTORIES, "config")
        _check_mix(self.fault_profiles, FAULT_PROFILES, "fault profile")
        _check_range(self.rate_factor_range, "rate_factor_range")
        _check_range(self.size_factor_range, "size_factor_range")

    # -- derived ---------------------------------------------------------------

    def app_names(self) -> List[str]:
        """Mix member names, in mix order (the store's string table)."""
        return [name for name, _ in self.apps]

    def config_names(self) -> List[str]:
        return [name for name, _ in self.configs]

    def fault_profile_names(self) -> List[str]:
        return [name for name, _ in self.fault_profiles]

    def with_overrides(self, **changes) -> "FleetScenario":
        """Copy with some fields replaced."""
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line human summary for CLI output."""
        apps = ", ".join(f"{name}:{weight:g}" for name, weight in self.apps)
        configs = ", ".join(f"{name}:{weight:g}" for name, weight in self.configs)
        parts = [
            f"{self.devices} devices",
            f"seed={self.seed}",
            f"{self.requests_per_device} req/device",
            f"apps[{apps}]",
            f"configs[{configs}]",
        ]
        if any(name != "none" for name, _ in self.fault_profiles):
            faults = ", ".join(
                f"{name}:{weight:g}" for name, weight in self.fault_profiles
            )
            parts.append(f"faults[{faults}]")
        if self.rate_factor_range is not None:
            lo, hi = self.rate_factor_range
            parts.append(f"rate x[{lo:g}, {hi:g}]")
        if self.size_factor_range is not None:
            lo, hi = self.size_factor_range
            parts.append(f"size x[{lo:g}, {hi:g}]")
        return ", ".join(parts)

    # -- (de)serialization -----------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready dict.

        Mixes serialize as ``[[name, weight], ...]`` pair lists, never as
        objects: mix *order* is semantic (it fixes the categorical
        sampling edges and the store's string tables), and canonical
        JSON's ``sort_keys`` would silently reorder an object's keys.
        """
        return {
            "name": self.name,
            "devices": self.devices,
            "seed": self.seed,
            "requests_per_device": self.requests_per_device,
            "apps": [[name, weight] for name, weight in self.apps],
            "configs": [[name, weight] for name, weight in self.configs],
            "fault_profiles": [
                [name, weight] for name, weight in self.fault_profiles
            ],
            "rate_factor_range": (
                None
                if self.rate_factor_range is None
                else list(self.rate_factor_range)
            ),
            "size_factor_range": (
                None
                if self.size_factor_range is None
                else list(self.size_factor_range)
            ),
            "calibrate_temporal": self.calibrate_temporal,
        }

    def dumps(self) -> str:
        """Canonical JSON (sorted keys, no timestamps -- byte-stable)."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "FleetScenario":
        if not isinstance(raw, dict):
            raise ValueError("fleet scenario must be a JSON object")
        if "devices" not in raw:
            raise ValueError("fleet scenario is missing the 'devices' field")
        known = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        unknown = set(raw) - known
        if unknown:
            raise ValueError(f"unknown fleet scenario fields: {sorted(unknown)}")
        kwargs: Dict[str, object] = {}
        for key, value in raw.items():
            if key in ("rate_factor_range", "size_factor_range") and value is not None:
                value = (float(value[0]), float(value[1]))  # type: ignore[index]
            kwargs[key] = value
        return cls(**kwargs)  # type: ignore[arg-type]

    @classmethod
    def loads(cls, text: str) -> "FleetScenario":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FleetScenario":
        """Load a scenario from a JSON file."""
        return cls.loads(Path(path).read_text())
