"""repro: reproduction of "I/O Characteristics of Smartphone Applications
and Their Implications for eMMC Design" (IISWC 2015).

The package has eight subsystems (see DESIGN.md):

* :mod:`repro.trace` -- block-level I/O trace model and serialization;
* :mod:`repro.sim` -- the shared discrete-event kernel (clock, event
  loop, resource timelines, admission queue, host);
* :mod:`repro.workloads` -- the 25 calibrated synthetic traces;
* :mod:`repro.android` -- a simulated Android I/O stack with BIOtracer;
* :mod:`repro.emmc` -- the event-driven eMMC simulator with the HPS scheme;
* :mod:`repro.analysis` / :mod:`repro.experiments` -- characterization and
  the per-table/figure reproduction harness;
* :mod:`repro.store` / :mod:`repro.streaming` -- chunked on-disk columnar
  trace store and out-of-core, mergeable streaming analytics.

Quickstart::

    from repro.workloads import generate_trace
    from repro.emmc import hps, four_ps, EmmcDevice

    trace = generate_trace("Twitter")
    result = EmmcDevice(hps()).replay(trace)
    print(result.stats.mean_response_ms)
"""

from repro.trace import Op, Request, Trace

__version__ = "1.0.0"

__all__ = ["Op", "Request", "Trace", "__version__"]
