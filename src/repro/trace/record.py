"""Block-level I/O request records.

The paper's BIOtracer records, for every block-layer request, three
timestamps (see Fig. 2 of the paper):

1. *arrival* -- when the request is created at the block layer,
2. *service start* -- when the eMMC driver actually sends the request to
   the device (i.e. after any queueing delay),
3. *finish* -- when the device driver completes the request.

Together with the logical address, the size and the access type these form
one trace record.  All sizes are in bytes and must be multiples of the 4 KB
flash page size (the paper notes that request sizes are aligned to 4 KB at
the file-system level).  All timestamps are in microseconds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

#: Flash page size every request is aligned to at file-system level.
SECTOR = 4096

#: One kibibyte / mebibyte in bytes, used for readable constants.
KIB = 1024
MIB = 1024 * 1024

#: Microseconds per second / millisecond, for timestamp conversions.
US_PER_S = 1_000_000
US_PER_MS = 1_000


class Op(enum.Enum):
    """Access type of a block request."""

    READ = "R"
    WRITE = "W"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @classmethod
    def parse(cls, text: str) -> "Op":
        """Parse ``"R"``/``"W"`` (case-insensitive, also accepts full words)."""
        normalized = text.strip().upper()
        if normalized in ("R", "READ"):
            return cls.READ
        if normalized in ("W", "WRITE"):
            return cls.WRITE
        raise ValueError(f"unknown access type: {text!r}")


@dataclass(frozen=True)
class Request:
    """A single block-level I/O request.

    Attributes:
        arrival_us: arrival time at the block layer, microseconds.
        lba: logical byte address of the first byte accessed; must be a
            multiple of :data:`SECTOR`.
        size: number of bytes accessed; positive multiple of :data:`SECTOR`.
        op: access type, read or write.
        service_start_us: time the request was dispatched to the device, or
            ``None`` if the trace has not been replayed/collected on a device.
        finish_us: completion time, or ``None`` as above.
    """

    arrival_us: float
    lba: int
    size: int
    op: Op
    service_start_us: Optional[float] = None
    finish_us: Optional[float] = None

    def __post_init__(self) -> None:
        if self.arrival_us < 0:
            raise ValueError(f"arrival_us must be >= 0, got {self.arrival_us}")
        if self.lba < 0 or self.lba % SECTOR:
            raise ValueError(f"lba must be a non-negative multiple of {SECTOR}")
        if self.size <= 0 or self.size % SECTOR:
            raise ValueError(f"size must be a positive multiple of {SECTOR}")
        if self.service_start_us is not None and self.service_start_us < self.arrival_us:
            raise ValueError("service_start_us precedes arrival_us")
        if self.finish_us is not None:
            if self.service_start_us is None:
                raise ValueError("finish_us set without service_start_us")
            if self.finish_us < self.service_start_us:
                raise ValueError("finish_us precedes service_start_us")

    # -- derived quantities -------------------------------------------------

    @property
    def end_lba(self) -> int:
        """First byte address past the accessed range."""
        return self.lba + self.size

    @property
    def pages(self) -> int:
        """Number of 4 KB pages the request spans."""
        return self.size // SECTOR

    @property
    def is_write(self) -> bool:
        """True for write requests."""
        return self.op is Op.WRITE

    @property
    def is_read(self) -> bool:
        """True for read requests."""
        return self.op is Op.READ

    @property
    def completed(self) -> bool:
        """Whether the record carries device timestamps."""
        return self.finish_us is not None

    @property
    def wait_us(self) -> float:
        """Queueing delay between arrival and dispatch to the device."""
        self._require_completed()
        assert self.service_start_us is not None
        return self.service_start_us - self.arrival_us

    @property
    def service_us(self) -> float:
        """Device service time (dispatch to completion)."""
        self._require_completed()
        assert self.service_start_us is not None and self.finish_us is not None
        return self.finish_us - self.service_start_us

    @property
    def response_us(self) -> float:
        """End-to-end response time (arrival to completion)."""
        self._require_completed()
        assert self.finish_us is not None
        return self.finish_us - self.arrival_us

    @property
    def no_wait(self) -> bool:
        """True when the request was served immediately on arrival.

        The paper's *NoWait Req. Ratio* (Table IV) is the fraction of
        requests for which this holds.  A tiny tolerance absorbs float
        round-off from the event engine.
        """
        self._require_completed()
        return self.wait_us <= 1e-6

    def _require_completed(self) -> None:
        if self.finish_us is None:
            raise ValueError("request has no device timestamps; replay the trace first")

    # -- transformations ----------------------------------------------------

    def with_timing(self, service_start_us: float, finish_us: float) -> "Request":
        """Return a copy carrying device timestamps."""
        return replace(self, service_start_us=service_start_us, finish_us=finish_us)

    def without_timing(self) -> "Request":
        """Return a copy stripped of device timestamps."""
        return replace(self, service_start_us=None, finish_us=None)

    def shifted(self, delta_us: float) -> "Request":
        """Return a copy with all timestamps shifted by ``delta_us``."""
        return replace(
            self,
            arrival_us=self.arrival_us + delta_us,
            service_start_us=None
            if self.service_start_us is None
            else self.service_start_us + delta_us,
            finish_us=None if self.finish_us is None else self.finish_us + delta_us,
        )
