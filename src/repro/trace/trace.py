"""Trace container: an ordered collection of block-level requests."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from .record import Op, Request, US_PER_S


@dataclass
class Trace:
    """An ordered (by arrival time) sequence of requests plus metadata.

    The paper's 25 traces are instances of this type: 18 individual
    application traces and 7 combo traces.

    Attributes:
        name: short identifier, e.g. ``"Twitter"`` or ``"Music/WB"``.
        requests: records sorted by arrival time.
        metadata: free-form string metadata (e.g. generator seed, profile).
    """

    name: str
    requests: List[Request] = field(default_factory=list)
    metadata: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.requests = sorted(self.requests, key=lambda r: r.arrival_us)

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def __getitem__(self, index: int) -> Request:
        return self.requests[index]

    def __bool__(self) -> bool:
        return bool(self.requests)

    # -- basic aggregates ------------------------------------------------------

    @property
    def reads(self) -> List[Request]:
        """The read requests, in arrival order."""
        return [r for r in self.requests if r.is_read]

    @property
    def writes(self) -> List[Request]:
        """The write requests, in arrival order."""
        return [r for r in self.requests if r.is_write]

    @property
    def total_bytes(self) -> int:
        """Total size of data accessed (the paper's *Data Size*)."""
        return sum(r.size for r in self.requests)

    @property
    def written_bytes(self) -> int:
        """Total bytes written."""
        return sum(r.size for r in self.writes)

    @property
    def read_bytes(self) -> int:
        """Total bytes read."""
        return sum(r.size for r in self.reads)

    @property
    def start_us(self) -> float:
        """First arrival time (0 for an empty trace)."""
        if not self.requests:
            return 0.0
        return self.requests[0].arrival_us

    @property
    def end_us(self) -> float:
        """Last known event time (finish if replayed, else last arrival)."""
        if not self.requests:
            return 0.0
        last_arrival = self.requests[-1].arrival_us
        finishes = [r.finish_us for r in self.requests if r.finish_us is not None]
        return max([last_arrival] + finishes)

    @property
    def duration_us(self) -> float:
        """Recording duration, from first to last event."""
        return self.end_us - self.start_us

    @property
    def duration_s(self) -> float:
        """Recording duration in seconds."""
        return self.duration_us / US_PER_S

    @property
    def completed(self) -> bool:
        """True when every request carries device timestamps."""
        return all(r.completed for r in self.requests)

    def arrival_rate(self) -> float:
        """Requests per second over the recording duration (Table IV)."""
        if self.duration_us <= 0:
            return 0.0
        return len(self.requests) / self.duration_s

    def access_rate_kib_s(self) -> float:
        """Data accessed (read + write) per second, in KiB/s (Table IV)."""
        if self.duration_us <= 0:
            return 0.0
        return self.total_bytes / 1024.0 / self.duration_s

    def inter_arrival_us(self) -> List[float]:
        """Successive arrival-time gaps, one per request after the first."""
        arrivals = [r.arrival_us for r in self.requests]
        return [b - a for a, b in zip(arrivals, arrivals[1:])]

    # -- transformations -------------------------------------------------------

    def filter(self, predicate: Callable[[Request], bool], name: Optional[str] = None) -> "Trace":
        """Return a new trace with only requests satisfying ``predicate``."""
        return Trace(
            name=name or self.name,
            requests=[r for r in self.requests if predicate(r)],
            metadata=dict(self.metadata),
        )

    def only(self, op: Op) -> "Trace":
        """Return the read-only or write-only sub-trace."""
        return self.filter(lambda r: r.op is op, name=f"{self.name}[{op.value}]")

    def window(self, start_us: float, end_us: float) -> "Trace":
        """Return requests arriving in ``[start_us, end_us)``."""
        return self.filter(lambda r: start_us <= r.arrival_us < end_us)

    def without_timing(self) -> "Trace":
        """Strip device timestamps (e.g. before replaying on another device)."""
        return Trace(
            name=self.name,
            requests=[r.without_timing() for r in self.requests],
            metadata=dict(self.metadata),
        )

    def rebased(self) -> "Trace":
        """Shift timestamps so the first arrival is at time zero."""
        delta = -self.start_us
        return Trace(
            name=self.name,
            requests=[r.shifted(delta) for r in self.requests],
            metadata=dict(self.metadata),
        )

    def with_requests(self, requests: Iterable[Request]) -> "Trace":
        """Return a copy of this trace holding ``requests`` instead."""
        return Trace(name=self.name, requests=list(requests), metadata=dict(self.metadata))


def merge(name: str, *traces: Trace) -> Trace:
    """Merge several traces into one ordered stream (timestamps untouched)."""
    requests: List[Request] = []
    metadata: Dict[str, str] = {}
    for trace in traces:
        requests.extend(trace.requests)
        for key, value in trace.metadata.items():
            metadata.setdefault(f"{trace.name}.{key}", value)
    return Trace(name=name, requests=requests, metadata=metadata)
