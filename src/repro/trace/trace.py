"""Trace container: an ordered collection of block-level requests."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional

import numpy as np

from .columns import FLAG_HAS_FINISH, TraceColumns
from .record import Op, Request, US_PER_S


def _is_arrival_sorted(requests: List[Request]) -> bool:
    """O(n) check that ``requests`` is non-decreasing in arrival time.

    The common construction paths (the workload generator's cumulative-sum
    arrivals, device replays, ``merge`` of pre-sorted traces re-sorted by
    ``Trace`` anyway) already deliver arrival order, so ``__post_init__``
    can skip its O(n log n) sort for them.
    """
    previous = None
    for request in requests:
        arrival = request.arrival_us
        if previous is not None and arrival < previous:
            return False
        previous = arrival
    return True


@dataclass
class Trace:
    """An ordered (by arrival time) sequence of requests plus metadata.

    The paper's 25 traces are instances of this type: 18 individual
    application traces and 7 combo traces.

    Attributes:
        name: short identifier, e.g. ``"Twitter"`` or ``"Music/WB"``.
        requests: records sorted by arrival time.
        metadata: free-form string metadata (e.g. generator seed, profile).

    Besides the ``Request``-level API (which the simulator consumes), a
    trace lazily exposes a columnar struct-of-arrays view via
    :meth:`columns` that the vectorized analysis kernels operate on; see
    :mod:`repro.trace.columns` for the schema and the cache-invalidation
    contract.
    """

    name: str
    requests: List[Request] = field(default_factory=list)
    metadata: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Always take our own copy (callers may go on mutating theirs), but
        # only pay the O(n log n) sort when the input is actually unsorted.
        requests = list(self.requests)
        if not _is_arrival_sorted(requests):
            requests.sort(key=lambda r: r.arrival_us)
        self.requests = requests
        # Columnar cache -- deliberately *not* dataclass fields, so that
        # equality, repr and dataclasses.asdict() are unaffected.
        self._columns: Optional[TraceColumns] = None
        self._columns_token = None

    # -- columnar view --------------------------------------------------------

    def columns(self) -> TraceColumns:
        """The cached struct-of-arrays view of this trace.

        Built lazily on first use and invalidated automatically when the
        ``requests`` list is rebound or changes length.  **Contract:** a
        same-length in-place element assignment (``trace.requests[i] = r``)
        is invisible to this check -- call :meth:`invalidate_columns` after
        such a mutation.  Treat the returned arrays as read-only.
        """
        token = (id(self.requests), len(self.requests))
        cached = self._columns
        if cached is not None and self._columns_token == token:
            return cached
        cached = TraceColumns.from_requests(self.requests)
        self._columns = cached
        self._columns_token = token
        return cached

    def invalidate_columns(self) -> None:
        """Drop the cached columnar view (next :meth:`columns` rebuilds)."""
        self._columns = None
        self._columns_token = None

    def _adopt_columns(self, columns: TraceColumns) -> None:
        """Install ``columns`` as the cache for the current request list."""
        if len(columns) != len(self.requests):
            raise ValueError("columns length does not match requests")
        self._columns = columns
        self._columns_token = (id(self.requests), len(self.requests))

    @classmethod
    def from_columns(
        cls,
        name: str,
        columns: TraceColumns,
        metadata: Optional[Dict[str, str]] = None,
        requests: Optional[List[Request]] = None,
    ) -> "Trace":
        """Build a trace directly from a columnar view.

        ``columns`` must already be in arrival order (the generator's
        cumulative-sum arrivals are).  When the caller has also
        materialized the matching ``Request`` list (the generator does,
        for the simulator), pass it via ``requests`` to skip a second
        conversion; otherwise it is derived from the columns.
        """
        arrivals = columns.arrival_us
        if arrivals.size > 1 and bool(np.any(np.diff(arrivals) < 0)):
            raise ValueError("from_columns requires arrival-ordered columns")
        trace = cls(
            name=name,
            requests=columns.to_requests() if requests is None else requests,
            metadata=metadata if metadata is not None else {},
        )
        trace._adopt_columns(columns)
        return trace

    # -- pickling (drop the columnar cache; workers rebuild it lazily) --------

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_columns"] = None
        state["_columns_token"] = None
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def __getitem__(self, index: int) -> Request:
        return self.requests[index]

    def __bool__(self) -> bool:
        return bool(self.requests)

    # -- basic aggregates ------------------------------------------------------

    @property
    def reads(self) -> List[Request]:
        """The read requests, in arrival order."""
        return [r for r in self.requests if r.is_read]

    @property
    def writes(self) -> List[Request]:
        """The write requests, in arrival order."""
        return [r for r in self.requests if r.is_write]

    @property
    def total_bytes(self) -> int:
        """Total size of data accessed (the paper's *Data Size*)."""
        if not self.requests:
            return 0
        return int(self.columns().size.sum())

    @property
    def written_bytes(self) -> int:
        """Total bytes written."""
        if not self.requests:
            return 0
        columns = self.columns()
        return int(columns.size[columns.write_mask].sum())

    @property
    def read_bytes(self) -> int:
        """Total bytes read."""
        if not self.requests:
            return 0
        columns = self.columns()
        return int(columns.size[columns.read_mask].sum())

    @property
    def start_us(self) -> float:
        """First arrival time (0 for an empty trace)."""
        if not self.requests:
            return 0.0
        return self.requests[0].arrival_us

    @property
    def end_us(self) -> float:
        """Last known event time (finish if replayed, else last arrival)."""
        if not self.requests:
            return 0.0
        columns = self.columns()
        last_arrival = float(columns.arrival_us[-1])
        completed_mask = columns.completed_mask
        if not completed_mask.any():
            return last_arrival
        return max(last_arrival, float(columns.complete_us[completed_mask].max()))

    @property
    def duration_us(self) -> float:
        """Recording duration, from first to last event."""
        return self.end_us - self.start_us

    @property
    def duration_s(self) -> float:
        """Recording duration in seconds."""
        return self.duration_us / US_PER_S

    @property
    def completed(self) -> bool:
        """True when every request carries device timestamps."""
        if not self.requests:
            return True
        return bool((self.columns().flags & FLAG_HAS_FINISH).all())

    def arrival_rate(self) -> float:
        """Requests per second over the recording duration (Table IV)."""
        if self.duration_us <= 0:
            return 0.0
        return len(self.requests) / self.duration_s

    def access_rate_kib_s(self) -> float:
        """Data accessed (read + write) per second, in KiB/s (Table IV)."""
        if self.duration_us <= 0:
            return 0.0
        return self.total_bytes / 1024.0 / self.duration_s

    def inter_arrival_us(self) -> List[float]:
        """Successive arrival-time gaps, one per request after the first."""
        return self.columns().inter_arrival_us.tolist()

    # -- transformations -------------------------------------------------------

    def filter(self, predicate: Callable[[Request], bool], name: Optional[str] = None) -> "Trace":
        """Return a new trace with only requests satisfying ``predicate``."""
        return Trace(
            name=name or self.name,
            requests=[r for r in self.requests if predicate(r)],
            metadata=dict(self.metadata),
        )

    def only(self, op: Op) -> "Trace":
        """Return the read-only or write-only sub-trace."""
        return self.filter(lambda r: r.op is op, name=f"{self.name}[{op.value}]")

    def window(self, start_us: float, end_us: float) -> "Trace":
        """Return requests arriving in ``[start_us, end_us)``."""
        return self.filter(lambda r: start_us <= r.arrival_us < end_us)

    def without_timing(self) -> "Trace":
        """Strip device timestamps (e.g. before replaying on another device).

        Fast path: when the columnar cache is already built and shows no
        request carries timestamps (``flags`` all zero -- true for every
        freshly generated trace), there is nothing to strip; the copy
        shares the frozen ``Request`` objects and adopts the same columns
        instead of rebuilding both.
        """
        columns = self._columns
        if (
            columns is not None
            and self._columns_token == (id(self.requests), len(self.requests))
            and not columns.flags.any()
        ):
            clone = Trace(
                name=self.name, requests=self.requests, metadata=dict(self.metadata)
            )
            clone._adopt_columns(columns)
            return clone
        return Trace(
            name=self.name,
            requests=[r.without_timing() for r in self.requests],
            metadata=dict(self.metadata),
        )

    def rebased(self) -> "Trace":
        """Shift timestamps so the first arrival is at time zero."""
        delta = -self.start_us
        return Trace(
            name=self.name,
            requests=[r.shifted(delta) for r in self.requests],
            metadata=dict(self.metadata),
        )

    def with_requests(self, requests: Iterable[Request]) -> "Trace":
        """Return a copy of this trace holding ``requests`` instead."""
        return Trace(name=self.name, requests=list(requests), metadata=dict(self.metadata))


def merge(name: str, *traces: Trace) -> Trace:
    """Merge several traces into one ordered stream (timestamps untouched)."""
    requests: List[Request] = []
    metadata: Dict[str, str] = {}
    for trace in traces:
        requests.extend(trace.requests)
        for key, value in trace.metadata.items():
            metadata.setdefault(f"{trace.name}.{key}", value)
    return Trace(name=name, requests=requests, metadata=metadata)
