"""Import traces from Linux ``blkparse`` text output.

BIOtracer is a custom kernel tracer, but most practitioners have
``blktrace``/``blkparse`` logs.  This module converts standard blkparse
text lines into :class:`~repro.trace.Trace` objects so real phone or
desktop traces can be replayed on the simulated devices.

A blkparse line looks like::

    8,16   1   102     0.048367011  1234  Q  W  6130688 + 8 [app]
    8,16   1   103     0.048374000  1234  D  W  6130688 + 8 [app]
    8,16   1   104     0.048912000     0  C  W  6130688 + 8 [0]

i.e. device major,minor; CPU; sequence; time (seconds); PID; action
(``Q`` queue, ``D`` dispatch/issue, ``C`` complete, among others); RWBS
flags; start sector ``+`` sector count; process name.  Sectors are 512
bytes; we align to the 4 KB flash page like the file system does.

``Q``/``D``/``C`` events are matched by (sector, op) to recover the three
BIOtracer timestamps; unmatched events degrade gracefully (a ``Q`` without
``D``/``C`` yields an un-replayed request).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, TextIO, Tuple, Union

from .record import Op, Request, SECTOR, US_PER_S
from .trace import Trace

#: Requests per batch yielded by :func:`iter_requests`.
DEFAULT_BATCH_SIZE = 4096

#: Sector size blkparse reports in.
BLK_SECTOR = 512

_LINE = re.compile(
    r"^\s*\d+,\d+\s+\d+\s+\d+\s+"
    r"(?P<time>\d+\.\d+)\s+"
    r"(?P<pid>\d+)\s+"
    r"(?P<action>[A-Z])\s+"
    r"(?P<rwbs>[RWDSFNAMB]+)\s+"
    r"(?P<sector>\d+)\s*\+\s*(?P<count>\d+)"
)


@dataclass
class _Pending:
    arrival_us: float
    dispatch_us: Optional[float] = None


def _parse_op(rwbs: str) -> Optional[Op]:
    """Access type from the RWBS flags (None for non-data actions)."""
    if "R" in rwbs:
        return Op.READ
    if "W" in rwbs:
        return Op.WRITE
    return None


def _align_down(value: int) -> int:
    return value - value % SECTOR


def _align_up(value: int) -> int:
    remainder = value % SECTOR
    return value if remainder == 0 else value + SECTOR - remainder


def parse_blkparse(source: Union[str, Path, TextIO], name: str = "blktrace") -> Trace:
    """Parse blkparse text into a trace.

    Args:
        source: path or open text handle (or a literal string containing
            newlines).
        name: trace name.

    Returns:
        A trace whose requests carry all three timestamps when the
        corresponding ``D`` and ``C`` events were present.
    """
    requests: List[Request] = []
    for batch in iter_requests(source):
        requests.extend(batch)
    return Trace(name=name, requests=requests, metadata={"source": "blkparse"})


def iter_requests(
    source: Union[str, Path, TextIO], batch_size: int = DEFAULT_BATCH_SIZE
) -> Iterator[List[Request]]:
    """Parse blkparse text into request batches, single pass, bounded memory.

    Yields lists of at most ``batch_size`` requests in exactly the order
    :func:`parse_blkparse` appends them (completed requests in ``C``-event
    order, then the never-completed ``Q`` leftovers in queue order), so
    ``[r for batch in iter_requests(src) for r in batch]`` equals the
    whole-file parse's request list element for element.  Memory is
    bounded by one batch plus the pending (un-completed) queue map --
    the chunked entry point the trace-store packer feeds from::

        with StoreWriter(path, name="phone") as writer:
            for batch in iter_requests("blkparse.txt"):
                writer.append_requests(batch)
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if isinstance(source, Path) or (isinstance(source, str) and "\n" not in source):
        with open(source) as handle:
            yield from _iter_parse(handle, batch_size)
    elif isinstance(source, str):
        yield from _iter_parse(iter(source.splitlines()), batch_size)
    else:
        yield from _iter_parse(source, batch_size)


def _iter_parse(lines, batch_size: int) -> Iterator[List[Request]]:
    pending: Dict[Tuple[int, str], List[_Pending]] = {}
    requests: List[Request] = []
    for line in lines:
        match = _LINE.match(line)
        if not match:
            continue
        op = _parse_op(match.group("rwbs"))
        if op is None:
            continue
        time_us = float(match.group("time")) * US_PER_S
        sector = int(match.group("sector"))
        count = int(match.group("count"))
        if count <= 0:
            continue
        key = (sector, op.value)
        action = match.group("action")
        if action == "Q":
            pending.setdefault(key, []).append(_Pending(arrival_us=time_us))
        elif action == "D":
            queue = pending.get(key)
            if queue:
                for item in queue:
                    if item.dispatch_us is None:
                        item.dispatch_us = time_us
                        break
        elif action == "C":
            queue = pending.get(key, [])
            item = queue.pop(0) if queue else None
            if not queue:
                pending.pop(key, None)
            lba = _align_down(sector * BLK_SECTOR)
            size = _align_up(count * BLK_SECTOR)
            if item is None:
                # Completion without a seen queue event: arrival unknown,
                # record it as arriving when it completed.
                requests.append(Request(time_us, lba, size, op, time_us, time_us))
            else:
                dispatch = (
                    item.dispatch_us if item.dispatch_us is not None else item.arrival_us
                )
                dispatch = max(dispatch, item.arrival_us)
                finish = max(time_us, dispatch)
                requests.append(
                    Request(item.arrival_us, lba, size, op, dispatch, finish)
                )
            if len(requests) >= batch_size:
                yield requests
                requests = []
    # Q events never completed: keep as un-replayed requests.
    for (sector, op_value), queue in pending.items():
        for item in queue:
            requests.append(
                Request(
                    item.arrival_us,
                    _align_down(sector * BLK_SECTOR),
                    SECTOR,
                    Op.parse(op_value),
                )
            )
            if len(requests) >= batch_size:
                yield requests
                requests = []
    if requests:
        yield requests
