"""Reading and writing traces as CSV files.

The on-disk format is one header line, ``#``-prefixed metadata lines, then
one row per request::

    # name=Twitter
    # seed=7
    arrival_us,lba,size,op,service_start_us,finish_us
    0.0,4096,4096,W,0.0,1385.0
    ...

Empty ``service_start_us``/``finish_us`` fields mean the trace has not been
replayed on a device.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import List, TextIO, Union

from .record import Op, Request
from .trace import Trace

_FIELDS = ["arrival_us", "lba", "size", "op", "service_start_us", "finish_us"]


def write_trace(trace: Trace, destination: Union[str, Path, TextIO]) -> None:
    """Write ``trace`` to ``destination`` (path or open text file)."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", newline="") as handle:
            _write(trace, handle)
    else:
        _write(trace, destination)


def _write(trace: Trace, handle: TextIO) -> None:
    handle.write(f"# name={trace.name}\n")
    for key, value in sorted(trace.metadata.items()):
        handle.write(f"# {key}={value}\n")
    writer = csv.writer(handle)
    writer.writerow(_FIELDS)
    for request in trace:
        writer.writerow(
            [
                repr(request.arrival_us),
                request.lba,
                request.size,
                request.op.value,
                "" if request.service_start_us is None else repr(request.service_start_us),
                "" if request.finish_us is None else repr(request.finish_us),
            ]
        )


def read_trace(source: Union[str, Path, TextIO]) -> Trace:
    """Read a trace previously written by :func:`write_trace`."""
    if isinstance(source, (str, Path)):
        with open(source, newline="") as handle:
            return _read(handle, default_name=Path(source).stem)
    return _read(source, default_name="trace")


def _read(handle: TextIO, default_name: str) -> Trace:
    name = default_name
    metadata = {}
    body_lines: List[str] = []
    for line in handle:
        stripped = line.strip()
        if stripped.startswith("#"):
            key, _, value = stripped.lstrip("# ").partition("=")
            if key == "name":
                name = value
            elif key:
                metadata[key] = value
        elif stripped:
            body_lines.append(line)
    reader = csv.DictReader(io.StringIO("".join(body_lines)))
    if reader.fieldnames != _FIELDS:
        raise ValueError(f"unexpected trace header: {reader.fieldnames}")
    requests = []
    for row in reader:
        requests.append(
            Request(
                arrival_us=float(row["arrival_us"]),
                lba=int(row["lba"]),
                size=int(row["size"]),
                op=Op.parse(row["op"]),
                service_start_us=float(row["service_start_us"])
                if row["service_start_us"]
                else None,
                finish_us=float(row["finish_us"]) if row["finish_us"] else None,
            )
        )
    return Trace(name=name, requests=requests, metadata=metadata)


def dumps(trace: Trace) -> str:
    """Serialize ``trace`` to a CSV string."""
    buffer = io.StringIO()
    _write(trace, buffer)
    return buffer.getvalue()


def loads(text: str) -> Trace:
    """Parse a trace from a CSV string produced by :func:`dumps`."""
    return _read(io.StringIO(text), default_name="trace")
