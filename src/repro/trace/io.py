"""Reading and writing traces as CSV files.

The on-disk format is one header line, ``#``-prefixed metadata lines, then
one row per request::

    # name=Twitter
    # seed=7
    arrival_us,lba,size,op,service_start_us,finish_us
    0.0,4096,4096,W,0.0,1385.0
    ...

Empty ``service_start_us``/``finish_us`` fields mean the trace has not been
replayed on a device.

Metadata keys and values are escaped so that the line-oriented header
survives arbitrary strings: backslash, newline and carriage return are
written as ``\\\\``, ``\\n`` and ``\\r`` in both, and ``=`` is escaped as
``\\=`` in *keys* (the key/value split is the first unescaped ``=``, so
values may contain ``=`` verbatim, as they always could).  Files written
before escaping existed contain no backslashes and parse unchanged.

Both directions are vectorized over the trace's columnar view: the
writer renders whole columns (``repr`` per float via ``.tolist()``, bulk
string joins) instead of looping over ``Request`` objects, and the
reader splits the body into column lists and adopts the resulting
:class:`~repro.trace.columns.TraceColumns` directly via
:meth:`Trace.from_columns`, so a freshly read trace carries its
struct-of-arrays view without a rebuild pass.  The emitted bytes are
identical to the old per-request ``csv`` module path (header lines end
``\\n``, data rows end ``\\r\\n``, floats are ``repr``-rendered).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, List, TextIO, Tuple, Union

import numpy as np

from .columns import FLAG_HAS_FINISH, FLAG_HAS_SERVICE, OP_WRITE, TraceColumns
from .record import Op, Request
from .trace import Trace

_FIELDS = ["arrival_us", "lba", "size", "op", "service_start_us", "finish_us"]
_HEADER = ",".join(_FIELDS)


# -- metadata escaping --------------------------------------------------------


def _escape_value(text: str) -> str:
    """Make ``text`` safe for one ``# key=value`` header line."""
    return (
        text.replace("\\", "\\\\").replace("\n", "\\n").replace("\r", "\\r")
    )


def _escape_key(text: str) -> str:
    """Like :func:`_escape_value`, additionally protecting ``=``."""
    return _escape_value(text).replace("=", "\\=")


def _unescape(text: str) -> str:
    """Invert :func:`_escape_key` / :func:`_escape_value`."""
    if "\\" not in text:
        return text
    out: List[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "\\" and i + 1 < n:
            nxt = text[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt == "r":
                out.append("\r")
            else:  # ``\\\\``, ``\\=`` and any future escape: literal char
                out.append(nxt)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _split_metadata(line: str) -> Tuple[str, str]:
    """Split ``key=value`` at the first *unescaped* ``=``.

    Returns ``(raw_key, raw_value)`` still escaped; ``("", line)`` when no
    unescaped ``=`` exists (malformed line -- ignored by the reader, which
    matches the old ``partition`` behaviour for ``=``-less lines).
    """
    i, n = 0, len(line)
    while i < n:
        ch = line[i]
        if ch == "\\":
            i += 2
            continue
        if ch == "=":
            return line[:i], line[i + 1 :]
        i += 1
    return "", line


# -- writing ------------------------------------------------------------------


def write_trace(trace: Trace, destination: Union[str, Path, TextIO]) -> None:
    """Write ``trace`` to ``destination`` (path or open text file)."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", newline="") as handle:
            _write(trace, handle)
    else:
        _write(trace, destination)


def format_header(name: str, metadata: Dict[str, str]) -> str:
    """The metadata block plus column-header line (written once per file)."""
    lines = [f"# name={_escape_value(name)}\n"]
    for key, value in sorted(metadata.items()):
        lines.append(f"# {_escape_key(key)}={_escape_value(str(value))}\n")
    lines.append(_HEADER + "\r\n")
    return "".join(lines)


def format_rows(columns: TraceColumns) -> str:
    """One chunk of CSV body text, vectorized over the columns.

    Every field is a number or ``R``/``W`` -- never quoted -- so a bulk
    string join produces byte-identical output to ``csv.writer`` (which
    also terminates rows with ``\\r\\n``).
    """
    rows = len(columns)
    if rows == 0:
        return ""
    arrival = [repr(v) for v in columns.arrival_us.tolist()]
    lba = [str(v) for v in columns.lba.tolist()]
    size = [str(v) for v in columns.size.tolist()]
    op = ["W" if v else "R" for v in columns.op.tolist()]
    has_service = (columns.flags & FLAG_HAS_SERVICE) != 0
    has_finish = (columns.flags & FLAG_HAS_FINISH) != 0
    service = [
        repr(v) if present else ""
        for v, present in zip(columns.service_start_us.tolist(), has_service.tolist())
    ]
    finish = [
        repr(v) if present else ""
        for v, present in zip(columns.complete_us.tolist(), has_finish.tolist())
    ]
    return "".join(
        f"{arrival[i]},{lba[i]},{size[i]},{op[i]},{service[i]},{finish[i]}\r\n"
        for i in range(rows)
    )


def _write(trace: Trace, handle: TextIO) -> None:
    handle.write(format_header(trace.name, trace.metadata))
    handle.write(format_rows(trace.columns()))


# -- reading ------------------------------------------------------------------


def read_trace(source: Union[str, Path, TextIO]) -> Trace:
    """Read a trace previously written by :func:`write_trace`."""
    if isinstance(source, (str, Path)):
        with open(source, newline="") as handle:
            return _read(handle, default_name=Path(source).stem)
    return _read(source, default_name="trace")


def _columns_from_rows(body_lines: List[str]) -> TraceColumns:
    """Parse CSV body lines (after the header line) into columns."""
    arrival: List[float] = []
    lba: List[int] = []
    size: List[int] = []
    op: List[int] = []
    service: List[float] = []
    finish: List[float] = []
    flags: List[int] = []
    nan = float("nan")
    for line in body_lines:
        fields = line.rstrip("\r\n").split(",")
        if len(fields) != 6:
            raise ValueError(f"malformed trace row: {line!r}")
        arrival.append(float(fields[0]))
        lba.append(int(fields[1]))
        size.append(int(fields[2]))
        op.append(1 if Op.parse(fields[3]) is Op.WRITE else 0)
        flag = 0
        if fields[4]:
            service.append(float(fields[4]))
            flag |= FLAG_HAS_SERVICE
        else:
            service.append(nan)
        if fields[5]:
            finish.append(float(fields[5]))
            flag |= FLAG_HAS_FINISH
        else:
            finish.append(nan)
        flags.append(flag)
    return TraceColumns(
        np.array(arrival, dtype=np.float64),
        np.array(service, dtype=np.float64),
        np.array(finish, dtype=np.float64),
        np.array(lba, dtype=np.int64),
        np.array(size, dtype=np.int64),
        np.array(op, dtype=np.uint8),
        np.array(flags, dtype=np.uint8),
    )


def _read(handle: TextIO, default_name: str) -> Trace:
    name = default_name
    metadata: Dict[str, str] = {}
    body_lines: List[str] = []
    for line in handle:
        stripped = line.strip()
        if stripped.startswith("#"):
            raw_key, raw_value = _split_metadata(stripped.lstrip("# "))
            key, value = _unescape(raw_key), _unescape(raw_value)
            if key == "name":
                name = value
            elif key:
                metadata[key] = value
        elif stripped:
            body_lines.append(line)
    if not body_lines:
        raise ValueError("trace file has no header row")
    header = body_lines[0].rstrip("\r\n")
    if header.split(",") != _FIELDS:
        reader = csv.reader(io.StringIO(body_lines[0]))
        raise ValueError(f"unexpected trace header: {next(reader, None)}")
    rows = body_lines[1:]
    if any('"' in line for line in rows):  # pragma: no cover - hand-made files
        return _read_quoted(rows, name, metadata)
    columns = _columns_from_rows(rows)
    arrivals = columns.arrival_us
    if arrivals.size > 1 and bool(np.any(np.diff(arrivals) < 0)):
        # Out-of-order rows (e.g. hand-edited files): the Trace
        # constructor's stable sort restores arrival order.
        return Trace(name=name, requests=columns.to_requests(), metadata=metadata)
    return Trace.from_columns(name, columns, metadata=metadata)


def _read_quoted(rows: List[str], name: str, metadata: Dict[str, str]) -> Trace:
    """Slow path for quoted fields (never produced by :func:`write_trace`)."""
    requests: List[Request] = []
    for row in csv.reader(io.StringIO("".join(rows))):
        if not row:
            continue
        requests.append(
            Request(
                arrival_us=float(row[0]),
                lba=int(row[1]),
                size=int(row[2]),
                op=Op.parse(row[3]),
                service_start_us=float(row[4]) if row[4] else None,
                finish_us=float(row[5]) if row[5] else None,
            )
        )
    return Trace(name=name, requests=requests, metadata=metadata)


def dumps(trace: Trace) -> str:
    """Serialize ``trace`` to a CSV string."""
    buffer = io.StringIO()
    _write(trace, buffer)
    return buffer.getvalue()


def loads(text: str) -> Trace:
    """Parse a trace from a CSV string produced by :func:`dumps`."""
    return _read(io.StringIO(text), default_name="trace")
