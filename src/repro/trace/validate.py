"""Trace invariant checks.

:class:`~repro.trace.record.Request` already enforces per-record invariants
in ``__post_init__``; this module adds whole-trace checks used by tests and
by the workload generator's self-validation.
"""

from __future__ import annotations

from typing import List

from .record import SECTOR
from .trace import Trace


class TraceValidationError(ValueError):
    """A trace violates a structural invariant."""


def validate_trace(trace: Trace, device_bytes: int = 0) -> None:
    """Raise :class:`TraceValidationError` on any violated invariant.

    Checks:
      * arrivals are sorted and non-negative (sortedness is maintained by
        :class:`Trace`, but we verify defensively);
      * sizes and addresses are 4 KB-aligned (enforced per record);
      * if ``device_bytes`` is given, every access fits inside the device;
      * completed records never finish before they start.

    Args:
        trace: trace to check.
        device_bytes: optional device capacity the trace must fit in.
    """
    problems = collect_problems(trace, device_bytes=device_bytes)
    if problems:
        raise TraceValidationError(
            f"trace {trace.name!r}: " + "; ".join(problems[:5])
            + (f" (+{len(problems) - 5} more)" if len(problems) > 5 else "")
        )


def collect_problems(trace: Trace, device_bytes: int = 0) -> List[str]:
    """Return a human-readable list of invariant violations (empty if none)."""
    problems: List[str] = []
    previous_arrival = 0.0
    for index, request in enumerate(trace):
        if request.arrival_us < previous_arrival:
            problems.append(f"request {index} arrives before its predecessor")
        previous_arrival = request.arrival_us
        if request.lba % SECTOR or request.size % SECTOR:
            problems.append(f"request {index} is not 4KB-aligned")
        if device_bytes and request.end_lba > device_bytes:
            problems.append(
                f"request {index} accesses byte {request.end_lba} beyond "
                f"device capacity {device_bytes}"
            )
    return problems
