"""Columnar struct-of-arrays backing for :class:`~repro.trace.Trace`.

The characterization experiments (Tables III/IV, Figs. 4-7) walk the 25
traces request-by-request; at ~240k requests per full run the pure-Python
loops over :class:`~repro.trace.record.Request` dataclasses dominate
wall-clock.  :class:`TraceColumns` is the struct-of-arrays view the
vectorized analysis kernels consume instead: one contiguous NumPy array
per request field, built once per trace and cached on the ``Trace``
(see :meth:`repro.trace.Trace.columns`).

Column schema (all arrays share one length, one row per request, in
arrival order):

===================  =========  ==================================================
column               dtype      meaning
===================  =========  ==================================================
``arrival_us``       float64    block-layer arrival time
``service_start_us`` float64    dispatch time; ``NaN`` when never replayed
``complete_us``      float64    completion time; ``NaN`` when never replayed
``lba``              int64      logical byte address (4 KiB aligned)
``size``             int64      request size in bytes (4 KiB multiple)
``op``               uint8      :data:`OP_READ` / :data:`OP_WRITE`
``flags``            uint8      :data:`FLAG_HAS_SERVICE` | :data:`FLAG_HAS_FINISH`
===================  =========  ==================================================

Bit-identity contract
---------------------

The vectorized kernels built on these columns must reproduce the scalar
request-loop results *bit for bit* (the experiment digests are part of
the golden-parity CI gate).  Two rules make that possible:

* element-wise arithmetic (``complete_us - arrival_us``, ``gap /
  US_PER_MS``) is the same IEEE-754 operation the scalar code performs
  per request, so masks/extractions commute with it;
* ordered float reductions use :func:`sequential_sum`, which reduces
  left-to-right exactly like the built-in ``sum()`` (NumPy's ``np.sum``
  would use pairwise summation and drift in the last ulps).

Integer reductions (counts, byte totals, ``np.unique`` hit counts) are
exact in any order and vectorize freely.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from .record import Op, Request

#: ``flags`` bit: the request carries a ``service_start_us`` timestamp.
FLAG_HAS_SERVICE = 0x1
#: ``flags`` bit: the request carries a ``finish_us`` timestamp.
FLAG_HAS_FINISH = 0x2

#: ``op`` column codes.
OP_READ = 0
OP_WRITE = 1


def sequential_sum(values: np.ndarray) -> float:
    """Left-to-right float sum, bit-identical to ``sum(list_of_floats)``.

    ``np.add.accumulate`` reduces strictly sequentially (each partial is
    an output element), unlike ``np.sum``'s pairwise blocking, so its last
    element reproduces the scalar loop's rounding exactly.  Returns 0.0
    for an empty array, like ``sum([])``.
    """
    array = np.asarray(values)
    if array.size == 0:
        return 0.0
    return float(np.add.accumulate(array, dtype=np.float64)[-1])


class TraceColumns:
    """Immutable-by-convention struct-of-arrays view of one trace.

    Instances are cheap façades over seven NumPy arrays; they are built
    via :meth:`from_requests` (or directly by the workload generator,
    which synthesizes the arrays first and materializes ``Request``
    objects second).  Do not mutate the arrays in place -- the owning
    ``Trace`` caches this object and would serve stale analysis results.
    """

    __slots__ = (
        "arrival_us",
        "service_start_us",
        "complete_us",
        "lba",
        "size",
        "op",
        "flags",
        "_read_mask",
        "_write_mask",
        "_completed_mask",
    )

    def __init__(
        self,
        arrival_us: np.ndarray,
        service_start_us: np.ndarray,
        complete_us: np.ndarray,
        lba: np.ndarray,
        size: np.ndarray,
        op: np.ndarray,
        flags: np.ndarray,
    ) -> None:
        self.arrival_us = np.asarray(arrival_us, dtype=np.float64)
        self.service_start_us = np.asarray(service_start_us, dtype=np.float64)
        self.complete_us = np.asarray(complete_us, dtype=np.float64)
        self.lba = np.asarray(lba, dtype=np.int64)
        self.size = np.asarray(size, dtype=np.int64)
        self.op = np.asarray(op, dtype=np.uint8)
        self.flags = np.asarray(flags, dtype=np.uint8)
        n = self.arrival_us.shape[0]
        for name in ("service_start_us", "complete_us", "lba", "size", "op", "flags"):
            if getattr(self, name).shape != (n,):
                raise ValueError(f"column {name!r} does not match length {n}")
        self._read_mask = None
        self._write_mask = None
        self._completed_mask = None

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_requests(cls, requests: Sequence[Request]) -> "TraceColumns":
        """Extract the seven columns from a request list (one pass each)."""
        nan = float("nan")
        arrival = np.array([r.arrival_us for r in requests], dtype=np.float64)
        service = np.array(
            [nan if r.service_start_us is None else r.service_start_us for r in requests],
            dtype=np.float64,
        )
        complete = np.array(
            [nan if r.finish_us is None else r.finish_us for r in requests],
            dtype=np.float64,
        )
        lba = np.array([r.lba for r in requests], dtype=np.int64)
        size = np.array([r.size for r in requests], dtype=np.int64)
        write = Op.WRITE
        op = np.array([r.op is write for r in requests], dtype=np.uint8)
        flags = np.where(np.isnan(service), 0, FLAG_HAS_SERVICE).astype(np.uint8)
        flags |= np.where(np.isnan(complete), 0, FLAG_HAS_FINISH).astype(np.uint8)
        return cls(arrival, service, complete, lba, size, op, flags)

    @classmethod
    def empty(cls) -> "TraceColumns":
        """A zero-length column set."""
        f64 = np.empty(0, dtype=np.float64)
        i64 = np.empty(0, dtype=np.int64)
        u8 = np.empty(0, dtype=np.uint8)
        return cls(f64, f64.copy(), f64.copy(), i64, i64.copy(), u8, u8.copy())

    def to_requests(self) -> List[Request]:
        """Materialize :class:`Request` objects (the simulator-facing view)."""
        read, write = Op.READ, Op.WRITE
        requests: List[Request] = []
        has_service = (self.flags & FLAG_HAS_SERVICE) != 0
        has_finish = (self.flags & FLAG_HAS_FINISH) != 0
        for i in range(len(self)):
            requests.append(
                Request(
                    arrival_us=float(self.arrival_us[i]),
                    lba=int(self.lba[i]),
                    size=int(self.size[i]),
                    op=write if self.op[i] else read,
                    service_start_us=float(self.service_start_us[i])
                    if has_service[i]
                    else None,
                    finish_us=float(self.complete_us[i]) if has_finish[i] else None,
                )
            )
        return requests

    # -- container ------------------------------------------------------------

    def __len__(self) -> int:
        return int(self.arrival_us.shape[0])

    def select(self, index: Union[slice, np.ndarray]) -> "TraceColumns":
        """Row subset as a new column set.

        A plain ``slice`` yields zero-copy views of every column; boolean
        masks and fancy index arrays follow NumPy semantics and copy.
        """
        return TraceColumns(
            self.arrival_us[index],
            self.service_start_us[index],
            self.complete_us[index],
            self.lba[index],
            self.size[index],
            self.op[index],
            self.flags[index],
        )

    # -- derived masks (cached) ----------------------------------------------

    @property
    def read_mask(self) -> np.ndarray:
        """Boolean mask of read requests."""
        if self._read_mask is None:
            self._read_mask = self.op == OP_READ
        return self._read_mask

    @property
    def write_mask(self) -> np.ndarray:
        """Boolean mask of write requests."""
        if self._write_mask is None:
            self._write_mask = self.op == OP_WRITE
        return self._write_mask

    @property
    def completed_mask(self) -> np.ndarray:
        """Boolean mask of requests carrying device timestamps."""
        if self._completed_mask is None:
            self._completed_mask = (self.flags & FLAG_HAS_FINISH) != 0
        return self._completed_mask

    # -- derived columns ------------------------------------------------------

    @property
    def end_lba(self) -> np.ndarray:
        """First byte past each accessed range (``lba + size``)."""
        return self.lba + self.size

    @property
    def inter_arrival_us(self) -> np.ndarray:
        """Successive arrival gaps (length ``n - 1``; empty for ``n <= 1``)."""
        if len(self) <= 1:
            return np.empty(0, dtype=np.float64)
        return np.diff(self.arrival_us)

    @property
    def wait_us(self) -> np.ndarray:
        """Queueing delay per request (``NaN`` where not replayed)."""
        return self.service_start_us - self.arrival_us

    @property
    def service_us(self) -> np.ndarray:
        """Device service time per request (``NaN`` where not replayed)."""
        return self.complete_us - self.service_start_us

    @property
    def response_us(self) -> np.ndarray:
        """End-to-end response time per request (``NaN`` where not replayed)."""
        return self.complete_us - self.arrival_us

    # -- pickling (``__slots__`` has no ``__dict__``) -------------------------

    def __getstate__(self):
        return (
            self.arrival_us,
            self.service_start_us,
            self.complete_us,
            self.lba,
            self.size,
            self.op,
            self.flags,
        )

    def __setstate__(self, state) -> None:
        self.__init__(*state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceColumns(n={len(self)})"
