"""Block-level I/O trace model, serialization and validation."""

from .record import KIB, MIB, Op, Request, SECTOR, US_PER_MS, US_PER_S
from .columns import (
    FLAG_HAS_FINISH,
    FLAG_HAS_SERVICE,
    OP_READ,
    OP_WRITE,
    TraceColumns,
    sequential_sum,
)
from .trace import Trace, merge
from .blkparse import iter_requests, parse_blkparse
from .io import dumps, loads, read_trace, write_trace
from .validate import TraceValidationError, collect_problems, validate_trace

__all__ = [
    "KIB",
    "MIB",
    "Op",
    "Request",
    "SECTOR",
    "US_PER_MS",
    "US_PER_S",
    "FLAG_HAS_FINISH",
    "FLAG_HAS_SERVICE",
    "OP_READ",
    "OP_WRITE",
    "TraceColumns",
    "sequential_sum",
    "Trace",
    "merge",
    "iter_requests",
    "parse_blkparse",
    "dumps",
    "loads",
    "read_trace",
    "write_trace",
    "TraceValidationError",
    "collect_problems",
    "validate_trace",
]
