"""Compatibility shim: the figure buckets live in :mod:`repro.metrics.buckets`.

The bucket sets moved into the metric layer with the unified
metric-kernel refactor (the distribution metrics are defined over them,
and ``repro.metrics`` depends only on ``repro.trace``).  Workload-side
callers keep their historical import path.
"""

from repro.metrics.buckets import (
    Bucket,
    INTERARRIVAL_BUCKETS_MS,
    RESPONSE_BUCKETS_MS,
    SIZE_BUCKET_PAGES,
    SIZE_BUCKETS,
    bucket_labels,
    histogram,
    pages_to_bucket_index,
    size_histogram,
)

__all__ = [
    "Bucket",
    "INTERARRIVAL_BUCKETS_MS",
    "RESPONSE_BUCKETS_MS",
    "SIZE_BUCKET_PAGES",
    "SIZE_BUCKETS",
    "bucket_labels",
    "histogram",
    "pages_to_bucket_index",
    "size_histogram",
]
