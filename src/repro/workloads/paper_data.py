"""Verbatim published statistics: Tables III and IV of the paper.

These rows serve two purposes:

1. they are the *calibration targets* the synthetic workload generator is
   tuned against, and
2. the experiment harness prints them next to the measured values so
   EXPERIMENTS.md can record paper-vs-measured for every cell.

Application names follow the paper's spelling, including "AngryBrid"
(sic, Tables III/IV) and the combo naming ``Music/WB`` etc.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class SizeStatsRow:
    """One row of Table III (size-related characteristics)."""

    name: str
    data_size_kib: int
    num_requests: int
    max_size_kib: int
    avg_size_kib: float
    avg_read_kib: float
    avg_write_kib: float
    write_req_pct: float
    write_size_pct: float


@dataclass(frozen=True)
class TimingStatsRow:
    """One row of Table IV (timing-related statistics)."""

    name: str
    duration_s: float
    arrival_rate: float  # requests per second
    access_rate_kib_s: float
    nowait_pct: float
    mean_service_ms: float
    mean_response_ms: float
    spatial_locality_pct: float
    temporal_locality_pct: float


#: Table I: the selected applications and their definitions.
TABLE_I: Dict[str, str] = {
    "Idle": "Smartphone in idle state",
    "CallIn": "Answering an incoming call",
    "CallOut": "Making a phone call",
    "Booting": "Smartphone booting process",
    "Movie": "Watching a movie on the smartphone",
    "Music": "Listening songs on the smartphone",
    "AngryBrid": "Playing the AngryBirds game",
    "CameraVideo": "Recording a video clip",
    "GoogleMaps": "Road map and navigation",
    "Messaging": "Receiving/sending/viewing messages",
    "Twitter": "Reading and posting tweets",
    "Email": "Receiving/sending/viewing emails",
    "Facebook": "Viewing pictures/adding comments/etc.",
    "Amazon": "Mobile online shopping",
    "YouTube": "Watching videos on the YouTube",
    "Radio": "Listening to online radio",
    "Installing": "Installing applications from Google Play",
    "WebBrowsing": "Reading news on the TIME website",
}

#: Table II: how each trace was collected (usage script and duration).
TABLE_II: Dict[str, str] = {
    "Idle": "10pm - 6am: idle status",
    "Booting": "30 seconds: launching the smartphone",
    "CallIn": "1 hour: mimicking a phone interview",
    "CallOut": "1 hour: mimicking a phone interview",
    "CameraVideo": "0.5 - 1 hour: recording a video",
    "AngryBrid": "0.5 - 1 hour: playing games",
    "GoogleMaps": "0.5 - 1 hour: driving navigating",
    "Facebook": "10 - 20 minutes: viewing comments, pictures, composing replies",
    "Twitter": "10 - 20 minutes: viewing comments, searching people or items",
    "Amazon": "10 - 20 minutes: searching items, viewing pictures",
    "Email": "10 - 20 minutes: viewing and composing replies",
    "Messaging": "10 - 20 minutes: receiving/sending/viewing messages",
    "WebBrowsing": "1 - 1.5 hours: reading news",
    "YouTube": "1 - 1.5 hours: watching online videos",
    "Radio": "1 - 1.5 hours: listening radio",
    "Music": "1 - 1.5 hours: listening music",
    "Movie": "10 minutes: watching locally stored movie",
    "Installing": "10 minutes: installing game applications via WIFI",
    "Music/WB": "10 min - 0.5 h: browsing online news while listening music",
    "Radio/WB": "10 min - 0.5 h: browsing online news while listening radio",
    "Music/FB": "10 min - 0.5 h: using Facebook while listening music",
    "Radio/FB": "10 min - 0.5 h: using Facebook while listening radio",
    "Music/Msg": "10 min - 0.5 h: messaging while listening music",
    "Radio/Msg": "10 min - 0.5 h: messaging while listening radio",
    "FB/Msg": "12 minutes: Facebook, switching to read incoming messages",
}

#: The 18 individual applications, in the paper's order.
INDIVIDUAL_APPS: Tuple[str, ...] = (
    "Idle",
    "CallIn",
    "CallOut",
    "Booting",
    "Movie",
    "Music",
    "AngryBrid",
    "CameraVideo",
    "GoogleMaps",
    "Messaging",
    "Twitter",
    "Email",
    "Facebook",
    "Amazon",
    "YouTube",
    "Radio",
    "Installing",
    "WebBrowsing",
)

#: The 7 combo traces, in the paper's order.
COMBO_APPS: Tuple[str, ...] = (
    "Music/WB",
    "Radio/WB",
    "Music/FB",
    "Radio/FB",
    "Music/Msg",
    "Radio/Msg",
    "FB/Msg",
)

ALL_TRACES: Tuple[str, ...] = INDIVIDUAL_APPS + COMBO_APPS

#: Which two individual applications each combo interleaves.
COMBO_COMPONENTS: Dict[str, Tuple[str, str]] = {
    "Music/WB": ("Music", "WebBrowsing"),
    "Radio/WB": ("Radio", "WebBrowsing"),
    "Music/FB": ("Music", "Facebook"),
    "Radio/FB": ("Radio", "Facebook"),
    "Music/Msg": ("Music", "Messaging"),
    "Radio/Msg": ("Radio", "Messaging"),
    "FB/Msg": ("Facebook", "Messaging"),
}


def _size(name, data, reqs, mx, avg, avg_r, avg_w, wreq, wsize) -> SizeStatsRow:
    return SizeStatsRow(name, data, reqs, mx, avg, avg_r, avg_w, wreq, wsize)


#: Table III, transcribed verbatim.
TABLE_III: Dict[str, SizeStatsRow] = {
    row.name: row
    for row in [
        _size("Idle", 123_220, 6_932, 1_536, 17.5, 39.5, 15.0, 88.94, 75.41),
        _size("CallIn", 27_300, 1_491, 1_536, 18.0, 12.0, 18.0, 99.93, 99.96),
        _size("CallOut", 27_364, 1_569, 1_536, 17.0, 10.0, 17.5, 98.92, 99.37),
        _size("Booting", 982_200, 18_417, 20_816, 53.0, 61.0, 37.5, 33.07, 23.26),
        _size("Movie", 130_420, 4_781, 512, 27.0, 27.5, 17.0, 5.40, 3.37),
        _size("Music", 240_060, 6_913, 940, 34.5, 62.5, 9.5, 52.80, 14.48),
        _size("AngryBrid", 94_684, 3_215, 3_940, 29.0, 51.0, 25.0, 84.51, 73.12),
        _size("CameraVideo", 2_283_184, 9_348, 10_104, 244.0, 38.5, 736.5, 29.46, 88.85),
        _size("GoogleMaps", 197_808, 12_603, 8_174, 15.5, 28.5, 13.5, 86.78, 75.90),
        _size("Messaging", 63_668, 5_702, 128, 11.0, 23.0, 10.5, 97.30, 94.38),
        _size("Twitter", 187_540, 13_807, 2_216, 13.5, 35.5, 10.5, 88.48, 69.86),
        _size("Email", 59_276, 2_906, 388, 20.0, 14.5, 22.5, 70.37, 78.62),
        _size("Facebook", 97_436, 3_897, 2_680, 25.0, 28.5, 23.5, 74.42, 70.70),
        _size("Amazon", 67_412, 3_272, 1_392, 20.5, 24.5, 18.0, 63.02, 55.07),
        _size("YouTube", 28_692, 2_080, 1_536, 13.5, 19.5, 13.5, 97.50, 96.46),
        _size("Radio", 115_972, 5_820, 11_164, 19.5, 36.0, 19.5, 98.68, 97.59),
        _size("Installing", 1_653_900, 17_952, 22_144, 92.0, 22.0, 93.0, 98.26, 99.58),
        _size("WebBrowsing", 95_908, 4_090, 1_536, 23.0, 21.5, 23.5, 80.71, 81.95),
        _size("Music/WB", 289_280, 12_603, 1_544, 21.5, 50.5, 15.0, 81.68, 57.36),
        _size("Radio/WB", 269_932, 5_702, 2_716, 22.5, 29.0, 19.5, 72.02, 63.65),
        _size("Music/FB", 442_388, 13_807, 2_424, 12.5, 38.0, 8.5, 87.67, 62.34),
        _size("Radio/FB", 153_776, 2_906, 1_368, 14.5, 23.0, 13.5, 91.68, 86.92),
        _size("Music/Msg", 234_000, 3_897, 472, 14.0, 56.0, 11.5, 94.43, 77.96),
        _size("Radio/Msg", 150_344, 3_272, 1_536, 13.5, 17.5, 13.0, 98.15, 97.55),
        _size("FB/Msg", 182_632, 2_080, 732, 11.5, 21.5, 9.5, 84.72, 71.72),
    ]
}


def _timing(name, dur, arr, acc, nowait, serv, resp, sloc, tloc) -> TimingStatsRow:
    return TimingStatsRow(name, dur, arr, acc, nowait, serv, resp, sloc, tloc)


#: Table IV, transcribed verbatim.
TABLE_IV: Dict[str, TimingStatsRow] = {
    row.name: row
    for row in [
        _timing("Idle", 29_363, 0.24, 4.20, 89, 7.42, 9.24, 25.32, 34.22),
        _timing("CallIn", 3_767, 0.40, 7.25, 98, 5.61, 6.18, 29.59, 31.00),
        _timing("CallOut", 3_700, 0.42, 7.40, 94, 5.57, 6.07, 27.29, 35.14),
        _timing("Booting", 40, 460.40, 24_555.00, 58, 1.65, 4.93, 28.19, 19.70),
        _timing("Movie", 998, 4.79, 130.68, 23, 2.13, 6.28, 17.25, 1.72),
        _timing("Music", 3_801, 1.82, 63.16, 64, 2.38, 3.45, 21.51, 31.86),
        _timing("AngryBrid", 2_023, 1.59, 46.80, 84, 3.44, 4.06, 30.08, 26.07),
        _timing("CameraVideo", 3_417, 2.74, 668.18, 47, 8.07, 11.61, 20.34, 16.30),
        _timing("GoogleMaps", 1_720, 7.33, 117.76, 85, 1.40, 2.23, 21.10, 42.78),
        _timing("Messaging", 589, 9.68, 108.10, 86, 1.68, 1.88, 28.85, 50.82),
        _timing("Twitter", 856, 16.13, 219.09, 84, 1.72, 2.07, 26.57, 52.90),
        _timing("Email", 740, 3.93, 80.10, 63, 3.01, 4.09, 14.49, 34.87),
        _timing("Facebook", 1_112, 3.50, 87.62, 69, 2.99, 4.08, 19.89, 34.21),
        _timing("Amazon", 819, 3.90, 84.29, 73, 1.45, 4.70, 17.79, 26.38),
        _timing("YouTube", 4_690, 0.44, 6.12, 96, 6.90, 7.19, 47.61, 16.35),
        _timing("Radio", 4_454, 1.31, 26.04, 82, 3.54, 6.62, 23.90, 29.18),
        _timing("Installing", 977, 18.37, 1_692.84, 80, 3.64, 10.04, 22.59, 49.57),
        _timing("WebBrowsing", 4_901, 0.83, 19.57, 79, 4.33, 5.20, 23.77, 30.83),
        _timing("Music/WB", 2_165, 6.10, 133.62, 65, 1.70, 3.61, 18.40, 38.40),
        _timing("Radio/WB", 1_227, 9.78, 219.99, 69, 1.86, 3.30, 18.66, 28.48),
        _timing("Music/FB", 2_026, 17.34, 218.36, 70, 1.13, 2.09, 14.19, 60.50),
        _timing("Radio/FB", 900, 11.66, 170.86, 78, 1.64, 2.58, 19.12, 52.70),
        _timing("Music/Msg", 926, 17.82, 252.70, 74, 1.36, 2.19, 20.68, 53.84),
        _timing("Radio/Msg", 660, 16.82, 227.79, 89, 1.63, 2.04, 27.25, 49.48),
        _timing("FB/Msg", 699, 22.32, 261.28, 72, 1.23, 1.90, 15.80, 54.04),
    ]
}

#: Fig. 8 headline numbers: HPS mean-response-time improvement over 4PS.
FIG8_HPS_VS_4PS = {
    "best": ("Booting", 0.86),
    "worst": ("Movie", 0.24),
    "average": 0.619,
}

#: Fig. 9 headline numbers: HPS space-utilization improvement over 8PS.
FIG9_HPS_VS_8PS = {
    "best": ("Music", 0.242),
    "average": 0.131,
}


def effective_num_requests(name: str) -> int:
    """Request count, corrected for the paper's combo-row inconsistency.

    Table III's *Number of Reqs.* column for the 7 combo traces repeats
    values from other rows and contradicts the same table's data sizes and
    Table IV's rates (e.g. Music/FB lists 13,807 requests, but
    218.36 KB/s x 2,026 s / 12.5 KB ~= 35,000).  Arrival rate x duration
    and data size / average size agree with each other for every combo, so
    we take the former as the effective count; the 18 individual rows are
    self-consistent and used verbatim.
    """
    if name in COMBO_APPS:
        row = TABLE_IV[name]
        return int(round(row.arrival_rate * row.duration_s))
    return TABLE_III[name].num_requests


def table_iii(name: str) -> SizeStatsRow:
    """Table III row for ``name`` (raises ``KeyError`` for unknown traces)."""
    return TABLE_III[name]


def table_iv(name: str) -> TimingStatsRow:
    """Table IV row for ``name`` (raises ``KeyError`` for unknown traces)."""
    return TABLE_IV[name]
