"""Per-application workload profiles for the 25 traces.

A profile bundles the published statistics (Tables III/IV rows, used as
calibration targets) with the generator's shape parameters:

* ``frac_4k`` -- target share of single-page requests (Characteristic 2:
  44.9 %-57.4 % for 15 of the 18 individual traces; Movie, Booting and
  CameraVideo are the exceptions with distinctive distributions, Fig. 4);
* per-op 4 KB-share overrides and optional explicit size histograms for the
  apps whose Fig. 4 shapes are called out in the text (Movie's 16-64 KB
  hump, CameraVideo's large sequential writes);
* burstiness of the arrival process (Fig. 6 / Characteristic 6);
* the address footprint (localities come from Table IV directly).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.trace import KIB, MIB, SECTOR, US_PER_S

from . import arrivals, sizes
from .addresses import AddressModel
from .paper_data import (
    ALL_TRACES,
    COMBO_APPS,
    INDIVIDUAL_APPS,
    SizeStatsRow,
    TABLE_III,
    TABLE_IV,
    TimingStatsRow,
    effective_num_requests,
)

#: Capacity of the traced device (32 GB SanDisk iNAND, Section II-A).
DEVICE_BYTES = 32 * 1024 * MIB


@dataclass(frozen=True)
class AppProfile:
    """Everything needed to synthesize one of the 25 traces."""

    name: str
    size_stats: SizeStatsRow
    timing_stats: TimingStatsRow
    frac_4k: float
    frac_4k_read: Optional[float] = None
    frac_4k_write: Optional[float] = None
    read_histogram: Optional[Tuple[float, ...]] = None
    write_histogram: Optional[Tuple[float, ...]] = None
    burst_frac: float = 0.6
    burst_mean_ms: float = 1.5
    footprint_factor: float = 4.0
    extra: Dict[str, str] = field(default_factory=dict)

    # -- derived calibration targets ----------------------------------------

    @property
    def num_requests(self) -> int:
        """Request count; combo rows use the corrected effective count
        (see :func:`repro.workloads.paper_data.effective_num_requests`)."""
        return effective_num_requests(self.name)

    @property
    def write_frac(self) -> float:
        """Target write-request fraction (Table III)."""
        return self.size_stats.write_req_pct / 100.0

    @property
    def max_pages(self) -> int:
        """Largest request size in 4 KB pages (Table III)."""
        return max(2, self.size_stats.max_size_kib * KIB // SECTOR)

    @property
    def mean_interarrival_us(self) -> float:
        """Target mean inter-arrival gap (Table IV)."""
        gaps = max(1, self.num_requests - 1)
        return self.timing_stats.duration_s * US_PER_S / gaps

    def size_model(self, op_is_write: bool) -> sizes.SizeModel:
        """The calibrated per-op size distribution."""
        if op_is_write:
            mean_pages = self.size_stats.avg_write_kib * KIB / SECTOR
            histogram = self.write_histogram
            frac = self.frac_4k_write if self.frac_4k_write is not None else self.frac_4k
        else:
            mean_pages = self.size_stats.avg_read_kib * KIB / SECTOR
            histogram = self.read_histogram
            frac = self.frac_4k_read if self.frac_4k_read is not None else self.frac_4k
        mean_pages = max(1.0, mean_pages)
        if histogram is not None:
            return sizes.from_histogram(histogram, self.max_pages, mean_pages)
        return sizes.calibrate(frac, mean_pages, self.max_pages)

    def arrival_model(self) -> arrivals.ArrivalModel:
        """The calibrated arrival process."""
        return arrivals.calibrate(
            self.mean_interarrival_us, self.burst_frac, self.burst_mean_ms
        )

    def address_model(self) -> AddressModel:
        """The locality-calibrated address model."""
        footprint = int(self.footprint_factor * self.size_stats.data_size_kib * KIB)
        footprint = max(64 * MIB, min(footprint, DEVICE_BYTES // 2))
        footprint -= footprint % SECTOR
        start = _footprint_start(self.name, footprint)
        spatial = self.timing_stats.spatial_locality_pct / 100.0
        temporal = self.timing_stats.temporal_locality_pct / 100.0
        # A sequential continuation of a re-hit request lands on an address
        # that was itself seen before, so measured temporal locality is
        # roughly p_t / (1 - p_seq); pre-deflate p_t so the measurement
        # converges to the Table IV target.
        return AddressModel(
            spatial=spatial,
            temporal=temporal * (1.0 - spatial),
            footprint_start=start,
            footprint_bytes=footprint,
        )


def _footprint_start(name: str, footprint: int) -> int:
    """Deterministic, 4 KB-aligned region start derived from the app name."""
    digest = hashlib.sha256(name.encode()).digest()
    span = DEVICE_BYTES - footprint
    offset = int.from_bytes(digest[:8], "big") % max(1, span)
    return offset - offset % SECTOR


def _shape(
    name: str,
    frac_4k: float,
    burst_frac: float,
    burst_mean_ms: float,
    **overrides,
) -> AppProfile:
    return AppProfile(
        name=name,
        size_stats=TABLE_III[name],
        timing_stats=TABLE_IV[name],
        frac_4k=frac_4k,
        burst_frac=burst_frac,
        burst_mean_ms=burst_mean_ms,
        **overrides,
    )


#: Fig. 4 text: Movie concentrates over 65 % of its requests in the
#: 16-64 KB range; reads dominate.  Explicit histograms per op.
_MOVIE_READ_HIST = (0.05, 0.05, 0.07, 0.68, 0.14, 0.01)
_MOVIE_WRITE_HIST = (0.30, 0.20, 0.20, 0.25, 0.05, 0.00)

PROFILES: Dict[str, AppProfile] = {
    profile.name: profile
    for profile in [
        # 15 apps with a 4 KB majority in [44.9 %, 57.4 %] (Characteristic 2).
        _shape("Idle", 0.50, 0.55, 2.0),
        _shape("CallIn", 0.48, 0.35, 4.0),
        _shape("CallOut", 0.48, 0.35, 4.0),
        _shape("Music", 0.52, 0.60, 1.5),
        _shape("AngryBrid", 0.48, 0.60, 2.0),
        _shape("GoogleMaps", 0.53, 0.65, 1.0),
        _shape("Messaging", 0.574, 0.65, 1.0),
        _shape("Twitter", 0.55, 0.65, 1.0),
        _shape("Email", 0.46, 0.60, 1.5),
        _shape("Facebook", 0.46, 0.60, 1.5),
        _shape("Amazon", 0.48, 0.60, 1.5),
        _shape("YouTube", 0.52, 0.45, 3.0),
        _shape("Radio", 0.50, 0.50, 2.0),
        _shape("Installing", 0.46, 0.70, 0.8),
        _shape("WebBrowsing", 0.47, 0.50, 2.0),
        # The three exceptions with distinctive Fig. 4 shapes.
        _shape("Booting", 0.30, 0.75, 0.5),
        _shape(
            "Movie",
            0.05,
            0.85,
            0.4,
            read_histogram=_MOVIE_READ_HIST,
            write_histogram=_MOVIE_WRITE_HIST,
        ),
        _shape("CameraVideo", 0.35, 0.70, 1.0, frac_4k_read=0.45, frac_4k_write=0.10),
        # The 7 combo traces (Fig. 7a: Music-included combos show a higher
        # 4 KB share than Radio-included ones).
        _shape("Music/WB", 0.55, 0.60, 1.5),
        _shape("Radio/WB", 0.48, 0.55, 2.0),
        _shape("Music/FB", 0.56, 0.82, 0.6),
        _shape("Radio/FB", 0.50, 0.60, 1.5),
        _shape("Music/Msg", 0.57, 0.65, 1.2),
        _shape("Radio/Msg", 0.52, 0.60, 1.5),
        _shape("FB/Msg", 0.53, 0.65, 1.2),
    ]
}


def profile(name: str) -> AppProfile:
    """Profile for ``name``; raises ``KeyError`` with the known names."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(f"unknown application {name!r}; known: {', '.join(ALL_TRACES)}")


def individual_profiles() -> Sequence[AppProfile]:
    """The 18 individual application profiles, in the paper's order."""
    return [PROFILES[name] for name in INDIVIDUAL_APPS]


def combo_profiles() -> Sequence[AppProfile]:
    """The 7 combo trace profiles, in the paper's order."""
    return [PROFILES[name] for name in COMBO_APPS]


def all_profiles() -> Sequence[AppProfile]:
    """All 25 trace profiles, in the paper's order."""
    return [PROFILES[name] for name in ALL_TRACES]
