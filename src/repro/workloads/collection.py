"""Closed-loop trace collection on a device (the BIOtracer methodology).

Table IV's no-wait ratios (58-98 %) cannot arise from replaying bursty
arrivals *open-loop* into a device: sub-millisecond intra-burst gaps would
queue behind multi-millisecond services.  On the real phone most block I/O
is **synchronous** -- the application (SQLite commit, fsync, page-fault
read) issues its next request only after the previous one completed -- so
the recorded arrival stream is paced by the device itself and almost every
request finds the device idle.

:func:`collect` reproduces this: requests are issued with the calibrated
think-time gaps, but a per-request *synchronous* flag (calibrated from the
Table IV no-wait target) makes the request wait for the previous completion
before it is issued.  The result is a completed trace whose recorded
timestamps mirror what BIOtracer would have logged on the reference device;
replaying that trace open-loop on other device configurations is then
exactly the paper's Fig. 8 methodology.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.trace import (
    FLAG_HAS_FINISH,
    FLAG_HAS_SERVICE,
    Op,
    Request,
    SECTOR,
    Trace,
    TraceColumns,
)
from repro.emmc.configs import four_ps
from repro.emmc.device import DeviceConfig, EmmcDevice
from repro.emmc.stats import DeviceStats

from .addresses import AccessMode
from .generator import DEFAULT_SEED, _calibrated_temporal, _rng_for
from .profiles import AppProfile, profile


@dataclass
class CollectionResult:
    """A collected (completed) trace plus the collecting device's stats."""

    trace: Trace
    device_stats: DeviceStats


#: Cache of calibrated sync fractions, keyed by (app, seed).
_sync_cache = {}

#: Pilot length for the sync-fraction calibration.
_PILOT_REQUESTS = 2500


def sync_fraction(app: AppProfile, seed: int = DEFAULT_SEED) -> float:
    """Fraction of requests issued synchronously, calibrated empirically.

    A synchronous request never waits; an asynchronous one (write-back,
    read-ahead) waits with some workload-dependent probability ``p``.  The
    measured no-wait ratio is roughly ``s + (1 - s) * (1 - p)``, so one
    pilot collection at ``s0 = target`` estimates the async no-wait rate
    and a corrected ``s`` solves for the Table IV target exactly.
    """
    key = (app.name, seed)
    cached = _sync_cache.get(key)
    if cached is not None:
        return cached
    target = app.timing_stats.nowait_pct / 100.0
    guess = min(0.98, target)
    pilot_count = min(app.num_requests, _PILOT_REQUESTS)
    pilot = _collect(app, seed, pilot_count, guess, stream="sync-pilot")
    measured = sum(1 for r in pilot.trace if r.no_wait) / len(pilot.trace)
    if guess < 1.0 and measured > guess:
        async_nowait = (measured - guess) / (1.0 - guess)
        if async_nowait < 1.0:
            guess = max(0.0, min(0.98, (target - async_nowait) / (1.0 - async_nowait)))
    _sync_cache[key] = guess
    return guess


def collect(
    app: "AppProfile | str",
    seed: int = DEFAULT_SEED,
    num_requests: Optional[int] = None,
    config: Optional[DeviceConfig] = None,
) -> CollectionResult:
    """Collect one trace closed-loop on a fresh reference device.

    The request attributes (sizes, ops, addresses) are drawn exactly like
    :func:`repro.workloads.generator.generate_trace` draws them; only the
    arrival times differ, being paced by device completions for the
    synchronous share of requests.
    """
    if isinstance(app, str):
        app = profile(app)
    count = app.num_requests if num_requests is None else num_requests
    if count <= 0:
        raise ValueError("num_requests must be positive")
    return _collect(app, seed, count, sync_fraction(app, seed), "main", config)


def _collect(
    app: AppProfile,
    seed: int,
    count: int,
    sync_frac: float,
    stream: str,
    config: Optional[DeviceConfig] = None,
) -> CollectionResult:
    device = EmmcDevice(config or four_ps())
    rng = _rng_for(app.name, seed, stream)
    sync_rng = _rng_for(app.name, seed, f"{stream}-sync")
    arrival_model = app.arrival_model()
    read_sizes = app.size_model(op_is_write=False)
    write_sizes = app.size_model(op_is_write=True)
    address_model = dataclasses.replace(
        app.address_model(), temporal=_calibrated_temporal(app, seed)
    )
    address_sampler = address_model.sampler(rng)
    gaps = arrival_model.sample_gaps(count - 1, rng) if count > 1 else []

    # Closed-loop pacing makes this loop inherently sequential (each
    # arrival depends on the previous completion), but like the open-loop
    # generator it fills the columnar arrays as it goes so the collected
    # trace -- the input of the Table IV / Fig. 5-7 analysis kernels --
    # carries its struct-of-arrays view from birth.
    arrival_column = np.empty(count, dtype=np.float64)
    service_column = np.empty(count, dtype=np.float64)
    complete_column = np.empty(count, dtype=np.float64)
    lba_column = np.empty(count, dtype=np.int64)
    size_column = np.empty(count, dtype=np.int64)
    op_column = np.empty(count, dtype=np.uint8)
    completed: List[Request] = []
    previous_op: Optional[Op] = None
    previous_arrival = 0.0
    previous_finish = 0.0
    for index in range(count):
        mode = address_model.choose_mode(rng)
        if mode is AccessMode.SEQUENTIAL and previous_op is not None:
            op = previous_op
        else:
            op = Op.WRITE if rng.random() < app.write_frac else Op.READ
        size_model = write_sizes if op is Op.WRITE else read_sizes
        size = int(size_model.sample(rng)) * SECTOR
        lba = address_sampler.next_address(mode, size)
        if index == 0:
            arrival = 0.0
        else:
            scheduled = previous_arrival + float(gaps[index - 1])
            synchronous = sync_rng.random() < sync_frac
            arrival = max(scheduled, previous_finish) if synchronous else scheduled
        request = device.submit(Request(arrival_us=arrival, lba=lba, size=size, op=op))
        completed.append(request)
        arrival_column[index] = request.arrival_us
        service_column[index] = request.service_start_us
        complete_column[index] = request.finish_us
        lba_column[index] = request.lba
        size_column[index] = request.size
        op_column[index] = request.op is Op.WRITE
        previous_op = op
        previous_arrival = request.arrival_us
        previous_finish = request.finish_us
    columns = TraceColumns(
        arrival_column,
        service_column,
        complete_column,
        lba_column,
        size_column,
        op_column,
        np.full(count, FLAG_HAS_SERVICE | FLAG_HAS_FINISH, dtype=np.uint8),
    )
    trace = Trace.from_columns(
        app.name,
        columns,
        metadata={
            "generator": "repro.workloads.collection",
            "seed": str(seed),
            "profile": app.name,
            "collection_device": device.config.name,
            "sync_fraction": f"{sync_frac:.3f}",
        },
        requests=completed,
    )
    return CollectionResult(trace=trace, device_stats=device.stats)
