"""Trace transformations for sensitivity studies.

The paper's workloads stress the device lightly (Characteristic 3); these
utilities let experiments ask "what if the same I/O arrived k times
faster/slower?" or "what if requests were twice as large?" without
re-calibrating profiles.
"""

from __future__ import annotations

from repro.trace import Request, SECTOR, Trace


def scale_rate(trace: Trace, factor: float) -> Trace:
    """Compress (factor > 1) or stretch (factor < 1) the arrival times.

    The request mix is untouched; only inter-arrival gaps scale by
    ``1 / factor``, so the arrival rate scales by ``factor``.
    """
    if factor <= 0:
        raise ValueError("rate factor must be positive")
    return Trace(
        name=f"{trace.name}[x{factor:g}]",
        requests=[
            Request(
                arrival_us=request.arrival_us / factor,
                lba=request.lba,
                size=request.size,
                op=request.op,
            )
            for request in trace
        ],
        metadata={**trace.metadata, "rate_factor": f"{factor:g}"},
    )


def scale_sizes(trace: Trace, factor: float, max_bytes: int = 16 * 1024 * 1024) -> Trace:
    """Scale request sizes by ``factor`` (4 KB-aligned, at least one page)."""
    if factor <= 0:
        raise ValueError("size factor must be positive")
    requests = []
    for request in trace:
        pages = max(1, round(request.pages * factor))
        size = min(pages * SECTOR, max_bytes - max_bytes % SECTOR)
        requests.append(
            Request(
                arrival_us=request.arrival_us,
                lba=request.lba,
                size=size,
                op=request.op,
            )
        )
    return Trace(
        name=f"{trace.name}[size x{factor:g}]",
        requests=requests,
        metadata={**trace.metadata, "size_factor": f"{factor:g}"},
    )


def truncate(trace: Trace, num_requests: int) -> Trace:
    """Keep only the first ``num_requests`` requests."""
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    return trace.with_requests(trace.requests[:num_requests])
