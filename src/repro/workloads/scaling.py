"""Trace transformations for sensitivity studies.

The paper's workloads stress the device lightly (Characteristic 3); these
utilities let experiments ask "what if the same I/O arrived k times
faster/slower?" or "what if requests were twice as large?" without
re-calibrating profiles.

Both transforms are vectorized over the trace's columnar view and adopt
the scaled columns via :meth:`repro.trace.Trace.from_columns`, so fleet
runs applying per-device scaling never pay a per-request Python loop.
The retired scalar implementations live on as ``_reference_scale_rate``
/ ``_reference_scale_sizes``: they are the oracle the unit tests compare
the vectorized path against, element for element.

Bit-identity argument (the :mod:`repro.trace.columns` rules): dividing
the arrival column by ``factor`` and multiplying the page column by
``factor`` are the same IEEE-754 element-wise operations the scalar
loops performed per request, and ``np.rint`` rounds half-to-even exactly
like the built-in ``round`` -- so the vectorized traces equal the scalar
ones request for request.
"""

from __future__ import annotations

import numpy as np

from repro.trace import Request, SECTOR, Trace
from repro.trace.columns import TraceColumns


def scale_rate(trace: Trace, factor: float) -> Trace:
    """Compress (factor > 1) or stretch (factor < 1) the arrival times.

    The request mix is untouched; only inter-arrival gaps scale by
    ``1 / factor``, so the arrival rate scales by ``factor``.  Device
    timestamps (if any) are dropped -- a rescaled trace has not been
    replayed.
    """
    if factor <= 0:
        raise ValueError("rate factor must be positive")
    columns = trace.columns()
    nan = np.full(len(columns), np.nan, dtype=np.float64)
    scaled = TraceColumns(
        columns.arrival_us / factor,
        nan,
        nan.copy(),
        columns.lba,
        columns.size,
        columns.op,
        np.zeros(len(columns), dtype=np.uint8),
    )
    return Trace.from_columns(
        name=f"{trace.name}[x{factor:g}]",
        columns=scaled,
        metadata={**trace.metadata, "rate_factor": f"{factor:g}"},
    )


def scale_sizes(trace: Trace, factor: float, max_bytes: int = 16 * 1024 * 1024) -> Trace:
    """Scale request sizes by ``factor`` (4 KB-aligned, at least one page)."""
    if factor <= 0:
        raise ValueError("size factor must be positive")
    columns = trace.columns()
    pages = np.maximum(1, np.rint((columns.size // SECTOR) * factor)).astype(np.int64)
    size = np.minimum(pages * SECTOR, max_bytes - max_bytes % SECTOR)
    nan = np.full(len(columns), np.nan, dtype=np.float64)
    scaled = TraceColumns(
        columns.arrival_us,
        nan,
        nan.copy(),
        columns.lba,
        size,
        columns.op,
        np.zeros(len(columns), dtype=np.uint8),
    )
    return Trace.from_columns(
        name=f"{trace.name}[size x{factor:g}]",
        columns=scaled,
        metadata={**trace.metadata, "size_factor": f"{factor:g}"},
    )


def truncate(trace: Trace, num_requests: int) -> Trace:
    """Keep only the first ``num_requests`` requests."""
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    return trace.with_requests(trace.requests[:num_requests])


# -- scalar reference implementations (test oracles) ---------------------------


def _reference_scale_rate(trace: Trace, factor: float) -> Trace:
    """The original request-at-a-time ``scale_rate`` (oracle only)."""
    if factor <= 0:
        raise ValueError("rate factor must be positive")
    return Trace(
        name=f"{trace.name}[x{factor:g}]",
        requests=[
            Request(
                arrival_us=request.arrival_us / factor,
                lba=request.lba,
                size=request.size,
                op=request.op,
            )
            for request in trace
        ],
        metadata={**trace.metadata, "rate_factor": f"{factor:g}"},
    )


def _reference_scale_sizes(
    trace: Trace, factor: float, max_bytes: int = 16 * 1024 * 1024
) -> Trace:
    """The original request-at-a-time ``scale_sizes`` (oracle only)."""
    if factor <= 0:
        raise ValueError("size factor must be positive")
    requests = []
    for request in trace:
        pages = max(1, round(request.pages * factor))
        size = min(pages * SECTOR, max_bytes - max_bytes % SECTOR)
        requests.append(
            Request(
                arrival_us=request.arrival_us,
                lba=request.lba,
                size=size,
                op=request.op,
            )
        )
    return Trace(
        name=f"{trace.name}[size x{factor:g}]",
        requests=requests,
        metadata={**trace.metadata, "size_factor": f"{factor:g}"},
    )
