"""Synthetic trace generation from calibrated application profiles.

This is the substitute for the paper's BIOtracer collection on a Nexus 5
(see DESIGN.md, substitution table): for each of the 25 traces we draw a
request stream whose size distribution, read/write mix, arrival process and
localities are calibrated to the published Tables III/IV and Figs. 4-7.

Temporal locality needs special care: sequential continuations of re-hit
requests, and fresh addresses colliding with the already-covered footprint,
inflate the measured hit rate beyond the generator's re-hit probability by a
workload-dependent amount.  :func:`generate_trace` therefore runs a short
pilot generation and adjusts the re-hit probability by fixed-point iteration
so the *measured* temporal locality converges to the Table IV target.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.analysis.locality import temporal_locality
from repro.trace import Op, Request, SECTOR, Trace

from .addresses import AccessMode, AddressModel
from .profiles import AppProfile, all_profiles, profile

#: Base seed of the released trace set; every trace derives its own stream.
DEFAULT_SEED = 20150614

#: Pilot length and iteration count of the temporal-locality calibration.
_PILOT_REQUESTS = 4000
_PILOT_ITERATIONS = 2

#: Cache of calibrated re-hit probabilities, keyed by (app, seed).
_temporal_cache: Dict[Tuple[str, int], float] = {}


def _rng_for(name: str, seed: int, stream: str = "main") -> np.random.Generator:
    """Independent, reproducible random stream per (trace, seed, purpose)."""
    digest = hashlib.sha256(f"{name}:{seed}:{stream}".encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "big"))


def generate_trace(
    app: "AppProfile | str",
    seed: int = DEFAULT_SEED,
    num_requests: Optional[int] = None,
    calibrate_temporal: bool = True,
) -> Trace:
    """Synthesize one trace.

    Args:
        app: an :class:`AppProfile` or the name of one of the 25 traces.
        seed: base seed; the same (app, seed) pair always yields the same
            trace.
        num_requests: override the profile's request count (Table III),
            e.g. for fast tests.  The arrival process is unchanged, so a
            shorter trace simply covers a shorter duration.
        calibrate_temporal: run the pilot-based temporal-locality
            calibration (skipped automatically inside the pilot itself).

    Returns:
        A :class:`~repro.trace.Trace` without device timestamps; replay it
        on an :class:`~repro.emmc.device.EmmcDevice` to obtain service and
        response times.
    """
    if isinstance(app, str):
        app = profile(app)
    count = app.num_requests if num_requests is None else num_requests
    if count <= 0:
        raise ValueError("num_requests must be positive")
    address_model = app.address_model()
    if calibrate_temporal:
        address_model = dataclasses.replace(
            address_model, temporal=_calibrated_temporal(app, seed)
        )
    return _generate(app, seed, count, address_model, stream="main")


def _generate(
    app: AppProfile,
    seed: int,
    count: int,
    address_model: AddressModel,
    stream: str,
) -> Trace:
    rng = _rng_for(app.name, seed, stream)
    arrival_model = app.arrival_model()
    read_sizes = app.size_model(op_is_write=False)
    write_sizes = app.size_model(op_is_write=True)
    address_sampler = address_model.sampler(rng)

    arrivals = arrival_model.sample_arrivals(count, rng)
    requests: List[Request] = []
    previous_op: Optional[Op] = None
    for arrival_us in arrivals:
        mode = address_model.choose_mode(rng)
        if mode is AccessMode.SEQUENTIAL and previous_op is not None:
            # A sequential continuation keeps the predecessor's access type
            # (a sequential stream is one logical transfer); the stationary
            # write fraction still equals the Bernoulli target.
            op = previous_op
        else:
            op = Op.WRITE if rng.random() < app.write_frac else Op.READ
        size_model = write_sizes if op is Op.WRITE else read_sizes
        size = int(size_model.sample(rng)) * SECTOR
        lba = address_sampler.next_address(mode, size)
        requests.append(Request(arrival_us=float(arrival_us), lba=lba, size=size, op=op))
        previous_op = op

    return Trace(
        name=app.name,
        requests=requests,
        metadata={
            "generator": "repro.workloads",
            "seed": str(seed),
            "profile": app.name,
            "requests": str(count),
        },
    )


def _calibrated_temporal(app: AppProfile, seed: int) -> float:
    """Re-hit probability whose *measured* temporal locality hits Table IV."""
    key = (app.name, seed)
    cached = _temporal_cache.get(key)
    if cached is not None:
        return cached
    target = app.timing_stats.temporal_locality_pct / 100.0
    model = app.address_model()
    ceiling = max(0.0, 0.98 * (1.0 - model.spatial) - 1e-9)
    rehit = min(model.temporal, ceiling)
    pilot_count = min(app.num_requests, _PILOT_REQUESTS)
    for iteration in range(_PILOT_ITERATIONS):
        pilot_model = dataclasses.replace(model, temporal=rehit)
        pilot = _generate(app, seed, pilot_count, pilot_model, stream=f"pilot{iteration}")
        measured = temporal_locality(pilot)
        if measured <= 1e-6 or abs(measured - target) < 0.002:
            break
        rehit = min(ceiling, max(0.0, rehit * target / measured))
    _temporal_cache[key] = rehit
    return rehit


def generate_all(
    seed: int = DEFAULT_SEED,
    num_requests: Optional[int] = None,
    profiles: Optional[Iterable[AppProfile]] = None,
) -> List[Trace]:
    """Synthesize the full 25-trace set (or the given profiles)."""
    selected = list(profiles) if profiles is not None else list(all_profiles())
    return [generate_trace(app, seed=seed, num_requests=num_requests) for app in selected]
