"""Synthetic trace generation from calibrated application profiles.

This is the substitute for the paper's BIOtracer collection on a Nexus 5
(see DESIGN.md, substitution table): for each of the 25 traces we draw a
request stream whose size distribution, read/write mix, arrival process and
localities are calibrated to the published Tables III/IV and Figs. 4-7.

Temporal locality needs special care: sequential continuations of re-hit
requests, and fresh addresses colliding with the already-covered footprint,
inflate the measured hit rate beyond the generator's re-hit probability by a
workload-dependent amount.  :func:`generate_trace` therefore runs a short
pilot generation and adjusts the re-hit probability by fixed-point iteration
so the *measured* temporal locality converges to the Table IV target.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.analysis.locality import temporal_locality
from repro.trace import Op, Request, SECTOR, Trace, TraceColumns

from .addresses import AccessMode, AddressModel
from .profiles import AppProfile, all_profiles, profile

#: Base seed of the released trace set; every trace derives its own stream.
DEFAULT_SEED = 20150614

#: Pilot length and iteration count of the temporal-locality calibration.
_PILOT_REQUESTS = 4000
_PILOT_ITERATIONS = 2

#: Cache of calibrated re-hit probabilities, keyed by (app, seed).
_temporal_cache: Dict[Tuple[str, int], float] = {}


def _rng_for(name: str, seed: int, stream: str = "main") -> np.random.Generator:
    """Independent, reproducible random stream per (trace, seed, purpose)."""
    digest = hashlib.sha256(f"{name}:{seed}:{stream}".encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "big"))


def generate_trace(
    app: "AppProfile | str",
    seed: int = DEFAULT_SEED,
    num_requests: Optional[int] = None,
    calibrate_temporal: bool = True,
) -> Trace:
    """Synthesize one trace.

    Args:
        app: an :class:`AppProfile` or the name of one of the 25 traces.
        seed: base seed; the same (app, seed) pair always yields the same
            trace.
        num_requests: override the profile's request count (Table III),
            e.g. for fast tests.  The arrival process is unchanged, so a
            shorter trace simply covers a shorter duration.
        calibrate_temporal: run the pilot-based temporal-locality
            calibration (skipped automatically inside the pilot itself).

    Returns:
        A :class:`~repro.trace.Trace` without device timestamps; replay it
        on an :class:`~repro.emmc.device.EmmcDevice` to obtain service and
        response times.
    """
    if isinstance(app, str):
        app = profile(app)
    count = app.num_requests if num_requests is None else num_requests
    if count <= 0:
        raise ValueError("num_requests must be positive")
    address_model = app.address_model()
    if calibrate_temporal:
        address_model = dataclasses.replace(
            address_model, temporal=_calibrated_temporal(app, seed)
        )
    return _generate(app, seed, count, address_model, stream="main")


def _generate(
    app: AppProfile,
    seed: int,
    count: int,
    address_model: AddressModel,
    stream: str,
) -> Trace:
    rng = _rng_for(app.name, seed, stream)
    arrival_model = app.arrival_model()
    read_sizes = app.size_model(op_is_write=False)
    write_sizes = app.size_model(op_is_write=True)
    address_sampler = address_model.sampler(rng)

    arrivals = arrival_model.sample_arrivals(count, rng)
    # Synthesize straight into the columnar layout: the per-request loop
    # below keeps the exact RNG draw sequence of the original Request-list
    # construction (the draws are data-dependent and interleave one shared
    # stream, so they cannot be batched without changing every released
    # trace), but it fills preallocated columns as it goes, so the result
    # carries its struct-of-arrays view from birth and the downstream
    # analysis kernels never pay the Request-unpacking pass.
    lba_column = np.empty(count, dtype=np.int64)
    size_column = np.empty(count, dtype=np.int64)
    op_column = np.empty(count, dtype=np.uint8)
    requests: List[Request] = []
    append_request = requests.append
    random_draw = rng.random
    spatial_edge = address_model.spatial
    rehit_edge = spatial_edge + address_model.temporal
    write_frac = app.write_frac
    op_read, op_write = Op.READ, Op.WRITE
    sequential, temporal, fresh = (
        AccessMode.SEQUENTIAL,
        AccessMode.TEMPORAL,
        AccessMode.FRESH,
    )
    previous_op: Optional[Op] = None
    for index in range(count):
        # Inlined AddressModel.choose_mode: one uniform draw against the
        # cumulative locality edges (identical stream position and result).
        draw = random_draw()
        if draw < spatial_edge:
            mode = sequential
        elif draw < rehit_edge:
            mode = temporal
        else:
            mode = fresh
        if mode is sequential and previous_op is not None:
            # A sequential continuation keeps the predecessor's access type
            # (a sequential stream is one logical transfer); the stationary
            # write fraction still equals the Bernoulli target.
            op = previous_op
        else:
            op = op_write if random_draw() < write_frac else op_read
        size_model = write_sizes if op is op_write else read_sizes
        size = int(size_model.sample(rng)) * SECTOR
        lba = address_sampler.next_address(mode, size)
        lba_column[index] = lba
        size_column[index] = size
        op_column[index] = op is op_write
        append_request(
            Request(arrival_us=float(arrivals[index]), lba=lba, size=size, op=op)
        )
        previous_op = op

    never_replayed = np.full(count, np.nan, dtype=np.float64)
    columns = TraceColumns(
        arrivals,
        never_replayed,
        never_replayed.copy(),
        lba_column,
        size_column,
        op_column,
        np.zeros(count, dtype=np.uint8),
    )
    return Trace.from_columns(
        app.name,
        columns,
        metadata={
            "generator": "repro.workloads",
            "seed": str(seed),
            "profile": app.name,
            "requests": str(count),
        },
        requests=requests,
    )


def _calibrated_temporal(app: AppProfile, seed: int) -> float:
    """Re-hit probability whose *measured* temporal locality hits Table IV."""
    key = (app.name, seed)
    cached = _temporal_cache.get(key)
    if cached is not None:
        return cached
    target = app.timing_stats.temporal_locality_pct / 100.0
    model = app.address_model()
    ceiling = max(0.0, 0.98 * (1.0 - model.spatial) - 1e-9)
    rehit = min(model.temporal, ceiling)
    pilot_count = min(app.num_requests, _PILOT_REQUESTS)
    for iteration in range(_PILOT_ITERATIONS):
        pilot_model = dataclasses.replace(model, temporal=rehit)
        pilot = _generate(app, seed, pilot_count, pilot_model, stream=f"pilot{iteration}")
        measured = temporal_locality(pilot)
        if measured <= 1e-6 or abs(measured - target) < 0.002:
            break
        rehit = min(ceiling, max(0.0, rehit * target / measured))
    _temporal_cache[key] = rehit
    return rehit


def generate_all(
    seed: int = DEFAULT_SEED,
    num_requests: Optional[int] = None,
    profiles: Optional[Iterable[AppProfile]] = None,
) -> List[Trace]:
    """Synthesize the full 25-trace set (or the given profiles)."""
    selected = list(profiles) if profiles is not None else list(all_profiles())
    return [generate_trace(app, seed=seed, num_requests=num_requests) for app in selected]
