"""Request-size sampling calibrated to Table III / Fig. 4.

Each application gets one :class:`SizeModel` per access type.  A model is a
histogram over the paper's six size buckets (see
:mod:`repro.workloads.buckets`) plus a within-bucket spread parameter.  The
histogram shape is either given explicitly (Movie, Booting, ... have
distinctive shapes called out in the paper) or built parametrically from

* ``frac_4k`` -- the share of single-page (4 KB) requests, the quantity the
  paper's Characteristic 2 ranges over (44.9 %-57.4 % for 15 of 18 apps), and
* ``mean_pages`` -- the per-op average request size from Table III,

by distributing the non-4K mass geometrically over the remaining buckets and
solving the decay ratio and within-bucket spread so the analytic mean matches
the target.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .buckets import SIZE_BUCKET_PAGES

#: Within-bucket spread used as the preferred operating point when solving
#: the geometric decay ratio (see :func:`calibrate`).
_DEFAULT_SPREAD = 0.35


def _bucket_ranges(max_pages: int) -> List[Tuple[int, int]]:
    """Concrete (low, high) page ranges, truncated to ``max_pages``."""
    ranges: List[Tuple[int, int]] = []
    for low, high in SIZE_BUCKET_PAGES:
        concrete_high = max_pages if high is None else min(int(high), max_pages)
        if low > max_pages:
            break
        ranges.append((low, max(low, concrete_high)))
    return ranges


def _bucket_mean(low: int, high: int, spread: float) -> float:
    """Mean of the within-bucket distribution.

    Within a bucket we emit the low edge with probability ``1 - spread`` and
    a uniform integer in ``[low + 1, high]`` with probability ``spread``
    (degenerating to the low edge for single-value buckets).
    """
    if high <= low:
        return float(low)
    return (1.0 - spread) * low + spread * (low + 1 + high) / 2.0


@dataclass(frozen=True)
class SizeModel:
    """A calibrated request-size distribution, in 4 KB pages."""

    fractions: Tuple[float, ...]  # mass per bucket, sums to 1
    ranges: Tuple[Tuple[int, int], ...]  # page range per bucket
    spread: float  # within-bucket spread in [0, 1]

    def __post_init__(self) -> None:
        if len(self.fractions) != len(self.ranges):
            raise ValueError("fractions and ranges must align")
        if abs(sum(self.fractions) - 1.0) > 1e-9:
            raise ValueError(f"bucket fractions sum to {sum(self.fractions)}, not 1")
        if not 0.0 <= self.spread <= 1.0:
            raise ValueError(f"spread must be in [0, 1], got {self.spread}")

    @property
    def mean_pages(self) -> float:
        """Analytic mean request size in pages."""
        return sum(
            fraction * _bucket_mean(low, high, self.spread)
            for fraction, (low, high) in zip(self.fractions, self.ranges)
        )

    @property
    def frac_4k(self) -> float:
        """Share of single-page requests."""
        return self.fractions[0] if self.ranges and self.ranges[0] == (1, 1) else 0.0

    @property
    def max_pages(self) -> int:
        """Largest emittable request size, in pages."""
        return max(high for _, high in self.ranges)

    @cached_property
    def _bucket_cdf(self) -> np.ndarray:
        """Normalized cumulative bucket masses (cached once per model).

        ``Generator.choice(n, p=p)`` internally draws **one** uniform
        double and does ``searchsorted(cumsum(p) / cumsum(p)[-1], u,
        side="right")``; precomputing the CDF and issuing the same single
        ``rng.random()`` draw reproduces both the sampled bucket *and* the
        RNG stream position bit-for-bit while skipping ``choice``'s
        per-call validation/cumsum overhead (the synthesis hot path).
        """
        cdf = np.asarray(self.fractions, dtype=np.float64).cumsum()
        cdf /= cdf[-1]
        return cdf

    def sample(self, rng: np.random.Generator) -> int:
        """Draw one request size, in pages.

        Stream-compatible with the original ``rng.choice``-based
        implementation (:meth:`_reference_sample`): identical draws,
        identical values.
        """
        bucket = int(self._bucket_cdf.searchsorted(rng.random(), side="right"))
        low, high = self.ranges[bucket]
        if high <= low or rng.random() >= self.spread:
            return low
        return int(rng.integers(low + 1, high + 1))

    def _reference_sample(self, rng: np.random.Generator) -> int:
        """Original ``rng.choice``-based draw (test oracle for :meth:`sample`)."""
        bucket = int(rng.choice(len(self.fractions), p=list(self.fractions)))
        low, high = self.ranges[bucket]
        if high <= low or rng.random() >= self.spread:
            return low
        return int(rng.integers(low + 1, high + 1))

    def sample_many(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` request sizes, in pages."""
        return np.array([self.sample(rng) for _ in range(count)], dtype=np.int64)


def from_histogram(
    fractions: Sequence[float],
    max_pages: int,
    mean_pages: Optional[float] = None,
    spread: float = _DEFAULT_SPREAD,
) -> SizeModel:
    """Build a model from an explicit bucket histogram.

    Args:
        fractions: mass per bucket (padded/truncated to the buckets that
            exist under ``max_pages``); renormalized.
        max_pages: largest request size in pages.
        mean_pages: if given, the within-bucket ``spread`` is solved so the
            analytic mean matches (clamped to the achievable range).
        spread: spread to use when ``mean_pages`` is not given.
    """
    ranges = _bucket_ranges(max_pages)
    raw = list(fractions[: len(ranges)])
    raw += [0.0] * (len(ranges) - len(raw))
    total = sum(raw)
    if total <= 0:
        raise ValueError("histogram has no mass")
    normalized = tuple(value / total for value in raw)
    if mean_pages is None:
        return SizeModel(normalized, tuple(ranges), spread)
    low_mean = sum(f * _bucket_mean(lo, hi, 0.0) for f, (lo, hi) in zip(normalized, ranges))
    high_mean = sum(f * _bucket_mean(lo, hi, 1.0) for f, (lo, hi) in zip(normalized, ranges))
    if high_mean <= low_mean:
        solved = 0.0
    else:
        solved = min(1.0, max(0.0, (mean_pages - low_mean) / (high_mean - low_mean)))
    return SizeModel(normalized, tuple(ranges), solved)


def calibrate(frac_4k: float, mean_pages: float, max_pages: int) -> SizeModel:
    """Build a model with a given 4 KB share and analytic mean.

    The non-4K mass is spread geometrically (ratio ``r``) over the remaining
    buckets.  ``r`` is solved by bisection at a fixed within-bucket spread;
    when the target mean is outside that range, ``r`` is clamped and the
    spread is solved instead.  The result's :attr:`SizeModel.mean_pages` is
    exact whenever the target is achievable at all given ``frac_4k`` and
    ``max_pages``.
    """
    if not 0.0 <= frac_4k < 1.0:
        raise ValueError(f"frac_4k must be in [0, 1), got {frac_4k}")
    if mean_pages < 1.0:
        raise ValueError(f"mean_pages must be >= 1, got {mean_pages}")
    max_pages = max(2, int(max_pages))
    ranges = _bucket_ranges(max_pages)
    tail_buckets = len(ranges) - 1
    if tail_buckets == 0:
        return SizeModel((1.0,), tuple(ranges), 0.0)

    def fractions_for(ratio: float) -> Tuple[float, ...]:
        """Bucket masses for a geometric tail with the given decay ratio."""
        weights = [ratio**index for index in range(tail_buckets)]
        scale = (1.0 - frac_4k) / sum(weights)
        return (frac_4k,) + tuple(weight * scale for weight in weights)

    def mean_for(ratio: float, spread: float) -> float:
        """Analytic mean (pages) of the candidate distribution."""
        fractions = fractions_for(ratio)
        return sum(
            fraction * _bucket_mean(low, high, spread)
            for fraction, (low, high) in zip(fractions, ranges)
        )

    ratio_low, ratio_high = 1e-3, 50.0
    if mean_for(ratio_low, _DEFAULT_SPREAD) >= mean_pages:
        # Even the thinnest tail overshoots: keep the thin tail, lower spread.
        return from_histogram(fractions_for(ratio_low), max_pages, mean_pages)
    if mean_for(ratio_high, _DEFAULT_SPREAD) <= mean_pages:
        # Even the fattest tail undershoots: keep it, raise spread.
        return from_histogram(fractions_for(ratio_high), max_pages, mean_pages)
    for _ in range(80):
        ratio_mid = (ratio_low + ratio_high) / 2.0
        if mean_for(ratio_mid, _DEFAULT_SPREAD) < mean_pages:
            ratio_low = ratio_mid
        else:
            ratio_high = ratio_mid
    return from_histogram(fractions_for(ratio_high), max_pages, mean_pages)
