"""Combo-trace construction (Section III-D of the paper).

The 7 combo traces (e.g. ``Music/WB``) have their own calibrated profiles in
:mod:`repro.workloads.profiles` -- that is what the table/figure harness
uses, because the paper publishes Table III/IV rows for each combo.

This module additionally provides :func:`interleave`, the *mechanistic*
combination of two individual traces, used by the ablation benchmarks: the
paper observes that a combo's arrival and access rates generally exceed the
sum of its components (shared resources such as the memory buffer force more
I/O), which we model with a compression factor applied to both components'
time axes.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.trace import Request, Trace

from .generator import DEFAULT_SEED, generate_trace
from .paper_data import COMBO_COMPONENTS, TABLE_IV


def rate_inflation(combo_name: str) -> float:
    """Published arrival-rate inflation of a combo over the sum of its parts.

    E.g. Music/FB arrives at 17.34 req/s while Music (1.82) plus Facebook
    (3.50) only sum to 5.32 req/s -- an inflation of ~3.26x.
    """
    first, second = COMBO_COMPONENTS[combo_name]
    combined = TABLE_IV[combo_name].arrival_rate
    parts = TABLE_IV[first].arrival_rate + TABLE_IV[second].arrival_rate
    if parts <= 0:
        raise ValueError(f"components of {combo_name} have no arrivals")
    return combined / parts


def interleave(
    first: Trace,
    second: Trace,
    name: str,
    inflation: float = 1.0,
) -> Trace:
    """Merge two traces into one concurrent-application stream.

    Both components' inter-arrival times are divided by ``inflation``
    (>= 1 speeds them up), then the request streams are merged in arrival
    order.  Timestamps are rebased to zero.
    """
    if inflation <= 0:
        raise ValueError("inflation must be positive")
    requests: List[Request] = []
    for trace in (first.rebased(), second.rebased()):
        for request in trace:
            requests.append(
                Request(
                    arrival_us=request.arrival_us / inflation,
                    lba=request.lba,
                    size=request.size,
                    op=request.op,
                )
            )
    return Trace(
        name=name,
        requests=requests,
        metadata={
            "combo.components": f"{first.name}+{second.name}",
            "combo.inflation": f"{inflation:.4f}",
        },
    )


def mechanistic_combo(
    combo_name: str,
    seed: int = DEFAULT_SEED,
) -> Tuple[Trace, Trace, Trace]:
    """Build a combo by interleaving its two freshly generated components.

    Returns ``(combo, first_component, second_component)``.  The inflation
    factor is taken from the published rates via :func:`rate_inflation`.
    """
    first_name, second_name = COMBO_COMPONENTS[combo_name]
    first = generate_trace(first_name, seed=seed)
    second = generate_trace(second_name, seed=seed)
    combo = interleave(first, second, combo_name, inflation=rate_inflation(combo_name))
    return combo, first, second
