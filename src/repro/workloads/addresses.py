"""Address-stream sampling calibrated to Table IV's locality columns.

The paper defines (Section III-C):

* *spatial locality* -- the fraction of requests whose starting address is
  exactly the ending address of their predecessor (a sequential access);
* *temporal locality* -- the fraction of requests that re-access an address
  seen before (an address hit).

The generator picks a per-request *access mode* -- sequential continuation
(probability = the spatial target), address re-hit (probability = the
temporal target), or a fresh random 4 KB-aligned address inside the
application's footprint -- and this module turns the mode into a concrete
address.  Because fresh addresses rarely collide inside a footprint much
larger than the trace's data size, the measured localities converge to the
targets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.trace import SECTOR


class AccessMode(enum.Enum):
    """How the next request's address relates to the history."""

    SEQUENTIAL = "sequential"
    TEMPORAL = "temporal"
    FRESH = "fresh"


@dataclass(frozen=True)
class AddressModel:
    """Locality targets plus the footprint fresh addresses are drawn from.

    Attributes:
        spatial: target fraction of sequential continuations, in [0, 1).
        temporal: target fraction of address re-hits, in [0, 1).
        footprint_start: first byte of the application's address region.
        footprint_bytes: size of the region fresh addresses are drawn from.
    """

    spatial: float
    temporal: float
    footprint_start: int
    footprint_bytes: int

    def __post_init__(self) -> None:
        if self.spatial < 0 or self.temporal < 0 or self.spatial + self.temporal >= 1:
            raise ValueError("spatial + temporal locality must stay below 1")
        if self.footprint_start % SECTOR or self.footprint_bytes % SECTOR:
            raise ValueError("footprint must be 4KB-aligned")
        if self.footprint_bytes <= 0:
            raise ValueError("footprint must be non-empty")

    def choose_mode(self, rng: np.random.Generator) -> AccessMode:
        """Draw an access mode with the target locality probabilities."""
        draw = rng.random()
        if draw < self.spatial:
            return AccessMode.SEQUENTIAL
        if draw < self.spatial + self.temporal:
            return AccessMode.TEMPORAL
        return AccessMode.FRESH

    def sampler(self, rng: np.random.Generator) -> "AddressSampler":
        """A stateful address stream over this model."""
        return AddressSampler(self, rng)


class AddressSampler:
    """Stateful per-trace address stream (keeps history for re-hits)."""

    def __init__(self, model: AddressModel, rng: np.random.Generator) -> None:
        self._model = model
        self._rng = rng
        self._history: List[int] = []
        self._previous_end: Optional[int] = None

    @property
    def previous_end(self) -> Optional[int]:
        """End address of the previous request, if any."""
        return self._previous_end

    def next_address(self, mode: AccessMode, size: int) -> int:
        """Return the start address for the next request of ``size`` bytes.

        Falls back to a fresh address when the mode is not realizable (no
        predecessor / empty history / sequential run would leave the
        footprint).
        """
        model = self._model
        if mode is AccessMode.SEQUENTIAL and self._previous_end is not None:
            address = self._previous_end
        elif mode is AccessMode.TEMPORAL and self._history:
            address = self._history[int(self._rng.integers(len(self._history)))]
        else:
            address = self._fresh_address(size)
        limit = model.footprint_start + model.footprint_bytes
        if address + size > limit:
            address = self._fresh_address(size)
        self._history.append(address)
        self._previous_end = address + size
        return address

    def _fresh_address(self, size: int) -> int:
        model = self._model
        span_pages = max(1, (model.footprint_bytes - size) // SECTOR)
        offset_pages = int(self._rng.integers(span_pages))
        return model.footprint_start + offset_pages * SECTOR
