"""Arrival-process sampling calibrated to Table IV / Fig. 6.

Smartphone I/O arrives in bursts separated by long gaps (the paper's
Characteristic 6: 13 of 18 applications have an *average* inter-arrival
time of at least 200 ms, yet Fig. 6 shows e.g. Movie with most gaps under
1 ms).  We model inter-arrival times as a two-phase mixture:

* with probability ``burst_frac`` an *intra-burst* gap, exponential with a
  small mean (``burst_mean_ms``), and
* otherwise an *inter-burst* gap, lognormal with its mean solved so the
  overall mean inter-arrival time equals ``duration / (n - 1)`` from
  Table IV.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.trace import US_PER_MS

#: Shape (sigma) of the lognormal inter-burst gap distribution.  A heavy
#: right tail reproduces Fig. 6's wide spread of long gaps.
_GAP_SIGMA = 1.6


@dataclass(frozen=True)
class ArrivalModel:
    """A burst/gap inter-arrival time distribution (times in microseconds)."""

    burst_frac: float
    burst_mean_us: float
    gap_mean_us: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.burst_frac < 1.0:
            raise ValueError(f"burst_frac must be in [0, 1), got {self.burst_frac}")
        if self.burst_mean_us <= 0 or self.gap_mean_us <= 0:
            raise ValueError("burst/gap means must be positive")

    @property
    def mean_us(self) -> float:
        """Analytic mean inter-arrival time."""
        return (
            self.burst_frac * self.burst_mean_us
            + (1.0 - self.burst_frac) * self.gap_mean_us
        )

    def sample_gaps(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` inter-arrival gaps in microseconds."""
        in_burst = rng.random(count) < self.burst_frac
        gaps = np.empty(count, dtype=np.float64)
        burst_count = int(in_burst.sum())
        gaps[in_burst] = rng.exponential(self.burst_mean_us, burst_count)
        mu = math.log(self.gap_mean_us) - _GAP_SIGMA**2 / 2.0
        long_gaps = rng.lognormal(mu, _GAP_SIGMA, count - burst_count)
        if long_gaps.size:
            # The heavy lognormal tail makes the sample mean badly biased for
            # trace-sized draws; rescale so the empirical gap mean matches the
            # calibration target and the trace duration lands on Table IV.
            long_gaps *= self.gap_mean_us / long_gaps.mean()
        gaps[~in_burst] = long_gaps
        return gaps

    def sample_arrivals(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` absolute arrival times starting at zero."""
        if count <= 0:
            return np.empty(0, dtype=np.float64)
        gaps = self.sample_gaps(count - 1, rng)
        arrivals = np.empty(count, dtype=np.float64)
        arrivals[0] = 0.0
        np.cumsum(gaps, out=arrivals[1:])
        return arrivals


def calibrate(
    mean_interarrival_us: float,
    burst_frac: float,
    burst_mean_ms: float,
) -> ArrivalModel:
    """Solve the inter-burst gap mean for a target overall mean gap.

    Args:
        mean_interarrival_us: target overall mean inter-arrival time,
            usually ``duration / (n - 1)`` from Table IV.
        burst_frac: fraction of gaps that are intra-burst.
        burst_mean_ms: mean intra-burst gap, in milliseconds.

    The burst mean is shrunk automatically when the requested bursts are so
    long that no non-negative gap mean could hit the target.
    """
    if mean_interarrival_us <= 0:
        raise ValueError("mean inter-arrival time must be positive")
    burst_mean_us = burst_mean_ms * US_PER_MS
    if burst_frac > 0 and burst_mean_us >= mean_interarrival_us:
        # Bursts alone would exceed the target mean; compress them.
        burst_mean_us = 0.5 * mean_interarrival_us
    if burst_frac >= 1.0:
        raise ValueError("burst_frac must leave room for inter-burst gaps")
    gap_mean_us = (mean_interarrival_us - burst_frac * burst_mean_us) / (1.0 - burst_frac)
    return ArrivalModel(burst_frac, burst_mean_us, gap_mean_us)
