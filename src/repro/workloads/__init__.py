"""Synthetic smartphone workloads calibrated to the paper's 25 traces."""

from .addresses import AccessMode, AddressModel, AddressSampler
from .arrivals import ArrivalModel
from .buckets import (
    INTERARRIVAL_BUCKETS_MS,
    RESPONSE_BUCKETS_MS,
    SIZE_BUCKETS,
    bucket_labels,
    histogram,
    size_histogram,
)
from .collection import CollectionResult, collect, sync_fraction
from .combos import interleave, mechanistic_combo, rate_inflation
from .generator import DEFAULT_SEED, generate_all, generate_trace
from .paper_data import (
    ALL_TRACES,
    TABLE_I,
    TABLE_II,
    COMBO_APPS,
    COMBO_COMPONENTS,
    FIG8_HPS_VS_4PS,
    FIG9_HPS_VS_8PS,
    INDIVIDUAL_APPS,
    SizeStatsRow,
    TABLE_III,
    TABLE_IV,
    TimingStatsRow,
    table_iii,
    table_iv,
)
from .scaling import scale_rate, scale_sizes, truncate
from .profiles import (
    DEVICE_BYTES,
    AppProfile,
    all_profiles,
    combo_profiles,
    individual_profiles,
    profile,
)
from .sizes import SizeModel, calibrate as calibrate_sizes, from_histogram

__all__ = [
    "scale_rate",
    "scale_sizes",
    "truncate",
    "CollectionResult",
    "collect",
    "sync_fraction",
    "AccessMode",
    "AddressModel",
    "AddressSampler",
    "ArrivalModel",
    "INTERARRIVAL_BUCKETS_MS",
    "RESPONSE_BUCKETS_MS",
    "SIZE_BUCKETS",
    "bucket_labels",
    "histogram",
    "size_histogram",
    "interleave",
    "mechanistic_combo",
    "rate_inflation",
    "DEFAULT_SEED",
    "generate_all",
    "generate_trace",
    "ALL_TRACES",
    "TABLE_I",
    "TABLE_II",
    "COMBO_APPS",
    "COMBO_COMPONENTS",
    "FIG8_HPS_VS_4PS",
    "FIG9_HPS_VS_8PS",
    "INDIVIDUAL_APPS",
    "SizeStatsRow",
    "TABLE_III",
    "TABLE_IV",
    "TimingStatsRow",
    "table_iii",
    "table_iv",
    "DEVICE_BYTES",
    "AppProfile",
    "all_profiles",
    "combo_profiles",
    "individual_profiles",
    "profile",
    "SizeModel",
    "calibrate_sizes",
    "from_histogram",
]
