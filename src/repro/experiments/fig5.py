"""Fig. 5: request response time distributions of the 18 applications.

The paper's trends: most requests complete within 2 ms, the vast majority
within 16 ms, and very few exceed 128 ms; the distribution shape tracks
the request size distribution.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis import render_histogram_table, response_distribution
from repro.workloads import DEFAULT_SEED

from .common import ExperimentResult, replayed_individual
from .spec import ExperimentSpec


def run(seed: int = DEFAULT_SEED, num_requests: Optional[int] = None) -> ExperimentResult:
    """Bucketed response-time histograms from the reference-device replay."""
    replays = replayed_individual(seed=seed, num_requests=num_requests)
    names = [replay.trace.name for replay in replays]
    histograms = [response_distribution(replay.trace) for replay in replays]
    table = render_histogram_table(names, histograms)
    return ExperimentResult(
        experiment_id="fig5",
        title="Response time distributions (percent of requests)",
        table=table,
        data={"histograms": dict(zip(names, histograms))},
    )


SPEC = ExperimentSpec(
    experiment_id="fig5",
    title="Response time distributions of the 18 applications",
    runner=run,
    cost="light",
)


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
