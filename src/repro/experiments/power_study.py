"""Extension study: the power-saving-threshold trade-off (Characteristic 4).

"An eMMC device will enter into a low-power mode if the request
inter-arrival time is longer than its power-saving threshold. ... Frequent
mode switching, however, increases request mean response times."

This experiment sweeps the threshold on a sparse workload and reports both
sides of the trade: mean response time (wake-up stalls) and energy (idle
power vs sleep power vs wake-up costs).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from repro.analysis import render_table
from repro.workloads import DEFAULT_SEED, generate_trace
from repro.emmc import four_ps
from repro.emmc.energy import EnergyParams, energy_report

from .common import ExperimentResult, replay_on
from .spec import ExperimentSpec

#: Threshold sweep, microseconds (10 ms .. 10 s plus "never sleeps").
DEFAULT_THRESHOLDS_US = (10_000.0, 100_000.0, 1_000_000.0, 10_000_000.0, float("inf"))


def run(
    seed: int = DEFAULT_SEED,
    num_requests: Optional[int] = None,
    app: str = "YouTube",
    thresholds_us: Sequence[float] = DEFAULT_THRESHOLDS_US,
) -> ExperimentResult:
    """MRT and energy vs power-saving threshold on a sparse trace."""
    trace = generate_trace(app, seed=seed, num_requests=num_requests)
    params = EnergyParams()
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for threshold in thresholds_us:
        effective = min(threshold, 1e15)  # "inf": never enters low power
        config = four_ps()
        config = config.with_overrides(
            latency=dataclasses.replace(config.latency, power_threshold_us=effective)
        )
        result = replay_on(config, trace)
        report = energy_report(result.stats, params)
        label = "never" if threshold == float("inf") else f"{threshold / 1000:.0f} ms"
        data[label] = {
            "mrt_ms": result.stats.mean_response_ms,
            "wakeups": result.stats.wakeups,
            "energy_mj": report.total_mj,
            "idle_share": report.idle_share,
        }
        rows.append(
            [
                label,
                result.stats.mean_response_ms,
                result.stats.wakeups,
                report.total_mj,
                f"{report.idle_share * 100:.1f}%",
            ]
        )
    table = render_table(
        ["Threshold", "MRT ms", "Wake-ups", "Energy mJ", "Idle energy share"],
        rows,
        title=f"{app}: power threshold sweep",
    )
    return ExperimentResult(
        experiment_id="power_study",
        title="Power-saving threshold trade-off (Characteristic 4)",
        table=table,
        data=data,
    )


SPEC = ExperimentSpec(
    experiment_id="power_study",
    title="Power-saving threshold trade-off sweep",
    runner=run,
    cost="light",
)


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
