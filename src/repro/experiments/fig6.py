"""Fig. 6: request inter-arrival time distributions of the 18 applications.

Trends to reproduce: CallIn/CallOut have mostly long gaps; Movie's gaps are
mostly under 1 ms despite a long *average* gap; Internet applications share
a similar distribution; local applications (Booting, Movie, Music,
CameraVideo) show smaller gaps than online ones.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis import interarrival_distribution, render_histogram_table
from repro.workloads import DEFAULT_SEED

from .common import ExperimentResult, individual_traces
from .spec import ExperimentSpec


def run(seed: int = DEFAULT_SEED, num_requests: Optional[int] = None) -> ExperimentResult:
    """Bucketed inter-arrival-time histograms, one row per application."""
    traces = individual_traces(seed=seed, num_requests=num_requests)
    histograms = [interarrival_distribution(trace) for trace in traces]
    table = render_histogram_table([trace.name for trace in traces], histograms)
    return ExperimentResult(
        experiment_id="fig6",
        title="Inter-arrival time distributions (percent of gaps)",
        table=table,
        data={"histograms": dict(zip((t.name for t in traces), histograms))},
    )


SPEC = ExperimentSpec(
    experiment_id="fig6",
    title="Inter-arrival time distributions of the 18 applications",
    runner=run,
    cost="light",
)


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
