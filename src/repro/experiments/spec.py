"""Declarative experiment specifications.

Every experiment module exports a module-level :data:`SPEC`, an
:class:`ExperimentSpec` describing how to run it: the runner callable, its
scheduling cost class, dependencies on other experiments, and (for the
heavy replay studies) a :class:`ShardPlan` that lets the parallel engine
split the experiment into independent per-trace units of work.

The specs replace the ad-hoc ``lambda seed, n: module.run(...)`` registry
that :mod:`repro.experiments.runner` used to carry.  Keeping everything a
module-level callable (never a lambda or closure) is what makes the specs
safe to resolve inside ``ProcessPoolExecutor`` workers: workers receive
only the experiment id and look the spec up again after import, so nothing
non-picklable ever crosses a process boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from .common import ExperimentResult

#: Scheduling cost classes, heaviest first.  The parallel engine submits
#: heavy experiments before light ones so the pool drains evenly.
COST_CLASSES = ("heavy", "medium", "light")

#: ``(seed, num_requests) -> ExperimentResult`` -- the uniform call
#: convention every spec runner adapts its module's ``run()`` to.
Runner = Callable[[int, Optional[int]], ExperimentResult]

#: ``(unit, seed, num_requests) -> payload`` -- one independent shard.
ShardWorker = Callable[[str, int, Optional[int]], object]

#: ``(payloads_by_unit, seed, num_requests) -> ExperimentResult`` --
#: deterministic reassembly of the shard payloads.
ShardMerge = Callable[[Dict[str, object], int, Optional[int]], ExperimentResult]


@dataclass(frozen=True)
class ShardPlan:
    """How to split one experiment into independent units of work.

    ``units`` lists the shard keys (trace names for the replay studies);
    ``worker`` computes one unit's payload and ``merge`` reassembles the
    full :class:`ExperimentResult` from all payloads.  ``merge`` must be a
    pure function of the payloads so that sharded output is bit-identical
    to the unsharded ``run()``.
    """

    units: Tuple[str, ...]
    worker: ShardWorker
    merge: ShardMerge


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one experiment.

    Attributes
    ----------
    experiment_id:
        Registry key; also the id embedded in the result and cache key.
    title:
        One-line description used by ``repro-experiments --list``.
    runner:
        Module-level callable with the ``(seed, num_requests)`` convention.
    cost:
        One of :data:`COST_CLASSES`; orders submission to the worker pool.
    deps:
        Ids of experiments that must complete before this one is
        scheduled.  All current experiments are independent, but the
        scheduler honours the field so future pipeline stages (e.g. a
        summary experiment over earlier results) need no engine changes.
    shards:
        Optional :class:`ShardPlan` for splitting the experiment across
        workers at finer granularity than whole experiments.
    uses_seed / uses_requests:
        Whether the experiment's output actually depends on ``seed`` /
        ``num_requests``.  The cache key only includes parameters the
        experiment consumes, so e.g. ``overhead`` (which ignores the seed)
        is not needlessly recomputed when only the seed changes.
    """

    experiment_id: str
    title: str
    runner: Runner
    cost: str = "light"
    deps: Tuple[str, ...] = ()
    shards: Optional[ShardPlan] = None
    uses_seed: bool = True
    uses_requests: bool = True
    extra_config: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cost not in COST_CLASSES:
            raise ValueError(
                f"{self.experiment_id}: cost {self.cost!r} not in {COST_CLASSES}"
            )

    def call(self, seed: int, num_requests: Optional[int]) -> ExperimentResult:
        """Run the experiment in-process (the serial path)."""
        return self.runner(seed, num_requests)

    def cache_relevant_params(
        self, seed: int, num_requests: Optional[int]
    ) -> Dict[str, object]:
        """The (parameter -> value) map that the cache key must cover."""
        params: Dict[str, object] = {}
        if self.uses_seed:
            params["seed"] = seed
        if self.uses_requests:
            params["num_requests"] = num_requests
        if self.extra_config:
            params["extra_config"] = dict(sorted(self.extra_config.items()))
        return params
