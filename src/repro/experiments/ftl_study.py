"""Extension study: page-mapped vs hybrid log-block FTL.

The paper observes that an eMMC "has a simpler FTL ... compared to an SSD"
and that its performance suffers for it.  This experiment makes the cost
of the classic simple FTL concrete: a BAST-style block-mapped FTL with log
blocks against the page-mapped default, on the 4PS geometry.

Expected shape, straight from the FTL literature applied to Characteristic
2's small-random-write-heavy workloads:

* the hybrid FTL's RAM footprint (mapping entries) is orders of magnitude
  smaller -- its raison d'etre;
* random 4 KB overwrites force *full merges* (copy a whole block per few
  overwrites), inflating MRT by an order of magnitude;
* enlarging the log-block pool softens, but does not close, the gap;
* block mapping also serializes a logical block onto one physical block
  (one plane), hurting large sequential requests too.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis import render_table
from repro.workloads import DEFAULT_SEED, generate_trace
from repro.emmc import EmmcDevice, four_ps
from repro.sim import Host

from .common import ExperimentResult
from .spec import ExperimentSpec

CONFIGS = (
    ("page", None),
    ("hybrid-log", 8),
    ("hybrid-log", 32),
)


def run(
    seed: int = DEFAULT_SEED,
    num_requests: Optional[int] = None,
    apps: tuple = ("Messaging", "CameraVideo"),
) -> ExperimentResult:
    """MRT, merge activity and mapping RAM for each FTL scheme."""
    rows = []
    data: Dict[str, Dict[str, Dict[str, float]]] = {}
    for app in apps:
        trace = generate_trace(app, seed=seed, num_requests=num_requests or 2000)
        data[app] = {}
        for scheme, log_blocks in CONFIGS:
            overrides = {"mapping_scheme": scheme}
            if log_blocks is not None:
                overrides["log_blocks"] = log_blocks
            device = EmmcDevice(four_ps(**overrides))
            # Route through the Host; keep the device for FTL inspection.
            result = Host(device).replay(trace.without_timing())
            label = scheme if log_blocks is None else f"{scheme}({log_blocks})"
            if scheme == "page":
                merges = 0
                copies = 0
                entries = len(device.ftl.mapping)
            else:
                merges = device.ftl.stats.full_merges + device.ftl.stats.switch_merges
                copies = device.ftl.stats.merge_page_copies
                entries = device.ftl.mapping_entries
            data[app][label] = {
                "mrt_ms": result.stats.mean_response_ms,
                "merges": merges,
                "copies": copies,
                "mapping_entries": entries,
            }
            rows.append(
                [app, label, result.stats.mean_response_ms, merges, copies, entries]
            )
    table = render_table(
        ["App", "FTL", "MRT ms", "Merges", "Page copies", "Map entries"],
        rows,
    )
    return ExperimentResult(
        experiment_id="ftl_study",
        title="Page-mapped vs hybrid log-block FTL",
        table=table,
        data=data,
    )


SPEC = ExperimentSpec(
    experiment_id="ftl_study",
    title="Page-mapped vs hybrid log-block FTL study",
    runner=run,
    cost="light",
)


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
