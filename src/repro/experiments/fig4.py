"""Fig. 4: request size distributions of the 18 individual applications."""

from __future__ import annotations

from typing import Optional

from repro.analysis import render_histogram_table, size_distribution
from repro.workloads import DEFAULT_SEED

from .common import ExperimentResult, individual_traces
from .spec import ExperimentSpec


def run(seed: int = DEFAULT_SEED, num_requests: Optional[int] = None) -> ExperimentResult:
    """Bucketed size histograms, one row per application (percent)."""
    traces = individual_traces(seed=seed, num_requests=num_requests)
    histograms = [size_distribution(trace) for trace in traces]
    table = render_histogram_table(
        [trace.name for trace in traces], histograms
    )
    return ExperimentResult(
        experiment_id="fig4",
        title="Request size distributions (percent of requests)",
        table=table,
        data={"histograms": dict(zip((t.name for t in traces), histograms))},
    )


SPEC = ExperimentSpec(
    experiment_id="fig4",
    title="Request size distributions of the 18 applications",
    runner=run,
    cost="light",
)


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
