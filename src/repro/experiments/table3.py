"""Table III: size-related characteristics of the 25 traces."""

from __future__ import annotations

from typing import Optional

from repro.analysis import render_table, size_stats
from repro.workloads import DEFAULT_SEED, TABLE_III

from .common import ExperimentResult, all_traces
from .spec import ExperimentSpec


def run(seed: int = DEFAULT_SEED, num_requests: Optional[int] = None) -> ExperimentResult:
    """Regenerate Table III; every cell shown as measured (paper)."""
    rows = []
    measured = {}
    for trace in all_traces(seed=seed, num_requests=num_requests):
        stats = size_stats(trace)
        paper = TABLE_III[trace.name]
        measured[trace.name] = stats
        rows.append(
            [
                stats.name,
                f"{stats.data_size_kib:,.0f} ({paper.data_size_kib:,})",
                f"{stats.num_requests:,} ({paper.num_requests:,})",
                f"{stats.max_size_kib:,.0f} ({paper.max_size_kib:,})",
                f"{stats.avg_size_kib:.1f} ({paper.avg_size_kib})",
                f"{stats.avg_read_kib:.1f} ({paper.avg_read_kib})",
                f"{stats.avg_write_kib:.1f} ({paper.avg_write_kib})",
                f"{stats.write_req_pct:.1f} ({paper.write_req_pct})",
                f"{stats.write_size_pct:.1f} ({paper.write_size_pct})",
            ]
        )
    table = render_table(
        [
            "App",
            "Data KB",
            "#Reqs",
            "Max KB",
            "Avg KB",
            "AvgR KB",
            "AvgW KB",
            "W Req %",
            "W Size %",
        ],
        rows,
    )
    return ExperimentResult(
        experiment_id="table3",
        title="Size-related characteristics, measured (paper)",
        table=table,
        data={"measured": measured},
    )


SPEC = ExperimentSpec(
    experiment_id="table3",
    title="Table III size-related characteristics of the 25 traces",
    runner=run,
    cost="medium",
)


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
