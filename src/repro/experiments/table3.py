"""Table III: size-related characteristics of the 25 traces.

The experiment shards into one unit per trace.  Each worker resolves the
``size_stats`` metric from the registry (:mod:`repro.metrics.registry`)
and folds its trace's columns chunk by chunk through the metric's
sharded engine, shipping the state (a handful of integers) back instead
of the trace.  ``merge`` finalizes the states in paper order; the
registry contract guarantees the fold is bit-identical to the batch
kernel, so sharded output matches the serial path byte for byte.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis import render_table
from repro.metrics import chunked, get_metric
from repro.metrics.size import SizeStats, SizeStatsState
from repro.workloads import ALL_TRACES, DEFAULT_SEED, TABLE_III

from .common import ExperimentResult, cached_trace
from .spec import ExperimentSpec, ShardPlan

#: Rows folded per streaming step inside a shard worker.
SHARD_CHUNK_ROWS = 16384

#: The one metric this experiment reports.
METRIC_NAME = "size_stats"


def _row(stats: SizeStats) -> list:
    """One rendered Table III row: measured (paper)."""
    paper = TABLE_III[stats.name]
    return [
        stats.name,
        f"{stats.data_size_kib:,.0f} ({paper.data_size_kib:,})",
        f"{stats.num_requests:,} ({paper.num_requests:,})",
        f"{stats.max_size_kib:,.0f} ({paper.max_size_kib:,})",
        f"{stats.avg_size_kib:.1f} ({paper.avg_size_kib})",
        f"{stats.avg_read_kib:.1f} ({paper.avg_read_kib})",
        f"{stats.avg_write_kib:.1f} ({paper.avg_write_kib})",
        f"{stats.write_req_pct:.1f} ({paper.write_req_pct})",
        f"{stats.write_size_pct:.1f} ({paper.write_size_pct})",
    ]


def compute_shard(
    unit: str, seed: int = DEFAULT_SEED, num_requests: Optional[int] = None
) -> SizeStatsState:
    """One trace's streaming size state (integers only -- tiny payload)."""
    trace = cached_trace(unit, seed=seed, num_requests=num_requests)
    metric = get_metric(METRIC_NAME)
    state = metric.init()
    for chunk in chunked(trace.columns(), SHARD_CHUNK_ROWS):
        metric.update(state, chunk)
    return state


def merge(
    payloads: Dict[str, object],
    seed: int = DEFAULT_SEED,
    num_requests: Optional[int] = None,
) -> ExperimentResult:
    """Finalize the per-trace summaries into Table III (paper order)."""
    del seed, num_requests  # assembly is a pure function of the payloads
    metric = get_metric(METRIC_NAME)
    rows = []
    measured = {}
    for name in ALL_TRACES:
        stats = metric.finalize(payloads[name], name)
        measured[name] = stats
        rows.append(_row(stats))
    table = render_table(
        [
            "App",
            "Data KB",
            "#Reqs",
            "Max KB",
            "Avg KB",
            "AvgR KB",
            "AvgW KB",
            "W Req %",
            "W Size %",
        ],
        rows,
    )
    return ExperimentResult(
        experiment_id="table3",
        title="Size-related characteristics, measured (paper)",
        table=table,
        data={"measured": measured},
    )


def run(seed: int = DEFAULT_SEED, num_requests: Optional[int] = None) -> ExperimentResult:
    """Regenerate Table III; every cell shown as measured (paper)."""
    payloads = {
        name: compute_shard(name, seed=seed, num_requests=num_requests)
        for name in ALL_TRACES
    }
    return merge(payloads, seed=seed, num_requests=num_requests)


SPEC = ExperimentSpec(
    experiment_id="table3",
    title="Table III size-related characteristics of the 25 traces",
    runner=run,
    cost="medium",
    shards=ShardPlan(units=tuple(ALL_TRACES), worker=compute_shard, merge=merge),
)


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
