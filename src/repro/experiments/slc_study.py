"""Extension study: HPS with SLC-mode small-page blocks (Implication 5).

The paper suggests serving the dominant 4 KB requests from MLC blocks
operated in SLC mode ("obtains an SLC-like performance ... at the cost of
50 % capacity loss").  This experiment quantifies that trade on top of the
HPS design: same die structure, the 4 KB pools run as SLC.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis import render_table
from repro.workloads import DEFAULT_SEED
from repro.emmc import four_ps, hps, hps_slc

from .common import ExperimentResult, individual_traces, replay_on
from .spec import ExperimentSpec

DEFAULT_APPS = ("Twitter", "Messaging", "Facebook", "Booting", "Installing", "Movie")


def run(
    seed: int = DEFAULT_SEED,
    num_requests: Optional[int] = None,
    apps: Optional[List[str]] = None,
) -> ExperimentResult:
    """Compare 4PS, HPS and HPS-SLC on MRT; report the capacity cost."""
    selected = list(apps) if apps is not None else list(DEFAULT_APPS)
    configs = [four_ps(), hps(), hps_slc()]
    traces = [
        trace
        for trace in individual_traces(seed=seed, num_requests=num_requests)
        if trace.name in selected
    ]
    rows = []
    mrt_data = {}
    for trace in traces:
        mrt = {}
        for config in configs:
            result = replay_on(config, trace)
            mrt[config.name] = result.stats.mean_response_ms
        mrt_data[trace.name] = mrt
        rows.append(
            [
                trace.name,
                mrt["4PS"],
                mrt["HPS"],
                mrt["HPS-SLC"],
                f"{(1 - mrt['HPS-SLC'] / mrt['HPS']) * 100:.1f}%",
            ]
        )
    capacities = {
        config.name: config.geometry.capacity_bytes() / 2**30 for config in configs
    }
    footer = (
        "capacities: "
        + ", ".join(f"{name}={gib:.0f} GiB" for name, gib in capacities.items())
        + "  (SLC mode halves the small-page pools' capacity)"
    )
    table = render_table(
        ["App", "4PS MRT ms", "HPS MRT ms", "HPS-SLC MRT ms", "SLC vs HPS"], rows
    )
    return ExperimentResult(
        experiment_id="slc_study",
        title="Implication 5 extension: SLC-mode small-page blocks",
        table=table + "\n" + footer,
        data={"mrt": mrt_data, "capacities_gib": capacities},
    )


SPEC = ExperimentSpec(
    experiment_id="slc_study",
    title="HPS with SLC-mode small-page blocks",
    runner=run,
    cost="medium",
)


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
