"""Fig. 3: the impact of request size on throughput.

Two constructions:

1. a device sweep -- back-to-back fixed-size requests at the reference
   device, sustained MB/s;
2. the paper's own construction -- "the throughput of a particular request
   size is obtained by calculating the average access rate of requests
   with that size in all traces", computed over the closed-loop-collected
   traces.

The paper's measured endpoints: reads climb from 13.94 MB/s (4 KB) to
99.65 MB/s (256 KB); writes from 5.18 MB/s (4 KB) to 56.15 MB/s (16 MB),
with writes always far below reads at the same size.

The experiment shards into the device sweep plus one closed-loop
collection per app.  ``merge`` reassembles the collected traces in app
order and runs the same aggregation as the serial path, so parallel
output is bit-identical (the per-size float accumulation happens once, in
a single deterministic order, never per-shard).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.trace import KIB, MIB, Op
from repro.analysis import render_table, throughput_curves, trace_throughput_by_size
from repro.emmc import four_ps
from repro.workloads import DEFAULT_SEED, INDIVIDUAL_APPS

from .common import ExperimentResult, cached_collection
from .spec import ExperimentSpec, ShardPlan

#: Paper-reported endpoints for the comparison rows.
PAPER_POINTS = {
    ("read", 4 * 1024): 13.94,
    ("read", 256 * 1024): 99.65,
    ("write", 4 * 1024): 5.18,
    ("write", 256 * 1024): 19.0,
    ("write", 16 * 1024 * 1024): 56.15,
}

#: Shard key for the fixed-size device sweep (all other shards are apps).
SWEEP_UNIT = "device-sweep"


def _sweep_bytes(num_requests: Optional[int]) -> int:
    """Bytes pushed per sweep point; trimmed in quick/shortened mode."""
    return 32 * MIB if num_requests is None else 4 * MIB


def compute_shard(
    unit: str, seed: int = DEFAULT_SEED, num_requests: Optional[int] = None
):
    """One independent unit of Fig. 3 work (sweep, or one app collection)."""
    if unit == SWEEP_UNIT:
        return throughput_curves(
            four_ps(), total_bytes_per_point=_sweep_bytes(num_requests)
        )
    return cached_collection(unit, seed=seed, num_requests=num_requests).trace


def merge(
    payloads: Dict[str, object],
    seed: int = DEFAULT_SEED,
    num_requests: Optional[int] = None,
) -> ExperimentResult:
    """Assemble both Fig. 3 tables from the shard payloads."""
    del seed, num_requests  # assembly is a pure function of the payloads
    curves = payloads[SWEEP_UNIT]
    rows = []
    for label, points in curves.items():
        for point in points:
            size_kib = point.size_bytes // 1024
            paper = PAPER_POINTS.get((label, point.size_bytes))
            rows.append(
                [
                    label,
                    f"{size_kib} KiB" if size_kib < 1024 else f"{size_kib // 1024} MiB",
                    point.mb_per_s,
                    "-" if paper is None else f"{paper}",
                ]
            )
    sweep_table = render_table(
        ["Op", "Request size", "MB/s", "Paper MB/s"], rows,
        title="(a) device sweep",
    )
    # The paper's construction, over the collected traces (app order).
    traces = [payloads[app] for app in INDIVIDUAL_APPS if app in payloads]
    trace_rows = []
    by_size = {}
    for op in (Op.READ, Op.WRITE):
        rates = trace_throughput_by_size(traces, op)
        by_size[op.value] = rates
        for size in sorted(rates):
            if size in (4 * KIB, 16 * KIB, 64 * KIB, 256 * KIB, 1024 * KIB):
                trace_rows.append([op.value, f"{size // KIB} KiB", rates[size]])
    trace_table = render_table(
        ["Op", "Request size", "MB/s"], trace_rows,
        title="(b) per-size average access rate over the 18 collected traces",
    )
    return ExperimentResult(
        experiment_id="fig3",
        title="Throughput vs request size",
        table=sweep_table + "\n\n" + trace_table,
        data={"curves": curves, "trace_rates": by_size},
    )


def run(seed: int = DEFAULT_SEED, num_requests: Optional[int] = None) -> ExperimentResult:
    """Both Fig. 3 constructions on the reference device."""
    units = (SWEEP_UNIT,) + tuple(INDIVIDUAL_APPS)
    payloads = {
        unit: compute_shard(unit, seed=seed, num_requests=num_requests)
        for unit in units
    }
    return merge(payloads, seed=seed, num_requests=num_requests)


SPEC = ExperimentSpec(
    experiment_id="fig3",
    title="Throughput vs request size (device sweep + trace construction)",
    runner=run,
    cost="heavy",
    shards=ShardPlan(
        units=(SWEEP_UNIT,) + tuple(INDIVIDUAL_APPS),
        worker=compute_shard,
        merge=merge,
    ),
)


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
