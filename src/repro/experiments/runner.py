"""Run every experiment and optionally write EXPERIMENTS.md.

Command line::

    repro-experiments                 # run everything, print reports
    repro-experiments fig8 fig9      # a subset
    repro-experiments --quick        # shortened traces (smoke run)
    repro-experiments --jobs 4       # shard across 4 worker processes
    repro-experiments --no-cache     # force recomputation
    repro-experiments --cache-dir D  # result cache location
    repro-experiments --output EXPERIMENTS.md
    repro-experiments --list         # show the registry and exit

Results are cached on disk (``$REPRO_CACHE_DIR``, else
``~/.cache/repro``) keyed by experiment id, parameters, code fingerprint
and package version; a warm rerun replays from cache without recomputing
anything.  Parallel runs are bit-identical to serial ones (see
:mod:`repro.experiments.parallel`).
"""

from __future__ import annotations

import argparse
import cProfile
import dataclasses
import io
import json
import pstats
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.workloads import DEFAULT_SEED

from . import parallel
from .cache import NullCache, ResultCache
from .common import ExperimentResult
from .registry import REGISTRY, select
from .spec import ExperimentSpec

#: Backwards-compatible view of the registry: id -> ``f(seed, n)``.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    experiment_id: spec.call for experiment_id, spec in REGISTRY.items()
}


def run_experiments(
    ids: Optional[List[str]] = None,
    seed: int = DEFAULT_SEED,
    num_requests: Optional[int] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[ExperimentResult]:
    """Run the selected experiments (all, in paper order, by default).

    ``jobs``/``cache`` expose the parallel engine; the defaults preserve
    the historical serial, uncached behaviour.
    """
    summary = parallel.execute(
        ids=ids, seed=seed, num_requests=num_requests, jobs=jobs, cache=cache
    )
    return summary.results


def _jsonable(value):
    """Best-effort conversion of experiment data to JSON-serializable form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _top_cumulative(profiler: cProfile.Profile, count: int = 20) -> List[str]:
    """The top ``count`` cumulative-time lines of a finished profile."""
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(count)
    lines = [line.rstrip() for line in buffer.getvalue().splitlines()]
    # Drop the header chatter up to (and including) the column header row.
    for index, line in enumerate(lines):
        if line.lstrip().startswith("ncalls"):
            return [entry for entry in lines[index:] if entry][: count + 1]
    return [entry for entry in lines if entry][:count]


def _profiled_execute(
    specs: List[ExperimentSpec],
    seed: int,
    num_requests: Optional[int],
    wall_sink=None,
) -> "tuple[parallel.RunSummary, Dict[str, List[str]]]":
    """Run each experiment serially under cProfile; merge into one summary.

    Profiling is incompatible with worker processes and with cache hits
    (both would hide the compute), so this path forces ``jobs=1`` and a
    :class:`NullCache` regardless of the other flags.
    """
    results = []
    telemetry = []
    profiles: Dict[str, List[str]] = {}
    started = time.perf_counter()
    for spec in specs:
        profiler = cProfile.Profile()
        profiler.enable()
        part = parallel.execute(
            ids=[spec.experiment_id],
            seed=seed,
            num_requests=num_requests,
            jobs=1,
            cache=NullCache(),
            wall_sink=wall_sink,
        )
        profiler.disable()
        profiles[spec.experiment_id] = _top_cumulative(profiler)
        results.extend(part.results)
        telemetry.extend(part.telemetry)
    summary = parallel.RunSummary(
        results=results,
        telemetry=telemetry,
        wall_s=time.perf_counter() - started,
        jobs=1,
    )
    return summary, profiles


def _print_registry() -> None:
    width = max(len(identifier) for identifier in REGISTRY)
    for identifier, spec in REGISTRY.items():
        shards = f", {len(spec.shards.units)} shards" if spec.shards else ""
        print(f"{identifier:<{width}}  [{spec.cost}{shards}]  {spec.title}")


def build_parser() -> argparse.ArgumentParser:
    """Construct the repro-experiments argument parser."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--quick", action="store_true", help="shorten traces to 1500 requests"
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes (1 = serial in-process; output is identical)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result cache location (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument("--output", help="also write the reports to this file")
    parser.add_argument(
        "--json", help="write every experiment's structured data to this JSON file"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "run each experiment under cProfile (serial, cache off) and "
            "report its top-20 cumulative lines next to the _meta summary"
        ),
    )
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="DIR",
        help=(
            "record the run's wall-clock telemetry (per-experiment and "
            "per-shard spans, cache hit/miss events) and write DIR/"
            "experiments-trace.json (chrome://tracing) + DIR/flame.txt"
        ),
    )
    parser.add_argument(
        "--list", action="store_true", help="list the registered experiments and exit"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list:
        _print_registry()
        return 0
    num_requests = 1500 if args.quick else None
    try:
        specs: List[ExperimentSpec] = select(args.ids or ())
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    cache = NullCache() if args.no_cache else ResultCache(cache_dir=args.cache_dir)
    wall_sink = None
    if args.telemetry:
        from repro.telemetry import Telemetry

        wall_sink = Telemetry()
        wall_sink.meta["seed"] = args.seed
        wall_sink.meta["jobs"] = args.jobs
        wall_sink.meta["num_requests"] = num_requests or "full"

    started = time.time()
    profiles: Optional[Dict[str, List[str]]] = None
    if args.profile:
        summary, profiles = _profiled_execute(
            specs, args.seed, num_requests, wall_sink=wall_sink
        )
    else:
        summary = parallel.execute(
            ids=[spec.experiment_id for spec in specs],
            seed=args.seed,
            num_requests=num_requests,
            jobs=args.jobs,
            cache=cache,
            wall_sink=wall_sink,
        )
    reports: List[str] = []
    structured: Dict[str, object] = {}
    for result, telemetry in zip(summary.results, summary.telemetry):
        rendered = result.render()
        print(rendered)
        suffix = ""
        if telemetry.cache == "hit":
            suffix = ", cache hit"
        elif telemetry.shards:
            suffix = f", {telemetry.shards} shards"
        print(
            f"[{result.experiment_id} finished in {telemetry.compute_s:.1f}s"
            f"{suffix}]\n"
        )
        reports.append(rendered)
        structured[result.experiment_id] = _jsonable(result.data)
    total_wall = time.time() - started
    print(
        f"[total: {total_wall:.1f}s wall, {summary.compute_s:.1f}s compute, "
        f"jobs={summary.jobs}, speedup {summary.speedup:.2f}x]"
    )
    if cache.enabled and not args.profile:
        print(f"[{cache.stats.summary()}]")
    if profiles is not None and not args.json:
        for experiment_id, lines in profiles.items():
            print(f"\n[profile: {experiment_id}]")
            for line in lines:
                print(line)
    if wall_sink is not None:
        import os

        from repro.telemetry import chrome_trace, flame_summary

        os.makedirs(args.telemetry, exist_ok=True)
        trace_path = os.path.join(args.telemetry, "experiments-trace.json")
        chrome_trace(wall_sink, trace_path)
        with open(os.path.join(args.telemetry, "flame.txt"), "w") as handle:
            handle.write(flame_summary(wall_sink) + "\n")
        print(f"[telemetry: {trace_path} (load in chrome://tracing)]")
    if args.output:
        with open(args.output, "w") as handle:
            handle.write("\n\n".join(reports) + "\n")
    if args.json:
        structured["_meta"] = {
            "run": summary.as_dict(),
            "seed": args.seed,
            "num_requests": num_requests,
        }
        if profiles is not None:
            structured["_profile"] = profiles
        with open(args.json, "w") as handle:
            json.dump(structured, handle, indent=2)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
