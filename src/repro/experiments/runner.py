"""Run every experiment and optionally write EXPERIMENTS.md.

Command line::

    repro-experiments                 # run everything, print reports
    repro-experiments fig8 fig9      # a subset
    repro-experiments --quick        # shortened traces (smoke run)
    repro-experiments --output EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.workloads import DEFAULT_SEED

from . import (
    calibration,
    characteristics,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    ftl_study,
    implications,
    lifetime,
    overhead,
    power_study,
    sdcard_study,
    sensitivity,
    slc_study,
    table3,
    table4,
)
from .common import ExperimentResult

#: Experiment registry in the order they appear in the paper.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig3": lambda seed, n: fig3.run(seed=seed, num_requests=n),
    "table3": lambda seed, n: table3.run(seed=seed, num_requests=n),
    "fig4": lambda seed, n: fig4.run(seed=seed, num_requests=n),
    "table4": lambda seed, n: table4.run(seed=seed, num_requests=n),
    "fig5": lambda seed, n: fig5.run(seed=seed, num_requests=n),
    "fig6": lambda seed, n: fig6.run(seed=seed, num_requests=n),
    "fig7": lambda seed, n: fig7.run(seed=seed, num_requests=n),
    "characteristics": lambda seed, n: characteristics.run(seed=seed, num_requests=n),
    "implications": lambda seed, n: implications.run(seed=seed, num_requests=n),
    "overhead": lambda seed, n: overhead.run(duration_s=120.0 if n else 600.0),
    "fig8": lambda seed, n: fig8.run(seed=seed, num_requests=n),
    "fig9": lambda seed, n: fig9.run(seed=seed, num_requests=n),
    # Extension studies beyond the paper's evaluation section.
    "slc_study": lambda seed, n: slc_study.run(seed=seed, num_requests=n),
    "lifetime": lambda seed, n: lifetime.run(seed=seed, num_requests=n),
    "sensitivity": lambda seed, n: sensitivity.run(seed=seed, num_requests=n),
    "power_study": lambda seed, n: power_study.run(seed=seed, num_requests=n),
    "sdcard_study": lambda seed, n: sdcard_study.run(seed=seed, num_requests=n),
    "ftl_study": lambda seed, n: ftl_study.run(seed=seed, num_requests=n),
    "calibration": lambda seed, n: calibration.run(seed=seed, num_requests=n),
}


def run_experiments(
    ids: Optional[List[str]] = None,
    seed: int = DEFAULT_SEED,
    num_requests: Optional[int] = None,
) -> List[ExperimentResult]:
    """Run the selected experiments (all, in paper order, by default)."""
    selected = list(ids) if ids else list(EXPERIMENTS)
    unknown = [identifier for identifier in selected if identifier not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}; known: {list(EXPERIMENTS)}")
    return [EXPERIMENTS[identifier](seed, num_requests) for identifier in selected]


def _jsonable(value):
    """Best-effort conversion of experiment data to JSON-serializable form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--quick", action="store_true", help="shorten traces to 1500 requests"
    )
    parser.add_argument("--output", help="also write the reports to this file")
    parser.add_argument(
        "--json", help="write every experiment's structured data to this JSON file"
    )
    args = parser.parse_args(argv)
    num_requests = 1500 if args.quick else None
    reports: List[str] = []
    structured: Dict[str, object] = {}
    for identifier in args.ids or list(EXPERIMENTS):
        started = time.time()
        result = EXPERIMENTS[identifier](args.seed, num_requests)
        rendered = result.render()
        print(rendered)
        print(f"[{identifier} finished in {time.time() - started:.1f}s]\n")
        reports.append(rendered)
        structured[identifier] = _jsonable(result.data)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write("\n\n".join(reports) + "\n")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(structured, handle, indent=2)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
