"""Extension study: load sensitivity of the three schemes.

Fig. 8's biggest gains come from queue-heavy traces; this experiment makes
that mechanism explicit by time-compressing a single trace (1x .. 16x the
original arrival rate) and tracking each scheme's mean response time.  The
expected shape: all schemes are equal-ish at light load, and the 4PS curve
blows up first as the rate grows -- the queueing amplification behind the
paper's 86 % Booting result.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis import render_table
from repro.workloads import DEFAULT_SEED, generate_trace
from repro.workloads.scaling import scale_rate
from repro.emmc import eight_ps, four_ps, hps

from .common import ExperimentResult, replay_on
from .spec import ExperimentSpec

DEFAULT_FACTORS = (1.0, 2.0, 4.0, 8.0, 16.0)


def run(
    seed: int = DEFAULT_SEED,
    num_requests: Optional[int] = None,
    app: str = "Facebook",
    factors: Sequence[float] = DEFAULT_FACTORS,
) -> ExperimentResult:
    """MRT vs arrival-rate multiplier for 4PS/8PS/HPS."""
    base = generate_trace(app, seed=seed, num_requests=num_requests or 3000)
    configs = {"4PS": four_ps(), "8PS": eight_ps(), "HPS": hps()}
    curves: Dict[str, List[float]] = {name: [] for name in configs}
    rows = []
    for factor in factors:
        trace = scale_rate(base, factor)
        row = [f"{factor:g}x"]
        for name, config in configs.items():
            mrt = replay_on(config, trace).stats.mean_response_ms
            curves[name].append(mrt)
            row.append(mrt)
        row.append(f"{(1 - curves['HPS'][-1] / curves['4PS'][-1]) * 100:.1f}%")
        rows.append(row)
    table = render_table(
        ["Rate", "4PS MRT ms", "8PS MRT ms", "HPS MRT ms", "HPS vs 4PS"],
        rows,
        title=f"{app} time-compressed (queueing amplification)",
    )
    return ExperimentResult(
        experiment_id="sensitivity",
        title="Load sensitivity: MRT vs arrival-rate multiplier",
        table=table,
        data={"factors": list(factors), "curves": curves, "app": app},
    )


SPEC = ExperimentSpec(
    experiment_id="sensitivity",
    title="Load sensitivity of the three page-size schemes",
    runner=run,
    cost="light",
)


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
