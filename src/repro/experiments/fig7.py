"""Fig. 7: I/O patterns of the 7 combo traces.

Three panels: (a) request size distributions, (b) response time
distributions, (c) inter-arrival time distributions -- plus the section's
observation that a combo's arrival/access rates exceed the sum of its
components' (checked via the published rate-inflation factors).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis import (
    interarrival_distribution,
    render_histogram_table,
    render_table,
    response_distribution,
    size_distribution,
)
from repro.workloads import COMBO_APPS, COMBO_COMPONENTS, DEFAULT_SEED, TABLE_IV
from repro.workloads.combos import rate_inflation

from .common import ExperimentResult, replayed_all
from .spec import ExperimentSpec


def run(seed: int = DEFAULT_SEED, num_requests: Optional[int] = None) -> ExperimentResult:
    """All three Fig. 7 panels for the 7 combo traces."""
    replays = [
        replay
        for replay in replayed_all(seed=seed, num_requests=num_requests)
        if replay.trace.name in COMBO_APPS
    ]
    names = [replay.trace.name for replay in replays]
    sizes = [size_distribution(replay.trace) for replay in replays]
    responses = [response_distribution(replay.trace) for replay in replays]
    gaps = [interarrival_distribution(replay.trace) for replay in replays]
    inflation_rows = [
        [
            name,
            " + ".join(COMBO_COMPONENTS[name]),
            TABLE_IV[COMBO_COMPONENTS[name][0]].arrival_rate
            + TABLE_IV[COMBO_COMPONENTS[name][1]].arrival_rate,
            TABLE_IV[name].arrival_rate,
            rate_inflation(name),
        ]
        for name in names
    ]
    table = "\n\n".join(
        [
            render_histogram_table(names, sizes, title="(a) request sizes, %"),
            render_histogram_table(names, responses, title="(b) response times, %"),
            render_histogram_table(names, gaps, title="(c) inter-arrival times, %"),
            render_table(
                ["Combo", "Components", "Sum of parts req/s", "Combo req/s", "Inflation"],
                inflation_rows,
                title="(d) arrival-rate inflation (Section III-D)",
            ),
        ]
    )
    return ExperimentResult(
        experiment_id="fig7",
        title="I/O patterns of the 7 combo traces",
        table=table,
        data={
            "sizes": dict(zip(names, sizes)),
            "responses": dict(zip(names, responses)),
            "gaps": dict(zip(names, gaps)),
        },
    )


SPEC = ExperimentSpec(
    experiment_id="fig7",
    title="I/O patterns of the 7 combo traces",
    runner=run,
    cost="light",
)


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
