"""Fig. 8: mean response time of 4PS vs 8PS vs HPS on the 18 traces.

Paper headlines: HPS beats 4PS on every trace -- by up to 86 % (Booting),
no less than 24 % (Movie), 61.9 % on average -- and 8PS performs very
similarly to HPS.  The RAM buffer is disabled, each trace replays on a
brand-new device (Section V-B).

The per-trace replays are fully independent, so this module is split into
:func:`replay_app` (one trace on all three schemes -- the parallel shard)
and :func:`merge` (deterministic reassembly); :func:`run` simply composes
the two, which is what keeps the ``--jobs N`` output bit-identical to the
serial path.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis import render_table
from repro.workloads import DEFAULT_SEED, FIG8_HPS_VS_4PS, INDIVIDUAL_APPS

from repro.emmc import eight_ps, four_ps, hps

from .common import ExperimentResult, cached_trace, replay_on
from .spec import ExperimentSpec, ShardPlan

SCHEMES = ("4PS", "8PS", "HPS")

#: Scheme configs are immutable; build them once per process instead of
#: once per shard call (devices are still constructed fresh per replay).
_CONFIGS: Optional[Dict[str, object]] = None


def _configs():
    global _CONFIGS
    if _CONFIGS is None:
        _CONFIGS = {"4PS": four_ps(), "8PS": eight_ps(), "HPS": hps()}
    return _CONFIGS


def replay_app(
    app: str, seed: int = DEFAULT_SEED, num_requests: Optional[int] = None
) -> Dict[str, float]:
    """MRT of one trace on all three schemes (one independent shard)."""
    # Strip timing once and pre-build the columnar view: the three scheme
    # replays then share the same column arrays zero-copy.
    trace = cached_trace(app, seed=seed, num_requests=num_requests).without_timing()
    trace.columns()
    return {
        scheme: replay_on(config, trace).stats.mean_response_ms
        for scheme, config in _configs().items()
    }


def merge(
    per_app: Dict[str, Dict[str, float]],
    seed: int = DEFAULT_SEED,
    num_requests: Optional[int] = None,
) -> ExperimentResult:
    """Assemble the Fig. 8 report from per-app shard payloads."""
    del seed, num_requests  # assembly is a pure function of the payloads
    ordered = [app for app in INDIVIDUAL_APPS if app in per_app]
    mrt: Dict[str, Dict[str, float]] = {}
    rows = []
    improvements = []
    for app in ordered:
        per_scheme = per_app[app]
        mrt[app] = per_scheme
        improvement = 1.0 - per_scheme["HPS"] / per_scheme["4PS"]
        improvements.append(improvement)
        rows.append(
            [
                app,
                per_scheme["4PS"],
                per_scheme["8PS"],
                per_scheme["HPS"],
                f"{improvement * 100:.1f}%",
            ]
        )
    average = sum(improvements) / len(improvements) if improvements else 0.0
    footer = (
        f"HPS vs 4PS: best {max(improvements) * 100:.1f}%, "
        f"worst {min(improvements) * 100:.1f}%, average {average * 100:.1f}%  "
        f"(paper: best {FIG8_HPS_VS_4PS['best'][1] * 100:.0f}% on "
        f"{FIG8_HPS_VS_4PS['best'][0]}, worst {FIG8_HPS_VS_4PS['worst'][1] * 100:.0f}% on "
        f"{FIG8_HPS_VS_4PS['worst'][0]}, average {FIG8_HPS_VS_4PS['average'] * 100:.1f}%)"
    ) if improvements else ""
    table = render_table(
        ["App", "4PS MRT ms", "8PS MRT ms", "HPS MRT ms", "HPS vs 4PS"], rows
    )
    return ExperimentResult(
        experiment_id="fig8",
        title="Mean response time of the three schemes",
        table=table + "\n" + footer,
        data={"mrt": mrt, "improvements": dict(zip(ordered, improvements))},
    )


def run(
    seed: int = DEFAULT_SEED,
    num_requests: Optional[int] = None,
    apps: Optional[List[str]] = None,
) -> ExperimentResult:
    """Replay every trace on all three schemes and compare MRT."""
    selected = [
        app
        for app in INDIVIDUAL_APPS
        if apps is None or app in apps
    ]
    per_app = {
        app: replay_app(app, seed=seed, num_requests=num_requests)
        for app in selected
    }
    return merge(per_app, seed=seed, num_requests=num_requests)


SPEC = ExperimentSpec(
    experiment_id="fig8",
    title="Mean response time of 4PS/8PS/HPS on the 18 traces",
    runner=run,
    cost="heavy",
    shards=ShardPlan(units=tuple(INDIVIDUAL_APPS), worker=replay_app, merge=merge),
)


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
