"""Shared infrastructure for the per-table/figure experiment modules."""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, TypeVar

from repro.trace import Trace
from repro.workloads import (
    ALL_TRACES,
    DEFAULT_SEED,
    INDIVIDUAL_APPS,
    generate_trace,
)
from repro.workloads.collection import CollectionResult, collect
from repro.emmc import DeviceConfig, EmmcDevice, ReplayResult, four_ps
from repro.sim import Host

T = TypeVar("T")


@dataclass
class ExperimentResult:
    """Output of one experiment: a printable report plus structured data."""

    experiment_id: str
    title: str
    table: str
    data: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        """The printable report for this experiment."""
        return f"== {self.experiment_id}: {self.title} ==\n{self.table}"


class ProcessLocalLRU:
    """A bounded memo that never leaks across process boundaries.

    The previous implementation used :func:`functools.lru_cache`, which is
    plain process-global state: after an ``os.fork()`` (what
    ``ProcessPoolExecutor`` does on Linux) every worker inherited the
    parent's cached traces, so a long-lived pool both held an unbounded
    copy of every (seed, size) trace set per worker and could serve a
    worker traces generated before the fork -- incoherent with what a
    freshly-seeded worker would compute.  This cache:

    * records the owning ``os.getpid()`` and empties itself the first time
      it is touched from a different process (covers ``fork`` *and* any
      exotic inheritance path);
    * additionally registers an ``os.register_at_fork`` hook (via
      :func:`clear_experiment_caches`) so children start empty even before
      first access;
    * evicts least-recently-used entries beyond ``maxsize`` so sweeping
      many seeds/sizes cannot grow memory without bound;
    * counts hits/misses/fork-invalidations for telemetry and tests.
    """

    def __init__(self, maxsize: int = 64) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        self._pid = os.getpid()
        self.hits = 0
        self.misses = 0
        self.fork_invalidations = 0

    def _ensure_process_local(self) -> None:
        pid = os.getpid()
        if pid != self._pid:
            self._data.clear()
            self._pid = pid
            self.fork_invalidations += 1

    def get_or_compute(self, key: Hashable, compute: Callable[[], T]) -> T:
        """Return the cached value for ``key``, computing it on a miss."""
        self._ensure_process_local()
        if key in self._data:
            self._data.move_to_end(key)
            self.hits += 1
            return self._data[key]  # type: ignore[return-value]
        self.misses += 1
        value = compute()
        self._data[key] = value
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
        return value

    def clear(self) -> None:
        self._data.clear()
        self._pid = os.getpid()

    def __len__(self) -> int:
        self._ensure_process_local()
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        self._ensure_process_local()
        return key in self._data


#: Process-local trace memo (25 apps x a few (seed, size) combinations).
_TRACE_CACHE = ProcessLocalLRU(maxsize=128)
#: Process-local closed-loop collection memo.
_COLLECTION_CACHE = ProcessLocalLRU(maxsize=64)


def clear_experiment_caches() -> None:
    """Empty every shared experiment memo (used by the fork hook/tests)."""
    _TRACE_CACHE.clear()
    _COLLECTION_CACHE.clear()


if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(after_in_child=clear_experiment_caches)


#: Environment variable naming a directory of packed trace stores.  When
#: set, :func:`cached_trace` sources traces from matching store
#: subdirectories instead of re-synthesizing them.  Off by default so the
#: experiment pipeline's provenance stays purely generative.
TRACE_STORE_ENV = "REPRO_TRACE_STORE"


def trace_store_key(name: str, seed: int, num_requests: Optional[int]) -> str:
    """Store subdirectory name for one (name, seed, size) trace identity."""
    safe = name.replace("/", "+")
    suffix = "full" if num_requests is None else str(num_requests)
    return f"{safe}-s{seed}-n{suffix}"


def _trace_from_store(
    name: str, seed: int, num_requests: Optional[int]
) -> Optional[Trace]:
    """Load the trace from ``$REPRO_TRACE_STORE`` if a matching store exists.

    Returns ``None`` (fall back to synthesis) when the variable is unset,
    the subdirectory is absent, or it holds no readable manifest.  A
    present-but-corrupt manifest raises rather than silently
    regenerating different data.
    """
    root = os.environ.get(TRACE_STORE_ENV)
    if not root:
        return None
    from repro.store import MANIFEST_NAME, open_store

    path = os.path.join(root, trace_store_key(name, seed, num_requests))
    if not os.path.exists(os.path.join(path, MANIFEST_NAME)):
        return None
    return open_store(path).to_trace()


def cached_trace(
    name: str, seed: int = DEFAULT_SEED, num_requests: Optional[int] = None
) -> Trace:
    """One synthesized trace, memoized per (name, seed, size) in-process.

    Trace synthesis is keyed only by these three values (the generator
    derives its RNG streams from a hash of name+seed), so the memo is safe
    to consult from any experiment -- and, because the cache is
    process-local, from any pool worker.

    When :data:`TRACE_STORE_ENV` points at a directory of packed stores
    (see ``repro-trace store pack``), a store named
    :func:`trace_store_key` is used instead of re-synthesizing; packed
    stores round-trip traces exactly, so results are unchanged either way.
    """

    def compute() -> Trace:
        stored = _trace_from_store(name, seed, num_requests)
        if stored is not None:
            return stored
        return generate_trace(name, seed=seed, num_requests=num_requests)

    return _TRACE_CACHE.get_or_compute((name, seed, num_requests), compute)


def cached_collection(
    name: str, seed: int = DEFAULT_SEED, num_requests: Optional[int] = None
) -> CollectionResult:
    """One closed-loop collection, memoized like :func:`cached_trace`."""
    return _COLLECTION_CACHE.get_or_compute(
        (name, seed, num_requests),
        lambda: collect(name, seed=seed, num_requests=num_requests),
    )


def individual_traces(
    seed: int = DEFAULT_SEED, num_requests: Optional[int] = None
) -> List[Trace]:
    """The 18 individual traces (memoized per seed/size)."""
    return [cached_trace(name, seed, num_requests) for name in INDIVIDUAL_APPS]


def all_traces(
    seed: int = DEFAULT_SEED, num_requests: Optional[int] = None
) -> List[Trace]:
    """All 25 traces (memoized per seed/size)."""
    return [cached_trace(name, seed, num_requests) for name in ALL_TRACES]


#: Environment variable naming a fault profile (see
#: :data:`repro.faults.PROFILES`) to thread through every experiment
#: replay.  ``none``/unset leaves the replay path structurally unchanged
#: (the CI golden-parity job runs with ``REPRO_FAULT_PROFILE=none`` to
#: prove exactly that).
FAULT_PROFILE_ENV = "REPRO_FAULT_PROFILE"


def _fault_plan_from_env():
    """The :class:`~repro.faults.FaultPlan` named by the environment, if any."""
    profile = os.environ.get(FAULT_PROFILE_ENV)
    if not profile:
        return None
    from repro.faults import FaultPlan

    return FaultPlan.profile(profile)


def _telemetry_from_env():
    """A fresh :class:`~repro.telemetry.Telemetry` sink when enabled by env.

    ``$REPRO_TELEMETRY`` unset/empty/``0``/``off``/``none``/``false``
    leaves the replay path structurally unchanged (``telemetry=None`` on
    the device, no recording branches).  Any other value attaches a
    fresh per-replay sink; the digest-parity suite runs the whole
    experiment battery both ways and asserts bit-identical results.
    """
    value = os.environ.get("REPRO_TELEMETRY", "")
    if value.lower() in ("", "0", "off", "none", "false"):
        return None
    from repro.telemetry import Telemetry

    return Telemetry()


def replay_on(config: DeviceConfig, trace: Trace, faults=None) -> ReplayResult:
    """Replay ``trace`` open-loop on a brand-new device built from ``config``.

    This is the experiments' one front door to the device: a
    :class:`repro.sim.Host` schedules every request as an ``ARRIVAL``
    event on the device's kernel and drains the loop, so figure replays
    take exactly the Host -> AdmissionQueue -> EmmcDevice path the rest
    of the codebase uses.

    ``faults`` is an optional :class:`~repro.faults.FaultPlan`; when left
    ``None`` it is sourced from ``$REPRO_FAULT_PROFILE``, so a whole
    experiment sweep can be rerun under a fault profile without touching
    any call site.  An inactive plan is dropped by the device itself.
    ``$REPRO_TELEMETRY`` likewise attaches a per-replay telemetry sink
    (see :func:`_telemetry_from_env`) -- recording only, never a
    behaviour change.

    Columnar wiring: generated traces arrive here already carrying their
    struct-of-arrays view (adopted at synthesis time), and
    ``without_timing`` preserves it zero-copy for never-replayed traces,
    so the analysis kernels downstream of a replay never pay a
    Request-unpacking pass for the input side.
    """
    if faults is None:
        faults = _fault_plan_from_env()
    telemetry = _telemetry_from_env()
    device = EmmcDevice(config, faults=faults, telemetry=telemetry)
    return Host(device).replay(trace.without_timing())


def replayed_individual(
    seed: int = DEFAULT_SEED, num_requests: Optional[int] = None
) -> List[CollectionResult]:
    """The 18 individual traces collected closed-loop on the reference device.

    This is the BIOtracer methodology (see
    :mod:`repro.workloads.collection`): the recorded timestamps are what the
    monitor would log on the phone, which is what Table IV, Fig. 5 and the
    characteristics are computed from.
    """
    return [cached_collection(name, seed, num_requests) for name in INDIVIDUAL_APPS]


def replayed_all(
    seed: int = DEFAULT_SEED, num_requests: Optional[int] = None
) -> List[CollectionResult]:
    """All 25 traces collected closed-loop on the reference device."""
    return [cached_collection(name, seed, num_requests) for name in ALL_TRACES]
