"""Shared infrastructure for the per-table/figure experiment modules."""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.trace import Trace
from repro.workloads import (
    ALL_TRACES,
    DEFAULT_SEED,
    INDIVIDUAL_APPS,
    generate_trace,
)
from repro.workloads.collection import CollectionResult, collect
from repro.emmc import DeviceConfig, EmmcDevice, ReplayResult, four_ps


@dataclass
class ExperimentResult:
    """Output of one experiment: a printable report plus structured data."""

    experiment_id: str
    title: str
    table: str
    data: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        """The printable report for this experiment."""
        return f"== {self.experiment_id}: {self.title} ==\n{self.table}"


@functools.lru_cache(maxsize=16)
def _cached_traces(
    names: Tuple[str, ...], seed: int, num_requests: Optional[int]
) -> Tuple[Trace, ...]:
    return tuple(
        generate_trace(name, seed=seed, num_requests=num_requests) for name in names
    )


def individual_traces(
    seed: int = DEFAULT_SEED, num_requests: Optional[int] = None
) -> List[Trace]:
    """The 18 individual traces (cached per seed/size)."""
    return list(_cached_traces(tuple(INDIVIDUAL_APPS), seed, num_requests))


def all_traces(
    seed: int = DEFAULT_SEED, num_requests: Optional[int] = None
) -> List[Trace]:
    """All 25 traces (cached per seed/size)."""
    return list(_cached_traces(tuple(ALL_TRACES), seed, num_requests))


def replay_on(config: DeviceConfig, trace: Trace) -> ReplayResult:
    """Replay ``trace`` on a brand-new device built from ``config``."""
    return EmmcDevice(config).replay(trace.without_timing())


@functools.lru_cache(maxsize=4)
def _cached_collections(
    names: Tuple[str, ...], seed: int, num_requests: Optional[int]
) -> Tuple[CollectionResult, ...]:
    return tuple(
        collect(name, seed=seed, num_requests=num_requests) for name in names
    )


def replayed_individual(
    seed: int = DEFAULT_SEED, num_requests: Optional[int] = None
) -> List[CollectionResult]:
    """The 18 individual traces collected closed-loop on the reference device.

    This is the BIOtracer methodology (see
    :mod:`repro.workloads.collection`): the recorded timestamps are what the
    monitor would log on the phone, which is what Table IV, Fig. 5 and the
    characteristics are computed from.
    """
    return list(_cached_collections(tuple(INDIVIDUAL_APPS), seed, num_requests))


def replayed_all(
    seed: int = DEFAULT_SEED, num_requests: Optional[int] = None
) -> List[CollectionResult]:
    """All 25 traces collected closed-loop on the reference device."""
    return list(_cached_collections(tuple(ALL_TRACES), seed, num_requests))
