"""The experiment registry: every :class:`ExperimentSpec`, in paper order.

This module is the single source of truth for which experiments exist.
``ProcessPoolExecutor`` workers import it afresh inside the child process
and resolve experiments by id, so only strings ever cross the process
boundary on the way in.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List

from . import (
    calibration,
    characteristics,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    ftl_study,
    implications,
    lifetime,
    overhead,
    power_study,
    sdcard_study,
    sensitivity,
    slc_study,
    table3,
    table4,
)
from .spec import ExperimentSpec

#: Experiment modules in the order they appear in the paper (the seven
#: extension studies follow the paper's evaluation section).
_MODULES = (
    fig3,
    table3,
    fig4,
    table4,
    fig5,
    fig6,
    fig7,
    characteristics,
    implications,
    overhead,
    fig8,
    fig9,
    slc_study,
    lifetime,
    sensitivity,
    power_study,
    sdcard_study,
    ftl_study,
    calibration,
)

#: id -> spec, in paper order.
REGISTRY: "OrderedDict[str, ExperimentSpec]" = OrderedDict(
    (module.SPEC.experiment_id, module.SPEC) for module in _MODULES
)

# Paranoia: a mis-declared spec (duplicate id, dangling dep) should fail at
# import time, not at schedule time inside a worker.
if len(REGISTRY) != len(_MODULES):  # pragma: no cover - guarded by tests
    raise RuntimeError("duplicate experiment ids in registry")
for _spec in REGISTRY.values():  # pragma: no branch
    for _dep in _spec.deps:
        if _dep not in REGISTRY:  # pragma: no cover - guarded by tests
            raise RuntimeError(
                f"{_spec.experiment_id}: unknown dependency {_dep!r}"
            )


def get_spec(experiment_id: str) -> ExperimentSpec:
    """Look up one spec, raising ``KeyError`` with the known ids."""
    try:
        return REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {list(REGISTRY)}"
        ) from None


def select(ids: Iterable[str] = ()) -> List[ExperimentSpec]:
    """Specs for ``ids`` (all, in paper order, when empty).

    Raises ``KeyError`` listing every unknown id, matching the historical
    runner behaviour.
    """
    selected = list(ids) or list(REGISTRY)
    unknown = [identifier for identifier in selected if identifier not in REGISTRY]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}; known: {list(REGISTRY)}")
    return [REGISTRY[identifier] for identifier in selected]
