"""Calibration report: per-cell deltas of the generator vs the paper.

Runs the paper's own characterization over the synthetic traces and prints
every Table III/IV cell as *measured - published*, flagging cells outside
the generator's accuracy budget.  This is the maintenance tool for the
workload profiles: any change to the samplers shows up here first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis import render_table, size_stats, timing_stats
from repro.workloads import ALL_TRACES, DEFAULT_SEED, TABLE_III, TABLE_IV

from .common import ExperimentResult, all_traces, replayed_all
from .spec import ExperimentSpec

#: Accuracy budget per column: (kind, tolerance).  "abs" tolerances are in
#: the column's own unit (percentage points, ms, ...); "rel" are ratios.
TOLERANCES = {
    "write_req_pct": ("abs", 4.0),
    "avg_size_kib": ("rel", 0.30),
    "write_size_pct": ("abs", 10.0),
    "duration_s": ("rel", 0.20),
    "arrival_rate": ("rel", 0.25),
    "spatial_locality_pct": ("abs", 4.0),
    "temporal_locality_pct": ("abs", 8.0),
    "nowait_pct": ("abs", 12.0),
}


#: Cells known to sit outside the budget, with the reason documented in
#: EXPERIMENTS.md: Booting's closed-loop collection stretches its 40 s of
#: wall time because the simulated device serves its dense burst mix more
#: slowly than the real iNAND did.
KNOWN_EXCEPTIONS = {("Booting", "duration_s"), ("Booting", "arrival_rate")}


@dataclass(frozen=True)
class CellDelta:
    """One measured-vs-published cell."""

    trace: str
    column: str
    measured: float
    published: float
    within_budget: bool

    @property
    def delta(self) -> float:
        """Measured minus published."""
        return self.measured - self.published


def _check(trace, column, measured, published) -> CellDelta:
    kind, tolerance = TOLERANCES[column]
    if kind == "abs":
        ok = abs(measured - published) <= tolerance
    else:
        ok = published == 0 or abs(measured / published - 1.0) <= tolerance
    return CellDelta(trace, column, measured, published, ok)


def run(seed: int = DEFAULT_SEED, num_requests: Optional[int] = None) -> ExperimentResult:
    """Check every budgeted cell for all 25 traces."""
    deltas: List[CellDelta] = []
    for trace in all_traces(seed=seed, num_requests=num_requests):
        measured3 = size_stats(trace)
        paper3 = TABLE_III[trace.name]
        for column in ("write_req_pct", "avg_size_kib", "write_size_pct"):
            deltas.append(
                _check(trace.name, column, getattr(measured3, column), getattr(paper3, column))
            )
    for replay in replayed_all(seed=seed, num_requests=num_requests):
        measured4 = timing_stats(replay.trace)
        paper4 = TABLE_IV[replay.trace.name]
        columns = ["spatial_locality_pct", "temporal_locality_pct", "nowait_pct"]
        if num_requests is None:
            # Duration/rate only make sense at the published trace lengths.
            columns += ["duration_s", "arrival_rate"]
        for column in columns:
            deltas.append(
                _check(replay.trace.name, column,
                       getattr(measured4, column), getattr(paper4, column))
            )
    out_of_budget = [
        d
        for d in deltas
        if not d.within_budget and (d.trace, d.column) not in KNOWN_EXCEPTIONS
    ]
    known = [
        d
        for d in deltas
        if not d.within_budget and (d.trace, d.column) in KNOWN_EXCEPTIONS
    ]
    rows = [
        [d.trace, d.column, d.measured, d.published, f"{d.delta:+.2f}"]
        for d in out_of_budget
    ] or [["-", "all cells within budget", 0.0, 0.0, "-"]]
    table = render_table(
        ["Trace", "Column", "Measured", "Published", "Delta"],
        rows,
        title=(
            f"{len(deltas)} cells checked, {len(out_of_budget)} outside budget "
            f"({len(known)} known exceptions, see EXPERIMENTS.md)"
        ),
    )
    return ExperimentResult(
        experiment_id="calibration",
        title="Generator calibration report (measured vs published)",
        table=table,
        data={"deltas": deltas, "out_of_budget": out_of_budget, "known": known},
    )


SPEC = ExperimentSpec(
    experiment_id="calibration",
    title="Per-cell calibration deltas vs the published tables",
    runner=run,
    cost="light",
)


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
