"""Per-table/figure experiment harness (see DESIGN.md's experiment index)."""

from .common import (
    ExperimentResult,
    all_traces,
    individual_traces,
    replay_on,
    replayed_all,
    replayed_individual,
)

__all__ = [
    "ExperimentResult",
    "all_traces",
    "individual_traces",
    "replay_on",
    "replayed_all",
    "replayed_individual",
]
