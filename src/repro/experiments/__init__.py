"""Per-table/figure experiment harness (see DESIGN.md's experiment index)."""

from .common import (
    ExperimentResult,
    all_traces,
    cached_collection,
    cached_trace,
    clear_experiment_caches,
    individual_traces,
    replay_on,
    replayed_all,
    replayed_individual,
)
from .spec import ExperimentSpec, ShardPlan

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "ShardPlan",
    "all_traces",
    "cached_collection",
    "cached_trace",
    "clear_experiment_caches",
    "individual_traces",
    "replay_on",
    "replayed_all",
    "replayed_individual",
]
