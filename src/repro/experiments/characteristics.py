"""The six characteristics (Section III), checked end to end."""

from __future__ import annotations

from typing import Optional

from repro.analysis import check_all, render_table
from repro.workloads import DEFAULT_SEED

from .common import ExperimentResult, individual_traces, replayed_individual
from .spec import ExperimentSpec


def run(seed: int = DEFAULT_SEED, num_requests: Optional[int] = None) -> ExperimentResult:
    """Run all six characteristic checks on the 18 individual traces."""
    traces = individual_traces(seed=seed, num_requests=num_requests)
    replays = replayed_individual(seed=seed, num_requests=num_requests)
    results = check_all(
        traces,
        [replay.trace for replay in replays],
        [replay.device_stats.wakeups for replay in replays],
    )
    rows = [
        [
            f"C{result.number}",
            result.claim,
            result.holds,
            "; ".join(f"{key}={value:.1f}" for key, value in result.evidence.items()),
        ]
        for result in results
    ]
    table = render_table(["#", "Claim", "Holds", "Evidence"], rows)
    return ExperimentResult(
        experiment_id="characteristics",
        title="The six observed characteristics",
        table=table,
        data={"results": results},
    )


SPEC = ExperimentSpec(
    experiment_id="characteristics",
    title="The six Section-III characteristics, checked end to end",
    runner=run,
    cost="light",
)


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
