"""Fig. 9: space utilization of 8PS and HPS, normalized to 4PS.

Paper headlines: HPS always achieves the same space utilization as 4PS
(no padding is ever written); against 8PS its best gain is 24.2 % (Music)
and the average gain is 13.1 %.

Like :mod:`repro.experiments.fig8`, the per-trace replays are independent:
:func:`replay_app` is the parallel shard and :func:`merge` the
deterministic reassembly, so sharded output is bit-identical to serial.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis import render_table
from repro.workloads import DEFAULT_SEED, FIG9_HPS_VS_8PS, INDIVIDUAL_APPS

from repro.emmc import eight_ps, four_ps, hps

from .common import ExperimentResult, cached_trace, replay_on
from .spec import ExperimentSpec, ShardPlan


#: Scheme configs are immutable; build them once per process instead of
#: once per shard call (devices are still constructed fresh per replay).
_CONFIGS: Optional[Dict[str, object]] = None


def _configs():
    global _CONFIGS
    if _CONFIGS is None:
        _CONFIGS = {"4PS": four_ps(), "8PS": eight_ps(), "HPS": hps()}
    return _CONFIGS


def replay_app(
    app: str, seed: int = DEFAULT_SEED, num_requests: Optional[int] = None
) -> Dict[str, float]:
    """Space utilization of one trace on all three schemes (one shard)."""
    # Strip timing once and pre-build the columnar view: the three scheme
    # replays then share the same column arrays zero-copy.
    trace = cached_trace(app, seed=seed, num_requests=num_requests).without_timing()
    trace.columns()
    return {
        scheme: replay_on(config, trace).stats.space_utilization
        for scheme, config in _configs().items()
    }


def merge(
    per_app: Dict[str, Dict[str, float]],
    seed: int = DEFAULT_SEED,
    num_requests: Optional[int] = None,
) -> ExperimentResult:
    """Assemble the Fig. 9 report from per-app shard payloads."""
    del seed, num_requests  # assembly is a pure function of the payloads
    ordered = [app for app in INDIVIDUAL_APPS if app in per_app]
    utilization: Dict[str, Dict[str, float]] = {}
    rows = []
    gains = []
    for app in ordered:
        per_scheme = per_app[app]
        utilization[app] = per_scheme
        gain = per_scheme["HPS"] / per_scheme["8PS"] - 1.0 if per_scheme["8PS"] else 0.0
        gains.append(gain)
        rows.append(
            [
                app,
                per_scheme["8PS"] / per_scheme["4PS"],
                per_scheme["HPS"] / per_scheme["4PS"],
                f"{gain * 100:.1f}%",
            ]
        )
    average = sum(gains) / len(gains) if gains else 0.0
    footer = (
        f"HPS vs 8PS: best {max(gains) * 100:.1f}%, average {average * 100:.1f}%  "
        f"(paper: best {FIG9_HPS_VS_8PS['best'][1] * 100:.1f}% on "
        f"{FIG9_HPS_VS_8PS['best'][0]}, average {FIG9_HPS_VS_8PS['average'] * 100:.1f}%)"
    ) if gains else ""
    table = render_table(
        ["App", "8PS / 4PS", "HPS / 4PS", "HPS vs 8PS"], rows
    )
    return ExperimentResult(
        experiment_id="fig9",
        title="Space utilization normalized to 4PS",
        table=table + "\n" + footer,
        data={"utilization": utilization, "gains": dict(zip(ordered, gains))},
    )


def run(
    seed: int = DEFAULT_SEED,
    num_requests: Optional[int] = None,
    apps: Optional[List[str]] = None,
) -> ExperimentResult:
    """Measure space utilization per scheme; normalize to 4PS."""
    selected = [
        app
        for app in INDIVIDUAL_APPS
        if apps is None or app in apps
    ]
    per_app = {
        app: replay_app(app, seed=seed, num_requests=num_requests)
        for app in selected
    }
    return merge(per_app, seed=seed, num_requests=num_requests)


SPEC = ExperimentSpec(
    experiment_id="fig9",
    title="Space utilization of 8PS and HPS normalized to 4PS",
    runner=run,
    cost="heavy",
    shards=ShardPlan(units=tuple(INDIVIDUAL_APPS), worker=replay_app, merge=merge),
)


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
